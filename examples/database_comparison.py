#!/usr/bin/env python
"""Geolocation databases vs CBG (paper §6 / Figure 7).

Builds the simulated MaxMind-free and IPinfo databases, queries them for
every target, and prints the error CDF at the paper's thresholds next to
CBG with the full platform.

Run: ``python examples/database_comparison.py``
"""

import numpy as np

from repro.analysis import format_table
from repro.core.cbg import cbg_errors_for_subsets
from repro.experiments.scenario import get_scenario
from repro.geodb import build_ipinfo, build_maxmind_free


def main() -> None:
    scenario = get_scenario("small")
    matrix = scenario.rtt_matrix()
    cbg_errors = cbg_errors_for_subsets(
        scenario.vp_lats,
        scenario.vp_lons,
        matrix,
        scenario.target_true_lats,
        scenario.target_true_lons,
        np.arange(len(scenario.vps)),
    )

    sources = {"CBG (all VPs)": cbg_errors}
    for database in (build_maxmind_free(scenario.world), build_ipinfo(scenario.world)):
        errors = np.full(len(scenario.targets), np.nan)
        for column, target in enumerate(scenario.targets):
            location = database.lookup(target.ip)
            if location is not None:
                errors[column] = location.distance_km(target.true_location)
        sources[database.name] = errors

    rows = []
    for name, errors in sources.items():
        defined = errors[~np.isnan(errors)]
        rows.append(
            [
                name,
                f"{np.median(defined):.1f}",
                f"{(defined <= 1).mean():.0%}",
                f"{(defined <= 40).mean():.0%}",
                f"{(defined <= 137).mean():.0%}",
                f"{defined.size}/{errors.size}",
            ]
        )
    print(
        format_table(
            ["source", "median km", "<=1km", "<=40km", "<=137km", "coverage"], rows
        )
    )
    print()
    print("The paper's §6 ordering should hold: ipinfo > CBG > maxmind-free "
          "at the 40 km city-level threshold.")


if __name__ == "__main__":
    main()
