#!/usr/bin/env python
"""Quickstart: build a world, run measurements, geolocate one target.

This walks the core public API end to end in under a minute:

1. build a small simulated world (cities, ASes, RIPE-Atlas-like platform);
2. open a measurement client (credits + simulated clock included), with a
   campaign observer attached;
3. ping one anchor from every vantage point;
4. geolocate it with Shortest Ping and CBG, and compare with the truth;
5. print the campaign summary the observer collected along the way.

Run: ``python examples/quickstart.py``
"""

from repro import (
    AtlasClient,
    AtlasPlatform,
    Observer,
    WorldConfig,
    build_world,
    cbg_estimate,
    shortest_ping,
)


def main() -> None:
    world = build_world(WorldConfig.small())
    print(world.describe())
    print()

    # The observer records every credit charge and measurement as typed
    # events/metrics (see docs/OBSERVABILITY.md); omit it (the default is
    # a zero-cost NullObserver) and nothing below changes.
    observer = Observer()
    platform = AtlasPlatform(world, obs=observer)
    client = AtlasClient(platform)
    vantage_points = client.list_probes()
    print(f"platform offers {len(vantage_points)} vantage points")

    # Pick a target: the first anchor that is not deliberately mislocated.
    target = next(anchor for anchor in world.anchors if not anchor.mislocated)
    print(f"target: {target.ip} (truth: {target.true_location})")

    # One ping measurement from every vantage point (the target itself is a
    # vantage point too - exclude it, it cannot ping itself).
    vps = [vp for vp in vantage_points if vp.address != target.ip]
    rtts = client.ping_from([vp.probe_id for vp in vps], target.ip)
    answered = sum(1 for rtt in rtts.values() if rtt is not None)
    print(f"{answered}/{len(vps)} vantage points got an answer")
    print(f"credits spent: {client.credits_spent}")

    sp = shortest_ping(target.ip, vps, rtts)
    print(
        f"shortest ping : estimate {sp.estimate}, "
        f"error {sp.error_km(target.true_location):.1f} km "
        f"(vp {sp.details['vp_id']}, rtt {sp.details['min_rtt_ms']:.2f} ms)"
    )

    # CBG can fail on the raw platform: some probes advertise wrong
    # locations, producing physically impossible constraint sets. That is
    # exactly why the paper sanitizes the platform first (§4.3). A cheap
    # stand-in here: drop the constraints that do not overlap the
    # lowest-RTT vantage point's circle.
    from repro.core.cbg import constraints_from_rtts
    from repro.errors import EmptyRegionError
    from repro.geo.regions import cbg_region

    try:
        cbg, region = cbg_estimate(target.ip, vps, rtts)
    except EmptyRegionError:
        print(
            "CBG found no feasible region - the raw platform contains "
            "mis-geolocated vantage points (the paper's §4.3 sanitization "
            "exists for this). Dropping inconsistent constraints..."
        )
        circles = constraints_from_rtts(vps, rtts)
        tightest = min(circles, key=lambda c: c.radius_km)
        consistent = [
            circle
            for circle in circles
            if circle.center.distance_km(tightest.center)
            <= circle.radius_km + tightest.radius_km
        ]
        region = cbg_region(consistent)
        from repro.core.results import GeolocationResult

        cbg = GeolocationResult(
            target.ip,
            region.centroid,
            "cbg",
            {"constraints": len(consistent), "tightest_radius_km": tightest.radius_km},
        )
    print(
        f"CBG           : estimate {cbg.estimate}, "
        f"error {cbg.error_km(target.true_location):.1f} km "
        f"({cbg.details['constraints']} constraints, "
        f"tightest radius {cbg.details['tightest_radius_km']:.0f} km)"
    )
    print(f"CBG region extent: {region.extent_km():.0f} km")
    print()

    # What did this little campaign cost? The observer kept the books.
    print(observer.summary())
    print()
    print("For properly sanitized datasets, use repro.experiments.Scenario -")
    print("it runs the paper's full §4.3 pipeline (anchors first, then probes).")


if __name__ == "__main__":
    main()
