#!/usr/bin/env python
"""Ablation: what makes vantage-point selection work?

Dissects the design choices behind the two-step selection (§5.1.4):

* how many low-RTT vantage points to keep (k = 1 / 3 / 10 / 50);
* greedy earth-coverage first step vs a random first step;
* minimum vs median aggregation over the /24 representatives.

Run: ``python examples/vp_selection_ablation.py``
"""

import numpy as np

from repro import rand
from repro.analysis import format_table
from repro.core.cbg import cbg_errors_for_subsets
from repro.core.coverage import greedy_coverage_indices
from repro.core.million_scale import select_closest_vps
from repro.core.two_step import two_step_select
from repro.experiments.scenario import get_scenario
from repro.geo.coords import haversine_km


def _selection_errors(scenario, rep_matrix, k):
    """CBG error per target using the k lowest-representative-RTT VPs."""
    target_matrix = scenario.rtt_matrix()
    errors = np.full(len(scenario.targets), np.nan)
    for column in range(len(scenario.targets)):
        chosen = select_closest_vps(rep_matrix[:, column], k)
        if chosen.size == 0:
            continue
        errors[column] = cbg_errors_for_subsets(
            scenario.vp_lats,
            scenario.vp_lons,
            target_matrix[:, [column]],
            scenario.target_true_lats[[column]],
            scenario.target_true_lons[[column]],
            chosen,
        )[0]
    return errors


def main() -> None:
    scenario = get_scenario("small")
    rep_min, rep_median, _reps = scenario.representative_matrices()

    # Ablation 1: how many selected VPs, and min vs median aggregation.
    rows = []
    for label, matrix in (("min over reps", rep_min), ("median over reps", rep_median)):
        for k in (1, 3, 10, 50):
            errors = _selection_errors(scenario, matrix, k)
            defined = errors[~np.isnan(errors)]
            rows.append(
                [label, k, f"{np.median(defined):.1f}", f"{(defined <= 40).mean():.0%}"]
            )
    print("selection-size and aggregation ablation:")
    print(format_table(["aggregation", "k", "median km", "<=40km"], rows))

    # Ablation 2: greedy coverage vs random first step for the two-step
    # algorithm (same size, same budget accounting).
    size = 50
    greedy = greedy_coverage_indices(scenario.vp_lats, scenario.vp_lons, size)
    rng = rand.generator(("ablation-random-step1", scenario.world.config.seed))
    random_step1 = sorted(rng.choice(len(scenario.vps), size=size, replace=False))

    rows = []
    for label, step1 in (("greedy coverage", greedy), ("random subset", random_step1)):
        errors = []
        measurements = 0
        for column, target in enumerate(scenario.targets):
            outcome = two_step_select(
                target.ip, scenario.vps, step1, rep_median[:, column]
            )
            measurements += outcome.ping_measurements
            if outcome.estimate is not None:
                errors.append(
                    haversine_km(
                        outcome.estimate.lat,
                        outcome.estimate.lon,
                        target.true_location.lat,
                        target.true_location.lon,
                    )
                )
        rows.append(
            [
                label,
                f"{np.median(errors):.1f}",
                f"{np.mean(np.array(errors) <= 40):.0%}",
                f"{measurements:,}",
            ]
        )
    print("\nfirst-step construction ablation (two-step selection):")
    print(format_table(["first step", "median km", "<=40km", "pings"], rows))


if __name__ == "__main__":
    main()
