#!/usr/bin/env python
"""Inspect the synthetic world behind the replication.

Prints the distributions that drive every result in EXPERIMENTS.md —
city populations, platform composition, last-mile delays, metadata errors
— so the substrate is as explainable as the algorithms running on it.

Run: ``python examples/world_report.py [--preset paper]``
"""

import argparse

from repro.world import WorldConfig, build_world
from repro.world.stats import compute_world_stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=["small", "paper"], default="small")
    parser.add_argument("--seed", type=int, default=None)
    args = parser.parse_args()

    if args.preset == "paper":
        config = WorldConfig.paper() if args.seed is None else WorldConfig.paper(args.seed)
    else:
        config = WorldConfig.small() if args.seed is None else WorldConfig.small(args.seed)

    world = build_world(config)
    print(world.describe())
    print()
    print(compute_world_stats(world).render())


if __name__ == "__main__":
    main()
