#!/usr/bin/env python
"""The million scale technique (Hu et al., IMC 2012) on the simulator.

Reproduces the §3.1/§5.1 pipeline on a handful of targets:

1. pick three /24 representatives per target from the hitlist;
2. ping the representatives from every vantage point;
3. geolocate each target from its 10 lowest-RTT vantage points;
4. compare against CBG with the full platform;
5. print the §5.1.3 deployability verdict and the two-step savings.

Run: ``python examples/million_scale_campaign.py``
"""

import numpy as np

from repro.core.cbg import cbg_errors_for_subsets
from repro.core.coverage import greedy_coverage_indices
from repro.core.million_scale import (
    full_ipv4_campaign_feasibility,
    geolocate_with_selection,
    representative_rtt_matrix,
)
from repro.core.two_step import two_step_select
from repro.experiments.scenario import get_scenario


def main() -> None:
    scenario = get_scenario("small")
    client = scenario.client
    targets = scenario.targets[:8]
    target_ips = [t.ip for t in targets]

    print(f"targets: {len(targets)}, vantage points: {len(scenario.vps)}")
    rep_matrix, reps = representative_rtt_matrix(
        client, scenario.vp_ids, target_ips, scenario.world.hitlist
    )
    print(f"representative campaign: {client.measurements_run:,} measurements, "
          f"{client.credits_spent:,} credits")
    for ip in target_ips[:3]:
        print(f"  representatives of {ip}: {reps[ip]}")

    print("\nper-target geolocation (10 selected VPs vs truth):")
    for column, target in enumerate(targets):
        result = geolocate_with_selection(
            client, target.ip, scenario.vps, rep_matrix[:, column], k=10
        )
        error = result.error_km(target.true_location)
        print(f"  {target.ip}: error {error:8.1f} km  (selected {result.details['selected']} VPs)")

    # Baseline: CBG with the whole platform.
    matrix = scenario.rtt_matrix()
    subset = np.arange(len(scenario.vps))
    errors = cbg_errors_for_subsets(
        scenario.vp_lats,
        scenario.vp_lons,
        matrix[:, : len(targets)],
        scenario.target_true_lats[: len(targets)],
        scenario.target_true_lons[: len(targets)],
        subset,
    )
    print(f"\nall-VP CBG median error on the same targets: {np.nanmedian(errors):.1f} km")

    # Why the original algorithm cannot run on RIPE Atlas (§5.1.3).
    report = full_ipv4_campaign_feasibility(scenario.vps)
    print(f"\nfull-IPv4 campaign feasibility: {report.describe()}")

    # The replication's fix: the two-step selection (§5.1.4).
    _min_m, median_m, _reps = scenario.representative_matrices()
    step1 = greedy_coverage_indices(scenario.vp_lats, scenario.vp_lons, 100)
    outcome = two_step_select(targets[0].ip, scenario.vps, step1, median_m[:, 0])
    original = len(scenario.vps) * 3
    print(
        f"two-step selection for {targets[0].ip}: "
        f"{outcome.ping_measurements} pings vs {original} for the original "
        f"({outcome.ping_measurements / original:.1%}), "
        f"{outcome.region_vp_count} VPs in the step-1 region"
    )


if __name__ == "__main__":
    main()
