#!/usr/bin/env python
"""The street level technique (Wang et al., NSDI 2011) on the simulator.

Runs the full three-tier pipeline for a few targets and prints everything
the paper's §5.2 evaluation looks at: tier-1 CBG, landmark harvest volume,
the D1+D2 delay quality, the final mapping, and the simulated time cost.

Run: ``python examples/street_level_campaign.py``
"""

import numpy as np

from repro.core.street_level import StreetLevelPipeline, closest_landmark_oracle
from repro.experiments.scenario import get_scenario


def main() -> None:
    scenario = get_scenario("small")
    anchors = scenario.anchor_vp_infos()
    mesh_ids, mesh = scenario.mesh()
    row_by_id = {anchor_id: row for row, anchor_id in enumerate(mesh_ids)}
    pipeline = StreetLevelPipeline(scenario.client, scenario.world)

    for target in scenario.targets[:5]:
        column = row_by_id[target.host_id]
        tier1_rtts = {
            anchor_id: (None if np.isnan(mesh[row, column]) else float(mesh[row, column]))
            for anchor_id, row in row_by_id.items()
        }
        result = pipeline.geolocate(target.ip, anchors, tier1_rtts)

        truth = target.true_location
        street_error = result.estimate.distance_km(truth)
        cbg_error = result.tier1_estimate.distance_km(truth)
        oracle = closest_landmark_oracle(result.measurements, truth)
        oracle_error = oracle.location.distance_km(truth) if oracle else cbg_error

        stats = result.discovery_stats
        usable = sum(1 for m in result.measurements if m.delay.usable)
        print(f"target {target.ip}:")
        print(f"  tier-1 CBG error        : {cbg_error:8.1f} km"
              + ("  (4/9c empty -> 2/3c fallback)" if result.used_fallback_soi else ""))
        print(f"  street level error      : {street_error:8.1f} km"
              + ("  (no usable landmark -> CBG fallback)" if result.fell_back_to_cbg else ""))
        print(f"  closest-landmark oracle : {oracle_error:8.1f} km")
        print(f"  landmarks               : {len(result.measurements)} "
              f"({usable} usable delays) from {stats.candidates_tested} candidates")
        print(f"  rejected by test        : {dict(stats.rejected_by)}")
        print(f"  mapping queries         : {stats.geocode_queries + stats.overpass_queries}")
        print(f"  traceroutes             : {result.traceroutes_run}")
        print(f"  simulated time          : {result.elapsed_s:7.0f} s "
              f"{ {k: round(v) for k, v in result.time_breakdown.items()} }")
        if result.chosen is not None:
            chosen = result.chosen
            print(f"  chosen landmark         : {chosen.landmark.hostname} "
                  f"(D1+D2 {chosen.delay.best_delay_ms:.2f} ms, "
                  f"really {chosen.landmark.location.distance_km(truth):.1f} km away)")
        print()


if __name__ == "__main__":
    main()
