"""Cross-cutting property-based tests (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import (
    SOI_FRACTION_CBG,
    SOI_FRACTION_STREET_LEVEL,
    distance_to_min_rtt_ms,
    rtt_to_distance_km,
)
from repro.geo.coords import GeoPoint, destination, haversine_km
from repro.geo.regions import Circle, cbg_region
from repro.geo.sampling import circle_points

LATS = st.floats(min_value=-80.0, max_value=80.0)
LONS = st.floats(min_value=-179.0, max_value=179.0)
RADII = st.floats(min_value=10.0, max_value=5000.0)


class TestConversionProperties:
    @given(st.floats(min_value=0.0, max_value=500.0))
    @settings(max_examples=100, deadline=None)
    def test_rtt_distance_monotone(self, rtt):
        assert rtt_to_distance_km(rtt) <= rtt_to_distance_km(rtt + 1.0)

    @given(st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=100, deadline=None)
    def test_street_speed_never_exceeds_cbg_speed(self, rtt):
        assert rtt_to_distance_km(rtt, SOI_FRACTION_STREET_LEVEL) <= rtt_to_distance_km(
            rtt, SOI_FRACTION_CBG
        )

    @given(st.floats(min_value=0.0, max_value=19000.0))
    @settings(max_examples=100, deadline=None)
    def test_conversion_inverse(self, distance):
        rtt = distance_to_min_rtt_ms(distance)
        assert rtt_to_distance_km(rtt) == pytest.approx(distance, rel=1e-9, abs=1e-9)


class TestRegionProperties:
    @given(LATS, LONS, RADII)
    @settings(max_examples=40, deadline=None)
    def test_single_circle_centroid_inside(self, lat, lon, radius):
        circle = Circle(GeoPoint(lat, lon), radius)
        region = cbg_region([circle])
        assert circle.contains(region.centroid, tolerance_km=radius * 0.05 + 1.0)

    @given(LATS, LONS, RADII, st.floats(min_value=0.0, max_value=359.0))
    @settings(max_examples=40, deadline=None)
    def test_two_overlapping_circles_feasible_centroid(self, lat, lon, radius, bearing):
        a = GeoPoint(lat, lon)
        b = destination(a, bearing, radius)  # centers one radius apart
        circles = [Circle(a, radius), Circle(b, radius)]
        region = cbg_region(circles)
        for circle in circles:
            assert circle.contains(region.centroid, tolerance_km=radius * 0.05 + 1.0)

    @given(LATS, LONS, st.floats(min_value=1.0, max_value=500.0), st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_circle_points_equidistant(self, lat, lon, radius, divisions):
        center = GeoPoint(lat, lon)
        alpha = 360.0 / divisions
        points = circle_points(center, radius, alpha)
        assert len(points) == divisions
        for point in points:
            assert center.distance_km(point) == pytest.approx(radius, rel=1e-6)


def _cached_scenario():
    from repro.experiments.scenario import get_scenario

    return get_scenario("small")


class TestLatencyProperties:
    @given(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_ping_soi_bound_random_pairs(self, src_index, dst_index):
        scenario = _cached_scenario()
        model = scenario.platform.latency
        probes = scenario.world.probes
        anchors = scenario.world.anchors
        src = probes[src_index % len(probes)]
        dst = anchors[dst_index % len(anchors)]
        observation = model.ping(src, dst)
        if observation.min_rtt_ms is not None:
            direct = src.true_location.distance_km(dst.true_location)
            assert observation.min_rtt_ms >= distance_to_min_rtt_ms(direct) - 1e-9

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50, deadline=None)
    def test_fiber_factor_bounds(self, pair_seed):
        scenario = _cached_scenario()
        model = scenario.platform.latency
        config = scenario.world.config
        factor = model.fiber_factor(pair_seed, pair_seed * 7 + 1)
        assert config.fiber_factor_min <= factor <= config.fiber_factor_max


class TestMetricsProperties:
    @given(
        st.lists(
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=1e5)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fraction_within_monotone_in_threshold(self, values):
        from repro.analysis import fraction_within

        assert fraction_within(values, 10.0) <= fraction_within(values, 1000.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_cdf_points_are_a_cdf(self, values):
        from repro.analysis import cdf_points

        xs, ys = cdf_points(values)
        assert list(xs) == sorted(xs)
        assert list(ys) == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)


class TestAddressProperties:
    @given(st.integers(min_value=0, max_value=(1 << 24) - 1))
    @settings(max_examples=100, deadline=None)
    def test_router_ip_round_trip(self, index):
        from repro.topology.routers import RouterRole, parse_router_ip, router_ip

        for role in RouterRole:
            assert parse_router_ip(router_ip(role, index)) == (role, index)

    @given(st.integers(min_value=0, max_value=0xFFFFFF00 >> 8))
    @settings(max_examples=100, deadline=None)
    def test_prefix24_alignment(self, base_high):
        from repro.net.addressing import Prefix, int_to_ip, prefix24_of

        base = base_high << 8
        prefix = Prefix(base, 24)
        for offset in (0, 1, 255):
            assert prefix24_of(int_to_ip(base + offset)) == prefix
