"""Tests for Shortest Ping."""

from repro.atlas.platform import ProbeInfo
from repro.core.shortest_ping import shortest_ping
from repro.geo.coords import GeoPoint


def _vp(vp_id: int, lat: float, lon: float) -> ProbeInfo:
    return ProbeInfo(
        probe_id=vp_id,
        address=f"10.0.{vp_id}.1",
        location=GeoPoint(lat, lon),
        asn=65000,
        is_anchor=False,
        probing_rate_pps=8.0,
    )


class TestShortestPing:
    def test_lowest_rtt_wins(self):
        vps = [_vp(1, 0, 0), _vp(2, 10, 10), _vp(3, 20, 20)]
        result = shortest_ping("10.9.9.9", vps, {1: 30.0, 2: 5.0, 3: 12.0})
        assert result.estimate == GeoPoint(10, 10)
        assert result.details["vp_id"] == 2
        assert result.details["min_rtt_ms"] == 5.0

    def test_unanswered_ignored(self):
        vps = [_vp(1, 0, 0), _vp(2, 10, 10)]
        result = shortest_ping("10.9.9.9", vps, {1: None, 2: 9.0})
        assert result.details["vp_id"] == 2

    def test_no_answers_no_estimate(self):
        vps = [_vp(1, 0, 0)]
        result = shortest_ping("10.9.9.9", vps, {1: None})
        assert result.estimate is None
        assert result.error_km(GeoPoint(0, 0)) is None

    def test_missing_rtts_treated_as_unanswered(self):
        vps = [_vp(1, 0, 0), _vp(2, 5, 5)]
        result = shortest_ping("10.9.9.9", vps, {2: 3.0})
        assert result.details["vp_id"] == 2

    def test_error_km(self):
        vps = [_vp(1, 0, 0)]
        result = shortest_ping("10.9.9.9", vps, {1: 1.0})
        assert result.error_km(GeoPoint(0, 1)) is not None
        assert result.error_km(GeoPoint(0, 0)) == 0.0

    def test_in_scenario_better_than_random(self, small_scenario):
        """Shortest ping on the live scenario lands in the right region."""
        import numpy as np

        matrix = small_scenario.rtt_matrix()
        errors = []
        for column, target in enumerate(small_scenario.targets):
            rtts = {
                vp.probe_id: (None if np.isnan(matrix[row, column]) else float(matrix[row, column]))
                for row, vp in enumerate(small_scenario.vps)
            }
            result = shortest_ping(target.ip, small_scenario.vps, rtts)
            errors.append(result.error_km(target.true_location))
        assert np.nanmedian(np.array(errors, dtype=float)) < 100.0
