"""Snapshot/merge tests: the distributed-observability determinism contract.

``repro.obs.snapshot`` promises that capturing work items worker-side and
folding them back into a live observer is byte-identical to having observed
the same items serially, and that :func:`merge_snapshots` is associative
and order-independent. These tests pin both properties on synthetic
workloads (the campaign-scale goldens live in ``test_obs_distributed.py``).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.atlas.clock import SimClock
from repro.obs import (
    CaptureScope,
    EventLog,
    MetricsRegistry,
    ObsSnapshot,
    Observer,
    merge_snapshots,
)
from repro.obs.observer import NULL_OBSERVER
from repro.obs.report import metrics_report_json
from repro.obs.snapshot import capture_items, snapshot_of
from repro.obs.spans import SpanTracer


def _run_item(obs: Observer, index: int) -> int:
    """A synthetic work item touching all four observability verbs."""
    clock = SimClock()
    with obs.span(f"item:{index}", clock=clock, index=index):
        obs.count("items")
        obs.count("work_units", 0.1 * (index + 1))
        obs.gauge("last_index", float(index))
        obs.observe("latency_ms", 3.7 * index + 0.3)
        with obs.span("inner", clock=clock):
            clock.advance(0.25 + 0.01 * index, "work")
        obs.event("cache-hit", t_s=clock.now_s, item=index)
    return index * index


def _item_snapshots(count: int):
    """One single-item snapshot per work item, captured independently."""
    observer = Observer()
    snapshots = []
    for index in range(count):
        with CaptureScope(observer, index) as scope:
            _run_item(observer, index)
        snapshots.append(scope.snapshot)
    return snapshots


class TestCaptureScope:
    def test_restores_original_stores(self):
        observer = Observer()
        observer.count("before")
        metrics, events, tracer = observer.metrics, observer.events, observer.tracer
        with CaptureScope(observer, 0):
            observer.count("inside")
            assert observer.metrics is not metrics
        assert observer.metrics is metrics
        assert observer.events is events
        assert observer.tracer is tracer
        assert observer.metrics.counter("before") == 1
        assert observer.metrics.counter("inside") == 0

    def test_snapshot_holds_only_the_delta(self):
        observer = Observer()
        observer.count("before")
        with CaptureScope(observer, 3) as scope:
            _run_item(observer, 3)
        snapshot = scope.snapshot
        assert snapshot.item_count == 1
        assert snapshot.items[0].index == 3
        assert "before" not in snapshot.counters()
        assert snapshot.counters()["items"] == 1
        assert snapshot.event_count() == 1
        assert snapshot.span_count() == 2

    def test_snapshot_pickles(self):
        (snapshot,) = _item_snapshots(1)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot


class TestMergeSnapshots:
    def test_merge_sorts_by_item_index(self):
        snapshots = _item_snapshots(4)
        merged = merge_snapshots(snapshots[2], snapshots[0], snapshots[3], snapshots[1])
        assert [capture.index for capture in merged.items] == [0, 1, 2, 3]

    def test_merge_of_nothing_is_empty(self):
        assert merge_snapshots() == ObsSnapshot(items=())

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_order_independent_under_permutation(self, seed):
        snapshots = _item_snapshots(6)
        reference = merge_snapshots(*snapshots)
        shuffled = list(snapshots)
        random.Random(seed).shuffle(shuffled)
        assert merge_snapshots(*shuffled) == reference

    @pytest.mark.parametrize("seed", [10, 11, 12, 13, 14])
    def test_associative_under_random_grouping(self, seed):
        snapshots = _item_snapshots(6)
        reference = merge_snapshots(*snapshots)
        rng = random.Random(seed)
        shuffled = list(snapshots)
        rng.shuffle(shuffled)
        # Fold in random left/right groupings: merge(merge(...), merge(...)).
        merged = shuffled[0]
        for snapshot in shuffled[1:]:
            if rng.random() < 0.5:
                merged = merge_snapshots(merged, snapshot)
            else:
                merged = merge_snapshots(snapshot, merged)
        assert merged == reference


class TestAbsorbParity:
    """capture+absorb must equal direct serial observation, byte for byte."""

    def test_metrics_events_spans_match_serial(self):
        serial = Observer()
        for index in range(5):
            _run_item(serial, index)

        captured = Observer()
        results, snapshot = capture_items(
            captured, lambda index: _run_item(captured, index), range(5)
        )
        captured.absorb(snapshot)

        assert results == [index * index for index in range(5)]
        assert metrics_report_json(captured) == metrics_report_json(serial)
        assert captured.events.to_jsonl() == serial.events.to_jsonl()
        assert captured.span_tree() == serial.span_tree()

    def test_absorb_under_permuted_single_captures_matches_serial(self):
        serial = Observer()
        for index in range(5):
            _run_item(serial, index)

        captured = Observer()
        snapshots = []
        for index in range(5):
            with CaptureScope(captured, index) as scope:
                _run_item(captured, index)
            snapshots.append(scope.snapshot)
        random.Random(42).shuffle(snapshots)
        captured.absorb(merge_snapshots(*snapshots))

        assert metrics_report_json(captured) == metrics_report_json(serial)
        assert captured.events.to_jsonl() == serial.events.to_jsonl()
        assert captured.span_tree() == serial.span_tree()

    def test_gauge_last_serial_write_wins(self):
        observer = Observer()
        _, snapshot = capture_items(
            observer, lambda index: observer.gauge("g", float(index)), [0, 1, 2]
        )
        observer.absorb(snapshot)
        assert observer.metrics.gauge_value("g") == 2.0

    def test_spans_graft_under_open_parent(self):
        observer = Observer()
        snapshots = _item_snapshots(2)
        with observer.span("experiment:test"):
            observer.absorb(merge_snapshots(*snapshots))
        roots = [span for span in observer.tracer.spans if span.parent_id is None]
        assert [span.name for span in roots] == ["experiment:test"]
        children = [observer.tracer.spans[i].name for i in roots[0].children]
        assert children == ["item:0", "item:1"]

    def test_event_capacity_enforced_at_absorb(self):
        observer = Observer(events=EventLog(capacity=3))
        _, snapshot = capture_items(
            observer,
            lambda index: observer.event("cache-miss", item=index),
            range(5),
        )
        observer.absorb(snapshot)
        assert len(observer.events) == 3
        assert observer.events.dropped == 2
        assert observer.events.counts_by_type()["cache-miss"] == 5

    def test_histogram_bounds_mismatch_raises(self):
        left = Observer()
        left.observe("h", 1.0, bounds=(1.0, 2.0))
        right = Observer()
        right.observe("h", 1.0, bounds=(1.0, 4.0))
        # Synthesized whole-state ops carry their bounds; replaying both
        # into one registry must fail loudly instead of mixing buckets.
        merged = merge_snapshots(snapshot_of(left, 0), snapshot_of(right, 1))
        target = Observer()
        with pytest.raises(ValueError, match="bucket bounds"):
            target.absorb(merged)

    def test_plain_registry_snapshot_preserves_aggregates(self):
        source = Observer(metrics=MetricsRegistry())
        source.count("c", 2)
        source.count("c", 3)
        source.gauge("g", 7.5)
        source.observe("h", 0.5)
        source.observe("h", 1.5)
        target = Observer()
        target.absorb(source.snapshot())
        assert target.metrics.counter("c") == 5
        assert target.metrics.gauge_value("g") == 7.5
        histogram = target.metrics.histogram("h")
        assert histogram.count == 2
        assert histogram.total == 2.0


class TestNullObserver:
    def test_snapshot_is_empty_and_absorb_is_noop(self):
        snapshot = NULL_OBSERVER.snapshot()
        assert snapshot.item_count == 0
        NULL_OBSERVER.absorb(merge_snapshots(*_item_snapshots(2)))
        assert NULL_OBSERVER.snapshot().item_count == 0


class TestSpanTracerAbsorb:
    def test_offsets_ids_and_depths(self):
        parent = SpanTracer()
        with parent.span("outer"):
            pass
        child = SpanTracer()
        with child.span("a"):
            with child.span("b"):
                pass
        parent.absorb(tuple(child.spans))
        spans = parent.spans
        assert [span.name for span in spans] == ["outer", "a", "b"]
        assert spans[1].span_id == 1 and spans[1].parent_id is None
        assert spans[2].span_id == 2 and spans[2].parent_id == 1
        assert spans[1].depth == 0 and spans[2].depth == 1
