"""Property-based chaos tests (Hypothesis) for the fault substrate.

For any fault rate in [0, 0.5] and any fault seed:

* fault-injected campaigns never crash — they degrade to missing values;
* CBG (both the exact and the vectorised path) never emits a location
  built from fewer than the required usable vantage points;
* coverage is monotone non-increasing in the fault rate (the nested
  fault-set property of rate-free draw keys);
* a zero-rate plan is indistinguishable from fair weather.

Examples are deterministic: every fault draw is a pure function of
(seed, key), so a failing example reproduces exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.atlas.client import AtlasClient
from repro.atlas.platform import AtlasPlatform
from repro.atlas.resilient import ResilientClient, RetryPolicy
from repro.constants import MIN_USABLE_VPS
from repro.core.cbg import cbg_centroid_fast, cbg_estimate
from repro.core.million_scale import geolocate_with_selection
from repro.faults import FaultInjector, FaultPlan

RATES = st.floats(min_value=0.0, max_value=0.5, allow_nan=False, allow_subnormal=False)
FAULT_SEEDS = st.sampled_from((3, 11))

CHAOS_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _faulty_client(world, plan):
    platform = AtlasPlatform(world, faults=FaultInjector(plan))
    policy = RetryPolicy(max_attempts=2, base_backoff_s=1.0)
    return ResilientClient(AtlasClient(platform), policy=policy)


def _vp_sample(world, count=12):
    probes = world.probes[:count]
    return [p.host_id for p in probes]


class TestCampaignsSurviveFaults:
    @CHAOS_SETTINGS
    @given(rate=RATES, seed=FAULT_SEEDS)
    def test_matrix_campaign_never_crashes_and_min_vps_holds(
        self, small_world, rate, seed
    ):
        client = _faulty_client(small_world, FaultPlan.at_rate(rate, seed=seed))
        probe_ids = _vp_sample(small_world)
        targets = [a.ip for a in small_world.anchors[:4]]
        matrix = client.ping_matrix(probe_ids, targets)
        assert matrix.shape == (len(probe_ids), len(targets))
        infos = [client.platform.probe_info(pid) for pid in probe_ids]
        vp_lats = np.array([info.location.lat for info in infos])
        vp_lons = np.array([info.location.lon for info in infos])
        for column in range(len(targets)):
            rtts = matrix[:, column]
            centroid = cbg_centroid_fast(vp_lats, vp_lons, rtts, min_vps=MIN_USABLE_VPS)
            answered = int((~np.isnan(rtts)).sum())
            if answered < MIN_USABLE_VPS:
                assert centroid is None
            if centroid is not None:
                assert answered >= MIN_USABLE_VPS
                assert -90.0 <= centroid[0] <= 90.0
                assert -180.0 <= centroid[1] <= 180.0

    @CHAOS_SETTINGS
    @given(rate=RATES, seed=FAULT_SEEDS)
    def test_exact_cbg_never_locates_from_too_few_vps(self, small_world, rate, seed):
        client = _faulty_client(small_world, FaultPlan.at_rate(rate, seed=seed))
        probe_ids = _vp_sample(small_world, count=8)
        infos = [client.platform.probe_info(pid) for pid in probe_ids]
        target_ip = small_world.anchors[0].ip
        rtts = client.ping_from(probe_ids, target_ip)
        result, region = cbg_estimate(
            target_ip, infos, rtts, min_constraints=MIN_USABLE_VPS
        )
        answered = sum(1 for rtt in rtts.values() if rtt is not None)
        if answered < MIN_USABLE_VPS:
            assert result.estimate is None
            assert region is None
        if result.estimate is not None:
            assert result.details["constraints"] >= MIN_USABLE_VPS

    @CHAOS_SETTINGS
    @given(rate=RATES, seed=FAULT_SEEDS)
    def test_million_scale_pipeline_never_crashes(self, small_world, rate, seed):
        client = _faulty_client(small_world, FaultPlan.at_rate(rate, seed=seed))
        probe_ids = _vp_sample(small_world)
        infos = [client.platform.probe_info(pid) for pid in probe_ids]
        target_ip = small_world.anchors[1].ip
        # Representative RTTs from a fair-weather read of the same world —
        # selection quality is not under test, survival is.
        rep_rtts = AtlasPlatform(small_world).ping_matrix(probe_ids, [target_ip])[:, 0]
        result = geolocate_with_selection(
            client, target_ip, infos, rep_rtts, k=8, min_vps=MIN_USABLE_VPS
        )
        assert result.target_ip == target_ip
        if result.estimate is not None:
            assert result.details["constraints"] >= MIN_USABLE_VPS


class TestMonotoneCoverage:
    @CHAOS_SETTINGS
    @given(rate=RATES, seed=FAULT_SEEDS)
    def test_coverage_non_increasing_in_rate(self, small_world, rate, seed):
        """Every cell lost at rate r/2 is also lost at rate r (nesting)."""
        probe_ids = _vp_sample(small_world)
        targets = [a.ip for a in small_world.anchors[:4]]
        matrices = {}
        for r in (rate / 2.0, rate):
            plan = FaultPlan(
                seed=seed, packet_loss_rate=r, probe_disconnect_rate=r / 2.0
            )
            platform = AtlasPlatform(small_world, faults=FaultInjector(plan))
            matrices[r] = platform.ping_matrix(probe_ids, targets)
        low, high = matrices[rate / 2.0], matrices[rate]
        # No cell answers at the higher rate but not at the lower one.
        assert not np.any(~np.isnan(high) & np.isnan(low))
        assert np.count_nonzero(~np.isnan(high)) <= np.count_nonzero(~np.isnan(low))

    @CHAOS_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_zero_rate_plan_is_fair_weather(self, small_world, seed):
        probe_ids = _vp_sample(small_world, count=6)
        targets = [a.ip for a in small_world.anchors[:2]]
        clean = AtlasPlatform(small_world).ping_matrix(probe_ids, targets)
        plan = FaultPlan.at_rate(0.0, seed=seed)
        faulty = AtlasPlatform(small_world, faults=FaultInjector(plan)).ping_matrix(
            probe_ids, targets
        )
        np.testing.assert_array_equal(clean, faulty)


class TestDegradedValuesAreSane:
    @CHAOS_SETTINGS
    @given(rate=RATES, seed=FAULT_SEEDS)
    def test_surviving_rtts_match_fair_weather(self, small_world, rate, seed):
        """Faults only *remove* answers; they never corrupt the RTTs that
        do come back."""
        probe_ids = _vp_sample(small_world)
        targets = [a.ip for a in small_world.anchors[:3]]
        clean = AtlasPlatform(small_world).ping_matrix(probe_ids, targets)
        plan = FaultPlan.at_rate(rate, seed=seed)
        faulty = AtlasPlatform(small_world, faults=FaultInjector(plan)).ping_matrix(
            probe_ids, targets
        )
        surviving = ~np.isnan(faulty)
        np.testing.assert_array_equal(faulty[surviving], clean[surviving])
