"""Golden determinism tests for observability (ISSUE 2 acceptance).

Three guarantees are pinned:

1. two same-seed observed runs emit *byte-identical* event streams (and
   metrics reports) — including under faults with a resilient client;
2. attaching an observer changes no computed result: matrices and
   geolocation estimates match the unobserved run exactly;
3. two same-seed CLI invocations with ``--metrics-out`` write
   byte-identical JSON report files.
"""

import numpy as np

from repro.atlas.client import AtlasClient
from repro.atlas.platform import AtlasPlatform
from repro.atlas.resilient import ResilientClient, RetryPolicy
from repro.core.million_scale import geolocate_with_selection, select_closest_vps
from repro.experiments.fig2 import run_fig2a
from repro.experiments.run import main as run_main
from repro.experiments.scenario import Scenario
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observer
from repro.obs.report import metrics_report_json
from repro.world.builder import build_world
from repro.world.config import WorldConfig

_PLAN = FaultPlan(
    seed=7,
    api_timeout_rate=0.2,
    api_server_error_rate=0.1,
    packet_loss_rate=0.05,
    probe_disconnect_rate=0.02,
)


def _observed_faulty_campaign():
    """One seeded faulty campaign; returns (observer, matrix)."""
    observer = Observer()
    world = build_world(WorldConfig.small())
    platform = AtlasPlatform(world, faults=FaultInjector(_PLAN), obs=observer)
    client = ResilientClient(
        AtlasClient(platform), policy=RetryPolicy(max_attempts=3, jitter_fraction=0.0)
    )
    probes = client.list_probes()[:25]
    targets = [probe.address for probe in client.list_probes(anchors_only=True)[:8]]
    matrix = client.ping_matrix([probe.probe_id for probe in probes], targets)
    client.traceroute_batch([probe.probe_id for probe in probes[:5]], targets[:3])
    return observer, matrix


class TestByteIdenticalStreams:
    def test_faulty_campaign_event_stream_is_byte_identical(self):
        first_obs, first_matrix = _observed_faulty_campaign()
        second_obs, second_matrix = _observed_faulty_campaign()
        first_stream = first_obs.events.to_jsonl()
        assert first_stream == second_obs.events.to_jsonl()
        assert len(first_stream) > 0 and len(first_obs.events) > 0
        assert metrics_report_json(first_obs) == metrics_report_json(second_obs)
        np.testing.assert_array_equal(first_matrix, second_matrix)

    def test_observed_scenario_report_is_byte_identical(self):
        def build_and_run():
            observer = Observer()
            scenario = Scenario.build(WorldConfig.small(), obs=observer)
            output = run_fig2a(scenario, trials=2)
            return observer, output

        first_obs, first_output = build_and_run()
        second_obs, second_output = build_and_run()
        assert first_obs.events.to_jsonl() == second_obs.events.to_jsonl()
        assert metrics_report_json(first_obs) == metrics_report_json(second_obs)
        assert first_output.measured == second_output.measured


class TestObserverChangesNothing:
    def test_matrix_and_results_match_unobserved_run(self):
        null_scenario = Scenario.build(WorldConfig.small())
        observed = Scenario.build(WorldConfig.small(), obs=Observer())

        np.testing.assert_array_equal(
            null_scenario.rtt_matrix(), observed.rtt_matrix()
        )

        rep_null, _, _ = null_scenario.representative_matrices()
        rep_obs, _, _ = observed.representative_matrices()
        np.testing.assert_array_equal(rep_null, rep_obs)

        # One full technique run produces an identical GeolocationResult.
        column = 0
        target_ip = null_scenario.target_ips[column]
        null_result = geolocate_with_selection(
            null_scenario.client, target_ip, null_scenario.vps, rep_null[:, column]
        )
        obs_result = geolocate_with_selection(
            observed.client, target_ip, observed.vps, rep_obs[:, column]
        )
        assert null_result.estimate == obs_result.estimate
        assert null_result.details == obs_result.details
        assert null_result.technique == obs_result.technique

    def test_faulty_run_matches_unobserved_faulty_run(self):
        def faulty_matrix(observer=None):
            kwargs = {} if observer is None else {"obs": observer}
            world = build_world(WorldConfig.small())
            platform = AtlasPlatform(world, faults=FaultInjector(_PLAN), **kwargs)
            client = ResilientClient(AtlasClient(platform))
            probes = client.list_probes()[:20]
            targets = [p.address for p in client.list_probes(anchors_only=True)[:5]]
            return client.ping_matrix([p.probe_id for p in probes], targets)

        np.testing.assert_array_equal(faulty_matrix(), faulty_matrix(Observer()))

    def test_selection_order_unchanged(self):
        rtts = np.array([9.0, np.nan, 3.0, 5.0, np.nan, 1.0])
        np.testing.assert_array_equal(
            select_closest_vps(rtts, 3), select_closest_vps(rtts, 3)
        )


class TestCliMetricsOut:
    def test_two_invocations_write_identical_reports(self, tmp_path, capsys):
        paths = [tmp_path / "first.json", tmp_path / "second.json"]
        for path in paths:
            code = run_main(
                [
                    "fig2a",
                    "--preset",
                    "small",
                    "--trials",
                    "2",
                    "--metrics-out",
                    str(path),
                ]
            )
            assert code == 0
        capsys.readouterr()
        first, second = (path.read_bytes() for path in paths)
        assert first == second
        assert b'"credits"' in first
