"""Tests for the latency engine: physical validity and scalar/bulk parity."""

import numpy as np
import pytest

from repro.constants import distance_to_min_rtt_ms
from repro.latency.speed import SOI_KM_PER_MS, km_per_ms


@pytest.fixture(scope="module")
def model(small_platform):
    return small_platform.latency


class TestSpeed:
    def test_km_per_ms_known(self):
        assert km_per_ms(1.0) == pytest.approx(299.792458)
        assert SOI_KM_PER_MS == pytest.approx(299.792458 * 2 / 3)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            km_per_ms(0.0)
        with pytest.raises(ValueError):
            km_per_ms(1.5)


class TestPing:
    def test_rtt_never_violates_speed_of_internet(self, small_world, model):
        """The foundational CBG assumption: RTT >= physical minimum."""
        for probe in small_world.probes[:60]:
            for anchor in small_world.anchors[:5]:
                observation = model.ping(probe, anchor)
                if observation.min_rtt_ms is None:
                    continue
                direct = probe.true_location.distance_km(anchor.true_location)
                assert observation.min_rtt_ms >= distance_to_min_rtt_ms(direct) - 1e-9

    def test_ping_deterministic(self, small_world, model):
        a = model.ping(small_world.probes[0], small_world.anchors[0], seq=4)
        b = model.ping(small_world.probes[0], small_world.anchors[0], seq=4)
        assert a == b

    def test_distinct_seq_distinct_jitter(self, small_world, model):
        a = model.ping(small_world.probes[0], small_world.anchors[0], seq=0)
        b = model.ping(small_world.probes[0], small_world.anchors[0], seq=1)
        assert a.rtts_ms != b.rtts_ms

    def test_unresponsive_target_times_out(self, small_world, model):
        from repro.world.hosts import HostKind

        silent = next(
            h
            for h in small_world.hosts
            if h.kind is HostKind.REPRESENTATIVE and not h.responsive
        )
        observation = model.ping(small_world.probes[0], silent)
        assert observation.min_rtt_ms is None
        assert not observation.responded

    def test_min_is_min_of_packets(self, small_world, model):
        observation = model.ping(small_world.probes[1], small_world.anchors[1], packets=5)
        received = [r for r in observation.rtts_ms if r is not None]
        assert observation.min_rtt_ms == min(received)

    def test_packets_must_be_positive(self, small_world, model):
        with pytest.raises(ValueError):
            model.ping(small_world.probes[0], small_world.anchors[0], packets=0)

    def test_last_mile_hurts(self, small_world, model):
        """Two co-located probes: the one with worse last mile sees higher base RTT."""
        from dataclasses import replace

        probe = small_world.probes[0]
        target = small_world.anchors[0]
        params = model.topology.params_for(probe)
        fat = replace(params, last_mile_ms=params.last_mile_ms + 10.0)
        base_thin = model.base_rtt_ms(params, model.topology.params_for(target))
        base_fat = model.base_rtt_ms(fat, model.topology.params_for(target))
        assert base_fat == pytest.approx(base_thin + 10.0)


class TestBulkParity:
    def test_bulk_matches_scalar(self, small_world, model):
        src_ids = np.array([p.host_id for p in small_world.probes[:150]])
        target = small_world.anchors[2]
        bulk = model.bulk_min_rtt(src_ids, target, seq=3)
        for row, probe in enumerate(small_world.probes[:150]):
            scalar = model.ping(probe, target, seq=3).min_rtt_ms
            if scalar is None:
                assert np.isnan(bulk[row])
            else:
                assert bulk[row] == pytest.approx(scalar, abs=1e-9)

    def test_unresponsive_bulk_all_nan(self, small_world, model):
        from repro.world.hosts import HostKind

        silent = next(
            h
            for h in small_world.hosts
            if h.kind is HostKind.REPRESENTATIVE and not h.responsive
        )
        src_ids = np.array([p.host_id for p in small_world.probes[:10]])
        assert np.isnan(model.bulk_min_rtt(src_ids, silent)).all()

    def test_matrix_shape(self, small_world, model):
        src_ids = [p.host_id for p in small_world.probes[:20]]
        targets = small_world.anchors[:4]
        matrix = model.min_rtt_matrix(src_ids, targets)
        assert matrix.shape == (20, 4)


class TestTraceroute:
    def test_destination_rtt_matches_ping_base(self, small_world, model):
        """The traceroute's destination hop uses the ping delay model."""
        probe, anchor = small_world.probes[0], small_world.anchors[0]
        trace = model.traceroute(probe, anchor, seq=9)
        ping = model.ping(probe, anchor, packets=1, seq=9)
        assert trace.reached
        assert trace.destination_rtt_ms == pytest.approx(ping.rtts_ms[0])

    def test_hops_end_with_destination(self, small_world, model):
        probe, anchor = small_world.probes[1], small_world.anchors[1]
        trace = model.traceroute(probe, anchor)
        assert trace.hops[-1].ip == anchor.ip

    def test_unresponsive_destination_not_reached(self, small_world, model):
        from repro.world.hosts import HostKind

        silent = next(
            h
            for h in small_world.hosts
            if h.kind is HostKind.REPRESENTATIVE and not h.responsive
        )
        trace = model.traceroute(small_world.probes[0], silent)
        assert not trace.reached
        assert trace.destination_rtt_ms is None
        assert all(hop.ip != silent.ip for hop in trace.hops)

    def test_rtt_to_finds_hop(self, small_world, model):
        probe, anchor = small_world.probes[2], small_world.anchors[2]
        trace = model.traceroute(probe, anchor)
        hop = trace.hops[1]
        assert trace.rtt_to(hop.ip) == hop.rtt_ms
        assert trace.rtt_to("203.0.113.1") is None

    def test_deterministic(self, small_world, model):
        a = model.traceroute(small_world.probes[0], small_world.anchors[0], seq=2)
        b = model.traceroute(small_world.probes[0], small_world.anchors[0], seq=2)
        assert a == b

    def test_hop_rtts_positive(self, small_world, model):
        for probe in small_world.probes[:20]:
            trace = model.traceroute(probe, small_world.anchors[0])
            assert all(hop.rtt_ms > 0 for hop in trace.hops)


class TestFiberFactor:
    def test_symmetric_and_bounded(self, small_world, model):
        config = small_world.config
        for a, b in [(1, 2), (10, 500), (7, 7)]:
            factor = model.fiber_factor(a, b)
            assert config.fiber_factor_min <= factor <= config.fiber_factor_max
            assert factor == model.fiber_factor(b, a)
