"""Tests for constraint circles and the CBG intersection region."""

import numpy as np
import pytest

from repro.errors import EmptyRegionError
from repro.geo.coords import GeoPoint, destination
from repro.geo.regions import (
    Circle,
    cbg_region,
    region_contains_bulk,
)


class TestCircle:
    def test_contains_center(self):
        circle = Circle(GeoPoint(10, 10), 100.0)
        assert circle.contains(GeoPoint(10, 10))

    def test_contains_boundary(self):
        center = GeoPoint(0, 0)
        circle = Circle(center, 100.0)
        edge = destination(center, 45.0, 99.9)
        outside = destination(center, 45.0, 101.0)
        assert circle.contains(edge)
        assert not circle.contains(outside)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Circle(GeoPoint(0, 0), -1.0)

    def test_area_grows_with_radius(self):
        small = Circle(GeoPoint(0, 0), 10.0).area_km2()
        large = Circle(GeoPoint(0, 0), 100.0).area_km2()
        assert large > small > 0
        # Small caps are nearly flat disks.
        assert small == pytest.approx(np.pi * 100.0, rel=0.01)


class TestCbgRegion:
    def test_single_circle_centroid_is_center(self):
        center = GeoPoint(48.0, 2.0)
        region = cbg_region([Circle(center, 200.0)])
        assert region.centroid.distance_km(center) < 10.0

    def test_requires_circles(self):
        with pytest.raises(ValueError):
            cbg_region([])

    def test_two_overlapping_circles_analytic(self):
        # Two circles of radius 300 km whose centers are 400 km apart:
        # the lens is centred on the midpoint of the segment.
        a = GeoPoint(0.0, 0.0)
        b = destination(a, 90.0, 400.0)
        region = cbg_region([Circle(a, 300.0), Circle(b, 300.0)])
        expected_mid = destination(a, 90.0, 200.0)
        assert region.centroid.distance_km(expected_mid) < 40.0
        assert region.contains(region.centroid, tolerance_km=1.0)

    def test_disjoint_circles_raise(self):
        a = GeoPoint(0.0, 0.0)
        b = destination(a, 90.0, 3000.0)
        with pytest.raises(EmptyRegionError):
            cbg_region([Circle(a, 100.0), Circle(b, 100.0)])

    def test_contained_circle_wins(self):
        # A tiny circle inside a huge one: region ~ the tiny circle.
        tiny_center = GeoPoint(10.0, 10.0)
        region = cbg_region(
            [Circle(tiny_center, 50.0), Circle(GeoPoint(12.0, 12.0), 5000.0)]
        )
        assert region.centroid.distance_km(tiny_center) < 20.0

    def test_sliver_region_found_by_repair(self):
        # Two circles overlapping in a thin lens: grid sampling inside the
        # tightest circle may miss it; the repair step must find it.
        a = GeoPoint(0.0, 0.0)
        b = destination(a, 90.0, 995.0)
        region = cbg_region([Circle(a, 500.0), Circle(b, 500.0)])
        assert region.contains(region.centroid, tolerance_km=5.0)

    def test_huge_circles_do_not_constrain(self):
        center = GeoPoint(5.0, 5.0)
        region = cbg_region(
            [Circle(center, 100.0), Circle(GeoPoint(-40.0, 100.0), 25000.0)]
        )
        assert region.centroid.distance_km(center) < 10.0

    def test_centroid_inside_all_circles(self):
        circles = [
            Circle(GeoPoint(0, 0), 800.0),
            Circle(GeoPoint(3, 3), 700.0),
            Circle(GeoPoint(-2, 4), 900.0),
        ]
        region = cbg_region(circles)
        for circle in circles:
            assert circle.contains(region.centroid, tolerance_km=5.0)

    def test_extent_reasonable(self):
        region = cbg_region([Circle(GeoPoint(0, 0), 100.0)])
        assert 0 < region.extent_km() <= 210.0


class TestRegionContainsBulk:
    def test_matches_scalar_contains(self):
        circles = [Circle(GeoPoint(0, 0), 500.0), Circle(GeoPoint(2, 2), 600.0)]
        region = cbg_region(circles)
        lats = np.array([0.0, 1.0, 30.0, -1.0])
        lons = np.array([0.0, 1.0, 30.0, 2.0])
        bulk = region_contains_bulk(region, lats, lons)
        for index in range(4):
            point = GeoPoint(float(lats[index]), float(lons[index]))
            assert bulk[index] == region.contains(point)
