"""Tests for world generation: geography, platform hosts, determinism."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.world import CONTINENTS, HostKind, WorldConfig, build_world
from repro.world.cities import CityIndex


class TestConfig:
    def test_paper_counts(self):
        config = WorldConfig.paper()
        assert config.total_anchors == 723 + config.bad_anchors

    def test_validation_catches_bad_shares(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(probe_shares={"EU": 0.5})

    def test_validation_catches_inverted_mislocation(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(mislocation_min_km=100.0, mislocation_max_km=10.0)

    def test_validation_catches_hosting_overflow(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(website_local_share=0.5, website_cloud_share=0.6)


class TestGeography:
    def test_city_counts(self, small_world):
        config = small_world.config
        assert len(small_world.cities) == sum(config.cities_per_continent.values())

    def test_cities_inside_continent_boxes(self, small_world):
        for city in small_world.cities:
            continent = CONTINENTS[city.continent]
            assert continent.contains(city.location)

    def test_city_ids_dense(self, small_world):
        for index, city in enumerate(small_world.cities):
            assert city.city_id == index

    def test_hubs_are_populous(self, small_world):
        populations = [small_world.city(cid).population for cid in small_world.hub_city_ids]
        median_all = np.median([c.population for c in small_world.cities])
        assert np.median(populations) > median_all

    def test_city_index_nearest(self, small_world):
        city = small_world.cities[5]
        index = CityIndex(small_world.cities)
        nearest = index.nearest(city.location)
        assert nearest is not None
        assert nearest.city_id == city.city_id

    def test_zipcodes_stable_within_cell(self, small_world):
        city = small_world.cities[0]
        assert city.zipcode_at(city.location) == city.zipcode_at(city.location)

    def test_zipcodes_differ_across_city(self, small_world):
        from repro.geo.coords import destination

        city = small_world.cities[0]
        far = destination(city.location, 90.0, 3 * city.zipcode_cell_km)
        assert city.zipcode_at(city.location) != city.zipcode_at(far)


class TestPlatformHosts:
    def test_anchor_count(self, small_world):
        config = small_world.config
        assert len(small_world.anchors) == config.total_anchors

    def test_probe_count(self, small_world):
        assert len(small_world.probes) == small_world.config.probes_total

    def test_bad_host_counts(self, small_world):
        config = small_world.config
        assert sum(1 for a in small_world.anchors if a.mislocated) == config.bad_anchors
        assert sum(1 for p in small_world.probes if p.mislocated) == config.bad_probes

    def test_mislocated_hosts_really_far(self, small_world):
        for host in small_world.anchors + small_world.probes:
            if host.mislocated:
                assert host.geolocation_error_km >= small_world.config.mislocation_min_km * 0.9

    def test_anchor_continent_quotas(self, small_world):
        config = small_world.config
        good = [a for a in small_world.anchors if not a.mislocated]
        by_continent = {}
        for anchor in good:
            code = small_world.city_of_host(anchor).continent
            by_continent[code] = by_continent.get(code, 0) + 1
        assert by_continent == dict(config.anchor_quotas)

    def test_unique_ips(self, small_world):
        ips = [h.ip for h in small_world.hosts]
        assert len(ips) == len(set(ips))

    def test_representatives_share_anchor_prefix(self, small_world):
        from repro.net.addressing import same_prefix24

        reps = small_world.hosts_of_kind(HostKind.REPRESENTATIVE)
        anchors_by_prefix = {}
        for anchor in small_world.anchors:
            anchors_by_prefix[anchor.ip.rsplit(".", 1)[0]] = anchor
        for rep in reps[:50]:
            anchor = anchors_by_prefix.get(rep.ip.rsplit(".", 1)[0])
            assert anchor is not None
            assert same_prefix24(rep.ip, anchor.ip)
            # Representatives are physically near their anchor.
            assert rep.true_location.distance_km(anchor.true_location) < 30.0

    def test_hitlist_covers_most_anchor_prefixes(self, small_world):
        covered = 0
        for anchor in small_world.anchors:
            from repro.net.addressing import prefix24_of

            if small_world.hitlist.entries_for(prefix24_of(anchor.ip)):
                covered += 1
        # All but the deliberately underpopulated prefixes have entries.
        assert covered >= len(small_world.anchors) - small_world.config.underpopulated_prefixes * 2

    def test_host_lookup_by_ip(self, small_world):
        anchor = small_world.anchors[0]
        assert small_world.host(anchor.ip) is anchor

    def test_unknown_ip_raises(self, small_world):
        from repro.errors import UnknownHostError

        with pytest.raises(UnknownHostError):
            small_world.host("203.0.113.7")


class TestDeterminism:
    def test_same_seed_same_world(self):
        a = build_world(WorldConfig.small(seed=123))
        b = build_world(WorldConfig.small(seed=123))
        assert [h.ip for h in a.hosts] == [h.ip for h in b.hosts]
        assert [h.true_location for h in a.hosts[:50]] == [
            h.true_location for h in b.hosts[:50]
        ]

    def test_different_seed_different_world(self):
        a = build_world(WorldConfig.small(seed=123))
        b = build_world(WorldConfig.small(seed=124))
        assert [h.ip for h in a.hosts] != [h.ip for h in b.hosts] or [
            h.true_location for h in a.hosts[:20]
        ] != [h.true_location for h in b.hosts[:20]]


class TestASFabric:
    def test_as_count(self, small_world):
        assert len(small_world.ases) == small_world.config.total_ases

    def test_probe_as_mix_dominated_by_access(self, small_world):
        counts = {}
        for probe in small_world.probes:
            kind = small_world.as_of_host(probe).caida_type
            counts[kind] = counts.get(kind, 0) + 1
        assert counts["Access"] / len(small_world.probes) > 0.6

    def test_every_host_as_exists(self, small_world):
        for host in small_world.hosts[:200]:
            assert host.asn in small_world.ases

    def test_bgp_covers_host_addresses(self, small_world):
        for host in list(small_world.anchors)[:30]:
            assert small_world.bgp.origin_asn(host.ip) == host.asn
