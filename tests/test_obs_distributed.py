"""Golden parity: observed parallel campaigns are byte-identical to serial.

The acceptance contract of the distributed-capture layer: running a fully
observed campaign under ``REPRO_WORKERS=N`` must produce the same metrics
report, the same event JSONL, the same span tree, and the same geolocation
results as running it serially — byte for byte, not just statistically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.pool import _fork_context
from repro.experiments import fig2, street_runner
from repro.experiments.scenario import get_scenario
from repro.obs import Observer
from repro.obs.export import chrome_trace_json, collapsed_stacks
from repro.obs.report import metrics_report_json


pytestmark = pytest.mark.skipif(
    _fork_context() is None, reason="fork unavailable"  # pragma: no cover
)


def _observed_street_run(monkeypatch, workers):
    if workers is None:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
    observer = Observer()
    scenario = get_scenario("small", obs=observer)
    street_runner._CACHE.clear()
    try:
        records = street_runner.street_level_records(scenario, max_targets=6)
    finally:
        street_runner._CACHE.clear()
    return observer, records


class TestStreetCampaignGolden:
    @pytest.fixture(scope="class")
    def runs(self):
        # Class-scoped: the serial and 4-worker observed campaigns are the
        # expensive part; every assertion below reuses the same pair.
        with pytest.MonkeyPatch.context() as monkeypatch:
            serial_obs, serial_records = _observed_street_run(monkeypatch, None)
            parallel_obs, parallel_records = _observed_street_run(monkeypatch, 4)
        return serial_obs, serial_records, parallel_obs, parallel_records

    def test_metrics_report_byte_identical(self, runs):
        serial_obs, _, parallel_obs, _ = runs
        assert metrics_report_json(parallel_obs) == metrics_report_json(serial_obs)

    def test_event_jsonl_byte_identical(self, runs):
        serial_obs, _, parallel_obs, _ = runs
        serial_jsonl = serial_obs.events.to_jsonl()
        assert parallel_obs.events.to_jsonl() == serial_jsonl
        assert len(serial_obs.events) > 0

    def test_span_tree_and_exports_byte_identical(self, runs):
        serial_obs, _, parallel_obs, _ = runs
        assert parallel_obs.span_tree() == serial_obs.span_tree()
        assert chrome_trace_json(parallel_obs) == chrome_trace_json(serial_obs)
        assert collapsed_stacks(parallel_obs) == collapsed_stacks(serial_obs)

    def test_geolocation_results_identical(self, runs):
        _, serial_records, _, parallel_records = runs
        assert len(serial_records) == len(parallel_records) == 6
        for a, b in zip(serial_records, parallel_records):
            assert a.target.host_id == b.target.host_id
            np.testing.assert_array_equal(a.street_error_km, b.street_error_km)
            np.testing.assert_array_equal(a.cbg_error_km, b.cbg_error_km)
            np.testing.assert_array_equal(a.oracle_error_km, b.oracle_error_km)
            assert a.landmark_distances_km == b.landmark_distances_km
            assert a.landmark_measured_km == b.landmark_measured_km
            assert a.result.estimate == b.result.estimate
            assert a.result.traceroutes_run == b.result.traceroutes_run

    def test_campaign_actually_observed(self, runs):
        serial_obs, _, _, _ = runs
        counters = serial_obs.metrics.counters()
        assert counters.get("street_level.targets") == 6
        assert counters.get("street_level.traceroutes", 0) > 0


class TestFig2Golden:
    def test_observed_fig2a_byte_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        serial_obs = Observer()
        serial_scenario = get_scenario("small", obs=serial_obs)
        serial = fig2.run_fig2a(serial_scenario, sizes=(10, 40), trials=3)

        monkeypatch.setenv("REPRO_WORKERS", "4")
        parallel_obs = Observer()
        parallel_scenario = get_scenario("small", obs=parallel_obs)
        parallel = fig2.run_fig2a(parallel_scenario, sizes=(10, 40), trials=3)

        assert parallel.series == serial.series
        assert parallel.measured == serial.measured
        assert metrics_report_json(parallel_obs) == metrics_report_json(serial_obs)
        assert parallel_obs.events.to_jsonl() == serial_obs.events.to_jsonl()
        assert parallel_obs.span_tree() == serial_obs.span_tree()


class TestWorkaroundRemoved:
    def test_observed_street_campaign_fans_out(self, monkeypatch):
        """The old serial-when-observed gate must be gone: an observed
        campaign with REPRO_WORKERS=2 goes through the snapshot path."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        observer = Observer()
        scenario = get_scenario("small", obs=observer)

        absorbed = []
        original_absorb = observer.absorb

        def spy(snapshot):
            absorbed.append(snapshot.item_count)
            return original_absorb(snapshot)

        observer.absorb = spy
        street_runner._CACHE.clear()
        try:
            street_runner.street_level_records(scenario, max_targets=4)
        finally:
            street_runner._CACHE.clear()
        # One absorb for the campaign, carrying all four per-target captures.
        assert absorbed == [4]
