"""Edge-case tests across small modules: errors, outputs, fallbacks."""

import numpy as np
import pytest

from repro import errors
from repro.experiments.base import ExperimentOutput


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "ConfigurationError",
            "MeasurementError",
            "CreditExhaustedError",
            "RateLimitError",
            "UnknownHostError",
            "GeolocationError",
            "EmptyRegionError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_specific_parents(self):
        assert issubclass(errors.CreditExhaustedError, errors.MeasurementError)
        assert issubclass(errors.EmptyRegionError, errors.GeolocationError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.EmptyRegionError("no region")


class TestExperimentOutput:
    def test_render_without_expected(self):
        output = ExperimentOutput("x1", "title", "table-body")
        text = output.render()
        assert "x1" in text and "table-body" in text
        assert "paper vs measured" not in text

    def test_render_with_expected(self):
        output = ExperimentOutput(
            "x2", "title", "body", measured={"a": 1.234}, expected={"a": 1.0}
        )
        text = output.render()
        assert "paper=1.0" in text
        assert "measured=1.23" in text

    def test_render_handles_missing_measured(self):
        output = ExperimentOutput("x3", "t", "b", expected={"gone": 5.0})
        assert "measured=None" in output.render()


class TestStreetLevelFallbacks:
    def test_tier1_soi_fallback(self, small_scenario):
        """Impossible 4/9c constraints must fall back to 2/3c."""
        from repro.atlas.platform import ProbeInfo
        from repro.constants import SOI_FRACTION_CBG, distance_to_min_rtt_ms
        from repro.core.street_level import StreetLevelPipeline
        from repro.geo.coords import GeoPoint, destination

        pipeline = StreetLevelPipeline(small_scenario.client, small_scenario.world)
        # Two VPs 2000 km apart whose RTTs admit a 2/3c intersection but
        # not a 4/9c one: radius at 2/3c ~ 1100 km each (overlap), at 4/9c
        # ~ 733 km each (no overlap).
        a = GeoPoint(10.0, 10.0)
        b = destination(a, 90.0, 2000.0)
        rtt = distance_to_min_rtt_ms(1100.0, SOI_FRACTION_CBG)
        vps = [
            ProbeInfo(1, "10.0.0.1", a, 65001, True, 300.0),
            ProbeInfo(2, "10.0.0.2", b, 65002, True, 300.0),
        ]
        result, region, used_fallback = pipeline._tier1(
            "10.9.9.9", vps, {1: rtt, 2: rtt}
        )
        assert used_fallback
        assert result.estimate is not None
        assert region is not None

    def test_geolocate_raises_without_answers(self, small_scenario):
        from repro.core.street_level import StreetLevelPipeline
        from repro.errors import GeolocationError

        pipeline = StreetLevelPipeline(small_scenario.client, small_scenario.world)
        anchors = small_scenario.anchor_vp_infos()
        with pytest.raises(GeolocationError):
            pipeline.geolocate(
                "203.0.113.1", anchors, {vp.probe_id: None for vp in anchors}
            )


class TestWorldQueries:
    def test_pois_near_radius(self, small_world):
        anchor = small_world.anchors[0]
        nearby = small_world.pois_near(anchor.true_location, 10.0)
        for poi in nearby:
            assert poi.location.distance_km(anchor.true_location) <= 10.0
        wider = small_world.pois_near(anchor.true_location, 30.0)
        assert len(wider) >= len(nearby)

    def test_register_host_guards(self, small_world):
        from repro.world.hosts import Host, HostKind
        from repro.geo.coords import GeoPoint

        existing = small_world.hosts[0]
        clone = Host(
            host_id=small_world.next_host_id(),
            ip=existing.ip,  # duplicate address
            kind=HostKind.WEBSERVER,
            true_location=GeoPoint(0, 0),
            recorded_location=GeoPoint(0, 0),
            city_id=0,
            asn=existing.asn,
            last_mile_ms=0.1,
        )
        with pytest.raises(ValueError):
            small_world.register_host(clone)

    def test_continent_of_ip(self, small_world):
        anchor = small_world.anchors[0]
        assert small_world.continent_of_ip(anchor.ip) in (
            "EU",
            "NA",
            "AS",
            "SA",
            "OC",
            "AF",
        )

    def test_negative_last_mile_rejected(self):
        from repro.world.hosts import Host, HostKind
        from repro.geo.coords import GeoPoint

        with pytest.raises(ValueError):
            Host(
                host_id=0,
                ip="10.0.0.1",
                kind=HostKind.PROBE,
                true_location=GeoPoint(0, 0),
                recorded_location=GeoPoint(0, 0),
                city_id=0,
                asn=1,
                last_mile_ms=-1.0,
            )


class TestResultsType:
    def test_error_km_none_without_estimate(self):
        from repro.core.results import GeolocationResult
        from repro.geo.coords import GeoPoint

        result = GeolocationResult("10.0.0.1", None, "cbg")
        assert result.error_km(GeoPoint(0, 0)) is None

    def test_details_default_empty(self):
        from repro.core.results import GeolocationResult

        assert GeolocationResult("10.0.0.1", None, "cbg").details == {}
