"""The operational telemetry plane: sketches, rates, flights, exporters.

Property suites mirror ``test_obs_snapshot.py`` on the deterministic
side: merging live sketches/snapshots must be associative and
order-independent, and every sketch quantile must stay within the
documented relative-error bound over fuzzed latency distributions. The
exporter tests pin the Prometheus exposition grammar, the JSON scrape
schema, and the run-dir integration (live artifacts land beside — never
inside — the deterministic ones).
"""

from __future__ import annotations

import json
import math
import pickle

import numpy as np
import pytest

from repro.obs import Histogram, MetricsRegistry, Observer
from repro.obs.live import (
    NULL_LIVE,
    FlightRecord,
    FlightRecorder,
    LatencySketch,
    LiveSnapshot,
    LiveTelemetry,
    NullLive,
    RollingCounter,
    SloPolicy,
    SloStatus,
    merge_live_snapshots,
)
from repro.obs.prom import (
    SCRAPE_SCHEMA,
    append_scrape,
    prometheus_text,
    render_dashboard,
    scrape_snapshot,
    write_live_dir,
)


class _FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _fuzzed_distributions(count: int = 8):
    """Fuzzed latency-ish samples spanning several shapes and scales."""
    rng = np.random.default_rng(20260808)
    for index in range(count):
        shape = index % 4
        n = int(rng.integers(50, 2000))
        if shape == 0:
            values = rng.lognormal(mean=-7.0 + index * 0.5, sigma=1.2, size=n)
        elif shape == 1:
            values = rng.uniform(1e-5, 0.5, size=n)
        elif shape == 2:
            values = rng.exponential(scale=10.0 ** -int(rng.integers(1, 5)), size=n)
        else:  # bimodal: fast memo hits + slow kernel solves
            fast = rng.normal(2e-5, 5e-6, size=n // 2)
            slow = rng.normal(4e-2, 1e-2, size=n - n // 2)
            values = np.abs(np.concatenate([fast, slow])) + 1e-7
        yield np.clip(values, 1.1e-6, 3599.0)


class TestLatencySketch:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LatencySketch(relative_error=0.0)
        with pytest.raises(ValueError):
            LatencySketch(relative_error=1.5)
        with pytest.raises(ValueError):
            LatencySketch(min_value=2.0, max_value=1.0)

    def test_empty_sketch(self):
        sketch = LatencySketch()
        assert math.isnan(sketch.quantile(0.5))
        assert math.isnan(sketch.mean)
        assert sketch.fraction_over(0.1) == 0.0
        assert sketch.count == 0
        assert sketch.as_dict()["p99"] is None

    def test_quantile_range_is_validated(self):
        sketch = LatencySketch()
        sketch.add(0.5)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)

    def test_exact_bookkeeping(self):
        sketch = LatencySketch()
        sketch.add(0.010)
        sketch.add(0.020, count=3)
        assert sketch.count == 4
        assert sketch.total == pytest.approx(0.010 + 3 * 0.020)
        assert sketch.mean == pytest.approx(sketch.total / 4)
        assert sketch.min_seen == 0.010
        assert sketch.max_seen == 0.020

    def test_add_many_matches_scalar_adds(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(-6, 1.0, 500)
        scalar, vector = LatencySketch(), LatencySketch()
        for value in values:
            scalar.add(float(value))
        vector.add_many(values)
        assert np.array_equal(scalar.bins, vector.bins)
        assert scalar.count == vector.count
        assert scalar.total == pytest.approx(vector.total)
        assert scalar.overflow == vector.overflow

    def test_relative_error_bound_over_fuzzed_distributions(self):
        """The documented contract: any quantile of any in-range stream is
        within ``relative_error`` of the exact sample quantile."""
        for values in _fuzzed_distributions():
            sketch = LatencySketch(relative_error=0.01)
            sketch.add_many(values)
            ordered = np.sort(values)
            for q in (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0):
                exact = float(ordered[max(0, math.ceil(q * len(ordered)) - 1)])
                estimate = sketch.quantile(q)
                assert abs(estimate - exact) <= 0.01 * exact + 1e-12, (
                    f"q={q}: estimate {estimate} vs exact {exact}"
                )

    def test_overflow_and_underflow_are_counted_not_lost(self):
        sketch = LatencySketch(min_value=1e-3, max_value=1.0)
        sketch.add(1e-6)  # underflow
        sketch.add(0.5)
        sketch.add(100.0)  # overflow
        assert sketch.count == 3
        assert sketch.overflow == 1
        assert sketch.quantile(0.01) == pytest.approx(1e-3)
        assert sketch.quantile(1.0) == pytest.approx(1.0)

    def test_fraction_over(self):
        sketch = LatencySketch()
        sketch.add_many([0.001] * 90 + [0.1] * 10)
        assert sketch.fraction_over(0.01) == pytest.approx(0.10)
        assert sketch.fraction_over(10.0) == 0.0

    def test_percentile_is_quantile_alias(self):
        sketch = LatencySketch()
        sketch.add_many(np.linspace(0.001, 0.1, 100))
        assert sketch.percentile(95) == sketch.quantile(0.95)

    def test_pickle_roundtrip_dense_and_sparse(self):
        sparse = LatencySketch()
        sparse.add(0.01)
        rng = np.random.default_rng(3)
        dense = LatencySketch()
        dense.add_many(rng.uniform(1e-5, 100.0, 20000))
        for sketch in (sparse, dense):
            clone = pickle.loads(pickle.dumps(sketch))
            assert np.array_equal(clone.bins, sketch.bins)
            assert clone.count == sketch.count
            assert clone.quantile(0.99) == sketch.quantile(0.99)
        # The one-item worker capture pickles small.
        assert len(pickle.dumps(sparse)) < len(pickle.dumps(dense))


class TestSketchMerge:
    def test_merge_equals_union_stream(self):
        rng = np.random.default_rng(11)
        a_values = rng.lognormal(-6, 1.0, 400)
        b_values = rng.exponential(0.01, 300)
        union = LatencySketch()
        union.add_many(np.concatenate([a_values, b_values]))
        a, b = LatencySketch(), LatencySketch()
        a.add_many(a_values)
        b.add_many(b_values)
        merged = a.copy().merge(b)
        assert np.array_equal(merged.bins, union.bins)
        assert merged.count == union.count
        assert merged.quantile(0.5) == union.quantile(0.5)
        assert merged.quantile(0.99) == union.quantile(0.99)
        assert merged.total == pytest.approx(union.total)

    def test_merge_is_associative_and_order_independent(self):
        """Mirrors the ObsSnapshot merge property suite: any grouping and
        any permutation of worker sketches yields identical bins (and so
        identical quantile answers)."""
        rng = np.random.default_rng(13)
        parts = []
        for _ in range(5):
            sketch = LatencySketch()
            sketch.add_many(rng.lognormal(-6, 1.5, int(rng.integers(10, 200))))
            parts.append(sketch)

        def fold(sketches):
            out = LatencySketch()
            for sketch in sketches:
                out.merge(sketch)
            return out

        left = fold(parts)
        # Right-associated grouping.
        right = parts[-1].copy()
        for sketch in reversed(parts[:-1]):
            merged = sketch.copy()
            merged.merge(right)
            right = merged
        assert np.array_equal(left.bins, right.bins)
        assert left.count == right.count
        assert left.total == pytest.approx(right.total)
        for permutation_seed in range(4):
            order = np.random.default_rng(permutation_seed).permutation(len(parts))
            shuffled = fold([parts[i] for i in order])
            assert np.array_equal(shuffled.bins, left.bins)
            assert shuffled.quantile(0.95) == left.quantile(0.95)

    def test_incompatible_parameters_refuse_to_merge(self):
        coarse = LatencySketch(relative_error=0.05)
        fine = LatencySketch(relative_error=0.01)
        with pytest.raises(ValueError):
            fine.merge(coarse)


class TestRollingCounter:
    def test_rate_over_window(self):
        clock = _FakeClock()
        counter = RollingCounter(window_s=10.0, slots=10, clock=clock)
        for _ in range(30):
            counter.add()
        assert counter.in_window() == 30
        assert counter.rate() == pytest.approx(3.0)

    def test_old_slots_expire(self):
        clock = _FakeClock()
        counter = RollingCounter(window_s=10.0, slots=10, clock=clock)
        counter.add(10)
        clock.now = 5.0
        counter.add(4)
        assert counter.in_window() == 14
        clock.now = 10.5  # the first slot (t=0) has rolled off
        assert counter.in_window() == 4
        clock.now = 100.0  # everything expired
        assert counter.in_window() == 0
        assert counter.total == 14  # cumulative total survives

    def test_validation(self):
        with pytest.raises(ValueError):
            RollingCounter(window_s=0.0)
        with pytest.raises(ValueError):
            RollingCounter(slots=0)


class TestFlightRecorder:
    def _record(self, index: int) -> FlightRecord:
        return FlightRecord(
            request_id=index,
            tenant="alpha",
            target=f"10.0.0.{index}",
            outcome="ok",
            stages=(("queue", 0.001), ("kernel", 0.002)),
        )

    def test_ring_keeps_most_recent(self):
        recorder = FlightRecorder(capacity=4)
        for index in range(10):
            recorder.record(self._record(index))
        assert len(recorder) == 4
        assert recorder.recorded == 10
        assert [record.request_id for record in recorder.records()] == [6, 7, 8, 9]

    def test_dump_document_schema(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(self._record(1))
        document = recorder.dump("demand")
        assert document["schema"] == "flight-recorder-v1"
        assert document["trigger"] == "demand"
        assert document["recorded_total"] == 1
        assert document["buffered"] == 1
        (entry,) = document["records"]
        assert entry["tenant"] == "alpha"
        assert entry["stages"] == {"queue": 0.001, "kernel": 0.002}
        json.dumps(document)  # JSON-ready as promised

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSlo:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SloPolicy("", 0.1)
        with pytest.raises(ValueError):
            SloPolicy("a", 0.0)
        with pytest.raises(ValueError):
            SloPolicy("a", 0.1, error_budget=0.0)

    def test_burn_rate_accounting(self):
        policy = SloPolicy("alpha", latency_target_s=0.1, error_budget=0.01)
        status = SloStatus(policy=policy, requests=1000, slow=5, refused=5)
        assert status.bad == 10
        assert status.bad_fraction == pytest.approx(0.01)
        assert status.burn_rate == pytest.approx(1.0)
        assert status.compliant
        burning = SloStatus(policy=policy, requests=1000, slow=50, refused=0)
        assert burning.burn_rate == pytest.approx(5.0)
        assert not burning.compliant
        assert burning.budget_remaining == 0.0
        empty = SloStatus(policy=policy, requests=0, slow=0, refused=0)
        assert empty.compliant and empty.bad_fraction == 0.0

    def test_evaluated_from_live_plane(self):
        live = LiveTelemetry()
        live.set_slo(
            SloPolicy("alpha", latency_target_s=0.01, error_budget=0.1),
            "serve.tenant.alpha.latency_s",
            "serve.tenant.alpha.refusals",
        )
        live.observe_many(
            "serve.tenant.alpha.latency_s", [0.001] * 95 + [0.5] * 5
        )
        live.count("serve.tenant.alpha.refusals", 10)
        (status,) = live.slo_statuses()
        assert status.requests == 110
        assert status.slow == 5
        assert status.refused == 10
        assert not status.compliant  # 15/110 > 10% budget
        # Re-registering the same name replaces, not duplicates.
        live.set_slo(
            SloPolicy("alpha", latency_target_s=1.0, error_budget=0.5),
            "serve.tenant.alpha.latency_s",
            "serve.tenant.alpha.refusals",
        )
        (status,) = live.slo_statuses()
        assert status.compliant


class TestLiveTelemetry:
    def test_verbs_and_views(self):
        clock = _FakeClock()
        live = LiveTelemetry(window_s=10.0, clock=clock)
        assert live.enabled
        live.count("serve.requests", 5)
        live.observe("serve.latency_s", 0.01, count=2)
        live.observe_many("serve.latency_s", [0.02, 0.03])
        live.gauge("serve.queue_depth", 7)
        assert live.counter("serve.requests") == 5
        assert live.counter("missing") == 0
        assert live.rate("serve.requests") == pytest.approx(0.5)
        assert live.rate("missing") == 0.0
        assert live.gauge_value("serve.queue_depth") == 7.0
        assert live.sketch("serve.latency_s").count == 4
        assert set(live.counters()) == {"serve.requests"}
        assert set(live.rates()) == {"serve.requests"}
        assert set(live.gauges()) == {"serve.queue_depth"}
        assert set(live.sketches()) == {"serve.latency_s"}

    def test_snapshot_absorb_roundtrip(self):
        worker = LiveTelemetry()
        worker.count("exec.items", 3)
        worker.observe_many("exec.item_s", [0.1, 0.2, 0.3])
        worker.gauge("serve.queue_depth", 4)
        parent = LiveTelemetry()
        parent.count("exec.items", 1)
        parent.observe("exec.item_s", 0.4)
        parent.gauge("serve.queue_depth", 2)
        parent.absorb(worker.snapshot())
        assert parent.counter("exec.items") == 4
        assert parent.sketch("exec.item_s").count == 4
        assert parent.gauge_value("serve.queue_depth") == 4.0  # max wins

    def test_merge_live_snapshots_is_order_independent(self):
        snapshots = []
        for index in range(4):
            live = LiveTelemetry()
            live.count("exec.items", index + 1)
            live.observe("exec.item_s", 0.01 * (index + 1))
            live.gauge("g", float(index))
            snapshots.append(live.snapshot())
        merged = merge_live_snapshots(*snapshots)
        reversed_merge = merge_live_snapshots(*reversed(snapshots))
        assert merged.counters == reversed_merge.counters
        assert merged.gauges == reversed_merge.gauges
        assert merged.counter("exec.items") == 10
        a, b = merge_live_snapshots(*snapshots[:2]), merge_live_snapshots(*snapshots[2:])
        regrouped = merge_live_snapshots(a, b)
        assert regrouped.counters == merged.counters
        for (name_a, sketch_a), (name_b, sketch_b) in zip(
            merged.sketches, regrouped.sketches
        ):
            assert name_a == name_b
            assert np.array_equal(sketch_a.bins, sketch_b.bins)

    def test_flight_dump_cooldown_and_dir(self, tmp_path):
        live = LiveTelemetry(dump_dir=tmp_path)
        assert live.dump_flight() is None  # nothing recorded yet
        live.flight.record(
            FlightRecord(request_id=1, tenant="a", target="ip", outcome="ok")
        )
        first = live.dump_flight("demand")
        assert first is not None
        assert live.dump_flight("demand") is None  # nothing new since
        dumps = list(tmp_path.glob("flight-*.json"))
        assert len(dumps) == 1
        assert json.loads(dumps[0].read_text())["schema"] == "flight-recorder-v1"

    def test_refusal_spike_trigger(self):
        clock = _FakeClock()
        live = LiveTelemetry(refusal_rate_threshold=2.0, clock=clock)
        live.flight.record(
            FlightRecord(request_id=1, tenant="a", target="ip", outcome="shedding")
        )
        live.count("serve.refusals", 5)
        assert live.rate("serve.refusals") == pytest.approx(0.5)
        assert not live.check_refusal_spike()  # 0.5/s under the 2/s threshold
        live.count("serve.refusals", 30)
        assert live.check_refusal_spike()
        assert live.flight.dumps[-1]["trigger"] == "refusal-spike"
        # Unconfigured threshold never triggers.
        assert not LiveTelemetry().check_refusal_spike()

    def test_null_live_is_inert(self):
        null = NullLive()
        assert not null.enabled
        assert not NULL_LIVE.enabled
        null.count("x")
        null.observe("x", 0.1)
        null.observe_many("x", [0.1])
        null.gauge("x", 1.0)
        null.set_slo(SloPolicy("a", 0.1), "s", "c")
        assert null.counter("x") == 0
        assert null.rate("x") == 0.0
        assert null.gauge_value("x", 3.0) == 3.0
        assert null.counters() == {} and null.gauges() == {}
        assert null.rates() == {} and null.sketches() == {}
        assert null.slo_statuses() == []
        assert null.dump_flight() is None
        assert not null.check_refusal_spike()
        assert null.snapshot() == LiveSnapshot()
        null.absorb(LiveSnapshot(counters=(("x", 1),)))
        assert null.counter("x") == 0


class TestExporters:
    def _populated(self) -> LiveTelemetry:
        live = LiveTelemetry()
        live.count("serve.requests", 100)
        live.count("serve.refusals", 3)
        live.observe_many("serve.latency_s", np.linspace(1e-4, 5e-2, 200))
        live.gauge("serve.queue_depth", 12)
        live.set_slo(
            SloPolicy("alpha", latency_target_s=0.1, error_budget=0.01),
            "serve.latency_s",
            "serve.refusals",
        )
        live.flight.record(
            FlightRecord(request_id=1, tenant="alpha", target="ip", outcome="ok")
        )
        return live

    def test_prometheus_text_grammar(self):
        text = prometheus_text(self._populated())
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_serve_requests_total 100" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 12.0" in text
        assert "repro_serve_refusals_rate" in text
        assert "# TYPE repro_serve_latency_s summary" in text
        assert 'repro_serve_latency_s{quantile="0.99"}' in text
        assert "repro_serve_latency_s_count 200" in text
        assert 'repro_slo_burn_rate{slo="alpha"}' in text
        # 3 refusals over 203 requests burns the 1% budget → non-compliant.
        assert 'repro_slo_compliant{slo="alpha"} 0' in text
        assert text.endswith("\n")

    def test_scrape_snapshot_schema(self):
        snapshot = scrape_snapshot(self._populated())
        assert snapshot["schema"] == SCRAPE_SCHEMA
        assert snapshot["counters"]["serve.requests"] == 100
        assert snapshot["sketches"]["serve.latency_s"]["count"] == 200
        assert snapshot["slos"][0]["name"] == "alpha"
        assert snapshot["flight"]["buffered"] == 1
        json.dumps(snapshot)

    def test_append_scrape_accumulates_jsonl(self, tmp_path):
        live = self._populated()
        path = tmp_path / "scrapes.jsonl"
        append_scrape(live, path)
        live.count("serve.requests", 1)
        append_scrape(live, path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["counters"]["serve.requests"] == 100
        assert second["counters"]["serve.requests"] == 101

    def test_dashboard_sections(self):
        text = render_dashboard(self._populated(), title="t")
        assert "=== t ===" in text
        assert "latency sketches (ms)" in text
        assert "serve.latency_s" in text
        assert "counters" in text
        assert "gauges" in text
        assert "SLOs" in text
        assert "flight recorder: 1/512 buffered" in text
        # An empty plane renders without crashing.
        assert "=== live telemetry ===" in render_dashboard(LiveTelemetry())

    def test_write_live_dir(self, tmp_path):
        written = write_live_dir(self._populated(), tmp_path)
        names = {path.name for path in written}
        assert names == {"live_scrape.json", "live.prom", "flight_recorder.json"}
        assert (tmp_path / "live.prom").read_text().startswith("# TYPE")


class TestHistogramPercentile:
    """The repro.obs.metrics satellite: fixed-bucket quantiles, one way."""

    def test_percentile_on_known_distribution(self):
        histogram = Histogram(bounds=(1.0, 2.0, 5.0, 10.0))
        for value in [0.5] * 50 + [1.5] * 30 + [4.0] * 15 + [9.0] * 4 + [100.0]:
            histogram.observe(value)
        assert histogram.percentile(50) == 1.0  # bucket upper bound
        assert histogram.percentile(80) == 2.0
        assert histogram.percentile(95) == 5.0
        assert histogram.percentile(99) == 10.0
        assert histogram.percentile(100) == 100.0  # overflow → max observed
        assert histogram.quantile(0.5) == histogram.percentile(50)

    def test_percentile_clamps_to_observed_range(self):
        histogram = Histogram(bounds=(1000.0,))
        histogram.observe(3.0)
        histogram.observe(4.0)
        # Everything lives in the single huge bucket; the observed max is a
        # tighter (and honest) answer than the 1000.0 bound.
        assert histogram.percentile(50) == 4.0

    def test_empty_and_invalid(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        assert math.isnan(histogram.percentile(50))
        histogram.observe(1.5)
        with pytest.raises(ValueError):
            histogram.quantile(2.0)

    def test_registry_histograms_expose_percentile(self):
        registry = MetricsRegistry()
        for value in range(1, 101):
            registry.observe("rtt", float(value), bounds=(10, 25, 50, 75, 100))
        assert registry.histogram("rtt").percentile(50) == 50.0
        assert registry.histogram("rtt").percentile(99) == 100.0

    def test_report_reuses_percentile_helper(self):
        observer = Observer()
        for value in (1.0, 3.0, 40.0, 400.0):
            observer.observe("atlas.rtt_ms", value)
        summary = observer.summary()
        assert "histogram quantiles (bucket resolution):" in summary
        assert "atlas.rtt_ms" in summary


class TestRunDirIntegration:
    def test_live_artifacts_do_not_touch_deterministic_ones(self, tmp_path):
        """write_run_dir with a live plane adds live files; the manifest,
        metrics, and event stream bytes are identical to a live-less run."""
        from repro.obs.rundir import RunManifest, write_run_dir

        def build_observer():
            observer = Observer()
            observer.count("serve.requests", 3)
            observer.event("cache-hit", kind="geocode")
            return observer

        manifest_kwargs = dict(
            config_digest="abc",
            seed=1,
            preset="quick",
            experiments=["serve"],
            workers=1,
            cache_dir=None,
            wall_s=1.0,
            sim_s=2.0,
            outcome="ok",
            versions={"python": "x"},
            git_rev="rev",
            started_at="2026-08-08T00:00:00+00:00",
        )
        plain_dir, live_dir = tmp_path / "plain", tmp_path / "live"
        write_run_dir(plain_dir, build_observer(), RunManifest(**manifest_kwargs))
        live = LiveTelemetry()
        live.observe("serve.latency_s", 0.01)
        live.flight.record(
            FlightRecord(request_id=0, tenant="t", target="ip", outcome="ok")
        )
        paths = write_run_dir(
            live_dir, build_observer(), RunManifest(**manifest_kwargs), live=live
        )
        for name in ("manifest.json", "metrics.json", "events.jsonl"):
            assert (plain_dir / name).read_bytes() == (live_dir / name).read_bytes()
        assert (live_dir / "live_scrape.json").exists()
        assert (live_dir / "live.prom").exists()
        assert (live_dir / "flight_recorder.json").exists()
        assert "live_scrape" in paths
        # A NULL_LIVE plane adds nothing.
        null_dir = tmp_path / "null"
        write_run_dir(
            null_dir, build_observer(), RunManifest(**manifest_kwargs), live=NULL_LIVE
        )
        assert not (null_dir / "live_scrape.json").exists()
