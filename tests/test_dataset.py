"""Tests for the exportable geolocation dataset."""

import pytest

from repro.dataset import (
    DATASET_SCHEMA_VERSION,
    GeolocationDataset,
    GeolocationRecord,
    QUALITY_CITY,
    QUALITY_REGION,
    QUALITY_STREET,
    QUALITY_UNKNOWN,
    build_dataset_from_scenario,
    quality_from_min_rtt,
)
from repro.geo.coords import GeoPoint


def _record(ip="10.0.0.1"):
    return GeolocationRecord(
        ip=ip,
        estimates={"cbg": [48.85, 2.35], "shortest-ping": [48.9, 2.4]},
        preferred_technique="cbg",
        quality=QUALITY_CITY,
        evidence={"min_rtt_ms": 0.8},
    )


class TestQualityRule:
    def test_classes(self):
        assert quality_from_min_rtt(None) == QUALITY_UNKNOWN
        assert quality_from_min_rtt(0.1) == QUALITY_STREET
        assert quality_from_min_rtt(1.0) == QUALITY_CITY
        assert quality_from_min_rtt(50.0) == QUALITY_REGION


class TestRecords:
    def test_preferred_location(self):
        record = _record()
        location = record.preferred_location()
        assert location == GeoPoint(48.85, 2.35)

    def test_missing_preferred(self):
        record = GeolocationRecord(ip="10.0.0.2")
        assert record.preferred_location() is None


class TestDataset:
    def test_add_and_lookup(self):
        dataset = GeolocationDataset()
        dataset.add(_record())
        assert len(dataset) == 1
        assert dataset.lookup("10.0.0.1").quality == QUALITY_CITY
        assert dataset.lookup("10.0.0.9") is None

    def test_duplicate_rejected(self):
        dataset = GeolocationDataset([_record()])
        with pytest.raises(ValueError):
            dataset.add(_record())

    def test_quality_counts(self):
        dataset = GeolocationDataset(
            [_record("10.0.0.1"), _record("10.0.0.2")]
        )
        assert dataset.quality_counts() == {QUALITY_CITY: 2}

    def test_json_round_trip(self, tmp_path):
        dataset = GeolocationDataset([_record("10.0.0.1"), _record("10.0.0.2")])
        path = tmp_path / "baseline.json"
        dataset.write_json(path)
        loaded = GeolocationDataset.read_json(path)
        assert len(loaded) == 2
        assert loaded.lookup("10.0.0.1").estimates == dataset.lookup("10.0.0.1").estimates
        assert loaded.lookup("10.0.0.2").evidence["min_rtt_ms"] == 0.8

    def test_json_schema_guard(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema_version": 99, "records": []}')
        with pytest.raises(ValueError):
            GeolocationDataset.read_json(path)

    def test_csv_round_trip(self, tmp_path):
        dataset = GeolocationDataset([_record("10.0.0.1")])
        path = tmp_path / "baseline.csv"
        dataset.write_csv(path)
        loaded = GeolocationDataset.read_csv(path)
        record = loaded.lookup("10.0.0.1")
        assert record is not None
        assert record.preferred_technique == "cbg"
        assert record.estimates["cbg"] == pytest.approx([48.85, 2.35])

    def test_csv_header_guard(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError):
            GeolocationDataset.read_csv(path)


class TestFromScenario:
    def test_builds_over_targets(self, small_scenario):
        dataset = build_dataset_from_scenario(small_scenario, max_targets=10)
        assert len(dataset) == 10
        for record in dataset:
            assert record.preferred_technique in record.estimates
            assert record.quality in (
                QUALITY_STREET,
                QUALITY_CITY,
                QUALITY_REGION,
                QUALITY_UNKNOWN,
            )
            assert record.evidence["vp_count"] == len(small_scenario.vps)

    def test_quality_is_explainable_not_oracular(self, small_scenario):
        """Quality must be derived from evidence, not from real error."""
        dataset = build_dataset_from_scenario(small_scenario, max_targets=10)
        for record in dataset:
            min_rtt = record.evidence["min_rtt_ms"]
            assert record.quality == quality_from_min_rtt(min_rtt)

    def test_round_trips_through_files(self, small_scenario, tmp_path):
        dataset = build_dataset_from_scenario(small_scenario, max_targets=5)
        json_path = tmp_path / "d.json"
        dataset.write_json(json_path)
        assert len(GeolocationDataset.read_json(json_path)) == 5
