"""Artifact-cache tests: content addressing, integrity, warm rebuilds.

The cache's contract is replay, not approximation: a warm build must
produce byte-identical scenarios to a cold one while running **zero**
measurement campaigns (no ``atlas.api_calls``), and any undecodable or
digest-mismatched file must be treated as a miss and rebuilt.
"""

from __future__ import annotations

import numpy as np

from repro.cache import ArtifactCache, cache_from_env, config_key
from repro.cache.artifacts import (
    json_payload_array,
    json_payload_object,
)
from repro.experiments import scenario as scenario_mod
from repro.experiments.scenario import Scenario, get_scenario
from repro.faults import FaultInjector, FaultPlan
from repro.obs.observer import Observer
from repro.world.config import WorldConfig


class TestConfigKey:
    def test_stable(self):
        assert config_key(WorldConfig.small()) == config_key(WorldConfig.small())

    def test_seed_changes_key(self):
        assert config_key(WorldConfig.small()) != config_key(
            WorldConfig.small(2024)
        )

    def test_preset_changes_key(self):
        assert config_key(WorldConfig.small()) != config_key(WorldConfig.paper())


class TestArtifactStore:
    def test_round_trip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        arrays = {
            "matrix": np.array([[1.5, np.nan], [0.25, 3.0]]),
            "ids": np.array([3, 1, 4], dtype=np.int64),
        }
        cache.store("demo", "k" * 64, arrays)
        loaded = cache.load("demo", "k" * 64)
        assert set(loaded) == {"matrix", "ids"}
        np.testing.assert_array_equal(loaded["matrix"], arrays["matrix"])
        np.testing.assert_array_equal(loaded["ids"], arrays["ids"])

    def test_missing_is_miss(self, tmp_path):
        obs = Observer()
        cache = ArtifactCache(tmp_path, obs=obs)
        assert cache.load("demo", "k" * 64) is None
        assert obs.metrics.counters()["cache.miss"] == 1

    def test_garbage_file_is_removed_and_missed(self, tmp_path):
        obs = Observer()
        cache = ArtifactCache(tmp_path, obs=obs)
        cache.store("demo", "k" * 64, {"x": np.arange(4)})
        path = cache.path("demo", "k" * 64)
        path.write_bytes(b"not a zip archive")
        assert cache.load("demo", "k" * 64) is None
        assert not path.exists()
        counters = obs.metrics.counters()
        assert counters["cache.corrupt"] == 1
        assert counters["cache.miss"] == 1

    def test_digest_mismatch_is_removed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.store("demo", "a" * 64, {"x": np.arange(4)})
        cache.store("demo", "b" * 64, {"x": np.arange(5)})
        # Graft one artifact's file onto the other's address: the payload
        # decodes fine but belongs to different content.
        data = cache.path("demo", "b" * 64).read_bytes()
        target = cache.path("demo", "a" * 64)
        target.write_bytes(data)
        loaded = cache.load("demo", "a" * 64)
        # Self-consistent payloads pass the digest check (the digest covers
        # payload integrity, the *key* covers addressing) — but a truncated
        # copy must not.
        assert loaded is not None
        target.write_bytes(data[: len(data) // 2])
        assert cache.load("demo", "a" * 64) is None

    def test_json_payload_round_trip(self):
        obj = {"10.0.0.1": ["10.0.0.2", "10.0.0.3"], "empty": []}
        assert json_payload_object(json_payload_array(obj)) == obj

    def test_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cache_from_env() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = cache_from_env()
        assert cache is not None and cache.root == tmp_path


def _campaigns(scn: Scenario):
    """Run every cached campaign and return its artifacts."""
    rtt = scn.rtt_matrix()
    rep_min, rep_median, reps = scn.representative_matrices()
    mesh_ids, mesh = scn.mesh()
    return rtt, rep_min, rep_median, reps, mesh_ids, mesh


class TestScenarioWarmRebuild:
    def test_warm_rebuild_is_identical_and_measurement_free(self, tmp_path):
        config = WorldConfig.small()
        cache_cold = ArtifactCache(tmp_path)
        cold = Scenario.build(config, cache=cache_cold)
        cold_arrays = _campaigns(cold)

        obs = Observer()
        warm = Scenario.build(config, obs=obs, cache=ArtifactCache(tmp_path, obs=obs))
        warm_arrays = _campaigns(warm)

        # Zero measurement campaigns on the warm path: everything replayed.
        counters = obs.metrics.counters()
        assert counters.get("atlas.api_calls", 0) == 0
        assert counters["cache.hit"] == 3  # sanitize, rtt-matrix, representatives
        assert "cache.miss" not in counters

        # Byte-identical scenario.
        assert [t.host_id for t in warm.targets] == [t.host_id for t in cold.targets]
        assert [vp.probe_id for vp in warm.vps] == [vp.probe_id for vp in cold.vps]
        assert warm.removed_anchor_ids == cold.removed_anchor_ids
        assert warm.removed_probe_ids == cold.removed_probe_ids
        rtt_c, min_c, med_c, reps_c, ids_c, mesh_c = cold_arrays
        rtt_w, min_w, med_w, reps_w, ids_w, mesh_w = warm_arrays
        np.testing.assert_array_equal(rtt_w, rtt_c)
        np.testing.assert_array_equal(min_w, min_c)
        np.testing.assert_array_equal(med_w, med_c)
        assert reps_w == reps_c
        assert ids_w == ids_c
        np.testing.assert_array_equal(mesh_w, mesh_c)

    def test_corrupt_artifact_rebuilds(self, tmp_path):
        config = WorldConfig.small()
        cold = Scenario.build(config, cache=ArtifactCache(tmp_path))
        rtt_cold = cold.rtt_matrix()
        key = config_key(config)
        ArtifactCache(tmp_path).path("rtt-matrix", key).write_bytes(b"garbage")

        obs = Observer()
        warm = Scenario.build(config, obs=obs, cache=ArtifactCache(tmp_path, obs=obs))
        np.testing.assert_array_equal(warm.rtt_matrix(), rtt_cold)
        counters = obs.metrics.counters()
        assert counters["cache.corrupt"] == 1
        assert counters["cache.hit"] >= 1  # the sanitize artifact still hits

    def test_uncached_build_matches_cached(self, tmp_path, small_scenario):
        config = WorldConfig.small()
        cached = Scenario.build(config, cache=ArtifactCache(tmp_path))
        np.testing.assert_array_equal(
            cached.rtt_matrix(), small_scenario.rtt_matrix()
        )
        warm = Scenario.build(config, cache=ArtifactCache(tmp_path))
        np.testing.assert_array_equal(
            warm.rtt_matrix(), small_scenario.rtt_matrix()
        )

    def test_faulty_build_bypasses_cache(self, tmp_path):
        config = WorldConfig.small()
        scn = Scenario.build(
            config,
            faults=FaultInjector(FaultPlan.at_rate(0.05)),
            cache=ArtifactCache(tmp_path),
        )
        assert scn.cache is None
        assert list(tmp_path.iterdir()) == []

    def test_get_scenario_uses_env_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setattr(scenario_mod, "_SCENARIO_CACHE", {})
        scn = get_scenario("small")
        assert scn.cache is not None
        scn.rtt_matrix()
        names = sorted(path.name for path in tmp_path.iterdir())
        assert any(name.startswith("sanitize-") for name in names)
        assert any(name.startswith("rtt-matrix-") for name in names)
