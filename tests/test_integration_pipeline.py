"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.core.cbg import cbg_errors_for_subsets
from repro.experiments.scenario import Scenario
from repro.world import WorldConfig


class TestFullPipeline:
    def test_scenario_is_deterministic(self):
        a = Scenario.build(WorldConfig.small(seed=99))
        b = Scenario.build(WorldConfig.small(seed=99))
        assert a.target_ips == b.target_ips
        assert list(a.vp_ids) == list(b.vp_ids)
        assert np.allclose(a.rtt_matrix(), b.rtt_matrix(), equal_nan=True)

    def test_measurement_accounting_spans_campaigns(self, small_scenario):
        """The shared ledger sees every campaign the scenario ran."""
        ledger = small_scenario.client.ledger
        small_scenario.rtt_matrix()
        assert ledger.measurement_count("ping") > 0
        # The probe sanitization campaign alone is probes x anchors.
        assert ledger.measurement_count("ping") >= len(small_scenario.targets) * 100

    def test_cbg_beats_continental_baseline(self, small_scenario):
        """Sanity: with hundreds of VPs, CBG is far better than guessing."""
        matrix = small_scenario.rtt_matrix()
        errors = cbg_errors_for_subsets(
            small_scenario.vp_lats,
            small_scenario.vp_lons,
            matrix,
            small_scenario.target_true_lats,
            small_scenario.target_true_lons,
            np.arange(len(small_scenario.vps)),
        )
        assert np.nanmedian(errors) < 100.0
        assert np.nanmax(errors) < 20_100.0

    def test_techniques_ordering_holds(self, small_scenario):
        """The paper's global ordering: all-VP CBG ~ two-step selection,
        both far better than a tiny random subset."""
        from repro import rand
        from repro.core.coverage import greedy_coverage_indices

        matrix = small_scenario.rtt_matrix()
        all_errors = cbg_errors_for_subsets(
            small_scenario.vp_lats,
            small_scenario.vp_lons,
            matrix,
            small_scenario.target_true_lats,
            small_scenario.target_true_lons,
            np.arange(len(small_scenario.vps)),
        )
        rng = rand.generator(("integration-small-subset", 0))
        random10 = np.sort(rng.choice(len(small_scenario.vps), size=10, replace=False))
        small_errors = cbg_errors_for_subsets(
            small_scenario.vp_lats,
            small_scenario.vp_lons,
            matrix,
            small_scenario.target_true_lats,
            small_scenario.target_true_lons,
            random10,
        )
        assert np.nanmedian(all_errors) < np.nanmedian(small_errors) / 3

    def test_street_level_landmarks_are_real_websites(self, small_scenario):
        """Every landmark the pipeline measured exists in the world's DNS
        and claims the location of a real POI."""
        from repro.experiments.street_runner import street_level_records

        records = street_level_records(small_scenario, 12)
        for record in records:
            for measurement in record.result.measurements:
                landmark = measurement.landmark
                dns = small_scenario.world.dns.try_resolve(landmark.hostname)
                assert dns is not None
                assert dns.ip == landmark.ip
                assert not dns.behind_cdn

    def test_street_level_time_matches_breakdown(self, small_scenario):
        from repro.experiments.street_runner import street_level_records

        records = street_level_records(small_scenario, 12)
        for record in records:
            total = sum(record.result.time_breakdown.values())
            assert total == pytest.approx(record.result.elapsed_s)

    def test_unusable_fraction_bounds(self, small_scenario):
        from repro.experiments.street_runner import street_level_records

        for record in street_level_records(small_scenario, 12):
            fraction = record.unusable_fraction
            if fraction is not None:
                assert 0.0 <= fraction <= 1.0

    def test_oracle_lower_bounds_street(self, small_scenario):
        """The closest-landmark oracle is a lower bound for the landmark-
        mapped street level estimate (when a landmark was chosen)."""
        from repro.experiments.street_runner import street_level_records

        for record in street_level_records(small_scenario, 12):
            if record.result.chosen is not None:
                assert record.oracle_error_km <= record.street_error_km + 1e-9
