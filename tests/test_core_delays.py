"""Tests for the appendix-B D1+D2 delay computation."""

import pytest

from repro.core.delays import (
    DelaySample,
    delay_sample,
    estimate_landmark_delay,
    last_common_hop,
)
from repro.latency.model import TraceHop, TraceObservation


def _trace(src, dst, hops, reached=True):
    return TraceObservation(
        src_ip=src,
        dst_ip=dst,
        hops=tuple(TraceHop(ip, rtt) for ip, rtt in hops),
        reached=reached,
    )


class TestLastCommonHop:
    def test_shared_prefix(self):
        a = _trace("1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0), ("9.0.0.1", 2.0), ("2.2.2.2", 3.0)])
        b = _trace("1.1.1.1", "3.3.3.3", [("8.0.0.1", 1.0), ("9.0.0.1", 2.1), ("9.0.0.5", 2.5), ("3.3.3.3", 4.0)])
        assert last_common_hop(a, b) == "9.0.0.1"

    def test_no_common(self):
        a = _trace("1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0), ("2.2.2.2", 3.0)])
        b = _trace("1.1.1.1", "3.3.3.3", [("8.0.0.9", 1.0), ("3.3.3.3", 4.0)])
        assert last_common_hop(a, b) is None

    def test_destination_never_common(self):
        a = _trace("1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0), ("2.2.2.2", 3.0)])
        b = _trace("1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0), ("2.2.2.2", 3.0)])
        assert last_common_hop(a, b) == "8.0.0.1"

    def test_out_of_order_fallback(self):
        a = _trace("1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0), ("9.0.0.2", 2.0), ("2.2.2.2", 3.0)])
        b = _trace("1.1.1.1", "3.3.3.3", [("7.0.0.1", 0.5), ("9.0.0.2", 2.1), ("3.3.3.3", 4.0)])
        assert last_common_hop(a, b) == "9.0.0.2"


class TestDelaySample:
    def test_clean_subtraction(self):
        trace_l = _trace(
            "1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0), ("9.0.0.1", 2.0), ("2.2.2.2", 3.5)]
        )
        trace_t = _trace(
            "1.1.1.1", "3.3.3.3", [("8.0.0.1", 1.0), ("9.0.0.1", 2.2), ("3.3.3.3", 4.0)]
        )
        sample = delay_sample(7, trace_l, trace_t)
        assert sample is not None
        assert sample.common_hop_ip == "9.0.0.1"
        assert sample.d1_ms == pytest.approx(1.5)
        assert sample.d2_ms == pytest.approx(1.8)
        assert sample.total_ms == pytest.approx(3.3)
        assert sample.usable

    def test_negative_sum_unusable(self):
        sample = DelaySample(1, "9.0.0.1", d1_ms=-2.0, d2_ms=0.5)
        assert not sample.usable

    def test_unreached_trace_gives_none(self):
        trace_l = _trace("1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0)], reached=False)
        trace_t = _trace("1.1.1.1", "3.3.3.3", [("8.0.0.1", 1.0), ("3.3.3.3", 2.0)])
        assert delay_sample(1, trace_l, trace_t) is None

    def test_no_common_hop_gives_none(self):
        trace_l = _trace("1.1.1.1", "2.2.2.2", [("8.0.0.1", 1.0), ("2.2.2.2", 3.0)])
        trace_t = _trace("1.1.1.1", "3.3.3.3", [("8.0.0.9", 1.0), ("3.3.3.3", 4.0)])
        assert delay_sample(1, trace_l, trace_t) is None


class TestEstimate:
    def _pair(self, rtt_common_l, rtt_l, rtt_common_t, rtt_t):
        trace_l = _trace(
            "1.1.1.1", "2.2.2.2", [("9.0.0.1", rtt_common_l), ("2.2.2.2", rtt_l)]
        )
        trace_t = _trace(
            "1.1.1.1", "3.3.3.3", [("9.0.0.1", rtt_common_t), ("3.3.3.3", rtt_t)]
        )
        return trace_l, trace_t

    def test_minimum_selected(self):
        pairs = [
            (1,) + self._pair(1.0, 3.0, 1.0, 3.0),  # D1+D2 = 4.0
            (2,) + self._pair(1.0, 2.0, 1.0, 2.0),  # D1+D2 = 2.0
        ]
        estimate = estimate_landmark_delay(pairs)
        assert estimate.best_delay_ms == pytest.approx(2.0)
        assert estimate.usable

    def test_negative_minimum_unusable(self):
        """The paper's rule: the minimum includes negative sums, and a
        negative minimum makes the landmark unusable (Figure 6a)."""
        pairs = [
            (1,) + self._pair(1.0, 3.0, 1.0, 3.0),  # +4.0
            (2,) + self._pair(5.0, 2.0, 1.0, 2.0),  # -2.0
        ]
        estimate = estimate_landmark_delay(pairs)
        assert estimate.best_delay_ms == pytest.approx(-2.0)
        assert not estimate.usable
        assert estimate.negative_samples == 1

    def test_no_samples(self):
        estimate = estimate_landmark_delay([])
        assert estimate.best_delay_ms is None
        assert not estimate.usable

    def test_simulated_traces_give_mostly_positive_delays(self, small_world, small_platform):
        """Integration: same-city landmark/target with a remote VP."""
        model = small_platform.latency
        anchor = small_world.anchors[0]
        sibling = next(
            h for h in small_world.hosts if h.city_id == anchor.city_id and h is not anchor
        )
        remote_vp = next(
            p for p in small_world.probes if p.city_id != anchor.city_id
        )
        triples = []
        for seq in range(20):
            trace_l = model.traceroute(remote_vp, sibling, seq=seq)
            trace_t = model.traceroute(remote_vp, anchor, seq=seq + 1000)
            triples.append((remote_vp.host_id, trace_l, trace_t))
        estimate = estimate_landmark_delay(triples)
        assert len(estimate.samples) == 20
        positive = sum(1 for s in estimate.samples if s.usable)
        assert positive >= 10
