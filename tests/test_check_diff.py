"""Differential harness tests: agreement on healthy paths, failure on broken ones.

Two halves:

* the harness *passes* on the real substrate — all seven paired paths
  (batched vs loop CBG, CSR topology kernel vs scalar path, serial vs
  parallel execution, cold vs warm cache, serving engine vs batch
  campaign, serial vs parallel hint mining, epoch-swapped serving vs
  per-revision batch) agree bitwise, the CLI ``--selfcheck`` exits 0;
* the harness *fails* when a path is deliberately broken — each pair is
  monkeypatched with a divergent implementation and must report the
  divergence (a self-check that cannot fail proves nothing).

Plus the end-to-end injected-violation test: with ``REPRO_CHECK=1`` and a
latency model patched to return impossible RTTs, a quick campaign must
abort with :class:`~repro.errors.InvariantViolation`, surface the
violation in the event stream, and record the aborted checked run in the
run-dir manifest.
"""

import json
import os

import numpy as np
import pytest

from repro.check.diff import (
    diff_batch_vs_loop,
    diff_cold_vs_warm_cache,
    diff_hints,
    diff_serial_vs_parallel,
    diff_serve_under_churn,
    diff_serve_vs_batch,
    diff_topology,
)
from repro.errors import InvariantViolation
from repro.experiments import run as run_cli
from repro.experiments.scenario import Scenario, config_for_preset


@pytest.fixture(scope="module")
def quick_scenario():
    return Scenario.build(config_for_preset("quick"))


class TestHealthyPaths:
    def test_selfcheck_report_all_ok(self, selfcheck_report):
        assert selfcheck_report.ok
        assert len(selfcheck_report.outcomes) == 7
        assert {o.pair for o in selfcheck_report.outcomes} == {
            "cbg: batch vs loop",
            "topology: csr vs scalar",
            "exec: serial vs parallel",
            "cache: cold vs warm",
            "serve: engine vs batch",
            "hints: serial vs parallel",
            "serve: epochs vs batch",
        }
        for outcome in selfcheck_report.outcomes:
            assert outcome.compared > 0

    def test_report_renders_verdict(self, selfcheck_report):
        text = selfcheck_report.render()
        assert "all paths agree" in text
        assert "DIVERGED" not in text

    def test_cli_selfcheck_exits_zero(self, capsys):
        assert run_cli.main(["--selfcheck", "--preset", "quick"]) == 0
        assert "all paths agree" in capsys.readouterr().out

    def test_cli_requires_experiment_or_selfcheck(self, capsys):
        with pytest.raises(SystemExit):
            run_cli.main(["--preset", "quick"])
        assert "--selfcheck" in capsys.readouterr().err


def _perturbed_batch(original):
    def broken(*args, **kwargs):
        return original(*args, **kwargs) + 1.0

    return broken


def _env_dependent_trial(trial):
    """Stands in for ``fig2._trial_median``: diverges only under workers.

    Module-level so forked pool workers can unpickle it by reference. The
    serial leg of the diff runs with ``REPRO_WORKERS`` unset and sees the
    clean value; the parallel leg sets it and sees the perturbed one.
    """
    from repro.experiments import fig2

    value = fig2._TRIAL_CTX["size"] * 10.0 + trial
    if os.environ.get("REPRO_WORKERS"):
        value += 0.125
    return value


from repro.hints.trie import _find_one as _real_find_one


def _env_dependent_find(index):
    """Stands in for ``hints.trie._find_one``: diverges only under workers.

    Module-level so forked pool workers resolve it by reference; the
    serial leg sees real matches, the parallel leg (``REPRO_WORKERS``
    set) sees none.
    """
    result = _real_find_one(index)
    if os.environ.get("REPRO_WORKERS"):
        return None
    return result


class TestBrokenPaths:
    def test_broken_batch_kernel_is_caught(self, quick_scenario, monkeypatch):
        from repro.core import cbg_batch

        monkeypatch.setattr(
            cbg_batch,
            "cbg_errors_batch",
            _perturbed_batch(cbg_batch.cbg_errors_batch),
        )
        outcome = diff_batch_vs_loop(quick_scenario)
        assert not outcome.ok
        assert "diverges" in outcome.detail

    def test_broken_csr_kernel_is_caught(self, quick_scenario, monkeypatch):
        from repro.topology.csr import CsrRouterGraph

        original = CsrRouterGraph.path_km_matrix

        def broken(self, src_host_ids, dst_host_ids):
            return original(self, src_host_ids, dst_host_ids) + 1.0

        monkeypatch.setattr(CsrRouterGraph, "path_km_matrix", broken)
        outcome = diff_topology(quick_scenario)
        assert not outcome.ok
        assert "diverges" in outcome.detail

    def test_broken_parallel_path_is_caught(self, quick_scenario, monkeypatch):
        from repro.experiments import fig2

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(fig2, "_trial_median", _env_dependent_trial)
        outcome = diff_serial_vs_parallel(quick_scenario, trials=2, workers=2)
        assert not outcome.ok
        assert "diverges" in outcome.detail

    def test_broken_serve_engine_is_caught(self, quick_scenario, monkeypatch):
        from repro.serve import engine as serve_engine

        original = serve_engine.CbgBatchSolver.centroids

        def broken(self, columns=None, obs=None, chunk_targets=None):
            lats, lons = original(self, columns=columns)
            return lats + 0.5, lons
        monkeypatch.setattr(serve_engine.CbgBatchSolver, "centroids", broken)
        outcome = diff_serve_vs_batch(quick_scenario)
        assert not outcome.ok
        assert "diverges" in outcome.detail

    def test_frozen_epoch_swap_is_caught(self, quick_scenario, monkeypatch):
        """An install_epoch that silently drops the swap must diverge.

        The engine then keeps serving the base-snapshot memo while the
        batch side scores each revision's canonical matrix — exactly the
        stale-answer failure the leg exists to rule out.
        """
        from repro.serve import engine as serve_engine

        monkeypatch.setattr(
            serve_engine.ServeEngine,
            "install_epoch",
            lambda self, state, label="": 0,
        )
        outcome = diff_serve_under_churn(quick_scenario)
        assert not outcome.ok
        assert "diverges" in outcome.detail

    def test_broken_hint_finder_is_caught(self, quick_scenario, monkeypatch):
        from repro.hints import trie as hints_trie

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(hints_trie, "_find_one", _env_dependent_find)
        outcome = diff_hints(quick_scenario, workers=2)
        assert not outcome.ok
        assert "matches diverge" in outcome.detail

    def test_unsound_verifier_is_caught(self, quick_scenario, monkeypatch):
        """A verifier that confirms everything must trip cbg.containment."""
        import dataclasses

        import repro.hints as hints_pkg
        from repro.hints.verify import verify_hints as real_verify

        def confirm_everything(scenario, matches, confirm_radius_km=None, obs=None, checker=None):
            verified = real_verify(scenario, matches, obs=obs, checker=checker)
            return [
                dataclasses.replace(hint, verdict="confirmed") for hint in verified
            ]

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.setattr(hints_pkg, "verify_hints", confirm_everything)
        outcome = diff_hints(quick_scenario, workers=2)
        assert not outcome.ok
        assert "cbg.containment" in outcome.detail

    def test_broken_cache_is_caught(self, monkeypatch):
        from repro.cache.artifacts import ArtifactCache

        monkeypatch.setattr(ArtifactCache, "load", lambda self, kind, key: None)
        outcome = diff_cold_vs_warm_cache(config_for_preset("quick"))
        assert not outcome.ok
        assert "never hit the cache" in outcome.detail

    def test_cli_selfcheck_exits_nonzero_on_divergence(self, monkeypatch, capsys):
        from repro.core import cbg_batch

        monkeypatch.setattr(
            cbg_batch,
            "cbg_errors_batch",
            _perturbed_batch(cbg_batch.cbg_errors_batch),
        )
        assert run_cli.main(["--selfcheck", "--preset", "quick"]) == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out
        assert "DIVERGENCE" in out


def _rtt_scaling_patch(monkeypatch, factor=0.1):
    """Scale campaign RTTs (seq 0) to physically impossible values.

    The anchor mesh (seq 999) and probe sanitization (seq 7) stay intact,
    so the scenario builds cleanly; only the experiment campaign violates
    the speed of Internet. The in-model SOI check runs on the unscaled
    values, so the violation surfaces downstream — in CBG containment.
    """
    from repro.latency.model import LatencyModel

    original = LatencyModel.bulk_min_rtt

    def broken(self, src_host_ids, dst, packets=3, seq=0):
        result = original(self, src_host_ids, dst, packets=packets, seq=seq)
        return result * factor if seq == 0 else result

    monkeypatch.setattr(LatencyModel, "bulk_min_rtt", broken)


class TestInjectedViolation:
    def test_checked_campaign_aborts_and_documents(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECK", "1")
        _rtt_scaling_patch(monkeypatch)
        run_dir = tmp_path / "run"
        with pytest.raises(InvariantViolation) as excinfo:
            run_cli.main(
                [
                    "fig2a",
                    "--preset",
                    "quick",
                    "--trials",
                    "1",
                    "--run-dir",
                    str(run_dir),
                ]
            )
        assert "cbg.containment" in str(excinfo.value)

        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["check_mode"] == "on"
        assert manifest["outcome"].startswith("error: InvariantViolation")
        events = (run_dir / "events.jsonl").read_text()
        assert "invariant-violation" in events
        assert manifest["events"]["by_type"].get("invariant-violation", 0) >= 1

    def test_clean_checked_campaign_passes(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CHECK", "1")
        assert (
            run_cli.main(["fig2a", "--preset", "quick", "--trials", "2"]) == 0
        )
        assert "CBG median error" in capsys.readouterr().out
