"""Tests for the §5.2.5 shared landmark cache."""

import pytest

from repro.atlas.clock import SimClock
from repro.geo.coords import GeoPoint
from repro.landmarks.cache import LandmarkCache
from repro.landmarks.mapping import ReverseGeocoder
from repro.landmarks.validation import LandmarkValidator, ValidationOutcome


class TestCachePrimitives:
    def test_geocode_round_trip(self):
        cache = LandmarkCache()
        point = GeoPoint(10.0, 20.0)
        hit, _ = cache.get_geocode(point)
        assert not hit
        from repro.landmarks.mapping import ReverseGeocodeResult

        answer = ReverseGeocodeResult("1234-500500", 7)
        cache.put_geocode(point, answer)
        hit, cached = cache.get_geocode(point)
        assert hit and cached == answer

    def test_nearby_points_share_entry(self):
        cache = LandmarkCache()
        cache.put_geocode(GeoPoint(10.0, 20.0), None)
        hit, cached = cache.get_geocode(GeoPoint(10.0003, 20.0003))
        assert hit and cached is None

    def test_distant_points_do_not(self):
        cache = LandmarkCache()
        cache.put_geocode(GeoPoint(10.0, 20.0), None)
        hit, _ = cache.get_geocode(GeoPoint(10.1, 20.1))
        assert not hit

    def test_validation_round_trip(self):
        cache = LandmarkCache()
        outcome = ValidationOutcome(False, "cdn")
        cache.put_validation("www.x.example", "1-1", "1-2", outcome)
        hit, cached = cache.get_validation("www.x.example", "1-1", "1-2")
        assert hit and cached == outcome
        hit, _ = cache.get_validation("www.x.example", "1-1", "1-3")
        assert not hit

    def test_stats(self):
        cache = LandmarkCache()
        cache.get_geocode(GeoPoint(0, 0))
        cache.put_geocode(GeoPoint(0, 0), None)
        cache.get_geocode(GeoPoint(0, 0))
        assert cache.stats.geocode_hits == 1
        assert cache.stats.geocode_misses == 1
        assert cache.stats.geocode_hit_rate == 0.5
        assert cache.stats.validation_hit_rate == 0.0

    def test_len(self):
        cache = LandmarkCache()
        cache.put_geocode(GeoPoint(0, 0), None)
        cache.put_validation("h", "a", "b", ValidationOutcome(True))
        assert len(cache) == 2


class TestCachedServices:
    def test_geocoder_skips_service_on_hit(self, small_world):
        cache = LandmarkCache()
        clock = SimClock()
        geocoder = ReverseGeocoder(small_world, clock, cache=cache)
        point = small_world.cities[0].location
        first = geocoder.reverse(point)
        queries_after_first = geocoder.queries
        cost_after_first = clock.now_s
        second = geocoder.reverse(point)
        assert second == first
        assert geocoder.queries == queries_after_first  # no new service query
        assert clock.now_s == cost_after_first  # and no time charged

    def test_validator_skips_tests_on_hit(self, small_world):
        cache = LandmarkCache()
        clock = SimClock()
        validator = LandmarkValidator(small_world, clock, cache=cache)
        poi = next(
            p
            for p in small_world.pois_of_city(small_world.anchors[0].city_id)
            if p.website is not None
        )
        first = validator.validate(poi, poi.website, poi.zipcode)
        runs = validator.tests_run
        cost = clock.now_s
        second = validator.validate(poi, poi.website, poi.zipcode)
        assert second == first
        assert validator.tests_run == runs
        assert clock.now_s == cost

    def test_cached_pipeline_results_identical(self, small_scenario):
        """With and without cache, the street level answers must match."""
        import numpy as np

        from repro.core.street_level import StreetLevelPipeline

        anchors = small_scenario.anchor_vp_infos()
        mesh_ids, mesh = small_scenario.mesh()
        row_by_id = {a: r for r, a in enumerate(mesh_ids)}
        target = small_scenario.targets[0]
        column = row_by_id[target.host_id]
        rtts = {
            a: (None if np.isnan(mesh[r, column]) else float(mesh[r, column]))
            for a, r in row_by_id.items()
        }
        plain = StreetLevelPipeline(small_scenario.client, small_scenario.world)
        cached = StreetLevelPipeline(
            small_scenario.client, small_scenario.world, cache=LandmarkCache()
        )
        result_plain = plain.geolocate(target.ip, anchors, rtts)
        result_cached = cached.geolocate(target.ip, anchors, rtts)
        assert result_plain.estimate == result_cached.estimate
        assert len(result_plain.measurements) == len(result_cached.measurements)
