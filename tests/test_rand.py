"""Tests for the deterministic keyed RNG, including scalar/bulk parity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import rand


class TestKeyHash:
    def test_deterministic(self):
        assert rand.key_hash(("a", 1)) == rand.key_hash(("a", 1))

    def test_distinct_parts_distinct_hashes(self):
        assert rand.key_hash(("a", 1)) != rand.key_hash(("a", 2))

    def test_order_matters(self):
        assert rand.key_hash(("a", "b")) != rand.key_hash(("b", "a"))

    def test_scalar_vs_singleton_tuple_differ_or_not_crash(self):
        # Both forms are legal; they only need to be deterministic.
        assert rand.key_hash("x") == rand.key_hash("x")

    def test_nested_tuples_supported(self):
        assert rand.key_hash((("a", 1), "b")) == rand.key_hash((("a", 1), "b"))

    def test_bool_distinct_from_int(self):
        assert rand.key_hash((True,)) != rand.key_hash((1,))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            rand.key_hash((object(),))


class TestScalarDraws:
    def test_uniform_in_range(self):
        for index in range(200):
            value = rand.uniform(("u", index), 3.0, 7.0)
            assert 3.0 <= value < 7.0

    def test_uniform_roughly_uniform(self):
        values = [rand.uniform(("mean", i)) for i in range(2000)]
        assert 0.45 < sum(values) / len(values) < 0.55

    def test_normal_moments(self):
        values = [rand.normal(("n", i), 10.0, 2.0) for i in range(4000)]
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert mean == pytest.approx(10.0, abs=0.2)
        assert var == pytest.approx(4.0, rel=0.2)

    def test_exponential_positive_and_mean(self):
        values = [rand.exponential(("e", i), 5.0) for i in range(4000)]
        assert all(v > 0 for v in values)
        assert sum(values) / len(values) == pytest.approx(5.0, rel=0.15)

    def test_randint_range_and_error(self):
        values = {rand.randint(("r", i), 2, 5) for i in range(200)}
        assert values == {2, 3, 4}
        with pytest.raises(ValueError):
            rand.randint("r", 5, 5)

    def test_chance_probability(self):
        hits = sum(rand.chance(("c", i), 0.3) for i in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_generator_reproducible(self):
        a = rand.generator(("g", 1)).integers(0, 1000, size=5)
        b = rand.generator(("g", 1)).integers(0, 1000, size=5)
        assert (a == b).all()


class TestBulkParity:
    """The vectorised draws must equal their scalar counterparts."""

    def test_bulk_uniform_matches_scalar_tuple_base(self):
        subkeys = np.arange(100, dtype=np.uint64)
        bulk = rand.bulk_uniform(("base", 7), subkeys, 2.0, 9.0)
        scalar = [rand.uniform(("base", 7, int(k)), 2.0, 9.0) for k in subkeys]
        assert np.allclose(bulk, scalar)

    def test_bulk_uniform_matches_scalar_scalar_base(self):
        subkeys = np.arange(50, dtype=np.uint64)
        bulk = rand.bulk_uniform("solo", subkeys)
        scalar = [rand.uniform(("solo", int(k))) for k in subkeys]
        assert np.allclose(bulk, scalar)

    def test_bulk_exponential_matches_scalar(self):
        subkeys = np.arange(50, dtype=np.uint64)
        bulk = rand.bulk_exponential(("exp", 1), subkeys, 3.0)
        scalar = [rand.exponential(("exp", 1, int(k)), 3.0) for k in subkeys]
        assert np.allclose(bulk, scalar)

    def test_bulk_pair_key_matches_scalar(self):
        a = np.array([1, 2, 3], dtype=np.uint64)
        b = np.array([9, 8, 7], dtype=np.uint64)
        bulk = rand.bulk_pair_key(a, b)
        scalar = [rand.pair_key(int(x), int(y)) for x, y in zip(a, b)]
        assert list(bulk) == scalar

    @given(st.integers(min_value=0, max_value=2**63 - 1), st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=50, deadline=None)
    def test_pair_key_property(self, a, b):
        bulk = rand.bulk_pair_key(np.array([a], dtype=np.uint64), np.array([b], dtype=np.uint64))
        assert int(bulk[0]) == rand.pair_key(a, b)

    @given(st.lists(st.integers(min_value=0, max_value=2**32), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_bulk_uniform_property(self, keys):
        arr = np.array(keys, dtype=np.uint64)
        bulk = rand.bulk_uniform(("prop", 3), arr)
        scalar = [rand.uniform(("prop", 3, int(k))) for k in keys]
        assert np.allclose(bulk, scalar)

    def test_bulk_hash_uint64_no_overflow_error(self):
        subkeys = np.array([2**63, 2**64 - 1], dtype=np.uint64)
        values = rand.bulk_hash("k", subkeys)
        assert values.dtype == np.uint64
