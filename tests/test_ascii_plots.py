"""Tests for the terminal CDF/scatter rendering."""

import math

from repro.analysis.ascii_plots import ascii_cdf, ascii_scatter


class TestAsciiCdf:
    def test_renders_series_and_legend(self):
        panel = ascii_cdf({"cbg": [1.0, 5.0, 10.0], "street": [2.0, 20.0, 50.0]})
        assert "*=cbg" in panel
        assert "o=street" in panel
        assert "km" in panel

    def test_empty_series_placeholder(self):
        assert ascii_cdf({}) == "(no data to plot)"
        assert ascii_cdf({"x": [float("nan"), None]}) == "(no data to plot)"

    def test_monotone_curve(self):
        panel = ascii_cdf({"s": list(range(1, 100))}, width=40, height=10)
        lines = [line for line in panel.split("\n") if "|" in line]
        # The top row (CDF=1) must have marks at the right edge, the bottom
        # row (CDF=0) none at the right edge.
        top = lines[0].split("|", 1)[1]
        assert "*" in top
        assert len(lines) == 10

    def test_linear_axis(self):
        panel = ascii_cdf({"s": [1.0, 2.0, 3.0]}, log_x=False)
        assert "(log)" not in panel

    def test_fixed_dimensions(self):
        panel = ascii_cdf({"s": [1, 10, 100]}, width=30, height=8)
        plot_lines = [line for line in panel.split("\n") if "|" in line]
        assert len(plot_lines) == 8
        assert all(len(line) <= 6 + 30 for line in plot_lines)


class TestAsciiScatter:
    def test_renders_points(self):
        panel = ascii_scatter([(1.0, 2.0), (10.0, 20.0), (100.0, 50.0)])
        assert "[3 points]" in panel
        assert "." in panel or "o" in panel

    def test_log_filters_nonpositive(self):
        panel = ascii_scatter([(0.0, 1.0), (1.0, 1.0), (2.0, 4.0)])
        assert "[2 points]" in panel

    def test_empty(self):
        assert ascii_scatter([]) == "(no data to plot)"
        assert ascii_scatter([(math.nan, 1.0)]) == "(no data to plot)"

    def test_density_marks_escalate(self):
        points = [(5.0, 5.0)] * 10
        panel = ascii_scatter(points, width=10, height=5)
        assert "#" in panel

    def test_linear_mode(self):
        panel = ascii_scatter([(-1.0, 2.0), (3.0, -4.0)], log=False)
        assert "[2 points]" in panel
        assert "(log)" not in panel
