"""Tests for greedy coverage subsets and the two-step VP selection."""

import numpy as np
import pytest

from repro.core.coverage import greedy_coverage_indices, greedy_coverage_subset
from repro.core.two_step import two_step_select


class TestGreedyCoverage:
    def test_count_respected(self):
        lats = np.array([0.0, 10.0, 20.0, 30.0, 40.0])
        lons = np.zeros(5)
        assert len(greedy_coverage_indices(lats, lons, 3)) == 3

    def test_clipped_to_population(self):
        lats = np.array([0.0, 10.0])
        lons = np.zeros(2)
        assert len(greedy_coverage_indices(lats, lons, 10)) == 2

    def test_zero_or_negative_empty(self):
        lats = np.array([0.0])
        lons = np.array([0.0])
        assert greedy_coverage_indices(lats, lons, 0) == []

    def test_no_duplicates(self, small_scenario):
        indices = greedy_coverage_indices(
            small_scenario.vp_lats, small_scenario.vp_lons, 50
        )
        assert len(indices) == len(set(indices))

    def test_spreads_over_clusters(self):
        # Two tight clusters: a 2-subset must take one point from each.
        lats = np.array([0.0, 0.1, 0.2, 50.0, 50.1, 50.2])
        lons = np.array([0.0, 0.1, 0.2, 50.0, 50.1, 50.2])
        chosen = greedy_coverage_indices(lats, lons, 2)
        sides = {index < 3 for index in chosen}
        assert sides == {True, False}

    def test_covers_continents(self, small_scenario):
        """A 30-VP cover must not leave whole continents empty."""
        subset = greedy_coverage_subset(small_scenario.vps, 30)
        continents = {
            small_scenario.world.city_of_host(
                small_scenario.world.host_by_id(vp.probe_id)
            ).continent
            for vp in subset
        }
        assert len(continents) >= 5

    def test_deterministic(self, small_scenario):
        a = greedy_coverage_indices(small_scenario.vp_lats, small_scenario.vp_lons, 20)
        b = greedy_coverage_indices(small_scenario.vp_lats, small_scenario.vp_lons, 20)
        assert a == b


class TestTwoStep:
    @pytest.fixture(scope="class")
    def setup(self, small_scenario):
        rep_min, rep_median, _reps = small_scenario.representative_matrices()
        step1 = greedy_coverage_indices(
            small_scenario.vp_lats, small_scenario.vp_lons, 30
        )
        return small_scenario, rep_median, step1

    def test_outcome_structure(self, setup):
        scenario, rep_median, step1 = setup
        target = scenario.targets[0]
        outcome = two_step_select(target.ip, scenario.vps, step1, rep_median[:, 0])
        assert outcome.step1_size == 30
        assert outcome.ping_measurements > 0
        assert outcome.chosen_vp_index is not None
        assert outcome.estimate is not None

    def test_measurement_accounting(self, setup):
        scenario, rep_median, step1 = setup
        outcome = two_step_select(scenario.targets[1].ip, scenario.vps, step1, rep_median[:, 1])
        # step1 reps + new step2 rows * reps + 1 final target ping.
        expected_minimum = len(step1) * 3 + 1
        assert outcome.ping_measurements >= expected_minimum

    def test_cheaper_than_original(self, setup):
        scenario, rep_median, step1 = setup
        original = len(scenario.vps) * 3
        total = 0
        for column in range(min(10, len(scenario.targets))):
            outcome = two_step_select(
                scenario.targets[column].ip, scenario.vps, step1, rep_median[:, column]
            )
            total += outcome.ping_measurements
        assert total < original * 10

    def test_accuracy_reasonable(self, setup):
        scenario, rep_median, step1 = setup
        errors = []
        for column, target in enumerate(scenario.targets):
            outcome = two_step_select(target.ip, scenario.vps, step1, rep_median[:, column])
            if outcome.estimate is not None:
                errors.append(outcome.estimate.distance_km(target.true_location))
        assert np.median(errors) < 150.0

    def test_all_nan_column_fails_gracefully(self, setup):
        scenario, rep_median, step1 = setup
        empty = np.full(len(scenario.vps), np.nan)
        outcome = two_step_select("203.0.113.1", scenario.vps, step1, empty)
        assert outcome.chosen_vp_index is None
        assert outcome.estimate is None
