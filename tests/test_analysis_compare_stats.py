"""Tests for distribution comparison and world statistics."""

import numpy as np
import pytest

from repro.analysis.compare import ks_distance, median_ratio
from repro.world.stats import compute_world_stats


class TestKsDistance:
    def test_identical_samples_zero(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        assert ks_distance(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 20.0]) == 1.0

    def test_partial_overlap(self):
        d = ks_distance([1.0, 2.0, 3.0, 4.0], [3.0, 4.0, 5.0, 6.0])
        assert 0.0 < d < 1.0

    def test_none_and_nan_dropped(self):
        d = ks_distance([1.0, None, float("nan"), 2.0], [1.0, 2.0])
        assert d == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])

    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 1, 200)
        b = rng.normal(0.5, 1, 150)
        fast = ks_distance(a, b)
        grid = np.concatenate([a, b])
        brute = max(
            abs((a <= x).mean() - (b <= x).mean()) for x in grid
        )
        assert fast == pytest.approx(brute)

    def test_symmetric(self):
        a = [1.0, 5.0, 9.0]
        b = [2.0, 4.0, 8.0, 16.0]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))


class TestMedianRatio:
    def test_basic(self):
        assert median_ratio([2.0, 4.0, 6.0], [1.0, 2.0, 3.0]) == 2.0

    def test_zero_denominator(self):
        with pytest.raises(ValueError):
            median_ratio([1.0], [0.0])

    def test_empty(self):
        with pytest.raises(ValueError):
            median_ratio([1.0], [])


class TestWorldStats:
    def test_counts_match_world(self, small_world):
        stats = compute_world_stats(small_world)
        assert stats.cities == len(small_world.cities)
        assert stats.anchors == len(small_world.anchors)
        assert stats.probes == len(small_world.probes)
        assert stats.ases == len(small_world.ases)

    def test_distributions_sane(self, small_world):
        stats = compute_world_stats(small_world)
        p10, p50, p90 = stats.probe_last_mile_ms_percentiles
        assert 0 < p10 <= p50 <= p90
        assert stats.anchor_last_mile_ms_percentiles[1] < p50
        assert stats.distinct_anchor_cities <= stats.anchors

    def test_metadata_jitter_visible(self, small_world):
        stats = compute_world_stats(small_world)
        config = small_world.config
        _p10, _p50, p90 = stats.probe_metadata_error_km_percentiles
        assert p90 <= config.probe_metadata_jitter_max_km + 1.0

    def test_continent_counts_sum(self, small_world):
        stats = compute_world_stats(small_world)
        assert sum(stats.continent_probe_counts.values()) == stats.probes

    def test_render_contains_sections(self, small_world):
        text = compute_world_stats(small_world).render()
        assert "cities" in text
        assert "AS type" in text
        assert "continent" in text


class TestParityExperiment:
    def test_runs_on_small(self, small_scenario):
        from repro.experiments.parity import run_parity

        output = run_parity(small_scenario)
        assert output.experiment_id == "parity"
        assert 0.0 <= output.measured["all_vps_ks"] <= 1.0
        assert output.measured["all_vps_median_ratio"] > 0.0
        # The paper's claim on our substrate: the distributions are close.
        assert output.measured["all_vps_ks"] < 0.4


class TestDatasetCli:
    def test_export_json(self, tmp_path, capsys):
        from repro.dataset import GeolocationDataset, main

        out = tmp_path / "baseline.json"
        code = main(
            ["--preset", "small", "--out", str(out), "--max-targets", "5"]
        )
        assert code == 0
        assert "wrote 5 records" in capsys.readouterr().out
        assert len(GeolocationDataset.read_json(out)) == 5

    def test_export_csv(self, tmp_path):
        from repro.dataset import GeolocationDataset, main

        out = tmp_path / "baseline.csv"
        main(
            ["--preset", "small", "--format", "csv", "--out", str(out), "--max-targets", "4"]
        )
        assert len(GeolocationDataset.read_csv(out)) == 4
