"""Tests for CBG: exact path, fast vectorised path, and their agreement."""

import numpy as np
import pytest

from repro.atlas.platform import ProbeInfo
from repro.constants import SOI_FRACTION_STREET_LEVEL, rtt_to_distance_km
from repro.core.cbg import (
    cbg_centroid_fast,
    cbg_errors_for_subsets,
    cbg_estimate,
    constraints_from_rtts,
)
from repro.geo.coords import GeoPoint, haversine_km


def _vp(vp_id: int, lat: float, lon: float) -> ProbeInfo:
    return ProbeInfo(
        probe_id=vp_id,
        address=f"10.0.{vp_id}.1",
        location=GeoPoint(lat, lon),
        asn=65000 + vp_id,
        is_anchor=False,
        probing_rate_pps=8.0,
    )


class TestConstraints:
    def test_unanswered_skipped(self):
        vps = [_vp(1, 0, 0), _vp(2, 1, 1)]
        circles = constraints_from_rtts(vps, {1: 5.0, 2: None})
        assert len(circles) == 1
        assert circles[0].center == GeoPoint(0, 0)

    def test_radius_follows_soi(self):
        vps = [_vp(1, 0, 0)]
        circles = constraints_from_rtts(vps, {1: 10.0}, SOI_FRACTION_STREET_LEVEL)
        assert circles[0].radius_km == pytest.approx(
            rtt_to_distance_km(10.0, SOI_FRACTION_STREET_LEVEL)
        )


class TestCbgEstimate:
    def test_no_answers_no_estimate(self):
        result, region = cbg_estimate("10.9.9.9", [_vp(1, 0, 0)], {1: None})
        assert result.estimate is None
        assert region is None

    def test_single_vp_estimate_at_vp(self):
        result, region = cbg_estimate("10.9.9.9", [_vp(1, 20, 30)], {1: 2.0})
        assert result.estimate.distance_km(GeoPoint(20, 30)) < 30.0
        assert region is not None

    def test_triangulation(self):
        # Three VPs around a point; RTTs consistent with ~ the center.
        center = GeoPoint(10.0, 10.0)
        from repro.geo.coords import destination
        from repro.constants import distance_to_min_rtt_ms

        vps = []
        rtts = {}
        for index, bearing in enumerate((0.0, 120.0, 240.0)):
            location = destination(center, bearing, 300.0)
            vps.append(_vp(index, location.lat, location.lon))
            rtts[index] = distance_to_min_rtt_ms(300.0) * 1.2
        result, region = cbg_estimate("10.9.9.9", vps, rtts)
        assert result.estimate.distance_km(center) < 100.0
        assert region.contains(result.estimate, tolerance_km=1.0)

    def test_details_present(self):
        result, _region = cbg_estimate("10.9.9.9", [_vp(1, 0, 0)], {1: 5.0})
        assert result.details["constraints"] == 1
        assert result.technique == "cbg"


class TestFastPath:
    def test_matches_exact_on_random_cases(self):
        rng = np.random.default_rng(42)
        for _case in range(25):
            count = int(rng.integers(2, 20))
            target = GeoPoint(float(rng.uniform(-50, 50)), float(rng.uniform(-150, 150)))
            vps = []
            rtts = {}
            lats, lons, rtt_arr = [], [], []
            from repro.geo.coords import destination
            from repro.constants import distance_to_min_rtt_ms

            for index in range(count):
                distance = float(rng.uniform(50, 4000))
                location = destination(target, float(rng.uniform(0, 360)), distance)
                rtt = distance_to_min_rtt_ms(distance) * float(rng.uniform(1.1, 1.7))
                vps.append(_vp(index, location.lat, location.lon))
                rtts[index] = rtt
                lats.append(location.lat)
                lons.append(location.lon)
                rtt_arr.append(rtt)
            exact, region = cbg_estimate("10.0.0.1", vps, rtts)
            fast = cbg_centroid_fast(
                np.array(lats), np.array(lons), np.array(rtt_arr)
            )
            assert fast is not None
            fast_point = GeoPoint(fast[0], fast[1])
            # The fast path is an approximation of the same region; both
            # estimates must be close relative to the region scale (the
            # tightest constraint circle bounds where the region can live).
            scale = max(
                100.0,
                exact.estimate.distance_km(target),
                0.2 * region.tightest.radius_km,
            )
            assert exact.estimate.distance_km(fast_point) < scale

    def test_all_nan_returns_none(self):
        assert (
            cbg_centroid_fast(np.array([0.0]), np.array([0.0]), np.array([np.nan]))
            is None
        )

    def test_single_circle_centroid_near_center(self):
        fast = cbg_centroid_fast(
            np.array([45.0]), np.array([9.0]), np.array([2.0])
        )
        assert haversine_km(fast[0], fast[1], 45.0, 9.0) < 30.0

    def test_errors_for_subsets_shapes(self, small_scenario):
        matrix = small_scenario.rtt_matrix()
        errors = cbg_errors_for_subsets(
            small_scenario.vp_lats,
            small_scenario.vp_lons,
            matrix,
            small_scenario.target_true_lats,
            small_scenario.target_true_lons,
            np.arange(20),
        )
        assert errors.shape == (len(small_scenario.targets),)
        defined = errors[~np.isnan(errors)]
        assert (defined >= 0).all()

    def test_more_vps_do_not_hurt_much(self, small_scenario):
        matrix = small_scenario.rtt_matrix()
        few = cbg_errors_for_subsets(
            small_scenario.vp_lats,
            small_scenario.vp_lons,
            matrix,
            small_scenario.target_true_lats,
            small_scenario.target_true_lons,
            np.arange(10),
        )
        many = cbg_errors_for_subsets(
            small_scenario.vp_lats,
            small_scenario.vp_lons,
            matrix,
            small_scenario.target_true_lats,
            small_scenario.target_true_lons,
            np.arange(len(small_scenario.vps)),
        )
        assert np.nanmedian(many) < np.nanmedian(few)

    def test_cbg_constraints_always_contain_target(self, small_scenario):
        """Physical validity: at 2/3c every constraint circle contains the
        target's true position (the core CBG soundness property)."""
        matrix = small_scenario.rtt_matrix()
        for column, target in enumerate(small_scenario.targets[:10]):
            rtts = matrix[:, column]
            answered = ~np.isnan(rtts)
            radii = np.array([rtt_to_distance_km(r) for r in rtts[answered]])
            true_loc = target.true_location
            # Distance from each VP's TRUE position to the target.
            vp_hosts = [
                small_scenario.world.host_by_id(int(vp_id))
                for vp_id in small_scenario.vp_ids[answered]
            ]
            distances = np.array(
                [vp.true_location.distance_km(true_loc) for vp in vp_hosts]
            )
            assert (radii >= distances - 1e-6).all()
