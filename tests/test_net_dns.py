"""Tests for the DNS resolver and CDN detection surface."""

import pytest

from repro.errors import UnknownHostError
from repro.net.asn import ASRecord, ASDB_CATEGORIES, CAIDA_TYPES
from repro.net.dns import DnsRecord, DnsResolver


class TestDnsRecord:
    def test_direct_record_not_cdn(self):
        record = DnsRecord("www.example.org", "10.0.0.1")
        assert not record.behind_cdn
        assert record.final_name == "www.example.org"

    def test_cdn_cname_detected(self):
        record = DnsRecord(
            "www.example.org",
            "10.0.0.1",
            cname_chain=("www.example.org.pop.anycastweb.org",),
        )
        assert record.behind_cdn
        assert record.final_name.endswith("anycastweb.org")

    def test_non_cdn_cname(self):
        record = DnsRecord(
            "www.example.org", "10.0.0.1", cname_chain=("lb.example.org",)
        )
        assert not record.behind_cdn


class TestDnsResolver:
    def test_register_and_resolve(self):
        resolver = DnsResolver()
        resolver.register(DnsRecord("a.example", "10.0.0.1"))
        assert resolver.resolve("a.example").ip == "10.0.0.1"

    def test_unknown_raises(self):
        resolver = DnsResolver()
        with pytest.raises(UnknownHostError):
            resolver.resolve("missing.example")

    def test_try_resolve_returns_none(self):
        assert DnsResolver().try_resolve("missing.example") is None

    def test_replacement(self):
        resolver = DnsResolver()
        resolver.register(DnsRecord("a.example", "10.0.0.1"))
        resolver.register(DnsRecord("a.example", "10.0.0.2"))
        assert resolver.resolve("a.example").ip == "10.0.0.2"
        assert len(resolver) == 1


class TestASRecord:
    def test_valid_record(self):
        record = ASRecord(65001, "AS-test", "Access", ASDB_CATEGORIES[0], "EU00")
        assert record.is_eyeball
        assert not record.is_transit

    def test_tier1_is_transit(self):
        record = ASRecord(65001, "t1", "Tier-1", ASDB_CATEGORIES[0], "EU00")
        assert record.is_transit

    def test_bad_type_rejected(self):
        with pytest.raises(ValueError):
            ASRecord(65001, "x", "Eyeball", ASDB_CATEGORIES[0], "EU00")

    def test_bad_category_rejected(self):
        with pytest.raises(ValueError):
            ASRecord(65001, "x", "Access", "Nonsense", "EU00")

    def test_bad_asn_rejected(self):
        with pytest.raises(ValueError):
            ASRecord(0, "x", "Access", ASDB_CATEGORIES[0], "EU00")

    def test_caida_types_cover_table2(self):
        assert set(CAIDA_TYPES) == {
            "Content",
            "Access",
            "Transit/Access",
            "Enterprise",
            "Tier-1",
            "Unknown",
        }

    def test_asdb_has_16_categories(self):
        assert len(ASDB_CATEGORIES) == 16
