"""CSR router graph parity + vectorized Topology regression suite.

Three pillars:

* **kernel parity** — over ≥10 fuzzed mini-worlds, the scalar
  ``path_km``, the vectorised ``bulk_path_km``, and the CSR bucketed
  column kernel agree *bitwise* on seeded host samples (same-city pairs
  force-included so the peering/trombone policies are always exercised);
* **route invariants** — ``build_route`` hops have non-decreasing
  cumulative distances ending exactly at ``path_km``; two routes from one
  source share their hop prefix while their waypoints coincide; and the
  CSR graph's explicit node walk maps 1:1 onto the route's router hops;
* **init vectorization regression** — the broadcasted hub mesh, the
  penalty-matrix city homing, and the gathered host tails are bitwise
  what the original per-row/per-city Python loops computed (the loops are
  re-implemented here as the reference).
"""

import numpy as np
import pytest

from repro.check.fuzz import fuzz_configs
from repro.geo.coords import GeoPoint, bulk_haversine_km, pairwise_haversine_km
from repro.topology import CsrRouterGraph, Topology
from repro.topology.graph import LAZY_PARAMS_CAPACITY
from repro.topology.routing import build_route
from repro.world import WorldConfig, build_world
from repro.world.hosts import Host, HostKind

N_FUZZ_WORLDS = 10


@pytest.fixture(scope="module")
def fuzz_worlds():
    pairs = []
    for config in fuzz_configs(N_FUZZ_WORLDS):
        world = build_world(config)
        pairs.append((world, Topology(world)))
    return pairs


@pytest.fixture(scope="module")
def small_world():
    world = build_world(WorldConfig.small())
    return world, Topology(world)


def _sample_hosts(world, seed, size=20):
    """A seeded host sample padded with same-city hosts (policy coverage)."""
    rng = np.random.default_rng(seed)
    count = world.static_host_count
    values, crowd = np.unique(world.host_city_ids, return_counts=True)
    crowded = np.flatnonzero(world.host_city_ids == values[np.argmax(crowd)])[:3]
    picked = rng.choice(count, size=min(size, count), replace=False)
    return np.unique(np.concatenate([picked, crowded]))


class TestCsrStructure:
    def test_layout_and_validate(self, small_world):
        world, topo = small_world
        graph = topo.csr()
        graph.validate()
        assert graph.n_nodes == (
            graph.hub_count + len(world.cities) + world.static_host_count
        )
        # Gateway rows carry the host tails, bitwise.
        gateway_rows = graph.indptr[graph.gateway_base : -1]
        assert np.array_equal(graph.weight_km[gateway_rows], topo.host_tail_km)
        # Metro rows lead with the uplink, bitwise.
        metro_rows = graph.indptr[graph.hub_count : graph.gateway_base]
        assert np.array_equal(graph.weight_km[metro_rows], topo.city_uplink_km)
        assert np.array_equal(graph.indices[metro_rows], topo.city_hub_index)
        # The backbone gather reproduces the mesh, including the diagonal.
        hubs = np.arange(graph.hub_count)
        mesh = graph.backbone_km(hubs[:, None], hubs[None, :])
        assert np.array_equal(mesh, topo.hub_distance_km)

    def test_csr_is_memoised_on_topology(self, small_world):
        _world, topo = small_world
        assert topo.csr() is topo.csr()

    def test_host_ids_out_of_range_raise(self, small_world):
        world, topo = small_world
        graph = topo.csr()
        with pytest.raises(IndexError):
            graph.path_km_matrix(np.array([0]), np.array([world.static_host_count]))
        with pytest.raises(IndexError):
            graph.node_ip(graph.n_nodes)


class TestKernelParity:
    def test_scalar_bulk_csr_bitwise_over_fuzz_worlds(self, fuzz_worlds):
        for world, topo in fuzz_worlds:
            graph = CsrRouterGraph.from_topology(topo)
            graph.validate()
            src = _sample_hosts(world, seed=world.config.seed)
            dst = _sample_hosts(world, seed=world.config.seed + 1)
            matrix = graph.path_km_matrix(src, dst)
            params = {
                int(h): topo.params_for(world.host_by_id(int(h)))
                for h in np.union1d(src, dst)
            }
            src_tail = topo.host_tail_km[src]
            src_uplink = topo.host_uplink_km[src]
            src_hub = topo.host_hub_index[src]
            src_city = world.host_city_ids[src]
            src_asn = world.host_asns[src]
            saw_same_city = False
            for column, d in enumerate(dst):
                bulk = topo.bulk_path_km(
                    src_tail, src_uplink, src_hub, src_city, src_asn, params[int(d)]
                )
                assert np.array_equal(bulk, matrix[:, column])
                for row, s in enumerate(src):
                    scalar = topo.path_km(params[int(s)], params[int(d)])
                    assert scalar == matrix[row, column]
                    assert graph.path_km_scalar(int(s), int(d)) == matrix[row, column]
                    if params[int(s)].city_id == params[int(d)].city_id:
                        saw_same_city = True
            assert saw_same_city, "sample never exercised the same-city policy"

    def test_route_totals_and_monotonicity(self, fuzz_worlds):
        for world, topo in fuzz_worlds:
            src = _sample_hosts(world, seed=17)[:6]
            dst = _sample_hosts(world, seed=18)[:6]
            for s in src:
                for d in dst:
                    if s == d:
                        continue
                    sp = topo.params_for(world.host_by_id(int(s)))
                    dp = topo.params_for(world.host_by_id(int(d)))
                    route = build_route(
                        topo, sp, dp, world.host_by_id(int(s)).ip,
                        world.host_by_id(int(d)).ip,
                    )
                    assert route.total_km == topo.path_km(sp, dp)
                    cumulative = [hop.cumulative_km for hop in route.hops]
                    assert all(
                        later >= earlier
                        for earlier, later in zip(cumulative, cumulative[1:])
                    )

    def test_routes_from_one_source_share_hop_prefix(self, fuzz_worlds):
        world, topo = fuzz_worlds[0]
        src = int(_sample_hosts(world, seed=19)[0])
        sp = topo.params_for(world.host_by_id(src))
        routes = []
        for d in _sample_hosts(world, seed=20)[:8]:
            if int(d) == src:
                continue
            dp = topo.params_for(world.host_by_id(int(d)))
            routes.append(
                build_route(
                    topo, sp, dp, world.host_by_id(src).ip, world.host_by_id(int(d)).ip
                )
            )
        for a in routes:
            for b in routes:
                shared = 0
                for hop_a, hop_b in zip(a.hops, b.hops):
                    if hop_a.ip != hop_b.ip:
                        break
                    # While the waypoints coincide, so do the distances.
                    assert hop_a.cumulative_km == hop_b.cumulative_km
                    shared += 1
                assert shared >= 2  # gateway + metro of the shared source

    def test_csr_walk_matches_build_route(self, fuzz_worlds):
        for world, topo in fuzz_worlds[:4]:
            graph = CsrRouterGraph.from_topology(topo)
            src = _sample_hosts(world, seed=21)[:5]
            dst = _sample_hosts(world, seed=22)[:5]
            for s in src:
                for d in dst:
                    if s == d:
                        continue
                    sp = topo.params_for(world.host_by_id(int(s)))
                    dp = topo.params_for(world.host_by_id(int(d)))
                    route = build_route(
                        topo, sp, dp, world.host_by_id(int(s)).ip,
                        world.host_by_id(int(d)).ip,
                    )
                    walked = [
                        graph.node_ip(node)
                        for node in graph.route_nodes(int(s), int(d))
                    ]
                    assert walked == [hop.ip for hop in route.hops[:-1]]


class TestVectorizedInitRegression:
    """The broadcasted __init__ is bitwise the old per-row/per-city loops."""

    def test_hub_mesh_matches_row_loop(self, small_world):
        world, topo = small_world
        hub_lats = np.array([world.city(c).location.lat for c in topo.hub_city_ids])
        hub_lons = np.array([world.city(c).location.lon for c in topo.hub_city_ids])
        reference = np.zeros((len(topo.hub_city_ids),) * 2)
        for i in range(len(topo.hub_city_ids)):
            reference[i, :] = bulk_haversine_km(
                hub_lats, hub_lons, float(hub_lats[i]), float(hub_lons[i])
            )
        assert np.array_equal(reference, topo.hub_distance_km)

    def test_city_homing_matches_per_city_loop(self, small_world):
        world, topo = small_world
        hub_lats = np.array([world.city(c).location.lat for c in topo.hub_city_ids])
        hub_lons = np.array([world.city(c).location.lon for c in topo.hub_city_ids])
        hub_continents = [world.city(c).continent for c in topo.hub_city_ids]
        for city in world.cities:
            distances = bulk_haversine_km(
                hub_lats, hub_lons, city.location.lat, city.location.lon
            )
            penalised = distances + np.array(
                [0.0 if cont == city.continent else 1500.0 for cont in hub_continents]
            )
            hub_index = int(np.argmin(penalised))
            assert hub_index == int(topo.city_hub_index[city.city_id])
            assert float(distances[hub_index]) == float(
                topo.city_uplink_km[city.city_id]
            )

    def test_host_tails_match_gathered_loop(self, small_world):
        world, topo = small_world
        metro_lats = np.array(
            [world.city(int(c)).location.lat for c in world.host_city_ids]
        )
        metro_lons = np.array(
            [world.city(int(c)).location.lon for c in world.host_city_ids]
        )
        reference = pairwise_haversine_km(
            world.host_true_lats, world.host_true_lons, metro_lats, metro_lons
        )
        assert np.array_equal(reference, topo.host_tail_km)


class TestLazyParamsBound:
    def _fake_host(self, world, offset):
        city = world.cities[offset % len(world.cities)]
        return Host(
            host_id=world.static_host_count + offset,
            ip=f"250.0.{offset >> 8 & 0xFF}.{offset & 0xFF}",
            kind=HostKind.WEBSERVER,
            true_location=city.location,
            recorded_location=city.location,
            city_id=city.city_id,
            asn=1,
            last_mile_ms=0.5,
        )

    def test_capacity_is_enforced(self, small_world, monkeypatch):
        world, _ = small_world
        monkeypatch.setattr("repro.topology.graph.LAZY_PARAMS_CAPACITY", 8)
        topo = Topology(world)
        for offset in range(20):
            topo.params_for(self._fake_host(world, offset))
        assert len(topo._lazy_params) == 8

    def test_eviction_recomputes_identically(self, small_world, monkeypatch):
        world, _ = small_world
        monkeypatch.setattr("repro.topology.graph.LAZY_PARAMS_CAPACITY", 4)
        topo = Topology(world)
        first = topo.params_for(self._fake_host(world, 0))
        for offset in range(1, 10):  # evicts entry 0
            topo.params_for(self._fake_host(world, offset))
        assert first.host_id not in topo._lazy_params
        assert topo.params_for(self._fake_host(world, 0)) == first

    def test_recent_use_is_retained(self, small_world, monkeypatch):
        world, _ = small_world
        monkeypatch.setattr("repro.topology.graph.LAZY_PARAMS_CAPACITY", 4)
        topo = Topology(world)
        keep = self._fake_host(world, 0)
        topo.params_for(keep)
        for offset in range(1, 4):
            topo.params_for(self._fake_host(world, offset))
        topo.params_for(keep)  # refresh recency
        topo.params_for(self._fake_host(world, 4))  # evicts offset 1, not 0
        assert keep.host_id in topo._lazy_params

    def test_default_capacity_is_generous(self):
        assert LAZY_PARAMS_CAPACITY >= 1024


class TestWorldHostsCache:
    def test_hosts_tuple_is_cached(self, small_world):
        world, _ = small_world
        assert world.hosts is world.hosts

    def test_lazy_registration_invalidates(self, small_world):
        world, topo = small_world
        before = world.hosts
        city = world.cities[0]
        host = Host(
            host_id=world.next_host_id(),
            ip="251.0.0.1",
            kind=HostKind.WEBSERVER,
            true_location=city.location,
            recorded_location=city.location,
            city_id=city.city_id,
            asn=1,
            last_mile_ms=0.5,
        )
        world.register_host(host)
        after = world.hosts
        assert after is not before
        assert after[-1] is host
        assert len(after) == len(before) + 1
        assert world.hosts is after
