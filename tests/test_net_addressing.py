"""Tests for IPv4 addressing primitives and allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net.addressing import (
    AddressAllocator,
    Prefix,
    Slash24Pool,
    int_to_ip,
    ip_to_int,
    prefix24_of,
    same_prefix24,
)


class TestConversions:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"
        assert int_to_ip(0xFFFFFFFF) == "255.255.255.255"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    @settings(max_examples=200, deadline=None)
    def test_round_trip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    def test_invalid_strings(self):
        for bad in ("1.2.3", "1.2.3.4.5", "a.b.c.d", "1.2.3.256", ""):
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_invalid_int(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(2**32)


class TestPrefix:
    def test_contains(self):
        prefix = Prefix.parse("10.1.2.0/24")
        assert prefix.contains("10.1.2.99")
        assert not prefix.contains("10.1.3.1")

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            Prefix(ip_to_int("10.1.2.1"), 24)

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            Prefix(0, 33)

    def test_size(self):
        assert Prefix.parse("10.0.0.0/24").size == 256
        assert Prefix.parse("10.0.0.0/16").size == 65536

    def test_str_round_trip(self):
        prefix = Prefix.parse("192.168.4.0/22")
        assert Prefix.parse(str(prefix)) == prefix

    def test_addresses_enumeration(self):
        prefix = Prefix.parse("10.0.0.0/30")
        assert list(prefix.addresses()) == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.0")

    def test_ordering(self):
        assert Prefix.parse("10.0.0.0/24") < Prefix.parse("10.0.1.0/24")


class TestPrefix24Helpers:
    def test_prefix24_of(self):
        assert str(prefix24_of("10.1.2.34")) == "10.1.2.0/24"

    def test_same_prefix24(self):
        assert same_prefix24("10.1.2.3", "10.1.2.254")
        assert not same_prefix24("10.1.2.3", "10.1.3.3")


class TestAllocator:
    def test_disjoint_slash16s(self):
        allocator = AddressAllocator()
        a = allocator.allocate_slash16()
        b = allocator.allocate_slash16()
        assert a != b
        assert not a.contains_int(b.base)

    def test_first_octet_bounds(self):
        with pytest.raises(ConfigurationError):
            AddressAllocator(first_octet=0)
        with pytest.raises(ConfigurationError):
            AddressAllocator(first_octet=240)

    def test_slash24_pool_disjoint(self):
        allocator = AddressAllocator()
        pool = Slash24Pool(allocator)
        prefixes = [pool.allocate_slash24() for _ in range(300)]
        assert len(set(prefixes)) == 300
        # 300 /24s require two /16 blocks.
        assert len(pool.blocks) == 2

    def test_two_pools_never_collide(self):
        allocator = AddressAllocator()
        pool_a = Slash24Pool(allocator)
        pool_b = Slash24Pool(allocator)
        a = {pool_a.allocate_slash24() for _ in range(10)}
        b = {pool_b.allocate_slash24() for _ in range(10)}
        assert not a & b
