"""Tests for routers, the topology graph, and route construction."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.topology.graph import Topology
from repro.topology.routers import RouterRole, is_router_ip, parse_router_ip, router_ip
from repro.topology.routing import build_route


@pytest.fixture(scope="module")
def topology(small_platform):
    return small_platform.topology


class TestRouterAddresses:
    def test_round_trip(self):
        for role in RouterRole:
            for index in (0, 1, 255, 65535, 100000):
                ip = router_ip(role, index)
                assert parse_router_ip(ip) == (role, index)

    def test_roles_disjoint(self):
        assert router_ip(RouterRole.METRO, 5) != router_ip(RouterRole.HUB, 5)

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            router_ip(RouterRole.METRO, 1 << 24)

    def test_is_router_ip(self):
        assert is_router_ip(router_ip(RouterRole.GATEWAY, 12))
        assert not is_router_ip("11.0.0.1")
        assert not is_router_ip("not-an-ip")

    def test_parse_rejects_host_addresses(self):
        with pytest.raises(ValueError):
            parse_router_ip("11.0.0.1")


class TestPathLengths:
    def test_path_at_least_direct_distance(self, small_world, topology):
        hosts = small_world.hosts[: small_world.static_host_count : 37]
        for a in hosts[:12]:
            for b in hosts[12:24]:
                if a.host_id == b.host_id:
                    continue
                path = topology.path_km(topology.params_for(a), topology.params_for(b))
                direct = a.true_location.distance_km(b.true_location)
                # Tails measure to the metro, so allow metro-offset slack.
                assert path >= direct - 1e-6 - 2 * 60.0

    def test_path_symmetric(self, small_world, topology):
        a = small_world.anchors[0]
        b = small_world.probes[5]
        ab = topology.path_km(topology.params_for(a), topology.params_for(b))
        ba = topology.path_km(topology.params_for(b), topology.params_for(a))
        assert ab == pytest.approx(ba)

    def test_same_city_peered_path_short(self, small_world, topology):
        # Same host to a same-AS sibling: must route through the metro only.
        anchor = small_world.anchors[0]
        reps = [
            h
            for h in small_world.hosts
            if h.city_id == anchor.city_id and h.asn == anchor.asn and h is not anchor
        ]
        assert reps, "expected /24 siblings in the anchor's city"
        params_a = topology.params_for(anchor)
        params_b = topology.params_for(reps[0])
        path = topology.path_km(params_a, params_b)
        assert path == pytest.approx(params_a.tail_km + params_b.tail_km)

    def test_bulk_matches_scalar(self, small_world, topology):
        dst = small_world.anchors[3]
        dst_params = topology.params_for(dst)
        src_ids = np.array([h.host_id for h in small_world.probes[:200]])
        bulk = topology.bulk_path_km(
            topology.host_tail_km[src_ids],
            topology.host_uplink_km[src_ids],
            topology.host_hub_index[src_ids],
            small_world.host_city_ids[src_ids],
            small_world.host_asns[src_ids],
            dst_params,
        )
        for row, src in enumerate(small_world.probes[:200]):
            scalar = topology.path_km(topology.params_for(src), dst_params)
            assert bulk[row] == pytest.approx(scalar)

    def test_peering_deterministic(self, topology):
        first = topology.locally_peered(3, 10001, 10002)
        assert all(topology.locally_peered(3, 10001, 10002) == first for _ in range(5))
        # Symmetric in the AS pair.
        assert topology.locally_peered(3, 10002, 10001) == first

    def test_same_as_always_peered(self, topology):
        assert topology.locally_peered(0, 10001, 10001)


class TestRoutes:
    def test_route_total_matches_path(self, small_world, topology):
        pairs = [
            (small_world.anchors[0], small_world.probes[0]),
            (small_world.anchors[1], small_world.anchors[2]),
            (small_world.probes[3], small_world.probes[4]),
        ]
        for a, b in pairs:
            pa, pb = topology.params_for(a), topology.params_for(b)
            route = build_route(topology, pa, pb, a.ip, b.ip)
            assert route.total_km == pytest.approx(topology.path_km(pa, pb))

    def test_route_starts_gateway_ends_destination(self, small_world, topology):
        a, b = small_world.anchors[0], small_world.probes[0]
        route = build_route(
            topology, topology.params_for(a), topology.params_for(b), a.ip, b.ip
        )
        assert parse_router_ip(route.hops[0].ip)[0] is RouterRole.GATEWAY
        assert route.hops[-1].ip == b.ip

    def test_cumulative_distances_monotone(self, small_world, topology):
        a, b = small_world.anchors[0], small_world.probes[10]
        route = build_route(
            topology, topology.params_for(a), topology.params_for(b), a.ip, b.ip
        )
        cums = [hop.cumulative_km for hop in route.hops]
        assert cums == sorted(cums)

    def test_shared_prefix_same_source(self, small_world, topology):
        # Two routes from one VP to hosts in the same remote city must share
        # their waypoint prefix — the street level last-common-hop premise.
        vp = small_world.probes[0]
        city_hosts = [
            h
            for h in small_world.anchors
            if h.city_id != vp.city_id
        ]
        target = city_hosts[0]
        siblings = [h for h in small_world.hosts if h.city_id == target.city_id and h is not target]
        assert siblings
        route_a = build_route(
            topology, topology.params_for(vp), topology.params_for(target), vp.ip, target.ip
        )
        route_b = build_route(
            topology, topology.params_for(vp), topology.params_for(siblings[0]), vp.ip, siblings[0].ip
        )
        shared = 0
        for hop_a, hop_b in zip(route_a.hops, route_b.hops):
            if hop_a.ip != hop_b.ip:
                break
            shared += 1
        assert shared >= 2  # at least gateway + metro of the VP
