"""Tests for the asynchronous measurement API layer."""

import pytest

from repro.atlas.api import MeasurementApi, MeasurementStatus
from repro.atlas.client import AtlasClient
from repro.atlas.clock import SimClock
from repro.atlas.credits import CreditLedger
from repro.atlas.platform import API_OVERHEAD_S, RESULT_LATENCY_RANGE_S, AtlasPlatform
from repro.errors import CreditExhaustedError, MeasurementError
from repro.faults import FaultInjector, FaultPlan


@pytest.fixture
def api(small_platform):
    return MeasurementApi(small_platform, SimClock(), CreditLedger())


class TestScheduling:
    def test_create_returns_id_and_charges(self, api, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:4]]
        measurement_id = api.create_ping(probe_ids, small_world.anchors[0].ip)
        assert measurement_id >= 1000000
        assert api.ledger.spent == 4 * 3
        assert api.clock.now_s == API_OVERHEAD_S

    def test_ids_unique(self, api, small_world):
        probe_ids = [small_world.probes[0].host_id]
        a = api.create_ping(probe_ids, small_world.anchors[0].ip)
        b = api.create_ping(probe_ids, small_world.anchors[0].ip)
        assert a != b

    def test_unknown_probe_rejected(self, api):
        with pytest.raises(MeasurementError):
            api.create_ping([10**9], "11.0.0.1")

    def test_budget_enforced(self, small_platform, small_world):
        api = MeasurementApi(small_platform, SimClock(), CreditLedger(budget=5))
        with pytest.raises(CreditExhaustedError):
            api.create_ping(
                [p.host_id for p in small_world.probes[:4]], small_world.anchors[0].ip
            )


class TestPolling:
    def test_results_unavailable_before_latency(self, api, small_world):
        measurement_id = api.create_ping(
            [small_world.probes[0].host_id], small_world.anchors[0].ip
        )
        assert api.status(measurement_id) is MeasurementStatus.SCHEDULED
        assert api.fetch_results(measurement_id) is None
        assert api.pending_count() == 1

    def test_results_after_clock_advance(self, api, small_world):
        probe = small_world.probes[0]
        measurement_id = api.create_ping([probe.host_id], small_world.anchors[0].ip)
        api.clock.advance(RESULT_LATENCY_RANGE_S[1] + 1.0, "poll-wait")
        assert api.status(measurement_id) is MeasurementStatus.DONE
        results = api.fetch_results(measurement_id)
        assert probe.host_id in results
        assert results[probe.host_id] is None or results[probe.host_id] > 0

    def test_wait_blocks_to_completion(self, api, small_world):
        probe = small_world.probes[1]
        measurement_id = api.create_ping([probe.host_id], small_world.anchors[1].ip)
        results = api.wait(measurement_id)
        low, high = RESULT_LATENCY_RANGE_S
        assert API_OVERHEAD_S + low <= api.clock.now_s <= API_OVERHEAD_S + high
        assert probe.host_id in results
        assert api.pending_count() == 0

    def test_wait_matches_client_results(self, api, small_world, small_platform):
        """The async layer returns the same values as the sync platform."""
        probe = small_world.probes[2]
        target = small_world.anchors[2]
        measurement_id = api.create_ping([probe.host_id], target.ip, seq=6)
        async_results = api.wait(measurement_id)
        sync_results = small_platform.ping([probe.host_id], target.ip, seq=6)
        assert async_results == sync_results

    def test_traceroute_results(self, api, small_world):
        probe = small_world.probes[0]
        target = small_world.anchors[0]
        measurement_id = api.create_traceroute([probe.host_id], target.ip)
        results = api.wait(measurement_id)
        trace = results[probe.host_id]
        assert trace is not None and trace.reached
        assert trace.hops[-1].ip == target.ip

    def test_unknown_id_rejected(self, api):
        with pytest.raises(MeasurementError):
            api.status(42)
        with pytest.raises(MeasurementError):
            api.fetch_results(42)
        with pytest.raises(MeasurementError):
            api.wait(42)

    def test_results_cached_after_first_fetch(self, api, small_world):
        probe = small_world.probes[0]
        measurement_id = api.create_ping([probe.host_id], small_world.anchors[0].ip)
        first = api.wait(measurement_id)
        second = api.fetch_results(measurement_id)
        assert first is second


class TestAccountingParity:
    """Regression: measurements are counted exactly once, at schedule time.

    The lazy :meth:`MeasurementApi.fetch_results` execution delivers results
    through the platform's accounting-free ``execute_*`` path, so the sync
    (:class:`AtlasClient`) and async paths must always report identical
    ledger totals for the same campaign.
    """

    def test_sync_and_async_totals_identical(self, small_platform, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:3]]
        targets = [a.ip for a in small_world.anchors[:3]]

        client = AtlasClient(small_platform)
        for seq, target in enumerate(targets):
            client.ping_from(probe_ids, target, seq=seq)
        client.traceroute_from(probe_ids[0], targets[0])

        api = MeasurementApi(small_platform, SimClock(), CreditLedger())
        ids = [
            api.create_ping(probe_ids, target, seq=seq)
            for seq, target in enumerate(targets)
        ]
        ids.append(api.create_traceroute([probe_ids[0]], targets[0]))
        for measurement_id in ids:
            api.wait(measurement_id)

        assert api.ledger.spent == client.ledger.spent
        assert api.ledger.counts() == client.ledger.counts()
        assert api.ledger.measurement_count() == client.ledger.measurement_count()

    def test_fetching_results_charges_nothing(self, api, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:4]]
        measurement_id = api.create_ping(probe_ids, small_world.anchors[0].ip)
        spent_at_schedule = api.ledger.spent
        counted_at_schedule = api.ledger.measurement_count()
        api.wait(measurement_id)
        api.fetch_results(measurement_id)
        api.fetch_results(measurement_id)
        assert api.ledger.spent == spent_at_schedule
        assert api.ledger.measurement_count() == counted_at_schedule

    def test_parity_holds_under_faults(self, small_world):
        """Fault layers must not reintroduce double counting: a scheduled
        measurement delivered later is still one measurement."""
        plan = FaultPlan(seed=4, packet_loss_rate=0.3, probe_disconnect_rate=0.1)
        platform = AtlasPlatform(small_world, faults=FaultInjector(plan))
        probe_ids = [p.host_id for p in small_world.probes[:4]]
        target = small_world.anchors[0].ip

        api = MeasurementApi(platform, SimClock(), CreditLedger())
        measurement_id = api.create_ping(probe_ids, target, seq=3)
        spent = api.ledger.spent
        results = api.wait(measurement_id)
        assert api.ledger.spent == spent  # delivery is free
        assert set(results) == set(probe_ids)

        sync_results = platform.ping(probe_ids, target, seq=3, clock=SimClock())
        # Same world, same fault draws (window 0 in both): identical values.
        assert results == sync_results
