"""Tests for the asynchronous measurement API layer."""

import pytest

from repro.atlas.api import MeasurementApi, MeasurementStatus
from repro.atlas.clock import SimClock
from repro.atlas.credits import CreditLedger
from repro.atlas.platform import API_OVERHEAD_S, RESULT_LATENCY_RANGE_S
from repro.errors import CreditExhaustedError, MeasurementError


@pytest.fixture
def api(small_platform):
    return MeasurementApi(small_platform, SimClock(), CreditLedger())


class TestScheduling:
    def test_create_returns_id_and_charges(self, api, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:4]]
        measurement_id = api.create_ping(probe_ids, small_world.anchors[0].ip)
        assert measurement_id >= 1000000
        assert api.ledger.spent == 4 * 3
        assert api.clock.now_s == API_OVERHEAD_S

    def test_ids_unique(self, api, small_world):
        probe_ids = [small_world.probes[0].host_id]
        a = api.create_ping(probe_ids, small_world.anchors[0].ip)
        b = api.create_ping(probe_ids, small_world.anchors[0].ip)
        assert a != b

    def test_unknown_probe_rejected(self, api):
        with pytest.raises(MeasurementError):
            api.create_ping([10**9], "11.0.0.1")

    def test_budget_enforced(self, small_platform, small_world):
        api = MeasurementApi(small_platform, SimClock(), CreditLedger(budget=5))
        with pytest.raises(CreditExhaustedError):
            api.create_ping(
                [p.host_id for p in small_world.probes[:4]], small_world.anchors[0].ip
            )


class TestPolling:
    def test_results_unavailable_before_latency(self, api, small_world):
        measurement_id = api.create_ping(
            [small_world.probes[0].host_id], small_world.anchors[0].ip
        )
        assert api.status(measurement_id) is MeasurementStatus.SCHEDULED
        assert api.fetch_results(measurement_id) is None
        assert api.pending_count() == 1

    def test_results_after_clock_advance(self, api, small_world):
        probe = small_world.probes[0]
        measurement_id = api.create_ping([probe.host_id], small_world.anchors[0].ip)
        api.clock.advance(RESULT_LATENCY_RANGE_S[1] + 1.0, "poll-wait")
        assert api.status(measurement_id) is MeasurementStatus.DONE
        results = api.fetch_results(measurement_id)
        assert probe.host_id in results
        assert results[probe.host_id] is None or results[probe.host_id] > 0

    def test_wait_blocks_to_completion(self, api, small_world):
        probe = small_world.probes[1]
        measurement_id = api.create_ping([probe.host_id], small_world.anchors[1].ip)
        results = api.wait(measurement_id)
        low, high = RESULT_LATENCY_RANGE_S
        assert API_OVERHEAD_S + low <= api.clock.now_s <= API_OVERHEAD_S + high
        assert probe.host_id in results
        assert api.pending_count() == 0

    def test_wait_matches_client_results(self, api, small_world, small_platform):
        """The async layer returns the same values as the sync platform."""
        probe = small_world.probes[2]
        target = small_world.anchors[2]
        measurement_id = api.create_ping([probe.host_id], target.ip, seq=6)
        async_results = api.wait(measurement_id)
        sync_results = small_platform.ping([probe.host_id], target.ip, seq=6)
        assert async_results == sync_results

    def test_traceroute_results(self, api, small_world):
        probe = small_world.probes[0]
        target = small_world.anchors[0]
        measurement_id = api.create_traceroute([probe.host_id], target.ip)
        results = api.wait(measurement_id)
        trace = results[probe.host_id]
        assert trace is not None and trace.reached
        assert trace.hops[-1].ip == target.ip

    def test_unknown_id_rejected(self, api):
        with pytest.raises(MeasurementError):
            api.status(42)
        with pytest.raises(MeasurementError):
            api.fetch_results(42)
        with pytest.raises(MeasurementError):
            api.wait(42)

    def test_results_cached_after_first_fetch(self, api, small_world):
        probe = small_world.probes[0]
        measurement_id = api.create_ping([probe.host_id], small_world.anchors[0].ip)
        first = api.wait(measurement_id)
        second = api.fetch_results(measurement_id)
        assert first is second
