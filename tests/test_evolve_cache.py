"""Snapshot-delta cache: incremental re-measurement that can go cold.

Pins the four paths of :class:`~repro.cache.deltas.SnapshotDeltaStore`
(``docs/EVOLUTION.md``): a cold build measures only moved columns and
stores deltas, a warm rebuild issues **zero** simulated API calls while
splicing byte-identical matrices, a corrupted delta artifact is detected
through its embedded digest and falls back to a full replay, and a delta
written by a *different* timeline is rejected on snapshot-digest
provenance. Every path is counter-asserted — the cheap path must prove
it was cheap, not just correct.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.artifacts import ArtifactCache
from repro.cache.deltas import DELTA_VERSION, SnapshotDeltaStore, delta_key
from repro.evolve import EvolutionConfig, EvolutionTimeline, revision_matrix
from repro.experiments.scenario import Scenario, config_for_preset
from repro.obs import Observer

_CHURN = EvolutionConfig(
    revisions=3,
    prefix_move_share=0.30,
    migration_share=0.10,
    probe_session_share=0.15,
)


@pytest.fixture(scope="module")
def quick_scenario():
    return Scenario.build(config_for_preset("quick"))


def _store(tmp_path, scenario, config=_CHURN):
    obs = Observer()
    timeline = EvolutionTimeline(scenario.world, config, obs=obs)
    cache = ArtifactCache(tmp_path, obs=obs)
    return SnapshotDeltaStore(cache, timeline, scenario, obs=obs), obs


def _counters(obs):
    wanted = (
        "atlas.api_calls",
        "cache.corrupt",
        "evolve.delta.hit",
        "evolve.delta.incremental",
        "evolve.delta.full",
        "evolve.delta.mismatch",
    )
    counters = obs.metrics.counters()
    return {name: int(counters.get(name, 0)) for name in wanted}


class TestColdWarm:
    def test_warm_rebuild_is_free_and_bitwise(self, tmp_path, quick_scenario):
        cold, cold_obs = _store(tmp_path, quick_scenario)
        cold_matrices = [cold.matrix(k) for k in range(_CHURN.revisions + 1)]
        cold_counts = _counters(cold_obs)
        assert cold_counts["evolve.delta.incremental"] == _CHURN.revisions
        assert cold_counts["evolve.delta.hit"] == 0
        # One API call per revision with moved columns: the cold path
        # measured moved columns only, never the full matrix.
        assert 0 < cold_counts["atlas.api_calls"] <= _CHURN.revisions

        warm, warm_obs = _store(tmp_path, quick_scenario)
        warm_matrices = [warm.matrix(k) for k in range(_CHURN.revisions + 1)]
        warm_counts = _counters(warm_obs)
        assert warm_counts["evolve.delta.hit"] == _CHURN.revisions
        assert warm_counts["evolve.delta.incremental"] == 0
        assert warm_counts["atlas.api_calls"] == 0  # zero re-measurement
        for cold_m, warm_m in zip(cold_matrices, warm_matrices):
            np.testing.assert_array_equal(cold_m, warm_m)

    def test_deltas_match_the_full_replay(self, tmp_path, quick_scenario):
        store, _ = _store(tmp_path, quick_scenario)
        timeline = store.timeline
        for revision in range(1, _CHURN.revisions + 1):
            np.testing.assert_array_equal(
                store.matrix(revision),
                revision_matrix(timeline, quick_scenario, revision),
            )

    def test_store_memoizes_per_instance(self, tmp_path, quick_scenario):
        store, obs = _store(tmp_path, quick_scenario)
        first = store.matrix(2)
        assert store.matrix(2) is first
        assert _counters(obs)["evolve.delta.incremental"] == 2


class TestCorruption:
    def test_corrupted_delta_falls_back_to_full_replay(
        self, tmp_path, quick_scenario
    ):
        cold, _ = _store(tmp_path, quick_scenario)
        for revision in range(_CHURN.revisions + 1):
            cold.matrix(revision)
        victim = cold.cache.path(cold._name(2), cold.key)
        blob = bytearray(victim.read_bytes())
        blob[100] ^= 0xFF
        victim.write_bytes(bytes(blob))

        warm, obs = _store(tmp_path, quick_scenario)
        matrices = [warm.matrix(k) for k in range(_CHURN.revisions + 1)]
        counts = _counters(obs)
        assert counts["cache.corrupt"] == 1
        assert counts["evolve.delta.full"] == 1
        assert counts["evolve.delta.hit"] == _CHURN.revisions - 1
        for revision, matrix in enumerate(matrices):
            np.testing.assert_array_equal(
                matrix, cold.matrix(revision)
            )
        # The fallback re-stored a healthy delta: next rebuild is warm.
        healed, healed_obs = _store(tmp_path, quick_scenario)
        healed.matrix(_CHURN.revisions)
        assert _counters(healed_obs)["evolve.delta.hit"] == _CHURN.revisions

    def test_foreign_timeline_delta_is_rejected_on_provenance(
        self, tmp_path, quick_scenario
    ):
        cold, _ = _store(tmp_path, quick_scenario)
        for revision in range(_CHURN.revisions + 1):
            cold.matrix(revision)
        # A different world evolving under the same churn config would
        # produce a different key; fake the collision by planting a
        # foreign snapshot digest inside an otherwise valid artifact.
        from repro.cache.artifacts import json_payload_array, json_payload_object

        name, key = cold._name(1), cold.key
        arrays = cold.cache.load(name, key)
        meta = json_payload_object(arrays["meta_json"])
        meta["digest"] = "0" * 64
        arrays["meta_json"] = json_payload_array(meta)
        cold.cache.store(name, key, arrays)

        warm, obs = _store(tmp_path, quick_scenario)
        warm.matrix(1)
        counts = _counters(obs)
        assert counts["evolve.delta.mismatch"] == 1
        assert counts["evolve.delta.incremental"] == 1
        np.testing.assert_array_equal(warm.matrix(1), cold.matrix(1))


class TestKeying:
    def test_key_covers_world_and_churn_configs(self, quick_scenario):
        base = delta_key(quick_scenario.world.config, _CHURN)
        other_world = delta_key(
            config_for_preset("quick", seed=99), _CHURN
        )
        other_churn = delta_key(
            quick_scenario.world.config,
            EvolutionConfig(
                revisions=_CHURN.revisions,
                prefix_move_share=0.31,
                migration_share=_CHURN.migration_share,
                probe_session_share=_CHURN.probe_session_share,
            ),
        )
        assert len({base, other_world, other_churn}) == 3
        assert DELTA_VERSION in ("evolve-deltas-v1",)

    def test_different_configs_never_share_artifacts(
        self, tmp_path, quick_scenario
    ):
        cold, _ = _store(tmp_path, quick_scenario)
        cold.matrix(1)
        milder = EvolutionConfig(
            revisions=3,
            prefix_move_share=0.10,
            migration_share=0.10,
            probe_session_share=0.15,
        )
        other, obs = _store(tmp_path, quick_scenario, config=milder)
        other.matrix(1)
        counts = _counters(obs)
        assert counts["evolve.delta.hit"] == 0
        assert counts["evolve.delta.incremental"] == 1
