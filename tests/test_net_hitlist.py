"""Tests for the hitlist and representative selection (§4.1.3)."""

import pytest

from repro.net.addressing import prefix24_of, same_prefix24
from repro.net.hitlist import Hitlist, HitlistEntry


class TestHitlistEntry:
    def test_score_bounds(self):
        with pytest.raises(ValueError):
            HitlistEntry("1.2.3.4", 100)
        with pytest.raises(ValueError):
            HitlistEntry("1.2.3.4", -1)

    def test_responsive(self):
        assert HitlistEntry("1.2.3.4", 50).responsive
        assert not HitlistEntry("1.2.3.4", 0).responsive


class TestRepresentatives:
    def test_highest_scores_win(self):
        hitlist = Hitlist()
        hitlist.add("10.0.0.10", 90)
        hitlist.add("10.0.0.20", 50)
        hitlist.add("10.0.0.30", 70)
        hitlist.add("10.0.0.40", 10)
        reps = hitlist.representatives("10.0.0.99", count=3)
        assert reps == ["10.0.0.10", "10.0.0.30", "10.0.0.20"]

    def test_target_itself_excluded(self):
        hitlist = Hitlist()
        hitlist.add("10.0.0.10", 90)
        hitlist.add("10.0.0.20", 80)
        hitlist.add("10.0.0.30", 70)
        hitlist.add("10.0.0.40", 60)
        reps = hitlist.representatives("10.0.0.10", count=3)
        assert "10.0.0.10" not in reps
        assert len(reps) == 3

    def test_filler_addresses_in_same_slash24(self):
        hitlist = Hitlist(seed=3)
        hitlist.add("10.0.0.10", 90)  # only one responsive address
        reps = hitlist.representatives("10.0.0.99", count=3)
        assert len(reps) == 3
        assert len(set(reps)) == 3
        for rep in reps:
            assert same_prefix24(rep, "10.0.0.99")
            assert rep != "10.0.0.99"

    def test_empty_prefix_all_fillers(self):
        hitlist = Hitlist(seed=1)
        reps = hitlist.representatives("172.30.1.1", count=3)
        assert len(set(reps)) == 3
        assert all(same_prefix24(rep, "172.30.1.1") for rep in reps)

    def test_deterministic(self):
        a = Hitlist(seed=5)
        b = Hitlist(seed=5)
        assert a.representatives("10.1.1.1") == b.representatives("10.1.1.1")

    def test_entries_for_sorted(self):
        hitlist = Hitlist()
        hitlist.add("10.0.0.1", 10)
        hitlist.add("10.0.0.2", 99)
        entries = hitlist.entries_for(prefix24_of("10.0.0.1"))
        assert [e.score for e in entries] == [99, 10]

    def test_len(self):
        hitlist = Hitlist()
        hitlist.add("10.0.0.1", 10)
        hitlist.add("10.0.1.1", 20)
        assert len(hitlist) == 2
