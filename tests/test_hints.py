"""Hint-based geolocation: scheme, trie, pipeline, hybrid, determinism.

The acceptance criteria this file pins:

* hint finding is byte-identical serial vs ``REPRO_WORKERS=2``, including
  the golden ``hint-*`` event stream and the metrics report;
* every confirmed hint passes ``rtt.soi_bound`` feasibility (a raising
  checker stays silent on the hinted distances);
* the hint+CBG hybrid's median error is no worse than pure CBG's on
  worlds with >= 50% hint coverage;
* the experiment registry lists families deterministically (sorted), and
  ``--list`` prints them.
"""

import os

import numpy as np
import pytest

from repro.check.invariants import InvariantChecker
from repro.core.cbg_batch import cbg_errors_batch
from repro.core.hint_hybrid import hint_hybrid_centroids, hint_hybrid_errors
from repro.experiments import run as run_cli
from repro.experiments.hints import run_hints, run_hints_cdf
from repro.experiments.scenario import get_scenario
from repro.geo.coords import bulk_haversine_km
from repro.hints import (
    CodeCorpus,
    CodeTrie,
    VERDICT_CONFIRMED,
    VERDICT_REFUTED,
    VERDICT_UNVERIFIABLE,
    confirmed_hints,
    find_hints,
    mine_hints,
    target_names,
    tokenize,
    verify_hints,
)
from repro.obs import Observer
from repro.world.hostnames import NOISE_VOCABULARY, assign_codes


class TestHostnameScheme:
    def test_world_emits_reverse_zone(self, small_world):
        named = [host for host in small_world.hosts if host.rdns]
        assert named, "no host got a PTR name"
        assert small_world.dns.reverse_count == len(named)
        for host in named:
            assert small_world.rdns_of(host.ip) == host.rdns
            assert host.rdns.endswith(".example.net")

    def test_coverage_tracks_config(self, small_world):
        hosts = [h for h in small_world.hosts if h.kind.value in ("anchor", "probe")]
        named = sum(1 for h in hosts if h.rdns)
        coverage = named / len(hosts)
        assert abs(coverage - small_world.config.rdns_coverage) < 0.15

    def test_codes_globally_unique_and_clean(self, small_world):
        scheme = small_world.hostname_scheme
        seen = set()
        for city_codes in scheme.codes_by_city.values():
            for code in city_codes.codes:
                assert code not in seen, f"code {code!r} assigned twice"
                assert code not in NOISE_VOCABULARY
                assert code.isalpha() and code.islower()
                seen.add(code)

    def test_assignment_is_deterministic(self, small_world):
        again = assign_codes(small_world.config, small_world.cities)
        assert again == small_world.hostname_scheme.codes_by_city


class TestTokenizerAndTrie:
    def test_tokenize(self):
        assert tokenize("xe-2-1-0.core3.fra03.as65010.example.net") == [
            "xe", "2", "1", "0", "core3", "fra03", "as65010", "example", "net",
        ]
        assert tokenize("a_b-c.d") == ["a", "b", "c", "d"]
        assert tokenize("") == []
        assert tokenize("...") == []

    def _trie(self):
        trie = CodeTrie(blacklist=NOISE_VOCABULARY)
        trie.insert("fra", 1)
        trie.insert("frankf", 2)
        trie.insert("syd", 3)
        return trie

    def test_exact_and_digit_tail_match(self):
        trie = self._trie()
        assert trie.match_token("fra") == ("fra", 1)
        assert trie.match_token("fra03") == ("fra", 1)
        assert trie.match_token("frankf01") == ("frankf", 2)

    def test_word_tails_do_not_match(self):
        trie = self._trie()
        assert trie.match_token("frankfurt") is None
        assert trie.match_token("fra3x") is None
        assert trie.match_token("sydney") is None

    def test_longest_code_wins(self):
        trie = self._trie()
        assert trie.find("core1.frankf7.example.net") == ("frankf", 2, 1)
        # fra03 and syd1 both present: longest equal, leftmost wins.
        assert trie.find("fra03.syd1.example.net")[0] == "fra"

    def test_blacklisted_tokens_never_match(self):
        trie = CodeTrie(blacklist=("core",))
        with pytest.raises(ValueError):
            trie.insert("core", 9)
        trie.insert("cor", 4)
        assert trie.match_token("core") is None  # blacklisted as a token
        assert trie.match_token("cor7") == ("cor", 4)

    def test_insert_rejects_non_letter_codes(self):
        trie = CodeTrie()
        for bad in ("", "FRA", "fra3", "fr-a"):
            with pytest.raises(ValueError):
                trie.insert(bad, 1)

    def test_duplicate_code_different_city_rejected(self):
        trie = CodeTrie()
        trie.insert("fra", 1)
        trie.insert("fra", 1)  # same city: idempotent
        with pytest.raises(ValueError):
            trie.insert("fra", 2)


class TestPipeline:
    def test_find_is_index_aligned(self, small_scenario):
        names = target_names(small_scenario)
        trie = CodeCorpus.from_world(small_scenario.world).trie()
        matches = find_hints(names, trie)
        assert len(matches) == len(names)
        for index, match in enumerate(matches):
            if match is None:
                continue
            assert match.index == index
            assert match.ip == names[index][0]
            assert match.code in CodeCorpus.from_world(small_scenario.world).codes

    def test_verdicts_partition_matches(self, small_scenario):
        matches, verified = mine_hints(small_scenario)
        assert len(verified) == sum(1 for m in matches if m is not None)
        for hint in verified:
            assert hint.verdict in (
                VERDICT_CONFIRMED,
                VERDICT_REFUTED,
                VERDICT_UNVERIFIABLE,
            )

    def test_confirmed_hints_pass_soi_bound(self, small_scenario):
        """Acceptance: confirmed hints are speed-of-Internet feasible."""
        _, verified = mine_hints(small_scenario)
        confirmed = confirmed_hints(verified)
        assert confirmed, "no confirmed hints on the small preset"
        matrix = small_scenario.rtt_matrix()
        checker = InvariantChecker(raise_on_violation=True)
        for hint in confirmed:
            rtts = matrix[:, hint.column]
            answered = ~np.isnan(rtts)
            distances = bulk_haversine_km(
                small_scenario.vp_lats[answered],
                small_scenario.vp_lons[answered],
                hint.lat,
                hint.lon,
            )
            # Hinted distance, most favourable within the slack disk.
            checker.check_soi_bound(
                rtts[answered],
                np.maximum(distances - hint.slack_km, 0.0),
                f"test target {hint.column}",
            )
        assert checker.violations == []

    def test_refuted_hints_are_wrong_cities(self, small_scenario):
        _, verified = mine_hints(small_scenario)
        for hint in verified:
            true_city = small_scenario.targets[hint.column].city_id
            if hint.verdict == VERDICT_REFUTED:
                assert hint.match.city_id != true_city
            if hint.verdict == VERDICT_CONFIRMED:
                # Not a guarantee in general, but on the calibrated small
                # world confirmation implies the right city.
                assert hint.match.city_id == true_city


class TestParallelDeterminism:
    def _mine(self, workers):
        saved = os.environ.get("REPRO_WORKERS")
        try:
            if workers is None:
                os.environ.pop("REPRO_WORKERS", None)
            else:
                os.environ["REPRO_WORKERS"] = workers
            obs = Observer()
            scenario = get_scenario("quick")
            matches, verified = mine_hints(scenario, obs=obs)
            return matches, verified, obs.events.to_jsonl(), obs.metrics_report()
        finally:
            if saved is None:
                os.environ.pop("REPRO_WORKERS", None)
            else:
                os.environ["REPRO_WORKERS"] = saved

    def test_serial_vs_two_workers_byte_identical(self):
        """Acceptance: golden event streams hold across REPRO_WORKERS."""
        serial = self._mine(None)
        parallel = self._mine("2")
        assert serial[0] == parallel[0]
        assert serial[1] == parallel[1]
        assert serial[2] == parallel[2], "hint event stream diverged"
        assert serial[3] == parallel[3], "metrics report diverged"
        assert "hint-find" in serial[2]


class TestHybrid:
    @pytest.mark.parametrize("preset", ["quick", "small"])
    def test_hybrid_median_not_worse_than_cbg(self, preset, small_scenario):
        """Acceptance: median error <= pure CBG at >= 50% hint coverage."""
        scenario = small_scenario if preset == "small" else get_scenario("quick")
        matches, verified = mine_hints(scenario)
        coverage = sum(1 for m in matches if m is not None) / len(scenario.targets)
        assert coverage >= 0.5, "preset world lost its hint coverage"
        matrix = scenario.rtt_matrix()
        cbg = cbg_errors_batch(
            scenario.vp_lats,
            scenario.vp_lons,
            matrix,
            scenario.target_true_lats,
            scenario.target_true_lons,
        )
        hybrid = hint_hybrid_errors(
            scenario.vp_lats,
            scenario.vp_lons,
            matrix,
            verified,
            scenario.target_true_lats,
            scenario.target_true_lons,
        )
        both = ~np.isnan(cbg) & ~np.isnan(hybrid)
        assert both.any()
        assert np.median(hybrid[both]) <= np.median(cbg[both])

    def test_hybrid_only_touches_confirmed_columns(self, small_scenario):
        _, verified = mine_hints(small_scenario)
        matrix = small_scenario.rtt_matrix()
        from repro.core.cbg_batch import cbg_centroids_batch

        base_lats, base_lons = cbg_centroids_batch(
            small_scenario.vp_lats, small_scenario.vp_lons, matrix
        )
        lats, lons, hinted = hint_hybrid_centroids(
            small_scenario.vp_lats, small_scenario.vp_lons, matrix, verified
        )
        confirmed_columns = {
            h.column for h in verified if h.verdict == VERDICT_CONFIRMED
        }
        assert set(hinted) <= confirmed_columns
        untouched = np.ones(len(lats), dtype=bool)
        untouched[list(hinted)] = False
        assert np.array_equal(lats[untouched], base_lats[untouched], equal_nan=True)
        assert np.array_equal(lons[untouched], base_lons[untouched], equal_nan=True)


class TestExperiments:
    def test_run_hints_output(self, small_scenario):
        output = run_hints(small_scenario)
        assert output.experiment_id == "hints"
        assert output.measured["confirmed_precision"] == 1.0
        assert output.measured["match_coverage"] > 0.0
        assert "confirmed" in output.table

    def test_run_hints_cdf_output(self, small_scenario):
        output = run_hints_cdf(small_scenario)
        assert output.experiment_id == "hintscdf"
        assert output.measured["hybrid_median_le_cbg"] == 1.0
        assert "hint-hybrid" in output.series
        assert "error km" in output.table


class TestRegistryListing:
    def test_registry_is_sorted(self):
        names = list(run_cli._registry())
        assert names == sorted(names)
        assert {"hints", "hintscdf", "serve"} <= set(names)

    def test_cli_list_flag(self, capsys):
        assert run_cli.main(["--list"]) == 0
        lines = capsys.readouterr().out.split()
        assert lines == sorted(lines)
        assert "hints" in lines and "hintscdf" in lines
