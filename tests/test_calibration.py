"""Tests for the calibration self-checks."""

import pytest

from repro.world.calibration import CalibrationCheck, calibration_checks, render_report


class TestCalibrationCheck:
    def test_ok_band(self):
        check = CalibrationCheck("x", paper=1.0, measured=1.2, low=0.5, high=2.0)
        assert check.ok
        assert "ok" in check.render()

    def test_drift_flagged(self):
        check = CalibrationCheck("x", paper=1.0, measured=9.0, low=0.5, high=2.0)
        assert not check.ok
        assert "DRIFT" in check.render()


class TestSuite:
    @pytest.fixture(scope="class")
    def checks(self, small_scenario):
        return calibration_checks(small_scenario)

    def test_all_in_band_on_small(self, checks):
        drifted = [check for check in checks if not check.ok]
        assert not drifted, "\n".join(check.render() for check in drifted)

    def test_soi_check_is_exact_zero(self, checks):
        soi = next(c for c in checks if "speed-of-Internet" in c.name)
        assert soi.measured == 0.0

    def test_report_renders(self, checks):
        report = render_report(checks)
        assert "checks in band" in report
        assert report.count("\n") == len(checks)

    def test_cli_exposes_calibration(self, capsys):
        from repro.experiments.run import main

        assert main(["calibration", "--preset", "small"]) == 0
        out = capsys.readouterr().out
        assert "calibration" in out
