"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    ("quickstart.py", []),
    ("million_scale_campaign.py", []),
    ("street_level_campaign.py", []),
    ("database_comparison.py", []),
    ("vp_selection_ablation.py", []),
    ("world_report.py", ["--preset", "small"]),
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=[s for s, _ in EXAMPLES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_examples_list_is_complete():
    """Every script in examples/ is exercised by this smoke suite."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _args in EXAMPLES}
    assert on_disk == covered
