"""Tests for metrics, correlation, and table formatting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    cdf_points,
    format_table,
    fraction_within,
    median,
    pearson,
    percentile,
    summarize_errors,
)
from repro.analysis.metrics import cdf_at


class TestMetrics:
    def test_median_simple(self):
        assert median([1.0, 2.0, 3.0]) == 2.0

    def test_median_skips_none_and_nan(self):
        assert median([1.0, None, float("nan"), 3.0]) == 2.0

    def test_median_empty_raises(self):
        with pytest.raises(ValueError):
            median([None])

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 90) == pytest.approx(90.0)

    def test_fraction_within_counts_none_in_denominator(self):
        assert fraction_within([10.0, None, 50.0, 20.0], 40.0) == 0.5

    def test_fraction_within_empty(self):
        assert fraction_within([], 10.0) == 0.0

    def test_cdf_points_monotone(self):
        xs, ys = cdf_points([5.0, 1.0, 3.0])
        assert list(xs) == [1.0, 3.0, 5.0]
        assert list(ys) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_points_empty(self):
        xs, ys = cdf_points([])
        assert xs.size == 0 and ys.size == 0

    def test_cdf_at(self):
        assert cdf_at([1.0, 2.0, 3.0, 4.0], [2.5]) == [0.5]

    def test_summarize(self):
        summary = summarize_errors([0.5, 10.0, 100.0, None])
        assert summary["median_km"] == 10.0
        assert summary["city_level_fraction"] == 0.5
        assert summary["street_level_fraction"] == 0.25
        assert summary["count"] == 4.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_fraction_within_bounds_property(self, values):
        fraction = fraction_within(values, 100.0)
        assert 0.0 <= fraction <= 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_median_between_min_max_property(self, values):
        m = median(values)
        assert min(values) <= m <= max(values)


class TestPearson:
    def test_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_no_variance_none(self):
        assert pearson([1, 1, 1], [1, 2, 3]) is None

    def test_too_few_points_none(self):
        assert pearson([1], [2]) is None

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1])

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        xs = rng.normal(size=100)
        ys = xs * 0.5 + rng.normal(size=100)
        expected = float(np.corrcoef(xs, ys)[0, 1])
        assert pearson(list(xs), list(ys)) == pytest.approx(expected)

    @given(
        st.lists(
            st.floats(min_value=-1e3, max_value=1e3), min_size=2, max_size=30
        ).filter(lambda xs: len(set(xs)) > 1)
    )
    @settings(max_examples=50, deadline=None)
    def test_bounded_property(self, xs):
        ys = [x * 2 + 1 for x in xs]
        coefficient = pearson(xs, ys)
        assert coefficient is None or -1.0001 <= coefficient <= 1.0001


class TestTables:
    def test_alignment(self):
        table = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = table.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["x", "y"]])

    def test_non_string_cells(self):
        table = format_table(["n"], [[42], [3.5]])
        assert "42" in table and "3.5" in table
