"""Unit tests for the repro.check invariant checker itself."""

import numpy as np
import pytest

from repro.check import (
    INVARIANTS,
    NULL_CHECKER,
    InvariantChecker,
    NullChecker,
    check_enabled,
    checker_from_env,
)
from repro.check.invariants import EXPONENTIAL_CAP_FACTOR
from repro.errors import InvariantViolation
from repro.obs import Observer
from repro.obs.events import EVENT_TYPES, INVARIANT_VIOLATION
from repro.world.config import WorldConfig


class TestCheckEnabled:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_armed_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK", value)
        assert check_enabled() is True

    @pytest.mark.parametrize("value", ["", "0", "false", "No", "off"])
    def test_off_values(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_CHECK", value)
        assert check_enabled() is False

    def test_unset_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert check_enabled() is False

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "maybe")
        with pytest.raises(ValueError):
            check_enabled()


class TestCheckerFromEnv:
    def test_off_returns_the_shared_null_checker(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        assert checker_from_env() is NULL_CHECKER

    def test_armed_returns_raise_mode_checker(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        checker = checker_from_env()
        assert isinstance(checker, InvariantChecker)
        assert checker.enabled and checker.raise_on_violation

    def test_config_derives_tolerances(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK", "1")
        config = WorldConfig.small()
        checker = checker_from_env(config=config)
        expected = (
            config.hop_spike_mean_ms * EXPONENTIAL_CAP_FACTOR
            + 12.0 * config.hop_noise_std_ms
            + 1e-3
        )
        assert checker.hop_delta_tolerance_ms == pytest.approx(expected)
        assert checker.cbg_slack_km == pytest.approx(
            config.probe_metadata_jitter_max_km + 1.0
        )


class TestViolationPlumbing:
    def test_raise_mode_raises_after_recording(self):
        obs = Observer()
        checker = InvariantChecker(obs=obs)
        with pytest.raises(InvariantViolation, match="cache.digest"):
            checker.violation("cache.digest", "boom", artifact="mesh")
        assert len(checker.violations) == 1
        assert obs.metrics.counter("check.violations") == 1
        assert obs.metrics.counter("check.cache.digest.violation") == 1
        events = [e for e in obs.events if e.etype == INVARIANT_VIOLATION]
        assert len(events) == 1
        assert dict(events[0].fields)["invariant"] == "cache.digest"

    def test_record_mode_accumulates(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.violation("cache.digest", "one")
        checker.violation("exec.item_parity", "two")
        assert [v["invariant"] for v in checker.violations] == [
            "cache.digest",
            "exec.item_parity",
        ]
        assert checker.summary()["mode"] == "record"

    def test_unknown_invariant_name_rejected(self):
        checker = InvariantChecker(raise_on_violation=False)
        with pytest.raises(ValueError):
            checker.violation("made.up", "nope")

    def test_event_type_is_registered(self):
        assert INVARIANT_VIOLATION in EVENT_TYPES

    def test_registry_names_match_checker_reports(self):
        assert set(INVARIANTS) == {
            "rtt.soi_bound",
            "trace.hop_delta",
            "credits.conservation",
            "cbg.containment",
            "cache.digest",
            "exec.item_parity",
        }


class TestSoiBound:
    def test_physical_rtts_pass(self):
        checker = InvariantChecker(raise_on_violation=False)
        # 1000 km needs >= ~10 ms round trip at 2/3 c.
        checker.check_soi_bound([12.0, 50.0], [1000.0, 1000.0], "unit")
        assert checker.passes["rtt.soi_bound"] == 2
        assert not checker.violations

    def test_nan_skipped(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_soi_bound([np.nan, 15.0], [1000.0, 1000.0], "unit")
        assert checker.passes["rtt.soi_bound"] == 1

    def test_faster_than_light_flagged(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_soi_bound([1.0], [1000.0], "unit")
        assert len(checker.violations) == 1
        record = checker.violations[0]
        assert record["invariant"] == "rtt.soi_bound"
        assert record["rtt_ms"] == 1.0

    def test_scalar_broadcast(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_soi_bound(20.0, 1000.0, "unit")
        assert checker.passes["rtt.soi_bound"] == 1


class TestTraceHops:
    def test_monotone_hops_pass(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_trace_hops([1.0, 2.0, 3.0], "unit")
        assert checker.passes["trace.hop_delta"] == 1

    def test_small_decrease_within_tolerance(self):
        checker = InvariantChecker(raise_on_violation=False, hop_delta_tolerance_ms=5.0)
        checker.check_trace_hops([10.0, 6.0, 8.0], "unit")
        assert not checker.violations

    def test_large_decrease_flagged(self):
        checker = InvariantChecker(raise_on_violation=False, hop_delta_tolerance_ms=5.0)
        checker.check_trace_hops([50.0, 10.0], "unit")
        assert checker.violations[0]["invariant"] == "trace.hop_delta"
        assert checker.violations[0]["drop_ms"] == pytest.approx(40.0)

    def test_non_positive_hop_flagged(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_trace_hops([1.0, -0.5, 2.0], "unit")
        assert checker.violations[0]["hop"] == 1

    def test_empty_trace_is_noop(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_trace_hops([], "unit")
        assert not checker.passes and not checker.violations


class TestLedgerConservation:
    def test_balanced_books_pass(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_ledger(30, 30, 100, "unit")
        assert checker.passes["credits.conservation"] == 1

    def test_mismatch_flagged(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_ledger(30, 25, 100, "unit")
        assert checker.violations[0]["invariant"] == "credits.conservation"

    def test_over_budget_flagged(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_ledger(150, 150, 100, "unit")
        assert checker.violations

    def test_no_budget_means_unbounded(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_ledger(10**9, 10**9, None, "unit")
        assert not checker.violations

    def test_ledger_tamper_caught_end_to_end(self):
        from repro.atlas.credits import CreditLedger

        checker = InvariantChecker(raise_on_violation=False)
        ledger = CreditLedger(checker=checker)
        ledger.charge(3, "ping")
        assert not checker.violations
        # Tamper with the books between charges: the shadow per-kind total
        # no longer matches the headline counter.
        ledger._spent += 7
        ledger.charge(3, "ping")
        assert checker.violations
        assert checker.violations[0]["invariant"] == "credits.conservation"


class TestCbgContainment:
    def test_consistent_disks_pass(self):
        checker = InvariantChecker(raise_on_violation=False, cbg_slack_km=1.0)
        # VP at origin, target ~111 km north, RTT generously above 2D/(2/3c).
        checker.check_cbg_containment(
            np.array([0.0]),
            np.array([0.0]),
            np.array([[5.0]]),
            np.array([1.0]),
            np.array([0.0]),
            soi_fraction=2.0 / 3.0,
            context="unit",
        )
        assert checker.passes["cbg.containment"] == 1

    def test_excluding_disk_flagged(self):
        checker = InvariantChecker(raise_on_violation=False, cbg_slack_km=1.0)
        # RTT of 0.2 ms -> ~20 km disk, but the target is ~111 km away.
        checker.check_cbg_containment(
            np.array([0.0]),
            np.array([0.0]),
            np.array([[0.2]]),
            np.array([1.0]),
            np.array([0.0]),
            soi_fraction=2.0 / 3.0,
            context="unit",
        )
        assert checker.violations[0]["invariant"] == "cbg.containment"
        assert checker.violations[0]["excess_km"] > 0

    def test_street_level_speed_skipped(self):
        checker = InvariantChecker(raise_on_violation=False, cbg_slack_km=1.0)
        checker.check_cbg_containment(
            np.array([0.0]),
            np.array([0.0]),
            np.array([[0.2]]),
            np.array([1.0]),
            np.array([0.0]),
            soi_fraction=4.0 / 9.0,
            context="unit",
        )
        assert not checker.violations and not checker.passes

    def test_nan_rtts_constrain_nothing(self):
        checker = InvariantChecker(raise_on_violation=False, cbg_slack_km=1.0)
        checker.check_cbg_containment(
            np.array([0.0]),
            np.array([0.0]),
            np.array([[np.nan]]),
            np.array([1.0]),
            np.array([0.0]),
            soi_fraction=2.0 / 3.0,
            context="unit",
        )
        assert not checker.violations and not checker.passes


class TestInfrastructureChecks:
    def test_cache_digest_pass_and_fail(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_cache_digest(True, "mesh", "unit")
        checker.check_cache_digest(False, "mesh", "unit")
        assert checker.passes["cache.digest"] == 1
        assert checker.violations[0]["artifact"] == "mesh"

    def test_exec_parity_pass_and_fail(self):
        checker = InvariantChecker(raise_on_violation=False)
        checker.check_exec_parity(True, "unit")
        checker.check_exec_parity(False, "unit")
        assert checker.passes["exec.item_parity"] == 1
        assert checker.violations[0]["invariant"] == "exec.item_parity"

    def test_cache_load_digest_mismatch_is_violation(self, tmp_path):
        from repro.cache.artifacts import ArtifactCache

        checker = InvariantChecker(raise_on_violation=False)
        cache = ArtifactCache(tmp_path, checker=checker)
        cache.store("mesh", "a" * 64, {"matrix": np.arange(6.0).reshape(2, 3)})
        assert checker.passes["cache.digest"] == 1  # store roundtrip
        assert cache.load("mesh", "a" * 64) is not None
        assert checker.passes["cache.digest"] == 2  # verified load

        # Flip payload bytes inside the archive: digest no longer matches.
        import zipfile

        path = cache.path("mesh", "a" * 64)
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["matrix"] = arrays["matrix"] + 1.0
        with zipfile.ZipFile(path, "w") as archive:
            import io

            for name, array in arrays.items():
                buffer = io.BytesIO()
                np.save(buffer, array)
                archive.writestr(f"{name}.npy", buffer.getvalue())
        assert cache.load("mesh", "a" * 64) is None
        assert checker.violations
        assert checker.violations[0]["invariant"] == "cache.digest"


class TestNullChecker:
    def test_disabled_and_silent(self):
        checker = NullChecker()
        assert checker.enabled is False
        checker.check_soi_bound([0.0], [10000.0], "unit")
        checker.check_trace_hops([5.0, 0.0], "unit")
        checker.check_ledger(1, 2, 0, "unit")
        checker.check_cbg_containment(
            np.array([0.0]), np.array([0.0]), np.array([[0.0]]),
            np.array([50.0]), np.array([0.0]), 2.0 / 3.0, "unit",
        )
        checker.check_cache_digest(False, "mesh", "unit")
        checker.check_exec_parity(False, "unit")
        checker.violation("cache.digest", "ignored")
        assert checker.summary() == {"mode": "off", "passes": {}, "violations": []}

    def test_shared_instance_is_null(self):
        assert isinstance(NULL_CHECKER, NullChecker)


class TestResultsAgree:
    def test_nan_aware_structures(self):
        from repro.exec.pool import _results_agree

        assert _results_agree(float("nan"), float("nan"))
        assert _results_agree([1.0, float("nan")], [1.0, float("nan")])
        assert _results_agree(
            np.array([1.0, np.nan]), np.array([1.0, np.nan])
        )
        assert _results_agree({"a": np.array([np.nan])}, {"a": np.array([np.nan])})
        assert not _results_agree([1.0], [2.0])
        assert not _results_agree({"a": 1}, {"b": 1})
        assert not _results_agree(np.array([1.0]), np.array([1.0, 2.0]))

    def test_dataclasses_with_nan_fields(self):
        from dataclasses import dataclass

        from repro.exec.pool import _results_agree

        @dataclass
        class Record:
            value: float
            tag: str

        assert _results_agree(Record(float("nan"), "x"), Record(float("nan"), "x"))
        assert not _results_agree(Record(1.0, "x"), Record(2.0, "x"))
