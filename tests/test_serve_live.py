"""Live telemetry on the serving engine: the non-interference guard.

The tentpole promise of the operational plane is that it can ride on the
deterministic serving path without perturbing it: the deterministic
event stream and metrics report are *bitwise identical* with the live
plane attached or absent, serially and under ``REPRO_WORKERS=2``
(:class:`TestLivePlaneDoesNotLeak` — the CI-pinned guard). The rest of
the suite pins what the plane actually records: the per-stage tail
attribution identity (queue + coalesce + kernel + memo == total,
exactly), per-tenant SLO accounting, the flight-recorder chaos behaviour
under fault-injected shedding, and live capture across fork workers in
:func:`repro.exec.parallel_map`.
"""

from __future__ import annotations

import time

import pytest

from repro.exec import parallel_map
from repro.experiments.scenario import Scenario, config_for_preset
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observer
from repro.obs.live import (
    NULL_LIVE,
    LatencySketch,
    LiveTelemetry,
    SloPolicy,
)
from repro.serve import (
    REJECT_OVER_BUDGET,
    REJECT_SHED,
    ServeEngine,
    TenantConfig,
)


@pytest.fixture(scope="module")
def quick_scenario():
    return Scenario.build(config_for_preset("quick"))


class _FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _serve_workload(workers, monkeypatch, live):
    """The golden serve workload from ``test_serve.py``, with an optional
    live plane riding along; returns the deterministic outputs."""
    if workers is None:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
    obs = Observer()
    scenario = Scenario.build(config_for_preset("quick"), obs=obs, live=live)
    engine = ServeEngine.from_scenario(scenario, max_batch=4)
    engine.register_tenant(TenantConfig(name="alpha", credit_budget=12))
    engine.register_tenant(
        TenantConfig(name="beta", max_requests_per_window=9, window_s=1.0)
    )
    ips = scenario.target_ips
    for index in range(2 * len(ips)):
        engine.submit("alpha" if index % 2 == 0 else "beta", ips[index % len(ips)])
        if index % 7 == 6:
            engine.process_one_batch()
    engine.submit("alpha", "203.0.113.1")
    engine.drain()
    return obs.events.to_jsonl(), obs.metrics_report()


class TestLivePlaneDoesNotLeak:
    """Wall-clock telemetry must never touch the deterministic streams."""

    def test_streams_bitwise_identical_live_on_vs_off_serial(self, monkeypatch):
        off_events, off_metrics = _serve_workload(None, monkeypatch, NULL_LIVE)
        live = LiveTelemetry()
        on_events, on_metrics = _serve_workload(None, monkeypatch, live)
        assert on_events == off_events
        assert on_metrics == off_metrics
        # ...and the guard is not vacuous: the plane really recorded.
        assert live.counter("serve.requests") > 0
        assert live.sketch("serve.latency_s").count > 0

    def test_streams_bitwise_identical_live_on_vs_off_workers(self, monkeypatch):
        off_events, off_metrics = _serve_workload(2, monkeypatch, NULL_LIVE)
        live = LiveTelemetry()
        on_events, on_metrics = _serve_workload(2, monkeypatch, live)
        assert on_events == off_events
        assert on_metrics == off_metrics
        assert live.counter("serve.requests") > 0
        assert live.sketch("serve.latency_s").count > 0

    def test_default_engine_has_null_live(self, quick_scenario):
        engine = ServeEngine.from_scenario(quick_scenario)
        assert engine.live is NULL_LIVE
        engine.register_tenant(TenantConfig(name="t"))
        engine.submit("t", quick_scenario.target_ips[0])
        engine.drain()  # no live plane, no error, no telemetry


class TestStageAttribution:
    """The per-stage sketches explain the whole latency, exactly."""

    def _served(self, scenario, live, n_requests=40, max_batch=8):
        engine = ServeEngine.from_scenario(scenario, max_batch=max_batch, live=live)
        engine.register_tenant(TenantConfig(name="t"))
        ips = scenario.target_ips
        for index in range(n_requests):
            engine.submit("t", ips[index % len(ips)])
        engine.drain()
        return engine

    def test_stage_sums_partition_total_latency(self, quick_scenario):
        live = LiveTelemetry()
        self._served(quick_scenario, live)
        total = live.sketch("serve.latency_s")
        stages = {
            name: live.sketch(f"serve.stage.{name}_s")
            for name in ("queue", "coalesce", "kernel", "memo")
        }
        # Every answered request appears once in every stage sketch
        # (batch-shared stages carry multiplicity), so the counts agree…
        assert total.count > 0
        for sketch in stages.values():
            assert sketch.count == total.count
        # …and the exact per-stage sums partition the exact total: the
        # four timestamps subtract telescopically, so the only error is
        # float summation noise, orders of magnitude below 1e-6 relative.
        stage_sum = sum(sketch.total for sketch in stages.values())
        assert stage_sum == pytest.approx(total.total, rel=1e-6)

    def test_admission_and_gauges_recorded(self, quick_scenario):
        live = LiveTelemetry()
        engine = self._served(quick_scenario, live, n_requests=24, max_batch=4)
        assert live.sketch("serve.stage.admission_s").count == 24
        assert live.counter("serve.requests") == 24
        assert live.counter("serve.admitted") == 24
        assert live.counter("serve.batches") == engine.batches_processed
        assert live.gauge_value("serve.queue_depth") == 0.0  # drained
        assert 0.0 < live.gauge_value("serve.batch_occupancy") <= 1.0
        ratio = live.gauge_value("serve.memo_hit_ratio")
        assert 0.0 < ratio < 1.0  # 24 requests over fewer unique targets

    def test_per_tenant_sketches_and_slo(self, quick_scenario):
        live = LiveTelemetry()
        engine = ServeEngine.from_scenario(quick_scenario, max_batch=4, live=live)
        engine.register_tenant(TenantConfig(name="rich"))
        engine.register_tenant(TenantConfig(name="poor", credit_budget=3))
        engine.set_slo(SloPolicy("rich", latency_target_s=10.0))
        engine.set_slo(SloPolicy("poor", latency_target_s=10.0, error_budget=0.01))
        ips = quick_scenario.target_ips
        for index in range(10):
            engine.submit("rich", ips[index % len(ips)])
            engine.submit("poor", ips[index % len(ips)])
        engine.drain()
        statuses = {status.policy.name: status for status in live.slo_statuses()}
        assert statuses["rich"].requests == 10
        assert statuses["rich"].refused == 0
        assert statuses["rich"].compliant  # 10s target: nothing is slow
        # poor: 3 admitted + 7 refused, refusals burn the budget.
        assert live.sketch("serve.tenant.poor.latency_s").count == 3
        assert live.counter("serve.tenant.poor.refusals") == 7
        assert statuses["poor"].refused == 7
        assert not statuses["poor"].compliant
        assert statuses["poor"].burn_rate > 1.0
        assert live.counter(f"serve.refusals.{REJECT_OVER_BUDGET}") == 7


class TestFlightRecorderChaos:
    """Under fault-injected shedding the ring captures the story."""

    def test_shed_requests_are_captured_with_reasons(self, quick_scenario):
        clock = _FakeClock()
        live = LiveTelemetry(
            flight_sample=1, refusal_rate_threshold=1.0, clock=clock
        )
        plan = FaultPlan(seed=3, api_server_error_rate=0.5)
        engine = ServeEngine.from_scenario(
            quick_scenario, live=live, faults=FaultInjector(plan)
        )
        engine.register_tenant(TenantConfig(name="t"))
        ips = quick_scenario.target_ips
        for index in range(3 * len(ips)):
            engine.submit("t", ips[index % len(ips)])
        engine.drain()
        shed_records = [
            record
            for record in live.flight.records()
            if record.outcome == REJECT_SHED
        ]
        assert shed_records  # the 50% draw bands make this near-certain
        assert all(record.detail == "ApiServerError" for record in shed_records)
        assert all(record.tenant == "t" for record in shed_records)
        assert all(
            dict(record.stages).keys() == {"admission"} for record in shed_records
        )
        # OK requests are in the ring too (flight_sample=1 records all).
        assert any(record.outcome == "ok" for record in live.flight.records())
        # The refusal counter and the ring tell the same story.
        assert live.counter("serve.refusals") == len(shed_records)
        # The refusal rate blew the 1/s threshold inside the first window
        # (fake clock pinned at t=0) and auto-dumped the ring.
        triggers = [dump["trigger"] for dump in live.flight.dumps]
        assert "refusal-spike" in triggers
        spike = next(
            dump for dump in live.flight.dumps if dump["trigger"] == "refusal-spike"
        )
        assert any(
            entry["outcome"] == REJECT_SHED and entry["detail"] == "ApiServerError"
            for entry in spike["records"]
        )

    def test_no_spike_below_threshold(self, quick_scenario):
        clock = _FakeClock()
        live = LiveTelemetry(
            flight_sample=1, refusal_rate_threshold=1e9, clock=clock
        )
        plan = FaultPlan(seed=3, api_server_error_rate=0.5)
        engine = ServeEngine.from_scenario(
            quick_scenario, live=live, faults=FaultInjector(plan)
        )
        engine.register_tenant(TenantConfig(name="t"))
        for ip in quick_scenario.target_ips:
            engine.submit("t", ip)
        engine.drain()
        assert not any(
            dump["trigger"] == "refusal-spike" for dump in live.flight.dumps
        )

    def test_invariant_violation_triggers_dump(self, quick_scenario):
        class _RecordingChecker:
            """Shape of a record-mode InvariantChecker: disabled checks,
            but a violations list the engine watches across batches."""

            enabled = False
            violations = []

        checker = _RecordingChecker()
        live = LiveTelemetry(flight_sample=1)
        engine = ServeEngine.from_scenario(
            quick_scenario, max_batch=4, live=live, checker=checker
        )
        engine.register_tenant(TenantConfig(name="t"))
        ips = quick_scenario.target_ips
        for ip in ips[:4]:
            engine.submit("t", ip)
        engine.process_one_batch()
        assert not live.flight.dumps  # healthy batch, no dump
        checker.violations.append("synthetic violation for the ring")
        for ip in ips[4:8]:
            engine.submit("t", ip)
        engine.process_one_batch()
        assert [dump["trigger"] for dump in live.flight.dumps] == [
            "invariant-violation"
        ]
        # Only *new* violations dump: the next healthy batch stays quiet.
        for ip in ips[:4]:
            engine.submit("t", ip)
        engine.process_one_batch()
        assert len(live.flight.dumps) == 1


def _slow_square(x: int) -> int:
    time.sleep(0.001)
    return x * x


def _observed_square(x: int) -> int:
    from repro.exec.pool import _OBSERVED_CTX

    obs = _OBSERVED_CTX.get("obs")
    if obs is not None and obs.enabled:
        obs.count("squares")
    return x * x


class TestPoolLiveCapture:
    """parallel_map merges worker-side live sketches back to the parent."""

    def test_serial_capture(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        live = LiveTelemetry()
        assert parallel_map(_slow_square, range(6), live=live) == [
            x * x for x in range(6)
        ]
        assert live.counter("exec.items") == 6
        sketch = live.sketch("exec.item_s")
        assert sketch.count == 6
        assert sketch.quantile(0.5) >= 0.001  # the sleep is visible

    def test_parallel_capture_matches_serial_counts(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        live = LiveTelemetry()
        assert parallel_map(_slow_square, range(6), live=live) == [
            x * x for x in range(6)
        ]
        assert live.counter("exec.items") == 6
        assert live.sketch("exec.item_s").count == 6

    def test_live_does_not_perturb_observed_parallel_stream(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")

        def run(live):
            obs = Observer()
            result = parallel_map(_observed_square, range(8), obs=obs, live=live)
            return result, obs.events.to_jsonl(), obs.metrics_report()

        plain_result, plain_events, plain_metrics = run(None)
        live = LiveTelemetry()
        live_result, live_events, live_metrics = run(live)
        assert live_result == plain_result
        assert live_events == plain_events
        assert live_metrics == plain_metrics
        assert live.counter("exec.items") == 8

    def test_merge_paths_agree_with_direct_sketch(self, monkeypatch):
        """The merged parallel sketch covers the same population a direct
        serial sketch would (same count; quantiles within 2x bound)."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        live = LiveTelemetry()
        parallel_map(_slow_square, range(10), live=live)
        merged = live.sketch("exec.item_s")
        direct = LatencySketch()
        direct.add_many([0.001] * 10)  # the floor of each timed item
        assert merged.count == direct.count
        assert merged.quantile(0.5) >= direct.quantile(0.5) * 0.98
