"""Property suite: every registered invariant over fuzzed mini-worlds.

Runs the :data:`repro.check.INVARIANTS` registry against
:func:`repro.check.fuzz.fuzz_config` worlds — dozens of small random (but
always valid) configurations spanning the latency, sanitization, CBG,
million-scale, and street-level machinery — plus two metamorphic laws of
the counter-keyed randomness substrate:

* scaling every delay parameter by ``k`` scales every observed RTT by
  exactly ``k`` (loss patterns unchanged);
* permuting the probe order permutes the RTT rows bitwise — measurement
  draws are keyed per (host, target, seq), never by position.

The final test pins registry completeness: every invariant name must have
been exercised (with a pass) somewhere in this module, so adding an
invariant without property coverage fails the suite. Run the module as a
whole — the completeness test aggregates what the earlier tests did.
"""

import os

import numpy as np
import pytest

from repro import rand
from repro.atlas.platform import AtlasPlatform
from repro.check import INVARIANTS, InvariantChecker, fuzz_configs, scaled_config
from repro.check.fuzz import fuzz_config
from repro.core import cbg_batch
from repro.exec.pool import _fork_context, parallel_map
from repro.experiments.scenario import Scenario
from repro.world.builder import build_world

#: Mini-worlds the fixture builds; every world runs the build-time checks
#: (SOI bound on every campaign ping, ledger conservation on every charge).
N_WORLDS = 25

#: Invariant names exercised (with at least one recorded pass) by the
#: tests in this module; the completeness test asserts full coverage.
EXERCISED = set()


def _record_checker(config):
    return InvariantChecker.for_config(config, raise_on_violation=False)


@pytest.fixture(scope="module")
def fuzz_worlds():
    """(config, scenario, checker) for every fuzzed mini-world.

    Each scenario is built with a record-mode checker derived from its own
    config, and the campaign RTT matrix is materialised — so the fixture
    itself runs thousands of SOI-bound and ledger-conservation checks.
    """
    worlds = []
    for config in fuzz_configs(N_WORLDS):
        checker = _record_checker(config)
        scenario = Scenario.build(config, checker=checker)
        scenario.rtt_matrix()
        worlds.append((config, scenario, checker))
    return worlds


def _note_passes(checker):
    EXERCISED.update(name for name, count in checker.passes.items() if count > 0)


class TestBuildInvariants:
    def test_soi_and_ledger_hold_in_every_world(self, fuzz_worlds):
        assert len(fuzz_worlds) >= 25
        for _config, _scenario, checker in fuzz_worlds:
            assert checker.violations == [], checker.violations[:3]
            assert checker.passes.get("rtt.soi_bound", 0) > 0
            assert checker.passes.get("credits.conservation", 0) > 0
            _note_passes(checker)

    def test_sanitization_keeps_only_checkable_worlds(self, fuzz_worlds):
        # The fuzzer plants mislocated hosts >= 4000 km off; sanitization
        # must catch every one (that is the premise under which the
        # containment slack is sound).
        for _config, scenario, _checker in fuzz_worlds:
            planted = {h.host_id for h in scenario.world.anchors if h.mislocated}
            assert planted <= set(scenario.removed_anchor_ids)


class TestCbgContainment:
    def test_holds_in_every_world(self, fuzz_worlds):
        for config, scenario, checker in fuzz_worlds:
            before = len(checker.violations)
            matrix = scenario.rtt_matrix()
            vp_count = len(scenario.vps)
            rng = rand.generator((config.seed, "prop-containment"))
            subset = np.sort(
                rng.choice(vp_count, size=min(24, vp_count), replace=False)
            )
            cbg_batch.cbg_errors_batch(
                scenario.vp_lats,
                scenario.vp_lons,
                matrix,
                scenario.target_true_lats,
                scenario.target_true_lons,
                subset,
                checker=checker,
            )
            assert checker.violations[before:] == []
            assert checker.passes.get("cbg.containment", 0) > 0
            _note_passes(checker)


class TestTraceInvariants:
    def test_traceroute_hop_deltas_within_model_bounds(self, fuzz_worlds):
        for config, scenario, checker in fuzz_worlds[:8]:
            before = len(checker.violations)
            client = scenario.client
            vps = scenario.vps
            for target in scenario.targets[:3]:
                for vp in vps[:: max(1, len(vps) // 5)][:5]:
                    if vp.probe_id == target.host_id:
                        continue
                    client.traceroute_from(vp.probe_id, target.ip, seq=31)
            assert checker.violations[before:] == []
            assert checker.passes.get("trace.hop_delta", 0) > 0
            _note_passes(checker)


class TestMillionScaleInvariants:
    def test_representative_campaign_checked(self, fuzz_worlds):
        for _config, scenario, checker in fuzz_worlds[:3]:
            before_passes = checker.passes.get("rtt.soi_bound", 0)
            min_matrix, median_matrix, reps = scenario.representative_matrices()
            assert min_matrix.shape == median_matrix.shape
            assert set(reps) == set(scenario.target_ips)
            # The representative pings ran under the scenario's checker.
            assert checker.passes.get("rtt.soi_bound", 0) > before_passes
            assert checker.violations == []
            _note_passes(checker)


class TestStreetLevelInvariants:
    def test_street_pipeline_checked(self, fuzz_worlds):
        from repro.experiments.street_runner import street_level_records

        _config, scenario, checker = fuzz_worlds[0]
        before = len(checker.violations)
        records = street_level_records(scenario, max_targets=2)
        assert len(records) == 2
        assert checker.violations[before:] == []
        # Street-level traceroutes route through the checked latency model.
        assert checker.passes.get("trace.hop_delta", 0) > 0
        _note_passes(checker)


class TestCacheDigestFuzz:
    def test_roundtrip_over_fuzzed_payloads(self, tmp_path):
        from repro.cache.artifacts import ArtifactCache

        checker = InvariantChecker(raise_on_violation=False)
        cache = ArtifactCache(tmp_path, checker=checker)
        for index in range(15):
            rng = rand.generator(("cache-fuzz", index))
            arrays = {
                "a": rng.normal(size=(rng.integers(1, 8), rng.integers(1, 8))),
                "b": rng.integers(0, 1000, size=rng.integers(1, 30)),
            }
            key = f"{index:064x}"
            cache.store("fuzz", key, arrays)
            loaded = cache.load("fuzz", key)
            assert loaded is not None
            for name in arrays:
                assert np.array_equal(loaded[name], np.asarray(arrays[name]))
        # One store-roundtrip pass and one load pass per artifact.
        assert checker.passes["cache.digest"] == 30
        assert checker.violations == []
        _note_passes(checker)


def _parity_item(value: int) -> float:
    """Module-level work item (picklable by reference) for the parity test."""
    return float(value) * 0.5


class TestExecParity:
    def test_parallel_map_item_parity(self, monkeypatch):
        if _fork_context() is None:  # pragma: no cover - non-POSIX platforms
            pytest.skip("fork start method unavailable")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        checker = InvariantChecker(raise_on_violation=False)
        results = parallel_map(_parity_item, range(8), checker=checker)
        assert results == [_parity_item(i) for i in range(8)]
        assert checker.passes.get("exec.item_parity", 0) == 1
        assert checker.violations == []
        _note_passes(checker)

    def test_serial_path_skips_parity(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        checker = InvariantChecker(raise_on_violation=False)
        parallel_map(_parity_item, range(4), checker=checker)
        assert "exec.item_parity" not in checker.passes


class TestMetamorphicScaling:
    @pytest.mark.parametrize("index,factor", [(0, 3.0), (1, 0.5), (2, 7.0)])
    def test_scaling_delays_scales_rtts(self, index, factor):
        config = fuzz_config(index)
        scaled = scaled_config(config, factor)
        base_platform = AtlasPlatform(build_world(config))
        scaled_platform = AtlasPlatform(build_world(scaled))

        probe_ids = [p.host_id for p in base_platform.world.probes[:40]]
        target_ips = [a.ip for a in base_platform.world.anchors[:5]]
        base = base_platform.ping_matrix(probe_ids, target_ips, seq=13)
        scaled_matrix = scaled_platform.ping_matrix(probe_ids, target_ips, seq=13)

        # Loss draws are value-independent: the NaN pattern is identical.
        assert np.array_equal(np.isnan(base), np.isnan(scaled_matrix))
        answered = ~np.isnan(base)
        assert answered.any()
        np.testing.assert_allclose(
            scaled_matrix[answered], base[answered] * factor, rtol=1e-9
        )

    def test_scaled_config_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            scaled_config(fuzz_config(0), 0.0)


class TestPermutationInvariance:
    def test_probe_order_does_not_change_measurements(self):
        config = fuzz_config(3)
        platform = AtlasPlatform(build_world(config))
        probe_ids = [p.host_id for p in platform.world.probes[:60]]
        target_ips = [a.ip for a in platform.world.anchors[:4]]
        forward = platform.ping_matrix(probe_ids, target_ips, seq=17)

        rng = rand.generator((config.seed, "prop-permutation"))
        order = rng.permutation(len(probe_ids))
        permuted_ids = [probe_ids[i] for i in order]
        permuted = platform.ping_matrix(permuted_ids, target_ips, seq=17)

        # Undo the permutation: rows must match bitwise, NaNs included —
        # every draw is keyed by (host, target, seq), never by position.
        restored = np.empty_like(permuted)
        restored[order] = permuted
        assert np.array_equal(forward, restored, equal_nan=True)


class TestRegistryCompleteness:
    def test_every_invariant_exercised(self):
        expected = set(INVARIANTS)
        if _fork_context() is None:  # pragma: no cover - non-POSIX platforms
            expected.discard("exec.item_parity")
        missing = expected - EXERCISED
        assert not missing, (
            f"invariants never exercised with a pass in this module: "
            f"{sorted(missing)} (run the whole module, not a single test)"
        )
