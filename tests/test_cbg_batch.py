"""Parity suite: the batched CBG kernel vs the per-target reference loop.

The batched kernel promises *bitwise* identical results to calling
:func:`repro.core.cbg.cbg_centroid_fast` once per target — not "close",
equal. Every comparison here is ``np.array_equal(..., equal_nan=True)``
on raw float64 output, across the edge cases the kernel handles with
special machinery: all-NaN columns, ``min_vps`` starvation, ``max_active``
overflow (the exact trim replay), near-full masked subsets, cached vs
uncached derived arrays, and chunked execution.
"""

import math

import numpy as np
import pytest

from repro.constants import SOI_FRACTION_CBG
from repro.core import cbg_batch
from repro.core.cbg import cbg_centroid_fast, cbg_errors_for_subsets, cbg_estimate
from repro.core.cbg_batch import (
    _reset_derived_cache,
    cbg_centroids_batch,
    cbg_errors_batch,
    cbg_errors_for_subsets_loop,
)
from repro.geo.coords import GeoPoint
from repro.obs.observer import Observer


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test starts and ends without a populated derived-array cache."""
    _reset_derived_cache()
    yield
    _reset_derived_cache()


def _random_world(rng, n_vps, n_targets, nan_fraction=0.3):
    """A synthetic campaign: VP/target coordinates plus an RTT matrix."""
    vp_lats = rng.uniform(-75, 75, n_vps)
    vp_lons = rng.uniform(-180, 180, n_vps)
    t_lats = rng.uniform(-75, 75, n_targets)
    t_lons = rng.uniform(-180, 180, n_targets)
    matrix = rng.uniform(1.0, 250.0, (n_vps, n_targets))
    mask = rng.random((n_vps, n_targets)) < nan_fraction
    matrix[mask] = np.nan
    return vp_lats, vp_lons, t_lats, t_lons, matrix


def _loop_centroids(vp_lats, vp_lons, matrix, subset, **kwargs):
    """Reference: one `cbg_centroid_fast` call per column."""
    lats = np.full(matrix.shape[1], np.nan)
    lons = np.full(matrix.shape[1], np.nan)
    for t in range(matrix.shape[1]):
        centroid = cbg_centroid_fast(
            vp_lats[subset], vp_lons[subset], matrix[subset, t], **kwargs
        )
        if centroid is not None:
            lats[t], lons[t] = centroid
    return lats, lons


def _assert_bitwise(a, b):
    assert np.array_equal(a, b, equal_nan=True)


class TestCentroidParity:
    def test_random_subsets_bitwise(self):
        rng = np.random.default_rng(7)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 120, 40)
        for size in (3, 10, 60, 119):
            subset = np.sort(rng.choice(120, size=size, replace=False))
            got = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
            want = _loop_centroids(vp_lats, vp_lons, matrix, subset)
            _assert_bitwise(got[0], want[0])
            _assert_bitwise(got[1], want[1])

    def test_full_range_and_none_subset_agree(self):
        rng = np.random.default_rng(8)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 50, 20)
        everyone = np.arange(50)
        a = cbg_centroids_batch(vp_lats, vp_lons, matrix, everyone)
        b = cbg_centroids_batch(vp_lats, vp_lons, matrix, None)
        want = _loop_centroids(vp_lats, vp_lons, matrix, everyone)
        for got in (a, b):
            _assert_bitwise(got[0], want[0])
            _assert_bitwise(got[1], want[1])

    def test_unsorted_subset_bitwise(self):
        rng = np.random.default_rng(9)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 80, 25)
        subset = rng.permutation(80)[:30]  # deliberately unsorted
        got = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        want = _loop_centroids(vp_lats, vp_lons, matrix, subset)
        _assert_bitwise(got[0], want[0])
        _assert_bitwise(got[1], want[1])

    def test_all_nan_columns(self):
        rng = np.random.default_rng(10)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 30, 12)
        matrix[:, [2, 7, 11]] = np.nan
        subset = np.arange(30)
        got_lats, got_lons = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        assert np.isnan(got_lats[[2, 7, 11]]).all()
        assert np.isnan(got_lons[[2, 7, 11]]).all()
        want = _loop_centroids(vp_lats, vp_lons, matrix, subset)
        _assert_bitwise(got_lats, want[0])
        _assert_bitwise(got_lons, want[1])

    def test_min_vps_starvation(self):
        rng = np.random.default_rng(11)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(
            rng, 40, 15, nan_fraction=0.9
        )
        subset = np.sort(rng.choice(40, size=25, replace=False))
        for min_vps in (1, 3, 10):
            got = cbg_centroids_batch(
                vp_lats, vp_lons, matrix, subset, min_vps=min_vps
            )
            want = _loop_centroids(
                vp_lats, vp_lons, matrix, subset, min_vps=min_vps
            )
            _assert_bitwise(got[0], want[0])
            _assert_bitwise(got[1], want[1])

    def test_max_active_overflow_trim(self):
        # Tiny max_active forces the binding-set trim (the reference's
        # slack argsort) on essentially every column.
        rng = np.random.default_rng(12)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(
            rng, 90, 30, nan_fraction=0.05
        )
        subset = np.arange(90)
        for max_active in (2, 5, 16):
            got = cbg_centroids_batch(
                vp_lats, vp_lons, matrix, subset, max_active=max_active
            )
            want = _loop_centroids(
                vp_lats, vp_lons, matrix, subset, max_active=max_active
            )
            _assert_bitwise(got[0], want[0])
            _assert_bitwise(got[1], want[1])

    def test_zero_rtt_degenerate_columns(self):
        rng = np.random.default_rng(13)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 25, 10)
        matrix[4, :5] = 0.0  # zero radius pins the estimate at the VP
        subset = np.arange(25)
        got = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        want = _loop_centroids(vp_lats, vp_lons, matrix, subset)
        _assert_bitwise(got[0], want[0])
        _assert_bitwise(got[1], want[1])

    def test_chunked_execution_bitwise(self):
        rng = np.random.default_rng(14)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 60, 37)
        subset = np.sort(rng.choice(60, size=45, replace=False))
        whole = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        for chunk in (1, 5, 36, 37, 1000):
            parts = cbg_centroids_batch(
                vp_lats, vp_lons, matrix, subset, chunk_targets=chunk
            )
            _assert_bitwise(whole[0], parts[0])
            _assert_bitwise(whole[1], parts[1])

    def test_soi_fraction_forwarded(self):
        rng = np.random.default_rng(15)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 40, 16)
        subset = np.arange(40)
        got = cbg_centroids_batch(
            vp_lats, vp_lons, matrix, subset, soi_fraction=4.0 / 9.0
        )
        want = _loop_centroids(
            vp_lats, vp_lons, matrix, subset, soi_fraction=4.0 / 9.0
        )
        _assert_bitwise(got[0], want[0])
        _assert_bitwise(got[1], want[1])


class TestDerivedCache:
    def test_cached_and_uncached_calls_bitwise(self):
        rng = np.random.default_rng(16)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 70, 24)
        subset = np.sort(rng.choice(70, size=30, replace=False))
        cold = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        # Second and later sightings of the same matrix run off the cache.
        warm1 = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        warm2 = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        assert cbg_batch._DERIVED_SLOT is not None
        for got in (warm1, warm2):
            _assert_bitwise(cold[0], got[0])
            _assert_bitwise(cold[1], got[1])

    def test_masked_near_full_mode_bitwise(self):
        # A sorted subset covering >= 3/4 of the VPs takes the full-width
        # masked path off the cached arrays; gather path and reference
        # loop must agree bitwise.
        rng = np.random.default_rng(17)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 100, 30)
        subset = np.sort(rng.choice(100, size=90, replace=False))
        cold = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        warm = cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        want = _loop_centroids(vp_lats, vp_lons, matrix, subset)
        for got in (cold, warm):
            _assert_bitwise(got[0], want[0])
            _assert_bitwise(got[1], want[1])

    def test_cache_not_fooled_by_lookalike_matrix(self):
        rng = np.random.default_rng(18)
        vp_lats, vp_lons, _tl, _to, matrix = _random_world(rng, 40, 14)
        subset = np.arange(40)
        cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)
        cbg_centroids_batch(vp_lats, vp_lons, matrix, subset)  # cache warm
        other = matrix + 1.0
        got = cbg_centroids_batch(vp_lats, vp_lons, other, subset)
        want = _loop_centroids(vp_lats, vp_lons, other, subset)
        _assert_bitwise(got[0], want[0])
        _assert_bitwise(got[1], want[1])


class TestErrorsParity:
    def test_errors_bitwise_vs_loop(self):
        rng = np.random.default_rng(19)
        vp_lats, vp_lons, t_lats, t_lons, matrix = _random_world(rng, 80, 30)
        for size in (5, 40, 75):
            subset = np.sort(rng.choice(80, size=size, replace=False))
            got = cbg_errors_batch(
                vp_lats, vp_lons, matrix, t_lats, t_lons, subset
            )
            want = cbg_errors_for_subsets_loop(
                vp_lats, vp_lons, matrix, t_lats, t_lons, subset
            )
            _assert_bitwise(got, want)

    def test_public_wrapper_delegates_to_batch(self):
        rng = np.random.default_rng(20)
        vp_lats, vp_lons, t_lats, t_lons, matrix = _random_world(rng, 30, 10)
        subset = np.arange(30)
        got = cbg_errors_for_subsets(
            vp_lats, vp_lons, matrix, t_lats, t_lons, subset
        )
        want = cbg_errors_for_subsets_loop(
            vp_lats, vp_lons, matrix, t_lats, t_lons, subset
        )
        _assert_bitwise(got, want)

    def test_campaign_parity_on_small_scenario(self, small_scenario):
        matrix = small_scenario.rtt_matrix()
        vp_lats = small_scenario.vp_lats
        vp_lons = small_scenario.vp_lons
        t_lats = small_scenario.target_true_lats
        t_lons = small_scenario.target_true_lons
        n_vps = len(small_scenario.vps)
        rng = np.random.default_rng(21)
        for size in (10, n_vps // 2, max(1, n_vps - 3), n_vps):
            subset = np.sort(rng.choice(n_vps, size=size, replace=False))
            got = cbg_errors_batch(
                vp_lats, vp_lons, matrix, t_lats, t_lons, subset
            )
            want = cbg_errors_for_subsets_loop(
                vp_lats, vp_lons, matrix, t_lats, t_lons, subset
            )
            _assert_bitwise(got, want)


class TestObsCounters:
    def test_counter_totals_match_loop_semantics(self):
        rng = np.random.default_rng(22)
        vp_lats, vp_lons, t_lats, t_lons, matrix = _random_world(
            rng, 40, 18, nan_fraction=0.85
        )
        subset = np.arange(40)
        obs_batch = Observer()
        cbg_errors_batch(
            vp_lats, vp_lons, matrix, t_lats, t_lons, subset,
            min_vps=5, obs=obs_batch,
        )
        obs_loop = Observer()
        cbg_errors_for_subsets_loop(
            vp_lats, vp_lons, matrix, t_lats, t_lons, subset,
            min_vps=5, obs=obs_loop,
        )
        batch_counters = obs_batch.metrics.counters()
        loop_counters = obs_loop.metrics.counters()
        assert batch_counters["cbg.fast_calls"] == loop_counters["cbg.fast_calls"]
        assert batch_counters.get("cbg.fast_no_estimate", 0) == loop_counters.get(
            "cbg.fast_no_estimate", 0
        )


class TestAgainstExactPath:
    def test_batch_consistent_with_exact_region_estimate(self):
        # Same consistency bound the fast path is held to vs cbg_estimate:
        # the batched kernel must land near the exact region centroid.
        from repro.atlas.platform import ProbeInfo
        from repro.constants import distance_to_min_rtt_ms
        from repro.geo.coords import destination

        center = GeoPoint(42.0, 7.0)
        vps, vp_lats, vp_lons, rtts = [], [], [], {}
        for index, bearing in enumerate((10.0, 130.0, 250.0, 300.0)):
            location = destination(center, bearing, 400.0)
            vps.append(
                ProbeInfo(
                    probe_id=index,
                    address=f"10.1.{index}.1",
                    location=location,
                    asn=65000 + index,
                    is_anchor=False,
                    probing_rate_pps=8.0,
                )
            )
            vp_lats.append(location.lat)
            vp_lons.append(location.lon)
            rtts[index] = distance_to_min_rtt_ms(400.0) * 1.15
        result, _region = cbg_estimate("10.9.9.9", vps, rtts)
        matrix = np.array([[rtts[i]] for i in range(4)])
        got_lats, got_lons = cbg_centroids_batch(
            np.array(vp_lats), np.array(vp_lons), matrix, np.arange(4)
        )
        assert not math.isnan(got_lats[0])
        estimate = GeoPoint(float(got_lats[0]), float(got_lons[0]))
        assert result.estimate.distance_km(estimate) < 150.0
