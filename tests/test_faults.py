"""Tests for the fault-injection substrate (:mod:`repro.faults`).

Covers plan validation, determinism of the fault schedules (same seed →
same faults; different seeds → different faults), the zero-fault
byte-identity guarantee, churn windows, scalar/bulk draw consistency,
typed API fault bands, credit exhaustion, result delays, and the nesting
property that makes coverage monotone in the fault rate.
"""

import numpy as np
import pytest

from repro.atlas.platform import AtlasPlatform
from repro.errors import (
    ApiRateLimitError,
    ApiServerError,
    ApiTimeoutError,
    AtlasApiError,
    ConfigurationError,
    CreditExhaustedError,
    MeasurementError,
    RateLimitError,
)
from repro.faults import FaultInjector, FaultPlan

SEEDS = (3, 11)


class TestFaultPlanValidation:
    @pytest.mark.parametrize(
        "field", ["probe_disconnect_rate", "packet_loss_rate", "api_timeout_rate",
                  "api_rate_limit_rate", "api_server_error_rate", "result_delay_rate"],
    )
    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_rates_must_be_probabilities(self, field, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan(**{field: bad})

    def test_api_rates_cannot_sum_over_one(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(api_timeout_rate=0.5, api_rate_limit_rate=0.4, api_server_error_rate=0.2)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(probe_churn_window_s=0.0)

    def test_delay_range_must_be_ordered(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(result_delay_range_s=(100.0, 50.0))
        with pytest.raises(ConfigurationError):
            FaultPlan(result_delay_range_s=(-1.0, 50.0))

    def test_budget_must_be_non_negative(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(credit_budget=-1)

    def test_at_rate_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.at_rate(1.5)

    def test_none_and_at_rate_zero_are_zero(self):
        assert FaultPlan.none().is_zero
        assert FaultPlan.at_rate(0.0).is_zero
        assert not FaultPlan.at_rate(0.1).is_zero
        assert not FaultPlan(credit_budget=10).is_zero

    def test_plan_is_frozen_and_hashable(self):
        plan = FaultPlan.at_rate(0.2, seed=5)
        assert plan == FaultPlan.at_rate(0.2, seed=5)
        assert hash(plan) == hash(FaultPlan.at_rate(0.2, seed=5))
        with pytest.raises(AttributeError):
            plan.seed = 1


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_schedule(self, seed):
        plan = FaultPlan.at_rate(0.3, seed=seed)
        a, b = FaultInjector(plan), FaultInjector(plan)
        ids = np.arange(100, 200, dtype=np.int64)
        np.testing.assert_array_equal(
            a.disconnected_mask(ids, window=4), b.disconnected_mask(ids, window=4)
        )
        np.testing.assert_array_equal(
            a.loss_mask("ping", "10.0.0.1", 0, ids), b.loss_mask("ping", "10.0.0.1", 0, ids)
        )
        for index in range(20):
            ea, eb = a.api_error("ping", index), b.api_error("ping", index)
            assert type(ea) is type(eb)
            assert a.result_delay("ping", index) == b.result_delay("ping", index)
        assert a.fault_counts() == b.fault_counts()

    def test_different_seeds_differ(self):
        ids = np.arange(0, 500, dtype=np.int64)
        masks = [
            FaultInjector(FaultPlan.at_rate(0.3, seed=seed)).loss_mask("ping", "10.0.0.1", 0, ids)
            for seed in SEEDS
        ]
        assert not np.array_equal(masks[0], masks[1])

    @pytest.mark.parametrize("seed", SEEDS)
    def test_draws_independent_of_call_order(self, seed):
        plan = FaultPlan.at_rate(0.4, seed=seed)
        a, b = FaultInjector(plan), FaultInjector(plan)
        forward = [a.probe_disconnected(pid, window=0) for pid in range(50)]
        backward = [b.probe_disconnected(pid, window=0) for pid in reversed(range(50))]
        assert forward == list(reversed(backward))


class TestZeroPlanIdentity:
    def test_zero_plan_platform_byte_identical(self, small_world):
        """A platform carrying a zero plan is the fair-weather platform."""
        plain = AtlasPlatform(small_world)
        faulty = AtlasPlatform(small_world, faults=FaultInjector(FaultPlan.none()))
        probe_ids = [p.host_id for p in small_world.probes[:8]]
        targets = [a.ip for a in small_world.anchors[:5]]
        np.testing.assert_array_equal(
            plain.ping_matrix(probe_ids, targets, seq=2),
            faulty.ping_matrix(probe_ids, targets, seq=2),
        )
        assert plain.ping(probe_ids, targets[0], seq=2) == faulty.ping(probe_ids, targets[0], seq=2)
        assert faulty.faults.fault_counts() == {}


class TestChurn:
    def test_window_arithmetic(self):
        injector = FaultInjector(FaultPlan(probe_disconnect_rate=0.5, probe_churn_window_s=600.0))
        assert injector.window_at(0.0) == 0
        assert injector.window_at(599.9) == 0
        assert injector.window_at(600.0) == 1
        assert injector.window_at(6000.0) == 10

    @pytest.mark.parametrize("seed", SEEDS)
    def test_connectivity_redrawn_per_window(self, seed):
        injector = FaultInjector(FaultPlan(seed=seed, probe_disconnect_rate=0.5))
        per_window = [
            [injector.probe_disconnected(pid, window) for pid in range(64)]
            for window in range(4)
        ]
        # Same window → same fate; different windows → different draws.
        assert any(per_window[0] != later for later in per_window[1:])
        repeat = [injector.probe_disconnected(pid, 0) for pid in range(64)]
        assert repeat == per_window[0]


class TestScalarBulkConsistency:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_disconnected_mask_matches_scalar(self, seed):
        plan = FaultPlan(seed=seed, probe_disconnect_rate=0.3)
        ids = np.arange(1, 257, dtype=np.int64)
        bulk = FaultInjector(plan).disconnected_mask(ids, window=7)
        scalar = np.array(
            [FaultInjector(plan).probe_disconnected(int(pid), 7) for pid in ids]
        )
        np.testing.assert_array_equal(bulk, scalar)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_loss_mask_matches_scalar(self, seed):
        plan = FaultPlan(seed=seed, packet_loss_rate=0.25)
        ids = np.arange(1, 257, dtype=np.int64)
        bulk = FaultInjector(plan).loss_mask("ping", "10.1.2.3", 5, ids)
        scalar = np.array(
            [
                FaultInjector(plan).measurement_lost("ping", "10.1.2.3", 5, int(pid))
                for pid in ids
            ]
        )
        np.testing.assert_array_equal(bulk, scalar)

    def test_masks_record_counts(self):
        injector = FaultInjector(FaultPlan(packet_loss_rate=0.5, probe_disconnect_rate=0.5))
        ids = np.arange(0, 400, dtype=np.int64)
        lost = int(injector.loss_mask("ping", "10.0.0.9", 0, ids).sum())
        down = int(injector.disconnected_mask(ids, 0).sum())
        counts = injector.fault_counts()
        assert counts["packet-loss"] == lost > 0
        assert counts["probe-disconnect"] == down > 0


class TestApiFaults:
    def test_all_timeout_band(self):
        injector = FaultInjector(FaultPlan(api_timeout_rate=1.0, api_timeout_cost_s=45.0))
        for index in range(5):
            error = injector.api_error("ping", index)
            assert isinstance(error, ApiTimeoutError)
            assert error.cost_s == 45.0
            assert error.retryable

    def test_all_rate_limit_band(self):
        injector = FaultInjector(
            FaultPlan(api_rate_limit_rate=1.0, api_rate_limit_retry_after_s=77.0)
        )
        error = injector.api_error("ping", 0)
        assert isinstance(error, ApiRateLimitError)
        assert isinstance(error, RateLimitError)  # typed: also a platform 429
        assert isinstance(error, AtlasApiError)
        assert error.retry_after_s == 77.0

    def test_all_server_error_band(self):
        injector = FaultInjector(FaultPlan(api_server_error_rate=1.0))
        error = injector.api_error("traceroute", 0)
        assert isinstance(error, ApiServerError)
        assert error.status == 503

    def test_bands_are_mutually_exclusive(self):
        """One draw, partitioned: each call fails at most one way."""
        injector = FaultInjector(
            FaultPlan(api_timeout_rate=0.3, api_rate_limit_rate=0.3, api_server_error_rate=0.3)
        )
        kinds = [type(injector.api_error("ping", index)) for index in range(300)]
        counts = injector.fault_counts()
        total_faults = sum(1 for k in kinds if k is not type(None))
        assert (
            counts.get("api-timeout", 0)
            + counts.get("api-rate-limit", 0)
            + counts.get("api-server-error", 0)
            == total_faults
        )
        # With 90% fault probability all three bands get hit over 300 draws.
        assert counts["api-timeout"] > 0
        assert counts["api-rate-limit"] > 0
        assert counts["api-server-error"] > 0

    def test_zero_rates_draw_nothing(self):
        injector = FaultInjector(FaultPlan.none())
        assert injector.api_error("ping", 0) is None
        assert injector.result_delay("ping", 0) == 0.0

    def test_errors_are_measurement_errors(self):
        """Existing except MeasurementError handlers still catch API faults."""
        assert issubclass(AtlasApiError, MeasurementError)


class TestCreditBudget:
    def test_budget_enforced_with_typed_error(self):
        injector = FaultInjector(FaultPlan(credit_budget=100))
        injector.check_credits(60)
        with pytest.raises(CreditExhaustedError):
            injector.check_credits(50)
        # The denied charge was not recorded; a fitting one still passes.
        assert injector.credits_charged == 60
        injector.check_credits(40)
        assert injector.credits_charged == 100
        assert injector.fault_counts()["credit-denied"] == 1

    def test_unlimited_budget_never_raises(self):
        injector = FaultInjector(FaultPlan.none())
        injector.check_credits(10**9)
        assert injector.credits_charged == 10**9

    def test_platform_admission_raises(self, small_world):
        platform = AtlasPlatform(
            small_world, faults=FaultInjector(FaultPlan(credit_budget=5))
        )
        probe_ids = [p.host_id for p in small_world.probes[:4]]
        with pytest.raises(CreditExhaustedError):
            platform.ping(probe_ids, small_world.anchors[0].ip)


class TestResultDelays:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_delay_within_configured_range(self, seed):
        plan = FaultPlan(seed=seed, result_delay_rate=1.0, result_delay_range_s=(30.0, 90.0))
        injector = FaultInjector(plan)
        delays = [injector.result_delay("ping", index) for index in range(20)]
        assert all(30.0 <= delay <= 90.0 for delay in delays)
        assert injector.fault_counts()["result-delay"] == 20

    def test_partial_rate_sometimes_zero(self):
        injector = FaultInjector(FaultPlan(result_delay_rate=0.5))
        delays = [injector.result_delay("ping", index) for index in range(50)]
        assert any(delay == 0.0 for delay in delays)
        assert any(delay > 0.0 for delay in delays)


class TestNesting:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_sets_nest_across_rates(self, seed):
        """Rate-free draw keys: every fault at rate r1 < r2 recurs at r2."""
        ids = np.arange(0, 300, dtype=np.int64)
        rates = (0.05, 0.1, 0.2, 0.4)
        loss_masks = [
            FaultInjector(FaultPlan.at_rate(rate, seed=seed)).loss_mask(
                "ping", "10.0.0.1", 0, ids
            )
            for rate in rates
        ]
        churn_masks = [
            FaultInjector(FaultPlan.at_rate(rate, seed=seed)).disconnected_mask(ids, 0)
            for rate in rates
        ]
        for smaller, larger in zip(loss_masks, loss_masks[1:]):
            assert not np.any(smaller & ~larger)
        for smaller, larger in zip(churn_masks, churn_masks[1:]):
            assert not np.any(smaller & ~larger)

    def test_next_call_counter_is_monotone(self):
        injector = FaultInjector(FaultPlan.none())
        assert [injector.next_call() for _ in range(5)] == [0, 1, 2, 3, 4]
