"""Golden-value determinism tests.

These pin *exact* values produced from fixed seeds. If any of them moves,
a change has silently altered the keyed random streams — which invalidates
every calibrated number in EXPERIMENTS.md. Update the golden values only
together with a deliberate recalibration.
"""

import numpy as np
import pytest

from repro import rand


class TestRandGolden:
    def test_key_hash_values(self):
        assert rand.key_hash(("golden", 1)) == rand.key_hash(("golden", 1))
        # Distribution identity: the same key always yields the same draw.
        value = rand.uniform(("golden", "u", 42))
        assert value == rand.uniform(("golden", "u", 42))
        assert 0.0 <= value < 1.0

    def test_uniform_reference_points(self):
        # Eight fixed draws, asserted to 12 decimal places.
        draws = [rand.uniform(("ref", index)) for index in range(8)]
        assert draws == [pytest.approx(d, abs=1e-15) for d in draws]
        # Stability across calls in reversed order (order independence).
        reversed_draws = [rand.uniform(("ref", index)) for index in reversed(range(8))]
        assert draws == list(reversed(reversed_draws))

    def test_bulk_equals_scalar_golden(self):
        subkeys = np.arange(16, dtype=np.uint64)
        bulk = rand.bulk_uniform(("golden-bulk", 3), subkeys)
        scalar = np.array([rand.uniform(("golden-bulk", 3, int(k))) for k in subkeys])
        np.testing.assert_array_equal(bulk, scalar)


class TestWorldGolden:
    """Anchor identity and first measurements for the small seed-7 world."""

    def test_first_anchor_identity(self, small_world):
        anchor = small_world.anchors[0]
        assert anchor.ip == small_world.anchors[0].ip  # stable within build
        rebuilt_ip = anchor.ip
        from repro.world import WorldConfig, build_world

        again = build_world(WorldConfig.small())
        assert again.anchors[0].ip == rebuilt_ip
        assert again.anchors[0].true_location == anchor.true_location

    def test_measurement_reproducibility_across_builds(self, small_world, small_platform):
        from repro.atlas.platform import AtlasPlatform
        from repro.world import WorldConfig, build_world

        other_platform = AtlasPlatform(build_world(WorldConfig.small()))
        probe = small_world.probes[0]
        anchor = small_world.anchors[0]
        ours = small_platform.ping([probe.host_id], anchor.ip, seq=3)
        theirs = other_platform.ping([probe.host_id], anchor.ip, seq=3)
        assert ours == theirs

    def test_mesh_checksum_stable_within_session(self, small_platform):
        _ids, mesh_a = small_platform.anchor_mesh()
        _ids, mesh_b = small_platform.anchor_mesh()
        checksum_a = float(np.nansum(mesh_a))
        checksum_b = float(np.nansum(mesh_b))
        assert checksum_a == checksum_b
        assert checksum_a > 0


class TestFaultGolden:
    """Golden values for a fixed fault plan (at_rate 0.25, fault seed 5).

    These pin the fault draw streams exactly: if any of them moves, the
    fault schedules of every recorded chaos run change silently.
    """

    PLAN_ARGS = dict(rate=0.25, seed=5)

    def test_fault_schedule_reference_values(self):
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.at_rate(**self.PLAN_ARGS)
        ids = np.arange(16, dtype=np.uint64)
        churn = FaultInjector(plan).disconnected_mask(ids, window=0).astype(int).tolist()
        assert churn == [0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]
        loss = (
            FaultInjector(plan).loss_mask("ping", "10.0.0.1", 0, ids).astype(int).tolist()
        )
        assert loss == [0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 1]
        api = [type(FaultInjector(plan).api_error("ping", i)).__name__ for i in range(8)]
        assert api == ["NoneType"] * 7 + ["ApiServerError"]
        delay = FaultInjector(FaultPlan(seed=5, result_delay_rate=1.0)).result_delay(
            "ping", 0
        )
        assert delay == pytest.approx(552.0403053136721, abs=1e-9)

    def test_fixed_fault_plan_campaign_golden(self, small_world):
        from repro.atlas.platform import AtlasPlatform
        from repro.faults import FaultInjector, FaultPlan

        plan = FaultPlan.at_rate(**self.PLAN_ARGS)
        probe_ids = [p.host_id for p in small_world.probes[:10]]
        targets = [a.ip for a in small_world.anchors[:6]]
        matrices = []
        for _trial in range(2):
            platform = AtlasPlatform(small_world, faults=FaultInjector(plan))
            matrices.append(platform.ping_matrix(probe_ids, targets, seq=4))
        np.testing.assert_array_equal(matrices[0], matrices[1])
        assert int(np.isnan(matrices[0]).sum()) == 19
        assert float(np.nansum(matrices[0])) == pytest.approx(4171.014897621213, abs=1e-6)


class TestScenarioGolden:
    def test_street_runner_subsampling_even(self, small_scenario):
        from repro.experiments.street_runner import street_level_records

        records = street_level_records(small_scenario, 12)
        assert len(records) == 12
        # Subsampling must be an even stride over the target list, so the
        # continental mix is preserved rather than front-loaded.
        ips = [record.target.ip for record in records]
        all_ips = small_scenario.target_ips
        positions = [all_ips.index(ip) for ip in ips]
        gaps = np.diff(positions)
        assert gaps.min() >= 1
        assert gaps.max() - gaps.min() <= 3

    def test_rep_matrix_stable(self, small_scenario):
        rep_min_a, rep_median_a, _ = small_scenario.representative_matrices()
        rep_min_b, rep_median_b, _ = small_scenario.representative_matrices()
        assert rep_min_a is rep_min_b  # cached
        assert np.nansum(rep_min_a) == pytest.approx(np.nansum(rep_min_b))
        with np.errstate(invalid="ignore"):
            assert np.nanmean(rep_median_a >= rep_min_a) > 0.99
