"""Golden-value determinism tests.

These pin *exact* values produced from fixed seeds. If any of them moves,
a change has silently altered the keyed random streams — which invalidates
every calibrated number in EXPERIMENTS.md. Update the golden values only
together with a deliberate recalibration.
"""

import numpy as np
import pytest

from repro import rand


class TestRandGolden:
    def test_key_hash_values(self):
        assert rand.key_hash(("golden", 1)) == rand.key_hash(("golden", 1))
        # Distribution identity: the same key always yields the same draw.
        value = rand.uniform(("golden", "u", 42))
        assert value == rand.uniform(("golden", "u", 42))
        assert 0.0 <= value < 1.0

    def test_uniform_reference_points(self):
        # Eight fixed draws, asserted to 12 decimal places.
        draws = [rand.uniform(("ref", index)) for index in range(8)]
        assert draws == [pytest.approx(d, abs=1e-15) for d in draws]
        # Stability across calls in reversed order (order independence).
        reversed_draws = [rand.uniform(("ref", index)) for index in reversed(range(8))]
        assert draws == list(reversed(reversed_draws))

    def test_bulk_equals_scalar_golden(self):
        subkeys = np.arange(16, dtype=np.uint64)
        bulk = rand.bulk_uniform(("golden-bulk", 3), subkeys)
        scalar = np.array([rand.uniform(("golden-bulk", 3, int(k))) for k in subkeys])
        np.testing.assert_array_equal(bulk, scalar)


class TestWorldGolden:
    """Anchor identity and first measurements for the small seed-7 world."""

    def test_first_anchor_identity(self, small_world):
        anchor = small_world.anchors[0]
        assert anchor.ip == small_world.anchors[0].ip  # stable within build
        rebuilt_ip = anchor.ip
        from repro.world import WorldConfig, build_world

        again = build_world(WorldConfig.small())
        assert again.anchors[0].ip == rebuilt_ip
        assert again.anchors[0].true_location == anchor.true_location

    def test_measurement_reproducibility_across_builds(self, small_world, small_platform):
        from repro.atlas.platform import AtlasPlatform
        from repro.world import WorldConfig, build_world

        other_platform = AtlasPlatform(build_world(WorldConfig.small()))
        probe = small_world.probes[0]
        anchor = small_world.anchors[0]
        ours = small_platform.ping([probe.host_id], anchor.ip, seq=3)
        theirs = other_platform.ping([probe.host_id], anchor.ip, seq=3)
        assert ours == theirs

    def test_mesh_checksum_stable_within_session(self, small_platform):
        _ids, mesh_a = small_platform.anchor_mesh()
        _ids, mesh_b = small_platform.anchor_mesh()
        checksum_a = float(np.nansum(mesh_a))
        checksum_b = float(np.nansum(mesh_b))
        assert checksum_a == checksum_b
        assert checksum_a > 0


class TestScenarioGolden:
    def test_street_runner_subsampling_even(self, small_scenario):
        from repro.experiments.street_runner import street_level_records

        records = street_level_records(small_scenario, 12)
        assert len(records) == 12
        # Subsampling must be an even stride over the target list, so the
        # continental mix is preserved rather than front-loaded.
        ips = [record.target.ip for record in records]
        all_ips = small_scenario.target_ips
        positions = [all_ips.index(ip) for ip in ips]
        gaps = np.diff(positions)
        assert gaps.min() >= 1
        assert gaps.max() - gaps.min() <= 3

    def test_rep_matrix_stable(self, small_scenario):
        rep_min_a, rep_median_a, _ = small_scenario.representative_matrices()
        rep_min_b, rep_median_b, _ = small_scenario.representative_matrices()
        assert rep_min_a is rep_min_b  # cached
        assert np.nansum(rep_min_a) == pytest.approx(np.nansum(rep_min_b))
        with np.errstate(invalid="ignore"):
            assert np.nanmean(rep_median_a >= rep_min_a) > 0.99
