"""Property-based tests over the geolocation algorithms themselves."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas.platform import ProbeInfo
from repro.constants import distance_to_min_rtt_ms
from repro.core.cbg import cbg_centroid_fast
from repro.core.coverage import greedy_coverage_indices
from repro.core.million_scale import select_closest_vps
from repro.core.shortest_ping import shortest_ping
from repro.geo.coords import GeoPoint, destination, haversine_km

LATS = st.floats(min_value=-70.0, max_value=70.0)
LONS = st.floats(min_value=-170.0, max_value=170.0)


def _make_vps(positions):
    return [
        ProbeInfo(i, f"10.{i // 256}.{i % 256}.1", GeoPoint(lat, lon), 65000 + i, False, 8.0)
        for i, (lat, lon) in enumerate(positions)
    ]


class TestShortestPingProperties:
    @given(
        st.lists(
            st.tuples(LATS, LONS, st.floats(min_value=0.1, max_value=300.0)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_always_picks_global_minimum(self, triples):
        vps = _make_vps([(lat, lon) for lat, lon, _rtt in triples])
        rtts = {i: triples[i][2] for i in range(len(triples))}
        result = shortest_ping("10.99.99.99", vps, rtts)
        chosen = result.details["min_rtt_ms"]
        assert chosen == min(rtts.values())


class TestSelectionProperties:
    @given(
        st.lists(
            st.one_of(st.none(), st.floats(min_value=0.1, max_value=500.0)),
            min_size=1,
            max_size=40,
        ),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_select_closest_sorted_and_bounded(self, rtts, k):
        array = np.array([np.nan if r is None else r for r in rtts])
        chosen = select_closest_vps(array, k)
        values = array[chosen]
        assert list(values) == sorted(values)
        assert chosen.size <= k
        defined = np.count_nonzero(~np.isnan(array))
        assert chosen.size == min(k, defined)

    @given(
        st.lists(st.tuples(LATS, LONS), min_size=2, max_size=40, unique=True),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_greedy_coverage_valid_subset(self, positions, count):
        lats = np.array([p[0] for p in positions])
        lons = np.array([p[1] for p in positions])
        chosen = greedy_coverage_indices(lats, lons, count)
        assert len(chosen) == min(count, len(positions))
        assert len(set(chosen)) == len(chosen)
        assert all(0 <= index < len(positions) for index in chosen)


class TestFastCbgProperties:
    @given(
        LATS,
        LONS,
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=359.9),
                st.floats(min_value=50.0, max_value=3000.0),
                st.floats(min_value=1.05, max_value=1.8),
            ),
            min_size=1,
            max_size=15,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_centroid_error_bounded_by_slackest_consistent_geometry(
        self, lat, lon, vp_specs
    ):
        """With physically valid RTTs, the fast CBG centroid never lands
        farther from the target than the largest constraint radius."""
        target = GeoPoint(lat, lon)
        lats, lons, rtts = [], [], []
        for bearing, distance, inflation in vp_specs:
            location = destination(target, bearing, distance)
            lats.append(location.lat)
            lons.append(location.lon)
            rtts.append(distance_to_min_rtt_ms(distance) * inflation)
        centroid = cbg_centroid_fast(
            np.array(lats), np.array(lons), np.array(rtts)
        )
        assert centroid is not None
        error = haversine_km(centroid[0], centroid[1], target.lat, target.lon)
        # The target is feasible for every circle, so the tightest circle
        # bounds the region: error <= 2 * r_min (diameter), with slack for
        # the sampling approximation.
        from repro.constants import rtt_to_distance_km

        r_min = min(rtt_to_distance_km(r) for r in rtts)
        assert error <= 2.0 * r_min + 50.0


def _two_step_fixture():
    from repro.experiments.scenario import get_scenario

    scenario = get_scenario("small")
    return scenario, scenario.representative_matrices()[1]


class TestTwoStepProperties:
    @given(st.integers(min_value=5, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_measurement_count_bounds(self, step1_size, seed):
        from repro.core.two_step import two_step_select

        scenario, rep_median = _two_step_fixture()
        column = seed % len(scenario.targets)
        step1 = list(range(step1_size))
        outcome = two_step_select(
            scenario.targets[column].ip, scenario.vps, step1, rep_median[:, column]
        )
        total_vps = len(scenario.vps)
        # Lower bound: step-1 pings. Upper bound: every VP probed once + 1.
        assert outcome.ping_measurements >= step1_size * 3
        assert outcome.ping_measurements <= total_vps * 3 + 1
