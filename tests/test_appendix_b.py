"""Tests for the appendix B D1+D2 estimate-vs-truth experiment."""

import math

import pytest

from repro.experiments.appendix_b import EXPECTED, run_appendix_b


@pytest.fixture(scope="module")
def output(small_scenario):
    # Tiny parameters: enough triples to exercise every code path without
    # tracerouting the whole anchor set.
    return run_appendix_b(
        small_scenario, targets=6, landmarks_per_target=4, vps_per_pair=3
    )


class TestRunAppendixB:
    def test_measured_keys_match_expected(self, output):
        assert output.experiment_id == "appendixb"
        assert set(output.measured) == set(EXPECTED)

    def test_statistics_are_finite_and_sane(self, output):
        negative_fraction = output.measured["negative_fraction_below"]
        assert 0.0 <= negative_fraction <= 1.0
        ratio = output.measured["median_abs_log_ratio_above"]
        assert math.isfinite(ratio)
        assert ratio >= 0.0

    def test_series_aligned(self, output):
        estimates = output.series["estimate_ms"]
        truths = output.series["truth_ms"]
        assert len(estimates) == len(truths)
        assert len(estimates) > 0
        # Usable estimates are positive by definition; truths are RTTs.
        assert all(value > 0 for value in truths)

    def test_report_renders(self, output):
        text = output.render()
        assert "negative (unusable) fraction" in text
        assert "D1+D2" in text

    def test_deterministic_across_invocations(self, small_scenario, output):
        again = run_appendix_b(
            small_scenario, targets=6, landmarks_per_target=4, vps_per_pair=3
        )
        assert again.series["estimate_ms"] == output.series["estimate_ms"]
        assert again.measured == output.measured
