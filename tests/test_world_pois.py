"""Tests for lazy POI/website materialisation and the web directory."""

import pytest

from repro.world.pois import AMENITY_CATEGORIES, HostingKind


class TestLazyMaterialisation:
    def test_pois_cached(self, small_world):
        city_id = small_world.anchors[0].city_id
        first = small_world.pois_of_city(city_id)
        second = small_world.pois_of_city(city_id)
        assert first is second

    def test_poi_fields(self, small_world):
        city_id = small_world.anchors[0].city_id
        for poi in small_world.pois_of_city(city_id)[:30]:
            assert poi.category in AMENITY_CATEGORIES
            assert poi.city_id == city_id
            assert poi.zipcode

    def test_poi_ids_unique(self, small_world):
        ids = set()
        for city in small_world.cities[:10]:
            for poi in small_world.pois_of_city(city.city_id):
                assert poi.poi_id not in ids
                ids.add(poi.poi_id)

    def test_websites_resolve_in_dns(self, small_world):
        city_id = small_world.anchors[0].city_id
        for poi in small_world.pois_of_city(city_id):
            if poi.website is not None:
                record = small_world.dns.try_resolve(poi.website.hostname)
                assert record is not None
                assert record.ip == poi.website.ip

    def test_local_sites_have_hosts_at_poi(self, small_world):
        city_id = small_world.anchors[0].city_id
        found_local = False
        for poi in small_world.pois_of_city(city_id):
            website = poi.website
            if website is not None and website.hosting is HostingKind.LOCAL:
                found_local = True
                assert website.server_host_id is not None
                server = small_world.host_by_id(website.server_host_id)
                assert server.true_location.distance_km(poi.location) < 0.5
        assert found_local

    def test_cdn_sites_have_cdn_cname(self, small_world):
        checked = 0
        for city in small_world.cities[:15]:
            for poi in small_world.pois_of_city(city.city_id):
                website = poi.website
                if website is not None and website.hosting is HostingKind.CDN:
                    record = small_world.dns.resolve(website.hostname)
                    assert record.behind_cdn
                    checked += 1
        assert checked > 0

    def test_hosting_mix_roughly_configured(self, small_world):
        config = small_world.config
        counts = {kind: 0 for kind in HostingKind}
        total = 0
        for city in small_world.cities[:25]:
            for poi in small_world.pois_of_city(city.city_id):
                if poi.website is not None:
                    counts[poi.website.hosting] += 1
                    total += 1
        assert total > 100
        local_share = counts[HostingKind.LOCAL] / total
        assert local_share == pytest.approx(config.website_local_share, abs=0.05)

    def test_spatial_zip_index_consistent(self, small_world):
        city = small_world.cities[small_world.anchors[0].city_id]
        index = small_world.pois_by_spatial_zip(city.city_id)
        for zipcode, pois in list(index.items())[:20]:
            for poi in pois:
                assert city.zipcode_at(poi.location) == zipcode


class TestWebDirectory:
    def test_chain_sites_multi_zip(self, small_world):
        directory = small_world.web_directory
        chain_seen = 0
        for city in small_world.cities[:25]:
            for poi in small_world.pois_of_city(city.city_id):
                website = poi.website
                if website is not None and website.chain_id is not None:
                    assert directory.appears_in_multiple_zipcodes(website.hostname)
                    chain_seen += 1
        assert chain_seen > 0

    def test_regular_sites_single_zip(self, small_world):
        directory = small_world.web_directory
        city_id = small_world.anchors[0].city_id
        for poi in small_world.pois_of_city(city_id):
            website = poi.website
            if website is not None and website.chain_id is None:
                zips = directory.zipcodes_of(website.hostname)
                assert len(zips) >= 1

    def test_unknown_hostname_empty(self, small_world):
        assert small_world.web_directory.zipcodes_of("nope.example") == set()
