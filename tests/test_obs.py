"""Unit tests for the :mod:`repro.obs` observability subsystem.

Covers the metrics registry (counters/gauges/fixed-bucket histograms), the
typed append-only event log, span nesting and rendering, the observer
facade (including the null observer's contract), and the reporters.
"""

import json

import pytest

from repro.obs import (
    EVENT_TYPES,
    EventLog,
    Histogram,
    MetricsRegistry,
    NULL_OBSERVER,
    NullObserver,
    Observer,
    SpanTracer,
    events,
)
from repro.obs.report import (
    credits_by_kind,
    fault_counts,
    metrics_report,
    metrics_report_json,
    render_summary,
)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.count("atlas.pings")
        registry.count("atlas.pings", 9)
        assert registry.counter("atlas.pings") == 10
        assert registry.counter("never.touched") == 0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.count("x", -1)

    def test_gauges_keep_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("coverage", 0.4)
        registry.gauge("coverage", 0.9)
        assert registry.gauge_value("coverage") == 0.9
        assert registry.gauge_value("missing", default=-1.0) == -1.0

    def test_histogram_buckets_fixed_at_creation(self):
        registry = MetricsRegistry()
        registry.observe("rtt", 3.0, bounds=(1.0, 5.0, 10.0))
        # Later bounds are ignored: buckets never rebin.
        registry.observe("rtt", 7.0, bounds=(100.0,))
        histogram = registry.histogram("rtt")
        assert histogram.bounds == (1.0, 5.0, 10.0)
        assert histogram.counts == [0, 1, 1, 0]
        assert histogram.count == 2
        assert histogram.mean == 5.0
        assert histogram.min_value == 3.0 and histogram.max_value == 7.0

    def test_histogram_overflow_bucket(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(1000.0)
        assert histogram.counts == [0, 0, 1]

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram((5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_as_dict_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.count("b")
        registry.count("a")
        registry.gauge("g", 1.5)
        registry.observe("h", 4.2)
        snapshot = registry.as_dict()
        assert list(snapshot["counters"]) == ["a", "b"]
        json.dumps(snapshot)  # must serialise cleanly


class TestEventLog:
    def test_emit_and_read_back(self):
        log = EventLog()
        log.emit(events.RETRY, t_s=12.5, op="ping", attempt=1)
        log.emit(events.CREDIT_CHARGE, kind="ping", credits=30)
        assert len(log) == 2
        retry = log.of_type(events.RETRY)[0]
        assert retry.seq == 0
        assert retry.t_s == 12.5
        assert dict(retry.fields) == {"op": "ping", "attempt": 1}
        assert log.counts_by_type() == {"retry": 1, "credit-charge": 1}

    def test_unknown_type_raises(self):
        log = EventLog()
        with pytest.raises(ValueError):
            log.emit("totally-new-event")
        assert "retry" in EVENT_TYPES and "invariant-violation" in EVENT_TYPES
        assert "serve-batch" in EVENT_TYPES and "serve-epoch" in EVENT_TYPES
        assert "hint-find" in EVENT_TYPES and "hint-refute" in EVENT_TYPES
        assert len(EVENT_TYPES) == 18

    def test_capacity_drops_but_counts(self):
        log = EventLog(capacity=2)
        for _ in range(5):
            log.emit(events.CACHE_HIT, kind="geocode")
        assert len(log) == 2
        assert log.dropped == 3
        assert log.counts_by_type() == {"cache-hit": 5}

    def test_jsonl_is_deterministic(self):
        def build():
            log = EventLog()
            log.emit(events.BACKOFF, t_s=3.0, op="ping", backoff_s=5.0)
            log.emit(events.DEGRADATION, t_s=9.0, op="ping", call_index=0)
            return log.to_jsonl()

        first, second = build(), build()
        assert first == second
        lines = first.splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["type"] == "backoff"


class _FakeClock:
    def __init__(self):
        self.now_s = 0.0


class TestSpans:
    def test_nesting_and_durations(self):
        tracer = SpanTracer()
        clock = _FakeClock()
        with tracer.span("campaign:x", clock=clock):
            clock.now_s = 10.0
            with tracer.span("technique:y", clock=clock, target="1.2.3.4"):
                clock.now_s = 25.0
        campaign, technique = tracer.spans
        assert campaign.parent_id is None and campaign.depth == 0
        assert technique.parent_id == campaign.span_id and technique.depth == 1
        assert campaign.children == [technique.span_id]
        assert campaign.sim_duration_s == 25.0
        assert technique.sim_duration_s == 15.0
        assert tracer.by_name() == {
            "campaign:x": (1, 25.0),
            "technique:y": (1, 15.0),
        }

    def test_unclocked_span_has_no_duration(self):
        tracer = SpanTracer()
        with tracer.span("round:1"):
            pass
        assert tracer.spans[0].sim_duration_s is None

    def test_annotate_merges_attrs(self):
        tracer = SpanTracer()
        with tracer.span("x", a=1) as span:
            span.annotate(b=2, a=3)
        assert dict(tracer.spans[0].attrs) == {"a": 3, "b": 2}

    def test_render_tree(self):
        tracer = SpanTracer()
        clock = _FakeClock()
        with tracer.span("outer", clock=clock):
            clock.now_s = 2.0
            with tracer.span("inner", clock=clock, k="v"):
                clock.now_s = 3.0
        tree = tracer.render_tree()
        assert "- outer  [3.0s sim]" in tree
        assert "  - inner  [1.0s sim]  (k=v)" in tree
        assert SpanTracer().render_tree() == "(no spans recorded)"

    def test_span_ids_follow_creation_order(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        assert [span.span_id for span in tracer.spans] == [0, 1, 2]
        assert [span.name for span in tracer.roots()] == ["a"]


class TestObserverFacade:
    def test_verbs_land_in_the_right_stores(self):
        observer = Observer()
        observer.count("n", 2)
        observer.gauge("g", 0.5)
        observer.observe("h", 3.0)
        observer.event(events.CACHE_MISS, kind="geocode")
        with observer.span("phase"):
            pass
        assert observer.enabled is True
        assert observer.metrics.counter("n") == 2
        assert len(observer.events) == 1
        assert len(observer.tracer) == 1

    def test_null_observer_is_inert_and_shared(self):
        null = NullObserver()
        assert null.enabled is False
        assert NULL_OBSERVER.enabled is False
        null.count("n")
        null.event(events.RETRY, op="ping")
        with null.span("phase") as span:
            span.annotate(a=1)
        # The null span is one shared instance: no per-call allocation.
        assert null.span("x") is null.span("y") is NULL_OBSERVER.span("z")
        assert null.metrics_report() == {}
        assert "disabled" in null.summary()


class TestReporters:
    def _observer_with_traffic(self):
        observer = Observer()
        observer.event(events.CREDIT_CHARGE, kind="ping", credits=30, count=10)
        observer.event(events.CREDIT_CHARGE, kind="ping", credits=60, count=20)
        observer.event(events.CREDIT_CHARGE, kind="traceroute", credits=40, count=2)
        observer.event(events.FAULT_INJECTED, kind="packet-loss", count=3)
        observer.count("resilient.retries", 4)
        observer.count("cache.hits", 7)
        clock = _FakeClock()
        with observer.span("experiment:fig2a", clock=clock):
            clock.now_s = 120.0
        return observer

    def test_credit_and_fault_aggregation(self):
        observer = self._observer_with_traffic()
        assert credits_by_kind(observer) == {"ping": 90, "traceroute": 40}
        assert fault_counts(observer) == {"packet-loss": 3}

    def test_metrics_report_shape(self):
        observer = self._observer_with_traffic()
        report = metrics_report(observer)
        assert report["credits"]["total"] == 130
        assert report["events"]["total"] == 4
        assert report["faults"] == {"packet-loss": 3}
        assert report["spans"]["by_name"]["experiment:fig2a"]["sim_time_s"] == 120.0

    def test_metrics_report_json_is_canonical(self):
        observer = self._observer_with_traffic()
        first = metrics_report_json(observer)
        second = metrics_report_json(observer)
        assert first == second
        assert json.loads(first)["credits"]["by_kind"]["ping"] == 90

    def test_summary_renders_all_sections(self):
        summary = render_summary(self._observer_with_traffic())
        assert "credits by kind" in summary
        assert "overhead:" in summary
        assert "injected faults:" in summary
        assert "hot phases" in summary
        assert "events:" in summary
        assert render_summary(Observer()) == "== campaign summary ==\n(nothing recorded)"

    def test_summary_and_report_expose_dropped_events(self):
        """Capacity-dropped events must never be silent: both the summary
        table and the JSON report carry the loss explicitly."""
        observer = Observer(events=EventLog(capacity=2))
        for _ in range(5):
            observer.event(events.CACHE_HIT, kind="geocode")
        summary = render_summary(observer)
        assert "(dropped: capacity)" in summary
        assert "3" in summary
        report = metrics_report(observer)
        assert report["events"]["dropped"] == 3
        assert report["events"]["total"] == 5
        assert report["events"]["by_type"] == {"cache-hit": 5}

    def test_summary_omits_dropped_row_when_nothing_dropped(self):
        summary = render_summary(self._observer_with_traffic())
        assert "(dropped: capacity)" not in summary
