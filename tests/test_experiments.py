"""Tests for the experiment harness: every figure/table runs on the small
scenario and produces structurally valid output."""

import numpy as np
import pytest

from repro.experiments import fig2, fig3, fig4, fig5, fig6, fig7, fig8, tables
from repro.experiments.base import ExperimentOutput
from repro.experiments.scenario import Scenario, get_scenario


class TestScenario:
    def test_cached(self):
        assert get_scenario("small") is get_scenario("small")

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            get_scenario("galactic")

    def test_rtt_matrix_excludes_self(self, small_scenario):
        matrix = small_scenario.rtt_matrix()
        for column, target in enumerate(small_scenario.targets):
            row = small_scenario.vp_row_of_target(target)
            assert row is not None
            assert np.isnan(matrix[row, column])

    def test_target_ips_aligned(self, small_scenario):
        assert len(small_scenario.target_ips) == len(small_scenario.targets)
        assert small_scenario.target_ips[0] == small_scenario.targets[0].ip

    def test_mesh_restricted_to_sanitized(self, small_scenario):
        ids, mesh = small_scenario.mesh()
        assert set(ids) == set(small_scenario.target_ids)
        assert mesh.shape == (len(ids), len(ids))

    def test_anchor_vp_infos(self, small_scenario):
        anchors = small_scenario.anchor_vp_infos()
        assert all(info.is_anchor for info in anchors)
        assert len(anchors) == len(small_scenario.targets)


def _check_output(output: ExperimentOutput, experiment_id: str):
    assert output.experiment_id == experiment_id
    assert output.table
    assert output.measured
    rendered = output.render()
    assert experiment_id in rendered
    assert "paper" in rendered


class TestTableExperiments:
    def test_table1(self, small_scenario):
        output = tables.run_table1(small_scenario)
        _check_output(output, "table1")
        assert output.measured["targets"] == len(small_scenario.targets)

    def test_table2(self, small_scenario):
        output = tables.run_table2(small_scenario)
        _check_output(output, "table2")
        assert 0.5 < output.measured["combined_access_share"] < 0.95


class TestFig2(object):
    def test_fig2a(self, small_scenario):
        output = fig2.run_fig2a(small_scenario, sizes=(10, 50, 200), trials=3)
        _check_output(output, "fig2a")
        assert output.measured["errors_shrink_with_more_vps"] == 1.0

    def test_fig2b(self, small_scenario):
        output = fig2.run_fig2b(small_scenario, sizes=(50, 200), trials=4)
        _check_output(output, "fig2b")
        assert len(output.series["50"]) == 4

    def test_fig2c(self, small_scenario):
        output = fig2.run_fig2c(small_scenario, cutoffs_km=(40.0, 500.0))
        _check_output(output, "fig2c")
        # Removing close VPs must hurt.
        assert (
            output.measured["median_beyond_40km_km"]
            > output.measured["median_all_vps_km"]
        )


class TestFig3:
    def test_fig3a(self, small_scenario):
        output = fig3.run_fig3a(small_scenario)
        _check_output(output, "fig3a")
        assert 0.0 <= output.measured["within_10km_single_vp"] <= 1.0

    def test_fig3bc(self, small_scenario):
        output = fig3.run_fig3bc(small_scenario, first_step_sizes=(10, 50))
        _check_output(output, "fig3bc")
        assert output.measured["overhead_fraction_500"] < 1.0


class TestFig4:
    def test_fig4(self, small_scenario):
        output = fig4.run_fig4(small_scenario)
        _check_output(output, "fig4")
        assert set(output.series) == set(small_scenario.target_continents)


class TestStreetLevelFigures:
    MAX_TARGETS = 12

    def test_fig5a(self, small_scenario):
        output = fig5.run_fig5a(small_scenario, max_targets=self.MAX_TARGETS)
        _check_output(output, "fig5a")
        assert len(output.series["street"]) == self.MAX_TARGETS

    def test_fig5b(self, small_scenario):
        output = fig5.run_fig5b(small_scenario, max_targets=self.MAX_TARGETS)
        _check_output(output, "fig5b")
        assert output.measured["within_1km_fraction"] <= output.measured["within_40km_fraction"]

    def test_fig5c(self, small_scenario):
        output = fig5.run_fig5c(small_scenario, max_targets=self.MAX_TARGETS)
        _check_output(output, "fig5c")

    def test_fig6a(self, small_scenario):
        output = fig6.run_fig6a(small_scenario, max_targets=self.MAX_TARGETS)
        _check_output(output, "fig6a")
        fractions = output.series["fractions"]
        assert all(0.0 <= f <= 1.0 for f in fractions)

    def test_fig6b(self, small_scenario):
        output = fig6.run_fig6b(small_scenario, max_targets=self.MAX_TARGETS)
        _check_output(output, "fig6b")

    def test_fig6c(self, small_scenario):
        output = fig6.run_fig6c(small_scenario, max_targets=self.MAX_TARGETS)
        _check_output(output, "fig6c")
        assert output.measured["median_time_s"] > 0

    def test_street_runs_cached(self, small_scenario):
        from repro.experiments.street_runner import street_level_records

        a = street_level_records(small_scenario, self.MAX_TARGETS)
        b = street_level_records(small_scenario, self.MAX_TARGETS)
        assert a is b


class TestFig7And8:
    def test_fig7(self, small_scenario):
        output = fig7.run_fig7(small_scenario)
        _check_output(output, "fig7")
        assert (
            output.measured["ipinfo_city_fraction"]
            > output.measured["maxmind_city_fraction"]
        )

    def test_fig8(self, small_scenario):
        output = fig8.run_fig8(small_scenario)
        _check_output(output, "fig8")
        assert output.measured["density_orders_of_magnitude"] > 1.0


class TestCli:
    def test_cli_runs_experiment(self, capsys):
        from repro.experiments.run import main

        code = main(["table1", "--preset", "small"])
        assert code == 0
        captured = capsys.readouterr()
        assert "table1" in captured.out

    def test_cli_rejects_unknown(self):
        from repro.experiments.run import main

        with pytest.raises(SystemExit):
            main(["figZZ", "--preset", "small"])


class TestSaveJson:
    def test_cli_save_json(self, tmp_path, capsys):
        import json

        from repro.experiments.run import main

        code = main(
            ["table2", "--preset", "small", "--save-json", str(tmp_path / "runs")]
        )
        assert code == 0
        saved = json.loads((tmp_path / "runs" / "table2.json").read_text())
        assert saved["experiment_id"] == "table2"
        assert "combined_access_share" in saved["measured"]

    def test_output_save_json_round_trip(self, tmp_path):
        import json

        from repro.experiments.base import ExperimentOutput

        output = ExperimentOutput(
            "x", "t", "body", measured={"a": 1.0}, series={"s": [1, 2]}
        )
        path = tmp_path / "x.json"
        output.save_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["series"]["s"] == [1, 2]
        assert loaded["table"] == "body"
