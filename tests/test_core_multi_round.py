"""Tests for the multi-round VP selection extension (§7.2.3)."""

import numpy as np
import pytest

from repro.core.coverage import greedy_coverage_indices
from repro.core.multi_round import ROUND_LATENCY_S, multi_round_select
from repro.geo.coords import haversine_km


@pytest.fixture(scope="module")
def setup(small_scenario):
    _min_m, rep_median, _reps = small_scenario.representative_matrices()
    step1 = greedy_coverage_indices(
        small_scenario.vp_lats, small_scenario.vp_lons, 40
    )
    return small_scenario, rep_median, step1


class TestMultiRound:
    def test_one_round_probes_only_first_set(self, setup):
        scenario, rep_median, step1 = setup
        outcome = multi_round_select(
            scenario.targets[0].ip, scenario.vps, step1, rep_median[:, 0], rounds=1
        )
        assert outcome.rounds_run == 1
        # round-1 rows * 3 reps + 1 final target ping.
        assert outcome.ping_measurements == len(step1) * 3 + 1
        assert outcome.elapsed_s == ROUND_LATENCY_S

    def test_two_rounds_match_two_step_structure(self, setup):
        scenario, rep_median, step1 = setup
        outcome = multi_round_select(
            scenario.targets[1].ip, scenario.vps, step1, rep_median[:, 1], rounds=2
        )
        assert outcome.rounds_run <= 2
        assert outcome.round_candidates[0] == len(step1)
        assert outcome.chosen_vp_index is not None

    def test_latency_grows_with_rounds(self, setup):
        scenario, rep_median, step1 = setup
        one = multi_round_select(
            scenario.targets[2].ip, scenario.vps, step1, rep_median[:, 2], rounds=1
        )
        three = multi_round_select(
            scenario.targets[2].ip, scenario.vps, step1, rep_median[:, 2], rounds=3
        )
        assert three.elapsed_s >= one.elapsed_s

    def test_extra_rounds_repair_round_one(self, setup):
        """Round 1 alone only knows the 40 covering VPs (coarse); the
        region-driven later rounds must bring the error down sharply."""
        scenario, rep_median, step1 = setup
        medians = {}
        for rounds in (1, 2, 3):
            errors = []
            for column, target in enumerate(scenario.targets[:20]):
                outcome = multi_round_select(
                    target.ip, scenario.vps, step1, rep_median[:, column], rounds=rounds
                )
                if outcome.estimate is not None:
                    errors.append(
                        haversine_km(
                            outcome.estimate.lat,
                            outcome.estimate.lon,
                            target.true_location.lat,
                            target.true_location.lon,
                        )
                    )
            medians[rounds] = float(np.median(errors))
        assert medians[2] < medians[1]
        assert medians[2] < 300.0
        assert medians[3] < 300.0

    def test_rows_never_paid_twice(self, setup):
        """Re-probing a row measured in an earlier round is free."""
        scenario, rep_median, step1 = setup
        two = multi_round_select(
            scenario.targets[3].ip, scenario.vps, step1, rep_median[:, 3], rounds=2
        )
        four = multi_round_select(
            scenario.targets[3].ip, scenario.vps, step1, rep_median[:, 3], rounds=4
        )
        # Extra rounds converge: they can only add unmeasured rows.
        assert four.ping_measurements >= two.ping_measurements
        assert four.ping_measurements <= two.ping_measurements * 3

    def test_invalid_rounds(self, setup):
        scenario, rep_median, step1 = setup
        with pytest.raises(ValueError):
            multi_round_select(
                scenario.targets[0].ip, scenario.vps, step1, rep_median[:, 0], rounds=0
            )

    def test_all_nan_column(self, setup):
        scenario, _rep_median, step1 = setup
        empty = np.full(len(scenario.vps), np.nan)
        outcome = multi_round_select(
            "203.0.113.7", scenario.vps, step1, empty, rounds=3
        )
        assert outcome.chosen_vp_index is None
        assert outcome.estimate is None
