"""Tests for :class:`repro.atlas.resilient.ResilientClient`.

Covers retry-until-success, backoff/clock/ledger accounting (every attempt
and every backoff costs simulated resources), graceful degradation shapes
for all four measurement calls, typed credit-exhaustion propagation,
per-call timeouts, and zero-fault passthrough identity.
"""

import numpy as np
import pytest

from repro import rand
from repro.atlas.client import AtlasClient
from repro.atlas.clock import SimClock
from repro.atlas.platform import AtlasPlatform
from repro.atlas.resilient import ResilientClient, RetryPolicy, RetryStats
from repro.errors import ConfigurationError, CreditExhaustedError
from repro.faults import FaultInjector, FaultPlan

SEEDS = (3, 11)


def _seed_with_api_pattern(op, rate, pattern, start=0):
    """Smallest fault seed whose counter-hash draws match a fail pattern.

    The draw for call ``index`` of ``op`` is ``uniform((seed, "fault-api",
    op, index))``; searching seeds is deterministic, so tests can pin an
    exact fail/succeed sequence without monkeypatching the injector.
    """
    for seed in range(500):
        draws = [
            rand.uniform((seed, "fault-api", op, start + index)) < rate
            for index in range(len(pattern))
        ]
        if draws == pattern:
            return seed
    pytest.fail(f"no seed under 500 gives pattern {pattern} for {op} at rate {rate}")


def _resilient(world, plan, policy=None):
    platform = AtlasPlatform(world, faults=FaultInjector(plan))
    return ResilientClient(AtlasClient(platform), policy=policy)


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(call_timeout_s=0.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_s=10.0, backoff_multiplier=3.0, max_backoff_s=50.0, jitter_fraction=0.0
        )
        assert policy.backoff_s("ping", 0, 0) == 10.0
        assert policy.backoff_s("ping", 0, 1) == 30.0
        assert policy.backoff_s("ping", 0, 2) == 50.0  # capped

    def test_jitter_bounds_and_determinism(self):
        policy = RetryPolicy(base_backoff_s=100.0, jitter_fraction=0.25)
        values = [policy.backoff_s("ping", call, 0) for call in range(30)]
        assert all(75.0 <= value <= 125.0 for value in values)
        assert values == [policy.backoff_s("ping", call, 0) for call in range(30)]
        assert len(set(values)) > 1  # jitter actually decorrelates


class TestRetrySuccess:
    def test_retries_until_success(self, small_world):
        seed = _seed_with_api_pattern("ping", 0.5, [True, True, False])
        client = _resilient(small_world, FaultPlan(seed=seed, api_timeout_rate=0.5))
        probe_ids = [p.host_id for p in small_world.probes[:3]]
        results = client.ping_from(probe_ids, small_world.anchors[0].ip)
        # Two failures, then real results — not the degraded all-None shape.
        assert any(rtt is not None for rtt in results.values())
        assert client.stats.calls == 1
        assert client.stats.attempts == 3
        assert client.stats.retries == 2
        assert client.stats.degraded_calls == 0
        assert client.stats.errors_by_type == {"ApiTimeoutError": 2}

    def test_every_attempt_charges_the_ledger(self, small_world):
        seed = _seed_with_api_pattern("ping", 0.5, [True, False])
        client = _resilient(small_world, FaultPlan(seed=seed, api_timeout_rate=0.5))
        probe_ids = [p.host_id for p in small_world.probes[:2]]
        client.ping_from(probe_ids, small_world.anchors[0].ip)
        # 2 probes x 3 packets x 1 credit, for each of the 2 attempts.
        assert client.credits_spent == 2 * (2 * 3)

    def test_backoff_charges_the_clock(self, small_world):
        seed = _seed_with_api_pattern("ping", 0.5, [True, False])
        policy = RetryPolicy(base_backoff_s=40.0, jitter_fraction=0.25)
        client = _resilient(
            small_world,
            FaultPlan(seed=seed, api_timeout_rate=0.5, api_timeout_cost_s=60.0),
            policy=policy,
        )
        client.ping_from([small_world.probes[0].host_id], small_world.anchors[0].ip)
        breakdown = client.clock.breakdown()
        assert breakdown["retry-backoff"] == pytest.approx(client.stats.backoff_s)
        assert 40.0 * 0.75 <= client.stats.backoff_s <= 40.0 * 1.25  # one retry, jittered
        assert breakdown["atlas-faults"] == pytest.approx(60.0)  # the timeout burn
        assert breakdown["atlas-api"] > 0  # both attempts paid the API wait

    def test_rate_limit_backoff_respects_retry_after(self, small_world):
        seed = _seed_with_api_pattern("ping", 0.5, [True, False])
        policy = RetryPolicy(base_backoff_s=1.0, jitter_fraction=0.0)
        client = _resilient(
            small_world,
            FaultPlan(seed=seed, api_rate_limit_rate=0.5, api_rate_limit_retry_after_s=120.0),
            policy=policy,
        )
        client.ping_from([small_world.probes[0].host_id], small_world.anchors[0].ip)
        assert client.stats.retries == 1
        assert client.stats.backoff_s >= 120.0


class TestDegradation:
    @pytest.fixture
    def always_failing(self, small_world):
        return _resilient(
            small_world,
            FaultPlan(api_timeout_rate=1.0),
            policy=RetryPolicy(max_attempts=2, base_backoff_s=1.0, call_timeout_s=None),
        )

    def test_ping_from_degrades_to_none(self, always_failing, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:4]]
        results = always_failing.ping_from(probe_ids, small_world.anchors[0].ip)
        assert results == {probe_id: None for probe_id in probe_ids}
        assert always_failing.stats.degraded_calls == 1

    def test_ping_matrix_degrades_to_nan(self, always_failing, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:4]]
        targets = [a.ip for a in small_world.anchors[:3]]
        matrix = always_failing.ping_matrix(probe_ids, targets)
        assert matrix.shape == (4, 3)
        assert np.isnan(matrix).all()

    def test_traceroute_degrades_to_none(self, always_failing, small_world):
        result = always_failing.traceroute_from(
            small_world.probes[0].host_id, small_world.anchors[0].ip
        )
        assert result is None

    def test_traceroute_batch_degrades_per_target(self, always_failing, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:2]]
        targets = [a.ip for a in small_world.anchors[:2]]
        batch = always_failing.traceroute_batch(probe_ids, targets)
        assert set(batch) == set(targets)
        for per_probe in batch.values():
            assert per_probe == {probe_id: None for probe_id in probe_ids}

    def test_degraded_attempts_still_cost(self, always_failing, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:2]]
        always_failing.ping_from(probe_ids, small_world.anchors[0].ip)
        # max_attempts=2: both failed attempts were charged.
        assert always_failing.credits_spent == 2 * (2 * 3)
        assert always_failing.stats.attempts == 2


class TestHardFailures:
    def test_credit_exhaustion_propagates(self, small_world):
        client = _resilient(small_world, FaultPlan(credit_budget=5))
        with pytest.raises(CreditExhaustedError):
            client.ping_from(
                [p.host_id for p in small_world.probes[:4]], small_world.anchors[0].ip
            )
        # Not a degradation: retrying cannot mint credits.
        assert client.stats.degraded_calls == 0

    def test_call_timeout_stops_retrying_early(self, small_world):
        policy = RetryPolicy(max_attempts=10, base_backoff_s=1.0, call_timeout_s=100.0)
        client = _resilient(
            small_world,
            FaultPlan(api_timeout_rate=1.0, api_timeout_cost_s=500.0),
            policy=policy,
        )
        results = client.ping_from([small_world.probes[0].host_id], small_world.anchors[0].ip)
        assert results[small_world.probes[0].host_id] is None
        # The first failed attempt burned 500 s > 100 s budget: no retries.
        assert client.stats.attempts == 1
        assert client.stats.degraded_calls == 1


class TestPassthrough:
    def test_zero_fault_passthrough_identity(self, small_world, small_platform):
        """Wrapping a fault-free session changes nothing but the stats."""
        plain = AtlasClient(small_platform)
        wrapped = ResilientClient(AtlasClient(small_platform))
        probe_ids = [p.host_id for p in small_world.probes[:6]]
        targets = [a.ip for a in small_world.anchors[:4]]
        np.testing.assert_array_equal(
            plain.ping_matrix(probe_ids, targets, seq=9),
            wrapped.ping_matrix(probe_ids, targets, seq=9),
        )
        assert plain.ping_from(probe_ids, targets[0], seq=9) == wrapped.ping_from(
            probe_ids, targets[0], seq=9
        )
        assert wrapped.stats.calls == 2
        assert wrapped.stats.retries == 0
        assert wrapped.stats.degraded_calls == 0
        assert plain.clock.now_s == wrapped.clock.now_s

    def test_metadata_passthrough(self, small_platform):
        wrapped = ResilientClient(AtlasClient(small_platform))
        probes = wrapped.list_probes()
        assert probes == small_platform.probe_infos()
        assert wrapped.probe(probes[0].probe_id) == probes[0]
        ids, mesh = wrapped.anchor_mesh()
        assert len(ids) == mesh.shape[0]

    def test_with_clock_shares_ledger_and_stats(self, small_world):
        client = _resilient(small_world, FaultPlan(api_timeout_rate=1.0),
                            policy=RetryPolicy(max_attempts=1))
        sibling = client.with_clock(SimClock())
        sibling.ping_from([small_world.probes[0].host_id], small_world.anchors[0].ip)
        assert sibling.stats is client.stats
        assert sibling.ledger is client.ledger
        assert client.stats.degraded_calls == 1
        assert client.credits_spent == sibling.credits_spent > 0
        assert client.clock.now_s == 0.0  # time went to the sibling's clock


class TestDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_sessions_identical_outcomes(self, small_world, seed):
        plan = FaultPlan.at_rate(0.3, seed=seed)
        probe_count = 6
        runs = []
        for _ in range(2):
            client = _resilient(small_world, plan)
            probe_ids = [p.host_id for p in small_world.probes[:probe_count]]
            targets = [a.ip for a in small_world.anchors[:4]]
            matrix = client.ping_matrix(probe_ids, targets)
            runs.append((matrix, client.stats, client.clock.now_s, client.credits_spent))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]
        assert runs[0][2] == runs[1][2]
        assert runs[0][3] == runs[1][3]

    def test_retries_draw_fresh_fault_indices(self, small_world):
        """A retry is a new API call: the injector's counter advances per
        attempt, so retrying can actually succeed (counter-hash draws)."""
        seed = _seed_with_api_pattern("ping", 0.5, [True, False])
        client = _resilient(small_world, FaultPlan(seed=seed, api_timeout_rate=0.5))
        client.ping_from([small_world.probes[0].host_id], small_world.anchors[0].ip)
        counts = client.platform.faults.fault_counts()
        assert counts["api-timeout"] == 1  # first index faulted, second not
        assert client.stats.attempts == 2
