"""Epoch swaps: the serving engine follows a churning world exactly.

The contract of :meth:`~repro.serve.ServeEngine.install_epoch`
(``docs/EVOLUTION.md``): after a swap, every answer is byte-identical to
a fresh engine loaded with the new epoch's state, while the memo
survives for exactly the columns whose matrix bytes did not move. The
parity class pins the first half against per-revision batch runs, the
invalidation class pins the second half down to individual
``serve.epoch.*`` counter values, and the chaos class churns epochs
while the fault layer sheds — served answers stay bitwise correct for
whatever gets through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import rand
from repro.core import cbg_batch
from repro.errors import ConfigurationError
from repro.evolve import (
    EvolutionConfig,
    EvolutionTimeline,
    epoch_state,
    incremental_matrix,
)
from repro.experiments.scenario import Scenario, config_for_preset
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observer
from repro.obs import events as _ev
from repro.serve import (
    REJECT_SHED,
    STATUS_NO_ESTIMATE,
    STATUS_OK,
    QueryState,
    ServeEngine,
    TenantConfig,
)

_CHURN = EvolutionConfig(
    revisions=3,
    prefix_move_share=0.30,
    migration_share=0.10,
    probe_session_share=0.15,
)


@pytest.fixture(scope="module")
def quick_scenario():
    return Scenario.build(config_for_preset("quick"))


@pytest.fixture(scope="module")
def timeline(quick_scenario):
    return EvolutionTimeline(
        quick_scenario.world, _CHURN, checker=quick_scenario.checker
    )


@pytest.fixture(scope="module")
def revision_matrices(quick_scenario, timeline):
    matrices = [quick_scenario.rtt_matrix()]
    for revision in range(1, _CHURN.revisions + 1):
        matrices.append(
            incremental_matrix(matrices[-1], timeline, quick_scenario, revision)
        )
    return matrices


def _engine(scenario, **kwargs):
    engine = ServeEngine.from_scenario(scenario, **kwargs)
    engine.register_tenant(TenantConfig(name="t"))
    return engine


def _serve_all(engine, ips, order=None):
    if order is None:
        order = np.arange(len(ips))
    results = engine.geolocate("t", [ips[column] for column in order])
    lats = np.full(len(ips), np.nan)
    lons = np.full(len(ips), np.nan)
    for column, result in zip(order, results):
        if result.status == STATUS_OK:
            lats[column] = result.lat
            lons[column] = result.lon
    return lats, lons


class TestEpochParity:
    def test_swapped_engine_matches_fresh_batch_per_revision(
        self, quick_scenario, timeline, revision_matrices
    ):
        ips = quick_scenario.target_ips
        engine = _engine(quick_scenario, max_batch=8)
        for revision, matrix in enumerate(revision_matrices):
            if revision:
                engine.install_epoch(
                    epoch_state(timeline, quick_scenario, revision, matrix)
                )
            order = rand.generator(("epoch-parity", revision)).permutation(len(ips))
            lats, lons = _serve_all(engine, ips, order)
            expected_lats, expected_lons = cbg_batch.cbg_centroids_batch(
                quick_scenario.vp_lats, quick_scenario.vp_lons, matrix
            )
            np.testing.assert_array_equal(lats, expected_lats)
            np.testing.assert_array_equal(lons, expected_lons)

    def test_swapped_engine_matches_fresh_engine(
        self, quick_scenario, timeline, revision_matrices
    ):
        ips = quick_scenario.target_ips
        followed = _engine(quick_scenario, max_batch=4)
        for revision in range(1, _CHURN.revisions + 1):
            state = epoch_state(
                timeline, quick_scenario, revision, revision_matrices[revision]
            )
            followed.install_epoch(state)
            fresh = ServeEngine(state, max_batch=4)
            fresh.register_tenant(TenantConfig(name="t"))
            got = _serve_all(followed, ips)
            want = _serve_all(fresh, ips)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])

    def test_epoch_counts_in_stats(self, quick_scenario, timeline, revision_matrices):
        engine = _engine(quick_scenario)
        assert engine.stats()["epoch"] == 0
        for revision in (1, 2):
            engine.install_epoch(
                epoch_state(
                    timeline, quick_scenario, revision, revision_matrices[revision]
                )
            )
        assert engine.stats()["epoch"] == 2


class TestExactInvalidation:
    def test_counters_match_the_bitwise_column_diff(
        self, quick_scenario, timeline, revision_matrices
    ):
        ips = quick_scenario.target_ips
        obs = Observer()
        engine = ServeEngine(
            QueryState.from_scenario(quick_scenario), obs=obs, max_batch=64
        )
        engine.register_tenant(TenantConfig(name="t"))
        _serve_all(engine, ips)  # memoize every column
        old, new = revision_matrices[0], revision_matrices[1]
        same = (old == new) | (np.isnan(old) & np.isnan(new))
        expected_changed = int((~same.all(axis=0)).sum())
        assert expected_changed > 0, "churn config moved nothing"

        changed = engine.install_epoch(
            epoch_state(timeline, quick_scenario, 1, new), label="r1"
        )
        assert changed == expected_changed
        assert obs.metrics.counter("serve.epoch.swaps") == 1
        assert obs.metrics.counter("serve.epoch.changed_columns") == expected_changed
        # The memo was fully solved, so invalidated == changed and the
        # rest of the columns survive the swap.
        assert obs.metrics.counter("serve.epoch.invalidated") == expected_changed
        assert obs.metrics.counter("serve.epoch.retained") == (
            len(ips) - expected_changed
        )
        [event] = obs.events.of_type(_ev.SERVE_EPOCH)
        fields = dict(event.fields)
        assert fields["epoch"] == 1
        assert fields["changed"] == expected_changed
        assert fields["reason"] == "column-delta"
        assert fields["label"] == "r1"

    def test_retained_columns_answer_from_memo(
        self, quick_scenario, timeline, revision_matrices
    ):
        ips = quick_scenario.target_ips
        obs = Observer()
        engine = ServeEngine(
            QueryState.from_scenario(quick_scenario), obs=obs, max_batch=64
        )
        engine.register_tenant(TenantConfig(name="t"))
        _serve_all(engine, ips)
        hits_before = engine.column_cache_hits
        engine.install_epoch(epoch_state(timeline, quick_scenario, 1, revision_matrices[1]))
        retained = int(obs.metrics.counter("serve.epoch.retained"))
        changed = int(obs.metrics.counter("serve.epoch.changed_columns"))
        _serve_all(engine, ips)
        # Exactly the retained columns hit the memo; exactly the changed
        # ones went back through the kernel.
        assert engine.column_cache_hits - hits_before == retained
        [batch] = obs.events.of_type(_ev.SERVE_BATCH)[-1:]
        fields = dict(batch.fields)
        assert fields["cached"] == retained
        assert fields["columns"] == changed

    def test_vp_drift_invalidates_everything(self, quick_scenario, revision_matrices):
        ips = quick_scenario.target_ips
        obs = Observer()
        engine = ServeEngine(
            QueryState.from_scenario(quick_scenario), obs=obs, max_batch=64
        )
        engine.register_tenant(TenantConfig(name="t"))
        _serve_all(engine, ips)
        drifted = QueryState(
            vp_lats=quick_scenario.vp_lats + 0.25,
            vp_lons=quick_scenario.vp_lons,
            rtt_matrix=revision_matrices[0],
            target_ips=tuple(ips),
            seed=quick_scenario.world.config.seed,
        )
        changed = engine.install_epoch(drifted)
        assert changed == len(ips)
        [event] = obs.events.of_type(_ev.SERVE_EPOCH)
        assert dict(event.fields)["reason"] == "vp-drift"
        # Post-swap answers match a batch run over the drifted VP set.
        lats, lons = _serve_all(engine, ips)
        expected = cbg_batch.cbg_centroids_batch(
            drifted.vp_lats, drifted.vp_lons, drifted.rtt_matrix
        )
        np.testing.assert_array_equal(lats, expected[0])
        np.testing.assert_array_equal(lons, expected[1])

    def test_new_target_set_is_a_configuration_error(
        self, quick_scenario, revision_matrices
    ):
        engine = _engine(quick_scenario)
        ips = list(quick_scenario.target_ips)
        truncated = QueryState(
            vp_lats=quick_scenario.vp_lats,
            vp_lons=quick_scenario.vp_lons,
            rtt_matrix=revision_matrices[0][:, :-1],
            target_ips=tuple(ips[:-1]),
            seed=quick_scenario.world.config.seed,
        )
        with pytest.raises(ConfigurationError):
            engine.install_epoch(truncated)

    def test_noop_swap_retains_the_whole_memo(self, quick_scenario, timeline):
        ips = quick_scenario.target_ips
        obs = Observer()
        engine = ServeEngine(
            QueryState.from_scenario(quick_scenario), obs=obs, max_batch=64
        )
        engine.register_tenant(TenantConfig(name="t"))
        _serve_all(engine, ips)
        changed = engine.install_epoch(
            epoch_state(timeline, quick_scenario, 0, quick_scenario.rtt_matrix())
        )
        assert changed == 0
        assert obs.metrics.counter("serve.epoch.retained") == len(ips)
        hits_before = engine.column_cache_hits
        _serve_all(engine, ips)
        assert engine.column_cache_hits - hits_before == len(ips)


class TestChaosUnderChurn:
    def test_shedding_and_swaps_interleave_without_divergence(
        self, quick_scenario, timeline, revision_matrices
    ):
        ips = quick_scenario.target_ips
        engine = ServeEngine.from_scenario(
            quick_scenario,
            max_batch=8,
            faults=FaultInjector(FaultPlan(seed=3, api_server_error_rate=0.4)),
        )
        engine.register_tenant(TenantConfig(name="t"))
        shed_total = 0
        for revision, matrix in enumerate(revision_matrices):
            if revision:
                engine.install_epoch(
                    epoch_state(timeline, quick_scenario, revision, matrix)
                )
            expected_lats, expected_lons = cbg_batch.cbg_centroids_batch(
                quick_scenario.vp_lats, quick_scenario.vp_lons, matrix
            )
            order = rand.generator(("epoch-chaos", revision)).permutation(len(ips))
            results = engine.geolocate("t", [ips[column] for column in order])
            for column, result in zip(order, results):
                if result.status == REJECT_SHED:
                    shed_total += 1
                    assert result.detail == "ApiServerError"
                elif result.status == STATUS_OK:
                    assert result.lat == expected_lats[column]
                    assert result.lon == expected_lons[column]
                else:
                    assert result.status == STATUS_NO_ESTIMATE
                    assert np.isnan(expected_lats[column])
        assert shed_total > 0, "fault plan shed nothing across four epochs"
        assert engine.epoch == _CHURN.revisions
