"""Tests for repro.constants: RTT/distance conversions."""

import math

import pytest

from repro.constants import (
    MAX_GREAT_CIRCLE_KM,
    SOI_FRACTION_CBG,
    SOI_FRACTION_STREET_LEVEL,
    SPEED_OF_LIGHT_KM_S,
    distance_to_min_rtt_ms,
    rtt_to_distance_km,
)


class TestRttToDistance:
    def test_zero_rtt_is_zero_distance(self):
        assert rtt_to_distance_km(0.0) == 0.0

    def test_known_value_at_two_thirds_c(self):
        # 1 ms RTT -> 0.5 ms one way -> (2/3 c) * 0.0005 s ~ 99.93 km.
        expected = 0.0005 * (2.0 / 3.0) * SPEED_OF_LIGHT_KM_S
        assert rtt_to_distance_km(1.0) == pytest.approx(expected)

    def test_street_level_speed_is_two_thirds_of_cbg(self):
        cbg = rtt_to_distance_km(10.0, SOI_FRACTION_CBG)
        street = rtt_to_distance_km(10.0, SOI_FRACTION_STREET_LEVEL)
        assert street == pytest.approx(cbg * (4.0 / 9.0) / (2.0 / 3.0))

    def test_capped_at_half_earth_circumference(self):
        assert rtt_to_distance_km(10_000.0) == MAX_GREAT_CIRCLE_KM

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            rtt_to_distance_km(-1.0)


class TestDistanceToMinRtt:
    def test_round_trips_with_rtt_to_distance(self):
        for rtt in (0.5, 3.0, 42.0):
            distance = rtt_to_distance_km(rtt)
            assert distance_to_min_rtt_ms(distance) == pytest.approx(rtt)

    def test_zero_distance(self):
        assert distance_to_min_rtt_ms(0.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            distance_to_min_rtt_ms(-5.0)

    def test_scales_linearly(self):
        assert distance_to_min_rtt_ms(200.0) == pytest.approx(
            2.0 * distance_to_min_rtt_ms(100.0)
        )

    def test_faster_speed_means_smaller_min_rtt(self):
        assert distance_to_min_rtt_ms(100.0, 1.0) < distance_to_min_rtt_ms(100.0, 0.5)
