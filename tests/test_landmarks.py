"""Tests for the landmark services: geocoding, amenities, validation,
and the discovery funnel."""

import pytest

from repro.atlas.clock import SimClock
from repro.geo.coords import GeoPoint, destination
from repro.geo.regions import Circle, cbg_region
from repro.landmarks.discovery import LandmarkDiscovery
from repro.landmarks.mapping import ReverseGeocoder
from repro.landmarks.overpass import OverpassService
from repro.landmarks.validation import LandmarkValidator
from repro.world.pois import HostingKind


@pytest.fixture(scope="module")
def services(small_world):
    geocoder = ReverseGeocoder(small_world)
    overpass = OverpassService(small_world)
    validator = LandmarkValidator(small_world)
    return geocoder, overpass, validator


class TestReverseGeocoder:
    def test_city_center_resolves(self, small_world, services):
        geocoder, _overpass, _validator = services
        city = small_world.cities[0]
        result = geocoder.reverse(city.location)
        assert result is not None
        assert result.city_id == city.city_id
        assert result.zipcode == city.zipcode_at(city.location)

    def test_middle_of_ocean_is_none(self, services):
        geocoder, _overpass, _validator = services
        assert geocoder.reverse(GeoPoint(-60.0, -160.0)) is None

    def test_clock_charged(self, small_world):
        clock = SimClock()
        geocoder = ReverseGeocoder(small_world, clock)
        for _ in range(20):
            geocoder.reverse(small_world.cities[0].location)
        assert clock.now_s > 0
        assert clock.spent_in("mapping") == clock.now_s

    def test_rate_limited_at_8_per_second(self, small_world):
        clock = SimClock()
        geocoder = ReverseGeocoder(small_world, clock, max_requests_per_s=8)
        for _ in range(80):
            geocoder.reverse(small_world.cities[0].location)
        assert clock.now_s >= 8.0  # ~80 requests / 8 per second


class TestOverpass:
    def test_returns_only_website_pois_in_cell(self, small_world, services):
        _geocoder, overpass, _validator = services
        city = small_world.cities[small_world.anchors[0].city_id]
        zipcode = city.zipcode_at(city.location)
        pois = overpass.amenities_with_website(city.city_id, zipcode)
        for poi in pois:
            assert poi.has_website
            assert city.zipcode_at(poi.location) == zipcode

    def test_unknown_zip_empty(self, small_world, services):
        _geocoder, overpass, _validator = services
        assert overpass.amenities_with_website(0, "9999-000000") == []


class TestValidation:
    def _pois_with_hosting(self, small_world, hosting):
        found = []
        for city in small_world.cities[:30]:
            for poi in small_world.pois_of_city(city.city_id):
                if poi.website is not None and poi.website.hosting is hosting:
                    found.append(poi)
        return found

    def test_cdn_sites_rejected(self, small_world, services):
        _geocoder, _overpass, validator = services
        for poi in self._pois_with_hosting(small_world, HostingKind.CDN)[:20]:
            outcome = validator.validate(poi, poi.website, poi.zipcode)
            assert not outcome.passed
            assert outcome.reason == "cdn"

    def test_cloud_sites_rejected(self, small_world, services):
        _geocoder, _overpass, validator = services
        for poi in self._pois_with_hosting(small_world, HostingKind.CLOUD)[:20]:
            outcome = validator.validate(poi, poi.website, poi.zipcode)
            assert not outcome.passed

    def test_wrong_zip_rejected(self, small_world, services):
        _geocoder, _overpass, validator = services
        poi = self._pois_with_hosting(small_world, HostingKind.LOCAL)[0]
        outcome = validator.validate(poi, poi.website, "0000-000000")
        assert not outcome.passed
        assert outcome.reason == "zipcode"

    def test_chain_sites_rejected(self, small_world, services):
        _geocoder, _overpass, validator = services
        chains = [
            poi
            for poi in self._pois_with_hosting(small_world, HostingKind.LOCAL)
            if poi.website.chain_id is not None
        ]
        assert chains
        for poi in chains[:10]:
            outcome = validator.validate(poi, poi.website, poi.zipcode)
            assert not outcome.passed
            assert outcome.reason == "multi-zip"

    def test_good_local_sites_pass(self, small_world, services):
        _geocoder, _overpass, validator = services
        passed = 0
        for poi in self._pois_with_hosting(small_world, HostingKind.LOCAL):
            if poi.website.chain_id is None:
                city = small_world.cities[poi.city_id]
                honest_zip = city.zipcode_at(poi.location)
                if honest_zip == poi.zipcode:
                    outcome = validator.validate(poi, poi.website, honest_zip)
                    assert outcome.passed
                    passed += 1
        assert passed > 0

    def test_clock_charged_per_network_test(self, small_world):
        clock = SimClock()
        validator = LandmarkValidator(small_world, clock)
        poi = next(
            p
            for p in small_world.pois_of_city(small_world.anchors[0].city_id)
            if p.website is not None
        )
        validator.validate(poi, poi.website, poi.zipcode)
        if poi.zipcode == small_world.cities[poi.city_id].zipcode_at(poi.location):
            assert clock.now_s > 0


class TestDiscovery:
    def test_funnel_finds_landmarks_near_anchor(self, small_world, services):
        geocoder, overpass, validator = services
        discovery = LandmarkDiscovery(small_world, geocoder, overpass, validator)
        anchor = small_world.anchors[0]
        region = cbg_region([Circle(anchor.true_location, 60.0)])
        landmarks, stats = discovery.discover(
            anchor.true_location, region, 5.0, 36.0, tier=2
        )
        assert stats.candidates_tested > 0
        assert stats.geocode_queries > 0
        # Every landmark hostname is unique and maps into the region area.
        hostnames = [l.hostname for l in landmarks]
        assert len(hostnames) == len(set(hostnames))
        for landmark in landmarks:
            assert anchor.true_location.distance_km(landmark.location) < 120.0

    def test_known_hostnames_skipped(self, small_world, services):
        geocoder, overpass, validator = services
        discovery = LandmarkDiscovery(small_world, geocoder, overpass, validator)
        anchor = small_world.anchors[0]
        region = cbg_region([Circle(anchor.true_location, 40.0)])
        known: set = set()
        first, _ = discovery.discover(
            anchor.true_location, region, 5.0, 36.0, tier=2, known_hostnames=known
        )
        second, _ = discovery.discover(
            anchor.true_location, region, 5.0, 36.0, tier=3, known_hostnames=known
        )
        assert not {l.hostname for l in first} & {l.hostname for l in second}

    def test_max_landmarks_cap(self, small_world, services):
        geocoder, overpass, validator = services
        discovery = LandmarkDiscovery(small_world, geocoder, overpass, validator)
        anchor = small_world.anchors[0]
        region = cbg_region([Circle(anchor.true_location, 300.0)])
        landmarks, _stats = discovery.discover(
            anchor.true_location, region, 5.0, 36.0, tier=2, max_landmarks=3
        )
        assert len(landmarks) <= 3

    def test_stats_merge(self):
        from repro.landmarks.discovery import DiscoveryStats

        a = DiscoveryStats(geocode_queries=2, rejected_by={"cdn": 1})
        b = DiscoveryStats(geocode_queries=3, rejected_by={"cdn": 2, "zipcode": 1})
        a.merge(b)
        assert a.geocode_queries == 5
        assert a.rejected_by == {"cdn": 3, "zipcode": 1}
