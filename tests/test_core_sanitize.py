"""Tests for the §4.3 speed-of-Internet sanitization."""

import numpy as np
import pytest

from repro.constants import distance_to_min_rtt_ms
from repro.core.sanitize import sanitize_anchors, sanitize_probes
from repro.geo.coords import GeoPoint, destination


def _clean_mesh(locations):
    """A mesh whose RTTs are physically consistent with the locations."""
    count = len(locations)
    mesh = np.full((count, count), np.nan)
    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            distance = locations[i].distance_km(locations[j])
            mesh[i, j] = distance_to_min_rtt_ms(distance) * 1.3 + 0.5
    return mesh


class TestSanitizeAnchors:
    def test_clean_mesh_keeps_everyone(self):
        locations = [GeoPoint(0, 0), GeoPoint(10, 10), GeoPoint(20, -10)]
        kept, removed = sanitize_anchors([1, 2, 3], _clean_mesh(locations), locations)
        assert kept == [1, 2, 3]
        assert removed == []

    def test_mislocated_anchor_removed(self):
        true_locations = [GeoPoint(0, 0), GeoPoint(1, 1), GeoPoint(2, 0), GeoPoint(1, -1)]
        mesh = _clean_mesh(true_locations)
        # Anchor 0 *claims* to be 8000 km away from where it really is.
        claimed = [destination(GeoPoint(0, 0), 90.0, 8000.0)] + true_locations[1:]
        kept, removed = sanitize_anchors([10, 11, 12, 13], mesh, claimed)
        assert removed == [10]
        assert kept == [11, 12, 13]

    def test_iterative_removal_stops_at_clean_state(self):
        true_locations = [GeoPoint(i, i) for i in range(6)]
        mesh = _clean_mesh(true_locations)
        claimed = list(true_locations)
        claimed[2] = destination(true_locations[2], 0.0, 9000.0)
        claimed[4] = destination(true_locations[4], 180.0, 9000.0)
        kept, removed = sanitize_anchors(list(range(6)), mesh, claimed)
        assert set(removed) == {2, 4}
        assert len(kept) == 4

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sanitize_anchors([1, 2], np.zeros((3, 3)), [GeoPoint(0, 0)] * 2)

    def test_nan_entries_ignored(self):
        locations = [GeoPoint(0, 0), GeoPoint(10, 10)]
        mesh = np.full((2, 2), np.nan)
        kept, removed = sanitize_anchors([1, 2], mesh, locations)
        assert kept == [1, 2]


class TestSanitizeProbes:
    def test_honest_probes_kept(self):
        anchors = [GeoPoint(0, 0), GeoPoint(20, 20)]
        probes = [GeoPoint(1, 1), GeoPoint(19, 19)]
        matrix = np.zeros((2, 2))
        for i, probe in enumerate(probes):
            for j, anchor in enumerate(anchors):
                matrix[i, j] = distance_to_min_rtt_ms(probe.distance_km(anchor)) * 1.4 + 1.0
        kept, removed = sanitize_probes([100, 101], probes, anchors, matrix)
        assert kept == [100, 101]
        assert removed == []

    def test_lying_probe_removed(self):
        anchors = [GeoPoint(0, 0)]
        true_probe = GeoPoint(0.5, 0.5)  # really ~78 km from the anchor
        claimed = destination(true_probe, 90.0, 7000.0)
        rtt = distance_to_min_rtt_ms(true_probe.distance_km(anchors[0])) * 1.3 + 0.5
        kept, removed = sanitize_probes(
            [7], [claimed], anchors, np.array([[rtt]])
        )
        assert removed == [7]
        assert kept == []

    def test_unanswered_probe_kept(self):
        anchors = [GeoPoint(0, 0)]
        kept, removed = sanitize_probes(
            [5], [GeoPoint(50, 50)], anchors, np.array([[np.nan]])
        )
        assert kept == [5]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sanitize_probes([1], [GeoPoint(0, 0)], [GeoPoint(1, 1)], np.zeros((2, 2)))


class TestEndToEndSanitization:
    def test_planted_hosts_caught_in_scenario(self, small_scenario):
        world = small_scenario.world
        planted_anchors = {a.host_id for a in world.anchors if a.mislocated}
        planted_probes = {p.host_id for p in world.probes if p.mislocated}
        assert planted_anchors <= set(small_scenario.removed_anchor_ids)
        assert planted_probes <= set(small_scenario.removed_probe_ids)

    def test_targets_are_well_geolocated(self, small_scenario):
        for target in small_scenario.targets:
            assert not target.mislocated
            assert target.geolocation_error_km < 1.0


class TestDegenerateInputs:
    """Regression pins for the zero/negative-RTT and empty-input edge cases."""

    def test_empty_anchor_set(self):
        # Used to raise: argmax over a zero-length violation-count vector.
        kept, removed = sanitize_anchors([], np.zeros((0, 0)), [])
        assert kept == []
        assert removed == []

    def test_single_anchor_kept(self):
        kept, removed = sanitize_anchors(
            [42], np.array([[np.nan]]), [GeoPoint(10, 10)]
        )
        assert kept == [42]
        assert removed == []

    def test_single_probe_clean(self):
        anchors = [GeoPoint(0, 0)]
        probe = GeoPoint(1, 1)
        rtt = distance_to_min_rtt_ms(probe.distance_km(anchors[0])) * 1.3 + 0.5
        kept, removed = sanitize_probes([9], [probe], anchors, np.array([[rtt]]))
        assert kept == [9]
        assert removed == []

    def test_probes_against_zero_anchors_vacuously_kept(self):
        kept, removed = sanitize_probes(
            [1, 2], [GeoPoint(0, 0), GeoPoint(5, 5)], [], np.zeros((2, 0))
        )
        assert kept == [1, 2]
        assert removed == []

    def test_zero_rtt_at_distance_is_violation(self):
        # 0 ms over ~1570 km is impossible; the distance test catches it.
        locations = [GeoPoint(0, 0), GeoPoint(10, 10)]
        mesh = np.array([[np.nan, 0.0], [0.0, np.nan]])
        kept, removed = sanitize_anchors([1, 2], mesh, locations)
        assert len(removed) >= 1

    def test_zero_rtt_between_colocated_hosts_allowed(self):
        # Co-located hosts may legitimately measure ~0 ms.
        locations = [GeoPoint(0, 0), GeoPoint(0, 0)]
        mesh = np.array([[np.nan, 0.0], [0.0, np.nan]])
        kept, removed = sanitize_anchors([1, 2], mesh, locations)
        assert kept == [1, 2]
        assert removed == []

    def test_negative_rtt_is_violation_even_colocated(self):
        # Negative RTTs are impossible regardless of geometry — the
        # distance bound alone would pass small negatives between
        # co-located hosts (minimum - tolerance < 0).
        locations = [GeoPoint(0, 0), GeoPoint(0, 0)]
        mesh = np.array([[np.nan, -0.01], [-0.01, np.nan]])
        kept, removed = sanitize_anchors([1, 2], mesh, locations)
        assert len(removed) >= 1

    def test_negative_rtt_probe_removed_even_colocated(self):
        anchors = [GeoPoint(3, 3)]
        kept, removed = sanitize_probes(
            [8], [GeoPoint(3, 3)], anchors, np.array([[-0.5]])
        )
        assert removed == [8]
        assert kept == []
