"""Tests for the §7.1 baseline experiment and its dataset export."""

import pytest

from repro.experiments.baseline import run_baseline


class TestBaseline:
    @pytest.fixture(scope="class")
    def output(self, small_scenario):
        return run_baseline(small_scenario, max_targets=12)

    def test_structure(self, output):
        assert output.experiment_id == "baseline"
        assert "city level" in output.table
        assert "|" in output.table  # the embedded ASCII CDF

    def test_fractions_ordered(self, output):
        assert (
            output.measured["street_level_fraction"]
            <= output.measured["city_level_fraction"]
        )
        assert 0.0 <= output.measured["city_level_fraction"] <= 1.0

    def test_not_feasible_at_scale(self, output):
        assert output.measured["millions_coverage_feasible"] == 0.0

    def test_series_present(self, output):
        assert len(output.series["cbg"]) > 0
        assert len(output.series["street"]) == 12

    def test_cli_exposes_baseline(self, capsys, small_scenario):
        from repro.experiments.run import main

        code = main(["baseline", "--preset", "small", "--max-targets", "12"])
        assert code == 0
        assert "baseline" in capsys.readouterr().out
