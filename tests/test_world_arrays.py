"""Shared-memory arena lifecycle and structure-of-arrays world state.

Covers the :mod:`repro.world.arrays` contract end to end: publish/attach
round-trips are bitwise, views are read-only, tokens travel by pickle,
owners unlink on close (and on interpreter exit, so an abandoned parent
never leaks ``/dev/shm`` space), and the executor integration — workers
attach instead of COW-inheriting, platforms without fork or shared memory
degrade to the serial path computing identical bytes.
"""

import pickle
import subprocess
import sys

import numpy as np
import pytest

from repro.exec import pool
from repro.exec.pool import arena_context, attached_world_arrays, parallel_map
from repro.serve.state import QueryState
from repro.topology import Topology
from repro.world import WorldConfig, build_world
from repro.world.arrays import SharedArena, WorldArrays, arena_supported

pytestmark = pytest.mark.skipif(
    not arena_supported(), reason="platform has no shared memory"
)


@pytest.fixture(scope="module")
def quick_arrays():
    world = build_world(WorldConfig.quick())
    return WorldArrays.from_topology(Topology(world))


class TestSharedArena:
    def test_round_trip_is_bitwise(self):
        payload = {
            "floats": np.linspace(0.0, 1.0, 97),
            "ints": np.arange(13, dtype=np.int64).reshape(13, 1),
            "flags": np.array([True, False, True]),
            "names": np.array([b"alpha", b"beta"], dtype="S5"),
        }
        with SharedArena.create(payload) as arena:
            attached = SharedArena.attach(arena.token)
            try:
                for name, expected in payload.items():
                    view = attached.array(name)
                    assert view.dtype == expected.dtype
                    assert np.array_equal(view, expected)
            finally:
                attached.close()

    def test_views_are_read_only(self):
        with SharedArena.create({"x": np.arange(4.0)}) as arena:
            view = arena.array("x")
            with pytest.raises(ValueError):
                view[0] = 99.0

    def test_token_pickles(self):
        with SharedArena.create({"x": np.arange(4.0)}) as arena:
            token = pickle.loads(pickle.dumps(arena.token))
            attached = SharedArena.attach(token)
            try:
                assert np.array_equal(attached.array("x"), np.arange(4.0))
            finally:
                attached.close()

    def test_owner_close_unlinks(self):
        arena = SharedArena.create({"x": np.arange(4.0)})
        token = arena.token
        arena.close()
        arena.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            SharedArena.attach(token)

    def test_unknown_name_raises(self):
        with SharedArena.create({"x": np.arange(4.0)}) as arena:
            with pytest.raises(KeyError):
                arena.array("y")

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError):
            SharedArena.create({})

    def test_parent_exit_cleans_up(self):
        """An owner that exits without close() is cleaned by the exit hook."""
        script = (
            "import numpy as np\n"
            "from repro.world.arrays import SharedArena\n"
            "arena = SharedArena.create({'x': np.arange(8.0)})\n"
            "print(arena.token.segment)\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        segment = result.stdout.strip()
        assert segment
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=segment, create=False)


class TestWorldArrays:
    def test_share_attach_parity(self, quick_arrays):
        with quick_arrays.share() as arena:
            attached, handle = WorldArrays.attach(arena.token)
            try:
                assert np.array_equal(attached.host_tail_km, quick_arrays.host_tail_km)
                assert np.array_equal(attached.csr_indptr, quick_arrays.csr_indptr)
                assert np.array_equal(
                    attached.csr_weight_km, quick_arrays.csr_weight_km
                )
                assert attached.hub_count == quick_arrays.hub_count
                assert attached.seed == quick_arrays.seed
                assert (
                    attached.peering_probability == quick_arrays.peering_probability
                )
            finally:
                handle.close()

    def test_router_graph_over_arena_is_bitwise(self, quick_arrays):
        src = np.arange(6)
        dst = np.arange(6, 12)
        expected = quick_arrays.router_graph().path_km_matrix(src, dst)
        with quick_arrays.share() as arena:
            attached, handle = WorldArrays.attach(arena.token)
            try:
                graph = attached.router_graph()
                graph.validate()
                assert np.array_equal(graph.path_km_matrix(src, dst), expected)
            finally:
                handle.close()


def _arena_route_sum(pair):
    """Work item: route a host block through the attached arena graph."""
    arrays = attached_world_arrays()
    assert arrays is not None, "worker did not inherit the arena token"
    graph = arrays.router_graph()
    src, dst = pair
    return graph.path_km_matrix(np.asarray(src), np.asarray(dst))


class TestPoolIntegration:
    def test_workers_attach_and_match_serial(self, quick_arrays, monkeypatch):
        items = [
            (list(range(0, 5)), list(range(5, 9))),
            (list(range(9, 14)), list(range(14, 18))),
            (list(range(2, 7)), list(range(11, 16))),
        ]
        with quick_arrays.share() as arena, arena_context(arena.token):
            monkeypatch.delenv("REPRO_WORKERS", raising=False)
            serial = parallel_map(_arena_route_sum, items)
            monkeypatch.setenv("REPRO_WORKERS", "2")
            parallel = parallel_map(_arena_route_sum, items)
        assert len(serial) == len(parallel) == len(items)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_no_token_returns_none(self):
        assert attached_world_arrays() is None

    def test_no_fork_platform_degrades_serial(self, quick_arrays, monkeypatch):
        monkeypatch.setattr(pool, "_fork_context", lambda: None)
        monkeypatch.setenv("REPRO_WORKERS", "4")
        items = [(list(range(0, 4)), list(range(4, 8)))]
        with quick_arrays.share() as arena, arena_context(arena.token):
            degraded = parallel_map(_arena_route_sum, items)
        expected = quick_arrays.router_graph().path_km_matrix(
            np.arange(0, 4), np.arange(4, 8)
        )
        assert np.array_equal(degraded[0], expected)

    def test_unlinked_arena_yields_none(self, quick_arrays):
        arena = quick_arrays.share()
        token = arena.token
        arena.close()
        with arena_context(token):
            assert attached_world_arrays() is None

    def test_context_nests_and_restores(self, quick_arrays):
        with quick_arrays.share() as arena:
            with arena_context(arena.token):
                assert pool._ARENA_TOKEN is arena.token
                with arena_context(None):
                    assert attached_world_arrays() is None
                assert pool._ARENA_TOKEN is arena.token
            assert pool._ARENA_TOKEN is None


class TestQueryStateArena:
    def test_share_attach_round_trip(self):
        state = QueryState(
            vp_lats=np.array([10.0, 20.0, 30.0]),
            vp_lons=np.array([1.0, 2.0, 3.0]),
            rtt_matrix=np.array([[5.0, np.nan], [6.0, 7.0], [np.nan, 8.0]]),
            target_ips=("11.0.0.1", "11.0.0.2"),
            target_true_lats=np.array([10.5, 20.5]),
            target_true_lons=np.array([1.5, 2.5]),
            seed=42,
        )
        with state.share() as arena:
            attached, handle = QueryState.attach(arena.token)
            try:
                assert attached.target_ips == state.target_ips
                assert attached.seed == 42
                assert attached.soi_fraction == state.soi_fraction
                assert np.array_equal(
                    attached.rtt_matrix, state.rtt_matrix, equal_nan=True
                )
                assert np.array_equal(attached.target_true_lats, state.target_true_lats)
                assert attached.column_of("11.0.0.2") == 1
            finally:
                handle.close()

    def test_share_without_truth(self):
        state = QueryState(
            vp_lats=np.array([10.0]),
            vp_lons=np.array([1.0]),
            rtt_matrix=np.array([[5.0]]),
            target_ips=("11.0.0.1",),
        )
        with state.share() as arena:
            attached, handle = QueryState.attach(arena.token)
            try:
                assert attached.target_true_lats is None
                assert attached.seed is None
            finally:
                handle.close()
