"""Tests for the million scale VP selection and deployability analysis."""

import numpy as np
import pytest

from repro.core.million_scale import (
    full_ipv4_campaign_feasibility,
    geolocate_with_selection,
    representative_rtt_matrix,
    select_closest_vps,
)


class TestSelectClosestVps:
    def test_orders_by_rtt(self):
        rtts = np.array([5.0, 1.0, np.nan, 3.0])
        assert list(select_closest_vps(rtts, 2)) == [1, 3]

    def test_nan_skipped(self):
        rtts = np.array([np.nan, np.nan, 7.0])
        assert list(select_closest_vps(rtts, 5)) == [2]

    def test_all_nan_empty(self):
        assert select_closest_vps(np.array([np.nan, np.nan]), 3).size == 0

    def test_k_positive(self):
        with pytest.raises(ValueError):
            select_closest_vps(np.array([1.0]), 0)


class TestRepresentativeMatrix:
    def test_matrix_and_reps(self, small_scenario):
        client = small_scenario.client
        targets = small_scenario.target_ips[:4]
        matrix, reps = representative_rtt_matrix(
            client, small_scenario.vp_ids[:50], targets, small_scenario.world.hitlist
        )
        assert matrix.shape == (50, 4)
        for target in targets:
            assert len(reps[target]) == 3
            for rep in reps[target]:
                assert rep.rsplit(".", 1)[0] == target.rsplit(".", 1)[0]

    def test_selection_finds_close_vps(self, small_scenario):
        """The core million scale insight: low rep-RTT VPs are close."""
        rep_min, _median, _reps = small_scenario.representative_matrices()
        close_count = 0
        checked = 0
        for column, target in enumerate(small_scenario.targets):
            chosen = select_closest_vps(rep_min[:, column], 1)
            if chosen.size == 0:
                continue
            vp = small_scenario.vps[int(chosen[0])]
            vp_host = small_scenario.world.host_by_id(vp.probe_id)
            checked += 1
            if vp_host.true_location.distance_km(target.true_location) < 300.0:
                close_count += 1
        assert checked > 0
        assert close_count / checked > 0.6

    def test_geolocate_with_selection(self, small_scenario):
        rep_min, _median, _reps = small_scenario.representative_matrices()
        target = small_scenario.targets[0]
        column = 0
        result = geolocate_with_selection(
            small_scenario.client,
            target.ip,
            small_scenario.vps,
            rep_min[:, column],
            k=10,
        )
        assert result.technique == "million-scale"
        assert result.estimate is not None
        assert result.error_km(target.true_location) < 2000.0


class TestFeasibility:
    def test_atlas_probes_cannot_run_campaign(self, small_scenario):
        report = full_ipv4_campaign_feasibility(small_scenario.vps)
        assert not report.feasible
        assert report.probes_needed_pps > report.available_pps
        assert "NOT deployable" in report.describe()

    def test_planetlab_like_rates_could(self, small_scenario):
        """At the original study's 500 pps the campaign fits in months."""
        from dataclasses import replace

        fast_vps = [replace(vp, probing_rate_pps=500.0) for vp in small_scenario.vps]
        report = full_ipv4_campaign_feasibility(
            fast_vps, routable_slash24s=4_000_000, campaign_days=120.0, budget_fraction=1.0
        )
        assert report.feasible

    def test_no_vps_rejected(self):
        with pytest.raises(ValueError):
            full_ipv4_campaign_feasibility([])

    def test_total_measurement_count(self, small_scenario):
        report = full_ipv4_campaign_feasibility(
            small_scenario.vps, routable_slash24s=1000
        )
        assert report.total_ping_measurements == 1000 * 3 * len(small_scenario.vps)
