"""Tests for the high-level Geolocator facade."""

import pytest

from repro.core.geolocator import TECHNIQUES, Geolocator
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def geolocator(small_scenario):
    return Geolocator(
        small_scenario.client,
        hitlist=small_scenario.world.hitlist,
        world=small_scenario.world,
        vantage_points=small_scenario.vps,
    )


class TestGeolocator:
    def test_shortest_ping(self, geolocator, small_scenario):
        target = small_scenario.targets[0]
        result = geolocator.locate(target.ip, "shortest-ping")
        assert result.technique == "shortest-ping"
        assert result.estimate is not None
        assert result.details["quality"] in (
            "street-level",
            "city-level",
            "region-level",
            "unknown",
        )
        assert result.error_km(target.true_location) < 1000.0

    def test_cbg(self, geolocator, small_scenario):
        target = small_scenario.targets[1]
        result = geolocator.locate(target.ip, "cbg")
        assert result.technique == "cbg"
        assert result.error_km(target.true_location) < 1000.0
        assert "min_rtt_ms" in result.details

    def test_million_scale(self, geolocator, small_scenario):
        target = small_scenario.targets[2]
        result = geolocator.locate(target.ip, "million-scale")
        assert result.technique == "million-scale"
        assert result.details["selected"] <= 10
        assert len(result.details["representatives"]) == 3
        assert result.error_km(target.true_location) < 2000.0

    def test_street_level(self, geolocator, small_scenario):
        target = small_scenario.targets[3]
        result = geolocator.locate(target.ip, "street-level")
        assert result.technique == "street-level"
        assert result.estimate is not None
        assert "landmarks" in result.details

    def test_unknown_technique(self, geolocator):
        with pytest.raises(ConfigurationError):
            geolocator.locate("10.0.0.1", "magic")

    def test_techniques_constant_consistent(self, geolocator, small_scenario):
        target = small_scenario.targets[4]
        for technique in TECHNIQUES:
            result = geolocator.locate(target.ip, technique)
            assert result.technique == technique

    def test_missing_hitlist_rejected(self, small_scenario):
        bare = Geolocator(small_scenario.client, vantage_points=small_scenario.vps)
        with pytest.raises(ConfigurationError):
            bare.locate(small_scenario.targets[0].ip, "million-scale")

    def test_missing_world_rejected(self, small_scenario):
        bare = Geolocator(small_scenario.client, vantage_points=small_scenario.vps)
        with pytest.raises(ConfigurationError):
            bare.locate(small_scenario.targets[0].ip, "street-level")

    def test_bad_k_rejected(self, small_scenario):
        with pytest.raises(ConfigurationError):
            Geolocator(small_scenario.client, million_scale_k=0)

    def test_locate_batch(self, geolocator, small_scenario):
        ips = [t.ip for t in small_scenario.targets[:3]]
        results = geolocator.locate_batch(ips, "shortest-ping")
        assert [r.target_ip for r in results] == ips

    def test_defaults_to_platform_vps(self, small_scenario):
        geolocator = Geolocator(small_scenario.client)
        assert len(geolocator.vantage_points) >= len(small_scenario.vps)
