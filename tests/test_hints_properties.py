"""Property tests for the hint pipeline over fuzzed worlds.

Ten fuzzed configurations (:func:`repro.check.fuzz.fuzz_config`) each
yield a different city set, code corpus, and hostname population; the
properties must hold on every one:

* **permutation invariance** — a name's match depends only on the name:
  scanning a shuffled name list and unshuffling gives the identical
  match per name;
* **noise never matches** — no vocabulary word, with or without a digit
  tail, ever matches a code (the corpus construction guarantees this);
* **blacklisted codes are excluded** — an extra-blacklisted code stops
  matching without disturbing other codes;
* **degenerate inputs never raise** — empty hostnames, unicode, bare
  digits, single labels all pass through find/tokenize safely.
"""

import numpy as np
import pytest

from repro.check.fuzz import fuzz_config
from repro.hints import CodeCorpus, find_hints, tokenize
from repro.world.cities import generate_cities, generate_countries
from repro.world.hostnames import NOISE_VOCABULARY, HostnameScheme

FUZZ_COUNT = 10


def _scheme(index: int):
    config = fuzz_config(index)
    cities = generate_cities(config, generate_countries(config))
    return config, cities, HostnameScheme(config, cities)


def _sample_names(config, cities, scheme, count=120):
    """A deterministic population of PTR names across the fuzzed world."""
    names = []
    for i in range(count):
        city = cities[i % len(cities)]
        kind = "anchor" if i % 3 == 0 else "probe"
        hostname = scheme.hostname(
            (config.seed, "fuzz-host", i, "rdns"), city, 64500 + i % 7, kind
        )
        names.append((f"198.51.{i // 250}.{i % 250}", hostname))
    return names


@pytest.fixture(scope="module", params=range(FUZZ_COUNT))
def fuzz_world(request):
    config, cities, scheme = _scheme(request.param)
    corpus = CodeCorpus.from_cities(config, cities)
    return config, cities, scheme, corpus


class TestPermutationInvariance:
    def test_shuffled_scan_matches_direct_scan(self, fuzz_world):
        config, cities, scheme, corpus = fuzz_world
        names = _sample_names(config, cities, scheme)
        trie = corpus.trie()
        direct = find_hints(names, trie)
        order = np.random.default_rng(config.seed).permutation(len(names))
        shuffled = find_hints([names[i] for i in order], trie)
        for new_index, old_index in enumerate(order):
            a, b = direct[old_index], shuffled[new_index]
            if a is None:
                assert b is None
            else:
                assert b is not None
                assert (a.code, a.city_id, a.hostname) == (b.code, b.city_id, b.hostname)


class TestNoiseNeverMatches:
    def test_vocabulary_words_never_match(self, fuzz_world):
        _, _, _, corpus = fuzz_world
        trie = corpus.trie()
        for word in NOISE_VOCABULARY:
            for tail in ("", "1", "42", "007"):
                assert trie.match_token(f"{word}{tail}") is None, (
                    f"noise token {word}{tail!r} matched a code"
                )

    def test_noise_only_hostnames_never_match(self, fuzz_world):
        config, _, scheme, corpus = fuzz_world
        trie = corpus.trie()
        for i in range(50):
            labels = [
                scheme._noise_label((config.seed, "fuzz-noise", i, j)) for j in range(3)
            ]
            hostname = ".".join(labels) + f".as{64500 + i}.example.net"
            assert trie.find(hostname) is None, f"noise name {hostname!r} matched"

    def test_matches_are_real_codes(self, fuzz_world):
        config, cities, scheme, corpus = fuzz_world
        names = _sample_names(config, cities, scheme)
        for match in find_hints(names, corpus.trie()):
            if match is None:
                continue
            assert corpus.city_by_code[match.code] == match.city_id
            assert any(
                token == match.code
                or (token.startswith(match.code) and token[len(match.code):].isdigit())
                for token in tokenize(match.hostname)
            )


class TestBlacklist:
    def test_blacklisted_code_is_excluded(self, fuzz_world):
        config, cities, scheme, corpus = fuzz_world
        victim = corpus.codes[0]
        filtered = CodeCorpus.from_cities(config, cities, extra_blacklist=[victim])
        trie = filtered.trie()
        assert trie.match_token(victim) is None
        assert trie.match_token(f"{victim}03") is None
        survivor = next(code for code in corpus.codes if code != victim)
        assert trie.match_token(survivor) == (
            survivor,
            corpus.city_by_code[survivor],
        )


class TestDegenerateInputs:
    DEGENERATE = [
        "",
        None,
        "fra",
        "fra03",
        "...",
        "---",
        "___",
        "a" * 300,
        "12345",
        "xn--frühstück-r5a.example.net",
        "Ｆｒａ０３.example.net",
        "nét.example",
        "\tweird space",
        ".leading.dot",
        "trailing.dot.",
    ]

    def test_find_never_raises(self, fuzz_world):
        _, _, _, corpus = fuzz_world
        trie = corpus.trie()
        for hostname in self.DEGENERATE:
            trie.find(hostname)  # must not raise
            tokenize(hostname or "")  # must not raise

    def test_degenerate_batch_scan(self, fuzz_world):
        _, _, _, corpus = fuzz_world
        names = [(f"203.0.113.{i}", host) for i, host in enumerate(self.DEGENERATE)]
        matches = find_hints(names, corpus.trie())
        assert len(matches) == len(names)
        assert matches[0] is None and matches[1] is None
