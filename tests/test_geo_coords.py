"""Tests for great-circle geometry."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import EARTH_RADIUS_KM, MAX_GREAT_CIRCLE_KM
from repro.geo.coords import (
    GeoPoint,
    bearing_deg,
    bulk_destination,
    bulk_haversine_km,
    destination,
    haversine_km,
    mean_point,
    midpoint,
    normalize_lon,
    pairwise_haversine_km,
)

LATS = st.floats(min_value=-85.0, max_value=85.0)
LONS = st.floats(min_value=-179.9, max_value=179.9)


class TestGeoPoint:
    def test_valid_construction(self):
        point = GeoPoint(48.85, 2.35)
        assert point.lat == 48.85

    def test_latitude_bounds(self):
        with pytest.raises(ValueError):
            GeoPoint(91.0, 0.0)
        with pytest.raises(ValueError):
            GeoPoint(-90.5, 0.0)

    def test_longitude_bounds(self):
        with pytest.raises(ValueError):
            GeoPoint(0.0, -181.0)

    def test_distance_to_self_is_zero(self):
        point = GeoPoint(10.0, 20.0)
        assert point.distance_km(point) == 0.0

    def test_frozen(self):
        point = GeoPoint(1.0, 2.0)
        with pytest.raises(AttributeError):
            point.lat = 3.0


class TestHaversine:
    def test_paris_london(self):
        # Paris (48.8566, 2.3522) to London (51.5074, -0.1278) ~ 344 km.
        assert haversine_km(48.8566, 2.3522, 51.5074, -0.1278) == pytest.approx(344, abs=5)

    def test_equator_degree(self):
        # One degree of longitude at the equator ~ 111.19 km.
        assert haversine_km(0, 0, 0, 1) == pytest.approx(
            2 * math.pi * EARTH_RADIUS_KM / 360.0, rel=1e-6
        )

    def test_antipodal(self):
        assert haversine_km(0, 0, 0, 179.9999) == pytest.approx(MAX_GREAT_CIRCLE_KM, abs=5)

    @given(LATS, LONS, LATS, LONS)
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        d1 = haversine_km(lat1, lon1, lat2, lon2)
        d2 = haversine_km(lat2, lon2, lat1, lon1)
        assert d1 == pytest.approx(d2, abs=1e-9)

    @given(LATS, LONS, LATS, LONS, LATS, LONS)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, lat1, lon1, lat2, lon2, lat3, lon3):
        d12 = haversine_km(lat1, lon1, lat2, lon2)
        d23 = haversine_km(lat2, lon2, lat3, lon3)
        d13 = haversine_km(lat1, lon1, lat3, lon3)
        assert d13 <= d12 + d23 + 1e-6

    def test_bulk_matches_scalar(self):
        lats = np.array([0.0, 45.0, -30.0])
        lons = np.array([0.0, 90.0, -60.0])
        bulk = bulk_haversine_km(lats, lons, 10.0, 20.0)
        for index in range(3):
            assert bulk[index] == pytest.approx(
                haversine_km(lats[index], lons[index], 10.0, 20.0)
            )

    def test_pairwise_matches_scalar(self):
        a = np.array([0.0, 45.0])
        b = np.array([10.0, 50.0])
        c = np.array([5.0, -45.0])
        d = np.array([15.0, -50.0])
        pair = pairwise_haversine_km(a, b, c, d)
        for index in range(2):
            assert pair[index] == pytest.approx(
                haversine_km(a[index], b[index], c[index], d[index])
            )


class TestDestination:
    def test_north_one_degree(self):
        origin = GeoPoint(0.0, 0.0)
        step = 2 * math.pi * EARTH_RADIUS_KM / 360.0
        result = destination(origin, 0.0, step)
        assert result.lat == pytest.approx(1.0, abs=1e-6)
        assert result.lon == pytest.approx(0.0, abs=1e-6)

    @given(LATS, LONS, st.floats(min_value=0.0, max_value=359.9), st.floats(min_value=0.1, max_value=5000.0))
    @settings(max_examples=100, deadline=None)
    def test_distance_preserved(self, lat, lon, bearing, dist):
        origin = GeoPoint(lat, lon)
        result = destination(origin, bearing, dist)
        assert origin.distance_km(result) == pytest.approx(dist, rel=1e-6, abs=1e-6)

    def test_bulk_matches_scalar(self):
        origin = GeoPoint(40.0, -3.0)
        bearings = np.array([0.0, 90.0, 180.0, 270.0])
        distances = np.array([10.0, 100.0, 1000.0, 5000.0])
        lats, lons = bulk_destination(origin, bearings, distances)
        for index in range(4):
            scalar = destination(origin, float(bearings[index]), float(distances[index]))
            assert lats[index] == pytest.approx(scalar.lat, abs=1e-9)
            assert lons[index] == pytest.approx(scalar.lon, abs=1e-9)


class TestBearingMidpointMean:
    def test_bearing_east(self):
        assert bearing_deg(GeoPoint(0, 0), GeoPoint(0, 10)) == pytest.approx(90.0)

    def test_bearing_north(self):
        assert bearing_deg(GeoPoint(0, 0), GeoPoint(10, 0)) == pytest.approx(0.0)

    def test_midpoint_equidistant(self):
        a, b = GeoPoint(10, 10), GeoPoint(20, 40)
        mid = midpoint(a, b)
        assert a.distance_km(mid) == pytest.approx(b.distance_km(mid), rel=1e-6)

    def test_mean_point_of_identical_points(self):
        point = GeoPoint(12.0, 34.0)
        assert mean_point([point, point, point]).distance_km(point) < 1e-6

    def test_mean_point_requires_points(self):
        with pytest.raises(ValueError):
            mean_point([])

    def test_mean_point_between(self):
        a, b = GeoPoint(0, 0), GeoPoint(0, 10)
        mean = mean_point([a, b])
        assert mean.lat == pytest.approx(0.0, abs=1e-6)
        assert mean.lon == pytest.approx(5.0, abs=1e-6)

    def test_normalize_lon(self):
        assert normalize_lon(190.0) == pytest.approx(-170.0)
        assert normalize_lon(-190.0) == pytest.approx(170.0)
        assert normalize_lon(0.0) == 0.0
