"""Tests for the three-tier street level pipeline."""

import numpy as np
import pytest

from repro.core.street_level import (
    StreetLevelConfig,
    StreetLevelPipeline,
    closest_landmark_oracle,
)
from repro.geo.coords import GeoPoint


@pytest.fixture(scope="module")
def street_setup(small_scenario):
    anchors = small_scenario.anchor_vp_infos()
    mesh_ids, mesh = small_scenario.mesh()
    row_by_id = {anchor_id: row for row, anchor_id in enumerate(mesh_ids)}
    pipeline = StreetLevelPipeline(small_scenario.client, small_scenario.world)
    return small_scenario, anchors, mesh, row_by_id, pipeline


def _tier1_rtts(mesh, row_by_id, target_id):
    column = row_by_id[target_id]
    return {
        anchor_id: (None if np.isnan(mesh[row, column]) else float(mesh[row, column]))
        for anchor_id, row in row_by_id.items()
    }


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self, street_setup):
        scenario, anchors, mesh, row_by_id, pipeline = street_setup
        target = scenario.targets[0]
        rtts = _tier1_rtts(mesh, row_by_id, target.host_id)
        return target, pipeline.geolocate(target.ip, anchors, rtts)

    def test_produces_estimate(self, result):
        _target, outcome = result
        assert outcome.estimate is not None
        assert outcome.tier1_estimate is not None

    def test_target_excluded_from_vps(self, result):
        target, outcome = result
        # Tier-1 cannot be perfect: the target did not ping itself.
        assert outcome.tier1_estimate.distance_km(target.true_location) > 0.0

    def test_time_accounted(self, result):
        _target, outcome = result
        assert outcome.elapsed_s > 0
        assert sum(outcome.time_breakdown.values()) == pytest.approx(outcome.elapsed_s)
        assert "atlas-api" in outcome.time_breakdown

    def test_chosen_landmark_has_smallest_usable_delay(self, result):
        _target, outcome = result
        usable = [m for m in outcome.measurements if m.delay.usable]
        if outcome.chosen is not None:
            assert outcome.chosen.delay.best_delay_ms == min(
                m.delay.best_delay_ms for m in usable
            )
            assert outcome.estimate == outcome.chosen.landmark.location
        else:
            assert outcome.fell_back_to_cbg
            assert outcome.estimate == outcome.tier1_estimate

    def test_as_result_roundtrip(self, result):
        _target, outcome = result
        condensed = outcome.as_result()
        assert condensed.technique == "street-level"
        assert condensed.estimate == outcome.estimate

    def test_traceroutes_counted(self, result):
        _target, outcome = result
        expected_min = 10  # at least the target traceroutes from 10 VPs
        assert outcome.traceroutes_run >= expected_min


class TestConfig:
    def test_default_matches_paper(self):
        config = StreetLevelConfig()
        assert config.tier2_step_km == 5.0
        assert config.tier2_alpha_deg == 36.0
        assert config.tier3_step_km == 1.0
        assert config.tier3_alpha_deg == 10.0
        assert config.closest_vp_count == 10
        assert config.soi_fraction == pytest.approx(4.0 / 9.0)

    def test_custom_vp_count(self, street_setup):
        scenario, anchors, mesh, row_by_id, _pipeline = street_setup
        pipeline = StreetLevelPipeline(
            scenario.client, scenario.world, StreetLevelConfig(closest_vp_count=3)
        )
        target = scenario.targets[1]
        outcome = pipeline.geolocate(
            target.ip, anchors, _tier1_rtts(mesh, row_by_id, target.host_id)
        )
        assert outcome.estimate is not None


class TestOracle:
    def test_picks_geographically_closest(self, street_setup):
        scenario, anchors, mesh, row_by_id, pipeline = street_setup
        target = scenario.targets[0]
        outcome = pipeline.geolocate(
            target.ip, anchors, _tier1_rtts(mesh, row_by_id, target.host_id)
        )
        if not outcome.measurements:
            pytest.skip("no landmarks for this target in the small world")
        oracle = closest_landmark_oracle(outcome.measurements, target.true_location)
        assert oracle is not None
        best = min(
            m.landmark.location.distance_km(target.true_location)
            for m in outcome.measurements
        )
        assert oracle.location.distance_km(target.true_location) == pytest.approx(best)

    def test_empty_measurements(self):
        assert closest_landmark_oracle([], GeoPoint(0, 0)) is None
