"""Executor tests: pool mechanics and campaign determinism.

The contract under test is the one :mod:`repro.exec.pool` documents —
``parallel_map`` returns ``[fn(item) for item in items]`` byte-identically
regardless of worker count — plus the campaign-level consequence: Figure 2
trials and street-level targets produce identical results serial vs
multi-worker, because their randomness is counter-keyed per work item.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exec import chunked, default_chunksize, parallel_map, worker_count
from repro.exec.pool import _fork_context
from repro.experiments import fig2, street_runner
from repro.obs.observer import Observer
from repro.experiments.scenario import get_scenario


def _square(x: int) -> int:
    """Module-level worker (picklable by reference)."""
    return x * x


class TestWorkerCount:
    def test_unset_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert worker_count() == 1

    @pytest.mark.parametrize("raw", ["", "0", "1", " 1 "])
    def test_serial_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        assert worker_count() == 1

    def test_explicit_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert worker_count() == 4

    def test_auto_uses_cpu_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "auto")
        assert worker_count() == (os.cpu_count() or 1)

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            worker_count()

    @pytest.mark.parametrize("raw", ["-1", "-8", " -2 "])
    def test_negative_raises(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_WORKERS", raw)
        with pytest.raises(ValueError, match="non-negative"):
            worker_count()

    def test_garbage_error_names_the_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2.5")
        with pytest.raises(ValueError, match="2.5"):
            worker_count()


class TestChunked:
    def test_preserves_order_and_content(self):
        assert chunked(list(range(7)), 3) == [[0, 1, 2], [3, 4, 5], [6]]

    def test_exact_division(self):
        assert chunked([1, 2, 3, 4], 2) == [[1, 2], [3, 4]]

    def test_empty(self):
        assert chunked([], 5) == []

    def test_bad_size_raises(self):
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestDefaultChunksize:
    def test_four_chunks_per_worker(self):
        assert default_chunksize(100, 2) == 12

    def test_never_below_one(self):
        assert default_chunksize(3, 8) == 1
        assert default_chunksize(0, 1) == 1


class TestParallelMap:
    def test_serial_is_plain_comprehension(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=1) == [x * x for x in items]

    def test_two_workers_match_serial(self):
        if _fork_context() is None:  # pragma: no cover - non-POSIX
            pytest.skip("fork unavailable")
        items = list(range(37))
        serial = parallel_map(_square, items, workers=1)
        parallel = parallel_map(_square, items, workers=2)
        assert parallel == serial

    def test_empty_items(self):
        assert parallel_map(_square, [], workers=4) == []

    def test_workers_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        items = list(range(9))
        assert parallel_map(_square, items) == [x * x for x in items]


class TestCampaignDeterminism:
    """Serial and multi-worker campaigns must be byte-identical."""

    def test_fig2a_series_identical(self, small_scenario, monkeypatch):
        if _fork_context() is None:  # pragma: no cover - non-POSIX
            pytest.skip("fork unavailable")
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        serial = fig2.run_fig2a(small_scenario, sizes=(10, 50), trials=3)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = fig2.run_fig2a(small_scenario, sizes=(10, 50), trials=3)
        assert serial.series == parallel.series
        assert serial.measured == parallel.measured
        assert serial.table == parallel.table

    def test_street_records_identical(self, small_scenario, monkeypatch):
        if _fork_context() is None:  # pragma: no cover - non-POSIX
            pytest.skip("fork unavailable")
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        street_runner._CACHE.clear()
        serial = street_runner.street_level_records(small_scenario, max_targets=6)
        street_runner._CACHE.clear()
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = street_runner.street_level_records(small_scenario, max_targets=6)
        street_runner._CACHE.clear()

        assert len(serial) == len(parallel) == 6
        for a, b in zip(serial, parallel):
            assert a.target.host_id == b.target.host_id
            np.testing.assert_array_equal(a.street_error_km, b.street_error_km)
            np.testing.assert_array_equal(a.cbg_error_km, b.cbg_error_km)
            np.testing.assert_array_equal(a.oracle_error_km, b.oracle_error_km)
            assert a.landmark_distances_km == b.landmark_distances_km
            assert a.landmark_measured_km == b.landmark_measured_km

    def test_observed_street_campaign_counts_match_serial(self, monkeypatch):
        """Observed campaigns fan out and still produce complete counters.

        A 2-worker request with an enabled observer captures each target's
        metrics worker-side and folds them back into the live observer; the
        counter totals must equal an explicit serial run's.
        """
        obs_serial = Observer()
        scenario_serial = get_scenario("small", obs=obs_serial)
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        street_runner._CACHE.clear()
        street_runner.street_level_records(scenario_serial, max_targets=4)

        obs_parallel = Observer()
        scenario_parallel = get_scenario("small", obs=obs_parallel)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        street_runner._CACHE.clear()
        street_runner.street_level_records(scenario_parallel, max_targets=4)
        street_runner._CACHE.clear()

        serial_counts = obs_serial.metrics.counters()
        parallel_counts = obs_parallel.metrics.counters()
        assert serial_counts == parallel_counts
        assert serial_counts.get("street_level.targets") == 4
