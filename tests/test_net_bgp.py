"""Tests for the BGP prefix table."""

import pytest

from repro.net.addressing import Prefix
from repro.net.bgp import PrefixTable


@pytest.fixture
def table() -> PrefixTable:
    t = PrefixTable()
    t.announce(Prefix.parse("10.0.0.0/16"), 65001)
    t.announce(Prefix.parse("10.0.4.0/24"), 65002)
    t.announce(Prefix.parse("192.168.0.0/24"), 65003)
    return t


class TestPrefixTable:
    def test_longest_prefix_wins(self, table):
        assert table.origin_asn("10.0.4.7") == 65002
        assert table.origin_asn("10.0.5.7") == 65001

    def test_miss_returns_none(self, table):
        assert table.lookup("8.8.8.8") is None
        assert table.origin_asn("8.8.8.8") is None

    def test_covering_prefix(self, table):
        assert str(table.covering_prefix("10.0.4.1")) == "10.0.4.0/24"
        assert str(table.covering_prefix("10.0.9.1")) == "10.0.0.0/16"

    def test_same_bgp_prefix(self, table):
        assert table.same_bgp_prefix("10.0.4.1", "10.0.4.200")
        assert not table.same_bgp_prefix("10.0.4.1", "10.0.5.1")
        assert not table.same_bgp_prefix("8.8.8.8", "8.8.4.4")

    def test_replace_announcement(self, table):
        table.announce(Prefix.parse("10.0.4.0/24"), 65099)
        assert table.origin_asn("10.0.4.7") == 65099
        assert len(table) == 3  # replaced, not added

    def test_invalid_asn_rejected(self, table):
        with pytest.raises(ValueError):
            table.announce(Prefix.parse("10.9.0.0/16"), 0)

    def test_iteration(self, table):
        entries = list(table)
        assert len(entries) == 3
        assert all(asn > 0 for _prefix, asn in entries)

    def test_default_route(self):
        t = PrefixTable()
        t.announce(Prefix(0, 0), 65000)
        assert t.origin_asn("1.2.3.4") == 65000
