"""Run-provenance and span-export tests: manifests, Chrome traces, flames.

Covers the ``repro.obs.rundir`` manifest schema (config digest shared with
the artifact cache, versions, outcome, embedded final report), the
``repro.obs.export`` profile formats, and the ``--run-dir``/``--trace-out``
CLI wiring end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.atlas.clock import SimClock
from repro.cache import config_key
from repro.experiments.run import main as run_main
from repro.obs import Observer
from repro.obs.export import chrome_trace, chrome_trace_json, collapsed_stacks
from repro.obs.rundir import RunManifest, git_revision, package_versions, write_run_dir
from repro.world.config import WorldConfig


def _observed_sample() -> Observer:
    """A small observer with one timed span tree, metrics, and events."""
    observer = Observer()
    clock = SimClock()
    with observer.span("campaign:test", clock=clock):
        observer.count("atlas.api_calls", 3)
        observer.observe("atlas.result_wait_s", 1.5)
        observer.event("cache-hit", t_s=clock.now_s, kind="geocode")
        with observer.span("technique:cbg", clock=clock):
            clock.advance(2.0, "work")
    with observer.span("untimed"):
        pass
    return observer


class TestChromeTrace:
    def test_schema(self):
        document = chrome_trace(_observed_sample())
        assert set(document) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = document["traceEvents"]
        assert [event["name"] for event in events] == [
            "campaign:test",
            "technique:cbg",
            "untimed",
        ]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["cat"] == event["name"].split(":", 1)[0]

    def test_microsecond_timestamps_and_tracks(self):
        events = chrome_trace(_observed_sample())["traceEvents"]
        campaign, cbg, untimed = events
        assert campaign["dur"] == pytest.approx(2_000_000.0)
        assert cbg["dur"] == pytest.approx(2_000_000.0)
        # Each root span tree renders on its own track.
        assert campaign["tid"] == cbg["tid"]
        assert untimed["tid"] != campaign["tid"]
        assert untimed["args"]["untimed"] is True
        assert untimed["dur"] == 0.0

    def test_json_is_canonical_and_parseable(self):
        serialised = chrome_trace_json(_observed_sample())
        parsed = json.loads(serialised)
        assert parsed["otherData"]["clock"] == "simulated"
        assert parsed["otherData"]["spans"] == 3
        # Canonical form: re-serialising with the same options round-trips.
        assert json.dumps(parsed, indent=1, sort_keys=True, default=float) == serialised


class TestCollapsedStacks:
    def test_folded_format_and_self_time(self):
        stacks = collapsed_stacks(_observed_sample())
        lines = stacks.splitlines()
        # The untimed span is skipped; the campaign's 2s belong to the
        # child, so the parent's self time is zero.
        assert lines == [
            "campaign:test 0",
            "campaign:test;technique:cbg 2000000",
        ]

    def test_empty_tracer(self):
        assert collapsed_stacks(Observer()) == ""


class TestRunManifest:
    def test_config_digest_reuses_cache_scheme(self, small_scenario):
        manifest = RunManifest.for_scenario(
            small_scenario,
            preset="small",
            experiments=["fig2a"],
            workers=1,
            cache_dir=None,
            wall_s=1.25,
            outcome="ok",
        )
        assert manifest.config_digest == config_key(WorldConfig.small())
        assert manifest.config_digest == config_key(small_scenario.world.config)
        assert manifest.seed == small_scenario.world.config.seed
        assert manifest.preset == "small"
        assert manifest.experiments == ["fig2a"]
        assert manifest.sim_s >= 0.0

    def test_versions_and_revision(self):
        versions = package_versions()
        assert set(versions) == {"python", "numpy", "repro"}
        assert all(isinstance(value, str) and value for value in versions.values())
        revision = git_revision()
        assert revision is None or (len(revision) == 40 and revision.isalnum())

    def test_write_run_dir_layout(self, small_scenario, tmp_path):
        observer = _observed_sample()
        manifest = RunManifest.for_scenario(
            small_scenario,
            preset="small",
            experiments=["fig2a", "fig2b"],
            workers=2,
            cache_dir="/tmp/cache",
            wall_s=3.5,
            outcome="ok",
        )
        paths = write_run_dir(tmp_path / "run", observer, manifest)
        assert set(paths) == {"manifest", "metrics", "events", "trace", "flame"}
        for path in paths.values():
            assert path.exists()

        document = json.loads(paths["manifest"].read_text())
        assert document["config_digest"] == config_key(WorldConfig.small())
        assert document["workers"] == 2
        assert document["cache_dir"] == "/tmp/cache"
        assert document["outcome"] == "ok"
        assert document["wall_s"] == 3.5
        assert document["report"] == observer.metrics_report()
        assert document["events"]["by_type"] == {"cache-hit": 1}
        assert document["events"]["dropped"] == 0
        assert document["events"]["total"] == 1
        assert document["events"]["stream"] == "events.jsonl"
        assert document["files"]["trace"] == "trace.json"

        metrics = json.loads(paths["metrics"].read_text())
        assert metrics["metrics"]["counters"]["atlas.api_calls"] == 3
        assert len(paths["events"].read_text().splitlines()) == 1
        trace = json.loads(paths["trace"].read_text())
        assert len(trace["traceEvents"]) == 3


class TestCliIntegration:
    def test_run_dir_and_trace_out_flags(self, tmp_path, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        run_dir = tmp_path / "run"
        trace_out = tmp_path / "profile.json"
        exit_code = run_main(
            [
                "fig2a",
                "--preset",
                "small",
                "--trials",
                "1",
                "--run-dir",
                str(run_dir),
                "--trace-out",
                str(trace_out),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "run dir written to" in output
        assert "chrome trace written to" in output

        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["preset"] == "small"
        assert manifest["experiments"] == ["fig2a"]
        assert manifest["workers"] == 1
        assert manifest["outcome"] == "ok"
        assert manifest["config_digest"] == config_key(WorldConfig.small())
        assert manifest["wall_s"] > 0
        assert manifest["sim_s"] > 0
        assert manifest["report"]["metrics"]["counters"]["credits.spent"] > 0

        trace = json.loads(trace_out.read_text())
        names = [event["name"] for event in trace["traceEvents"]]
        assert "experiment:fig2a" in names
        # The standalone trace export matches the run dir's copy.
        assert trace_out.read_text().strip() == (
            (run_dir / "trace.json").read_text().strip()
        )
        assert (run_dir / "events.jsonl").read_text().count('"type"') >= 1
