"""Additional coverage: branch paths not exercised elsewhere."""

import numpy as np
import pytest


class TestPlatformValidation:
    def test_ping_matrix_rejects_unknown_probe(self, small_platform, small_world):
        from repro.errors import MeasurementError

        with pytest.raises(MeasurementError):
            small_platform.ping_matrix([10**9], [small_world.anchors[0].ip])

    def test_ping_matrix_unknown_target_column_nan(self, small_platform, small_world):
        probe_ids = [p.host_id for p in small_world.probes[:3]]
        matrix = small_platform.ping_matrix(
            probe_ids, [small_world.anchors[0].ip, "203.0.113.50"]
        )
        assert np.isnan(matrix[:, 1]).all()
        assert not np.isnan(matrix[:, 0]).all()


class TestGeodbInstances:
    def test_two_instances_agree(self, small_world):
        """Databases are deterministic snapshots: two builds answer alike."""
        from repro.geodb import build_ipinfo

        a = build_ipinfo(small_world)
        b = build_ipinfo(small_world)
        for anchor in small_world.anchors[:10]:
            assert a.lookup(anchor.ip) == b.lookup(anchor.ip)

    def test_providers_disagree_with_each_other(self, small_world):
        from repro.geodb import build_ipinfo, build_maxmind_free

        ipinfo = build_ipinfo(small_world)
        maxmind = build_maxmind_free(small_world)
        differing = sum(
            1
            for anchor in small_world.anchors[:20]
            if ipinfo.lookup(anchor.ip) != maxmind.lookup(anchor.ip)
        )
        assert differing > 10  # independent error draws


class TestRegionEdgeCases:
    def test_all_circles_huge(self):
        from repro.geo.coords import GeoPoint
        from repro.geo.regions import Circle, cbg_region

        region = cbg_region(
            [Circle(GeoPoint(0, 0), 30000.0), Circle(GeoPoint(50, 50), 25000.0)]
        )
        # Nothing constrains: the centroid defaults to a tight circle's center.
        assert region.centroid is not None

    def test_zero_radius_circle(self):
        from repro.geo.coords import GeoPoint
        from repro.geo.regions import Circle, cbg_region

        point = GeoPoint(12.0, 34.0)
        region = cbg_region([Circle(point, 0.0), Circle(point, 100.0)])
        assert region.centroid.distance_km(point) < 1.0

    def test_extent_zero_for_single_point(self):
        from repro.geo.coords import GeoPoint
        from repro.geo.regions import IntersectionRegion

        region = IntersectionRegion(
            circles=[], centroid=GeoPoint(0, 0), feasible_points=[GeoPoint(0, 0)]
        )
        assert region.extent_km() == 0.0


class TestStreetLevelConfigBehaviour:
    def test_fewer_vps_than_requested(self, small_scenario):
        """closest_vp_count larger than the answered VP set must not crash."""
        from repro.core.street_level import StreetLevelConfig, StreetLevelPipeline

        pipeline = StreetLevelPipeline(
            small_scenario.client,
            small_scenario.world,
            StreetLevelConfig(closest_vp_count=10_000),
        )
        anchors = small_scenario.anchor_vp_infos()
        mesh_ids, mesh = small_scenario.mesh()
        row_by_id = {a: r for r, a in enumerate(mesh_ids)}
        target = small_scenario.targets[2]
        column = row_by_id[target.host_id]
        rtts = {
            a: (None if np.isnan(mesh[r, column]) else float(mesh[r, column]))
            for a, r in row_by_id.items()
        }
        outcome = pipeline.geolocate(target.ip, anchors, rtts)
        assert outcome.estimate is not None

    def test_tiny_landmark_cap(self, small_scenario):
        from repro.core.street_level import StreetLevelConfig, StreetLevelPipeline

        pipeline = StreetLevelPipeline(
            small_scenario.client,
            small_scenario.world,
            StreetLevelConfig(max_landmarks_per_tier=1),
        )
        anchors = small_scenario.anchor_vp_infos()
        mesh_ids, mesh = small_scenario.mesh()
        row_by_id = {a: r for r, a in enumerate(mesh_ids)}
        target = small_scenario.targets[0]
        column = row_by_id[target.host_id]
        rtts = {
            a: (None if np.isnan(mesh[r, column]) else float(mesh[r, column]))
            for a, r in row_by_id.items()
        }
        outcome = pipeline.geolocate(target.ip, anchors, rtts)
        assert len(outcome.measurements) <= 2  # one per tier at most


class TestHitlistScoreSemantics:
    def test_unresponsive_entries_never_chosen_over_responsive(self):
        from repro.net.hitlist import Hitlist

        hitlist = Hitlist()
        hitlist.add("10.0.0.5", 0)  # listed but unresponsive
        hitlist.add("10.0.0.6", 3)
        reps = hitlist.representatives("10.0.0.99", count=1)
        assert reps == ["10.0.0.6"]


class TestCreditBudgetMidCampaign:
    def test_exhaustion_interrupts_campaign(self, small_platform, small_world):
        from repro.atlas.client import AtlasClient
        from repro.atlas.credits import CreditLedger
        from repro.errors import CreditExhaustedError

        client = AtlasClient(small_platform, ledger=CreditLedger(budget=50))
        probe_ids = [p.host_id for p in small_world.probes[:10]]
        client.ping_from(probe_ids, small_world.anchors[0].ip)  # 30 credits
        with pytest.raises(CreditExhaustedError):
            client.ping_from(probe_ids, small_world.anchors[1].ip)
        # Only the first batch is recorded.
        assert client.measurements_run == 10
