"""Shared fixtures: a small world/scenario built once per session."""

from __future__ import annotations

import pytest

from repro.atlas.client import AtlasClient
from repro.atlas.platform import AtlasPlatform
from repro.experiments.scenario import Scenario, get_scenario
from repro.world import World, WorldConfig, build_world


@pytest.fixture(scope="session")
def small_config() -> WorldConfig:
    """The small world configuration used across the suite."""
    return WorldConfig.small()


@pytest.fixture(scope="session")
def small_world(small_config: WorldConfig) -> World:
    """A small world, built once."""
    return build_world(small_config)


@pytest.fixture(scope="session")
def small_platform(small_world: World) -> AtlasPlatform:
    """A platform over the small world."""
    return AtlasPlatform(small_world)


@pytest.fixture(scope="session")
def small_client(small_platform: AtlasPlatform) -> AtlasClient:
    """A client with a fresh ledger over the shared platform."""
    return AtlasClient(small_platform)


@pytest.fixture(scope="session")
def small_scenario() -> Scenario:
    """The sanitized small scenario (cached by the experiments layer)."""
    return get_scenario("small")


@pytest.fixture(scope="session")
def selfcheck_report():
    """One differential self-check run over the quick preset.

    Session-scoped because the harness builds (and caches twice) a quick
    scenario; tests assert on the report rather than re-running pairs.
    """
    from repro.check.diff import run_selfcheck

    return run_selfcheck(preset="quick", trials=2)
