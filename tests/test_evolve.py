"""Churn determinism: golden event streams, digests, and churn properties.

Two halves, mirroring the determinism story of every other subsystem:

* **goldens** — for the quick world at its default seed and one fixed
  :class:`~repro.evolve.EvolutionConfig`, the event-stream digest and
  every per-revision world digest are pinned byte-for-byte. Any change
  to event generation, ordering, relocation draws, or the digest itself
  shows up here first.
* **properties** — over ten fuzzed base worlds: migration never creates
  or destroys hosts, no host is ever in two cities, disconnected probes
  never answer measurements, and replaying events ``1..k`` by hand
  reproduces snapshot ``k`` bitwise (timelines are pure replay, not
  hidden state).

Plus the arena compatibility check: an evolved snapshot publishes
through :class:`~repro.world.arrays.WorldArrays` exactly like the base
world does — churn only rewrites host state, never the array contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.evolve import (
    EVENT_HOST_MIGRATE,
    EVENT_PREFIX_REASSIGN,
    EVENT_PROBE_SESSION,
    EvolutionConfig,
    EvolutionTimeline,
    anchor_prefixes,
    apply_events,
    event_stream_digest,
    prefix_base,
)
from repro.world import WorldConfig, build_world
from repro.world.hosts import HostKind
from repro.world.snapshot import clone_world_with_hosts, world_digest

# Elevated churn shares: mini worlds have ~20 anchor prefixes, so the
# Gouel 5% default would often churn nothing and the properties would
# pass vacuously.
_CHURN = EvolutionConfig(
    revisions=3,
    prefix_move_share=0.25,
    migration_share=0.05,
    probe_session_share=0.10,
)

# Pinned for WorldConfig.quick() (seed 11) under _CHURN. Recompute only
# when the evolution model itself changes, and say so in the commit.
_GOLDEN_STREAM_DIGEST = (
    "4275ea02f63f24933577791a5752f5ed4bcbfdf635f37985b60dd008369c5e9d"
)
_GOLDEN_WORLD_DIGESTS = {
    0: "00dd63ab1e3a9efa9b542e6866fc3f52af454d464a78e1f27b099c21adb97b36",
    1: "0138451ae9062c1373099df2ffd146cd273da52cb373c97ea3343c0fe48edb6e",
    2: "bb39ea11f9c4e59a4ef0e361304fd30a7b7d278e0a041e256dd6e9689986bbd6",
    3: "a284fce877c494f0fa55d13e80d14f93102814aadd073db9f531eed188601319",
}


@pytest.fixture(scope="module")
def quick_timeline():
    return EvolutionTimeline(build_world(WorldConfig.quick()), _CHURN)


def _fuzz_timeline(index: int) -> EvolutionTimeline:
    world = build_world(WorldConfig.quick(seed=1000 + index))
    return EvolutionTimeline(world, _CHURN)


class TestGoldens:
    def test_event_stream_digest_is_pinned(self, quick_timeline):
        assert quick_timeline.event_stream_digest(3) == _GOLDEN_STREAM_DIGEST

    def test_world_digests_are_pinned(self, quick_timeline):
        for revision, expected in _GOLDEN_WORLD_DIGESTS.items():
            assert quick_timeline.snapshot(revision).digest == expected

    def test_fresh_timeline_replays_identically(self, quick_timeline):
        other = EvolutionTimeline(build_world(WorldConfig.quick()), _CHURN)
        assert other.event_stream(3) == quick_timeline.event_stream(3)
        for revision in range(4):
            assert (
                other.snapshot(revision).digest
                == quick_timeline.snapshot(revision).digest
            )

    def test_stream_digest_is_order_and_content_sensitive(self, quick_timeline):
        events = quick_timeline.event_stream(3)
        assert event_stream_digest(events) == _GOLDEN_STREAM_DIGEST
        reversed_digest = event_stream_digest(tuple(reversed(events)))
        assert reversed_digest != _GOLDEN_STREAM_DIGEST
        assert event_stream_digest(events[:-1]) != _GOLDEN_STREAM_DIGEST


class TestEventModel:
    def test_events_follow_canonical_order(self, quick_timeline):
        rank = {
            EVENT_PREFIX_REASSIGN: 0,
            EVENT_HOST_MIGRATE: 1,
            EVENT_PROBE_SESSION: 2,
        }
        for revision in range(1, 4):
            kinds = [rank[e.kind] for e in quick_timeline.snapshot(revision).events]
            assert kinds == sorted(kinds)

    def test_prefix_moves_target_anchor_prefixes(self, quick_timeline):
        known = set(anchor_prefixes(quick_timeline.base_world))
        for revision in range(1, 4):
            for event in quick_timeline.snapshot(revision).events:
                if event.kind == EVENT_PREFIX_REASSIGN:
                    assert event.prefix in known

    def test_reassignment_never_keeps_the_city(self, quick_timeline):
        for revision in range(1, 4):
            previous = quick_timeline.snapshot(revision - 1).world
            for event in quick_timeline.snapshot(revision).events:
                if event.kind != EVENT_PREFIX_REASSIGN:
                    continue
                old_cities = {
                    h.city_id
                    for h in previous.hosts[: previous.static_host_count]
                    if prefix_base(h.ip) == event.prefix
                    and h.kind is HostKind.ANCHOR
                }
                assert event.city_id not in old_cities

    def test_out_of_range_revision_raises(self, quick_timeline):
        with pytest.raises(ConfigurationError):
            quick_timeline.snapshot(4)
        with pytest.raises(ConfigurationError):
            quick_timeline.snapshot(-1)

    def test_invalid_config_raises(self):
        with pytest.raises(ConfigurationError):
            EvolutionConfig(revisions=-1)
        with pytest.raises(ConfigurationError):
            EvolutionConfig(prefix_move_share=1.5)


class TestChurnProperties:
    @pytest.mark.parametrize("index", range(10))
    def test_host_population_is_invariant(self, index):
        timeline = _fuzz_timeline(index)
        base = timeline.base_world
        base_ids = sorted(h.host_id for h in base.hosts)
        base_ips = sorted(h.ip for h in base.hosts)
        for revision in range(_CHURN.revisions + 1):
            world = timeline.snapshot(revision).world
            assert sorted(h.host_id for h in world.hosts) == base_ids
            assert sorted(h.ip for h in world.hosts) == base_ips

    @pytest.mark.parametrize("index", range(10))
    def test_no_host_in_two_cities(self, index):
        timeline = _fuzz_timeline(index)
        for revision in range(_CHURN.revisions + 1):
            world = timeline.snapshot(revision).world
            ids = [h.host_id for h in world.hosts]
            assert len(ids) == len(set(ids))
            for host in world.hosts[: world.static_host_count]:
                assert world.host_city_ids[host.host_id] == host.city_id
                city = world.cities[host.city_id]
                assert abs(host.true_location.lat - city.location.lat) < 90.0

    @pytest.mark.parametrize("index", range(10))
    def test_replaying_events_reproduces_snapshots_bitwise(self, index):
        timeline = _fuzz_timeline(index)
        hosts = list(timeline.base_world.hosts)
        for revision in range(1, _CHURN.revisions + 1):
            events = timeline.snapshot(revision).events
            hosts = apply_events_world(timeline.base_world, hosts, events)
            replayed = clone_world_with_hosts(timeline.base_world, hosts)
            assert world_digest(replayed) == timeline.snapshot(revision).digest

    @pytest.mark.parametrize("index", range(3))
    def test_disconnected_probes_never_answer(self, index):
        timeline = _fuzz_timeline(index)
        for revision in range(1, _CHURN.revisions + 1):
            world = timeline.snapshot(revision).world
            connected = set(timeline.connected_probe_ids(revision))
            dark = [
                h.host_id
                for h in world.hosts[: world.static_host_count]
                if h.kind is HostKind.PROBE and h.host_id not in connected
            ]
            if not dark:
                continue
            platform = timeline.platform(revision)
            targets = [
                h.ip
                for h in world.hosts[: world.static_host_count]
                if h.kind is HostKind.ANCHOR and h.responsive
            ][:3]
            matrix = platform.ping_matrix(
                np.asarray(dark, dtype=np.int64), targets, seq=0
            )
            assert np.isnan(matrix).all()
            return
        pytest.skip("no probe disconnected in three revisions of this world")

    def test_session_events_toggle_responsiveness(self, quick_timeline):
        toggled = [
            e
            for k in range(1, 4)
            for e in quick_timeline.snapshot(k).events
            if e.kind == EVENT_PROBE_SESSION
        ]
        assert toggled, "churn config produced no session events"
        for event in toggled:
            world = quick_timeline.snapshot(event.revision).world
            assert bool(world.host_responsive[event.host_id]) == event.connected


def apply_events_world(base_world, hosts, events):
    """Replay helper: apply one revision's events to a host list."""
    view = clone_world_with_hosts(base_world, hosts)
    return apply_events(view, events)


class TestArenaCompatibility:
    def test_evolved_snapshot_reshapes_into_world_arrays(self, quick_timeline):
        from repro.topology import Topology
        from repro.world.arrays import WorldArrays, arena_supported

        world = quick_timeline.snapshot(2).world
        arrays = WorldArrays.from_topology(Topology(world))
        assert arrays.static_host_count == world.static_host_count
        assert np.array_equal(arrays.host_true_lats, world.host_true_lats)
        assert np.array_equal(arrays.host_responsive, world.host_responsive)
        if not arena_supported():
            pytest.skip("platform has no shared memory")
        with arrays.share() as arena:
            attached, attached_arena = WorldArrays.attach(arena.token)
            try:
                assert np.array_equal(
                    attached.host_true_lats, world.host_true_lats
                )
            finally:
                attached_arena.close()
