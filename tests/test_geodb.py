"""Tests for the simulated geolocation databases."""

import numpy as np
import pytest

from repro.geodb import build_ipinfo, build_maxmind_free


class TestDatabases:
    def test_lookup_deterministic(self, small_world):
        db = build_maxmind_free(small_world)
        ip = small_world.anchors[0].ip
        assert db.lookup(ip) == db.lookup(ip)

    def test_same_prefix_same_answer(self, small_world):
        db = build_ipinfo(small_world)
        anchor = small_world.anchors[0]
        sibling = next(
            h
            for h in small_world.hosts
            if h is not anchor and h.ip.rsplit(".", 1)[0] == anchor.ip.rsplit(".", 1)[0]
        )
        assert db.lookup(anchor.ip) == db.lookup(sibling.ip)

    def test_unknown_prefix_none(self, small_world):
        db = build_ipinfo(small_world)
        assert db.lookup("203.0.113.1") is None

    def test_ipinfo_better_than_maxmind(self, small_scenario):
        """The Figure 7 ordering must hold on the scenario targets."""
        world = small_scenario.world
        ipinfo = build_ipinfo(world)
        maxmind = build_maxmind_free(world)

        def city_fraction(db):
            hits = 0
            total = 0
            for target in small_scenario.targets:
                location = db.lookup(target.ip)
                total += 1
                if location is not None and location.distance_km(target.true_location) <= 40.0:
                    hits += 1
            return hits / total

        assert city_fraction(ipinfo) > city_fraction(maxmind)
        assert city_fraction(ipinfo) > 0.8
        assert city_fraction(maxmind) < 0.75

    def test_coverage_of(self, small_scenario):
        db = build_maxmind_free(small_scenario.world)
        coverage = db.coverage_of(small_scenario.target_ips)
        assert 0.9 <= coverage <= 1.0
        assert db.coverage_of([]) == 0.0

    def test_names(self, small_world):
        assert build_ipinfo(small_world).name == "ipinfo"
        assert build_maxmind_free(small_world).name == "maxmind-free"
