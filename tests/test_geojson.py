"""Tests for the GeoJSON export helpers."""

import json
from pathlib import Path

import pytest

from repro.analysis.geojson import (
    collection,
    dataset_features,
    dump,
    region_feature,
    world_features,
)
from repro.geo.coords import GeoPoint
from repro.geo.regions import Circle, cbg_region
from repro.world.hosts import HostKind


class TestWorldFeatures:
    def test_points_for_requested_kinds(self, small_world):
        features = world_features(small_world, kinds=(HostKind.ANCHOR,), max_hosts=10)
        points = [f for f in features if f["geometry"]["type"] == "Point"]
        assert len(points) == 10
        for feature in points:
            assert feature["properties"]["kind"] == "anchor"
            lon, lat = feature["geometry"]["coordinates"]
            assert -180 <= lon < 180 and -90 <= lat <= 90

    def test_displacement_lines_for_mislocated(self, small_world):
        features = world_features(small_world, kinds=(HostKind.PROBE,))
        lines = [f for f in features if f["geometry"]["type"] == "LineString"]
        assert lines  # metadata jitter + planted mislocations exist
        for line in lines:
            assert line["properties"]["displacement_km"] > 0

    def test_no_lines_when_disabled(self, small_world):
        features = world_features(
            small_world, kinds=(HostKind.PROBE,), displacement_lines=False
        )
        assert all(f["geometry"]["type"] == "Point" for f in features)


class TestDatasetFeatures:
    def test_one_point_per_estimate(self, small_scenario):
        from repro.dataset import build_dataset_from_scenario

        dataset = build_dataset_from_scenario(small_scenario, max_targets=5)
        features = dataset_features(dataset)
        assert len(features) >= 5
        preferred = [f for f in features if f["properties"]["preferred"]]
        assert len(preferred) == 5


class TestRegionFeature:
    def test_circles_and_centroid(self):
        region = cbg_region(
            [Circle(GeoPoint(0, 0), 500.0), Circle(GeoPoint(2, 2), 600.0)]
        )
        features = region_feature(region)
        polygons = [f for f in features if f["geometry"]["type"] == "Polygon"]
        points = [f for f in features if f["geometry"]["type"] == "Point"]
        assert len(polygons) == 2
        assert len(points) == 1
        ring = polygons[0]["geometry"]["coordinates"][0]
        assert ring[0] == ring[-1]  # closed ring

    def test_circle_cap(self):
        circles = [Circle(GeoPoint(i * 0.01, 0), 1000.0 + i) for i in range(30)]
        region = cbg_region(circles)
        features = region_feature(region, max_circles=5)
        polygons = [f for f in features if f["geometry"]["type"] == "Polygon"]
        assert len(polygons) <= 5


class TestSerialisation:
    def test_collection_shape(self):
        fc = collection([])
        assert fc == {"type": "FeatureCollection", "features": []}

    def test_dump_valid_json(self, small_world, tmp_path):
        path = tmp_path / "world.geojson"
        dump(world_features(small_world, max_hosts=5), path)
        loaded = json.loads(path.read_text())
        assert loaded["type"] == "FeatureCollection"
        assert loaded["features"]


class TestEdgeCases:
    def test_no_kinds_yields_no_features(self, small_world):
        assert world_features(small_world, kinds=()) == []

    def test_max_hosts_zero(self, small_world):
        assert world_features(small_world, kinds=(HostKind.ANCHOR,), max_hosts=0) == []

    def test_unlisted_kind_gets_fallback_colour(self, small_world):
        features = world_features(
            small_world, kinds=(HostKind.WEBSERVER,), max_hosts=3
        )
        for feature in features:
            if feature["geometry"]["type"] == "Point":
                assert feature["properties"]["marker-color"].startswith("#")

    def test_region_max_circles_zero_keeps_centroid(self):
        region = cbg_region([Circle(GeoPoint(0, 0), 500.0)])
        features = region_feature(region, max_circles=0)
        assert len(features) == 1
        assert features[0]["properties"]["role"] == "cbg-centroid"

    def test_dump_accepts_str_path(self, tmp_path):
        path = str(tmp_path / "empty.geojson")
        dump([], path)
        assert json.loads(Path(path).read_text()) == {
            "type": "FeatureCollection",
            "features": [],
        }

    def test_dataset_features_skip_missing_estimates(self, small_scenario):
        from repro.dataset import build_dataset_from_scenario

        dataset = build_dataset_from_scenario(small_scenario, max_targets=3)
        features = dataset_features(dataset)
        # Every feature corresponds to a concrete (lat, lon) estimate.
        for feature in features:
            lon, lat = feature["geometry"]["coordinates"]
            assert -180 <= lon < 180 and -90 <= lat <= 90
