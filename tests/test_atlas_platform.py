"""Tests for the platform and client measurement APIs."""

import numpy as np
import pytest

from repro.atlas.client import AtlasClient
from repro.atlas.clock import SimClock
from repro.atlas.credits import CreditLedger
from repro.errors import MeasurementError


class TestProbeMetadata:
    def test_metadata_shows_recorded_location(self, small_world, small_platform):
        """The platform must never leak true positions of mislocated hosts."""
        for host in small_world.probes:
            if host.mislocated:
                info = small_platform.probe_info(host.host_id)
                assert info.location == host.recorded_location
                assert info.location.distance_km(host.true_location) > 1000.0

    def test_anchor_flag(self, small_world, small_platform):
        anchor_ids = {a.host_id for a in small_world.anchors}
        for info in small_platform.probe_infos():
            assert info.is_anchor == (info.probe_id in anchor_ids)

    def test_probing_rates_match_paper_ranges(self, small_platform):
        for info in small_platform.probe_infos():
            if info.is_anchor:
                assert 200.0 <= info.probing_rate_pps <= 400.0
            else:
                assert 4.0 <= info.probing_rate_pps <= 12.0

    def test_unknown_probe_rejected(self, small_platform):
        with pytest.raises(MeasurementError):
            small_platform.probe_info(10**9)

    def test_anchors_only_filter(self, small_platform):
        anchors = small_platform.probe_infos(anchors_only=True)
        assert anchors
        assert all(info.is_anchor for info in anchors)


class TestPingApi:
    def test_ping_returns_per_probe(self, small_world, small_platform):
        probe_ids = [p.host_id for p in small_world.probes[:5]]
        target = small_world.anchors[0]
        results = small_platform.ping(probe_ids, target.ip)
        assert set(results) == set(probe_ids)
        assert all(r is None or r > 0 for r in results.values())

    def test_unknown_target_times_out_but_charges(self, small_world, small_platform):
        ledger = CreditLedger()
        probe_ids = [small_world.probes[0].host_id]
        results = small_platform.ping(probe_ids, "203.0.113.99", ledger=ledger)
        assert results[probe_ids[0]] is None
        assert ledger.spent > 0

    def test_matrix_matches_single_pings(self, small_world, small_platform):
        probe_ids = [p.host_id for p in small_world.probes[:30]]
        targets = [a.ip for a in small_world.anchors[:3]]
        matrix = small_platform.ping_matrix(probe_ids, targets, seq=5)
        singles = small_platform.ping(probe_ids, targets[1], seq=5)
        for row, probe_id in enumerate(probe_ids):
            expected = singles[probe_id]
            if expected is None:
                assert np.isnan(matrix[row, 1])
            else:
                assert matrix[row, 1] == pytest.approx(expected)

    def test_credits_proportional(self, small_world, small_platform):
        ledger = CreditLedger()
        probe_ids = [p.host_id for p in small_world.probes[:10]]
        small_platform.ping_matrix(
            probe_ids, [small_world.anchors[0].ip], packets=3, ledger=ledger
        )
        assert ledger.spent == 10 * 3
        assert ledger.measurement_count("ping") == 10

    def test_clock_advances_per_batch(self, small_world, small_platform):
        clock = SimClock()
        probe_ids = [p.host_id for p in small_world.probes[:10]]
        small_platform.ping(probe_ids, small_world.anchors[0].ip, clock=clock)
        first = clock.now_s
        from repro.atlas.platform import API_OVERHEAD_S, RESULT_LATENCY_RANGE_S

        assert RESULT_LATENCY_RANGE_S[0] <= first <= API_OVERHEAD_S + RESULT_LATENCY_RANGE_S[1]
        small_platform.ping(probe_ids, small_world.anchors[1].ip, clock=clock)
        assert clock.now_s > first


class TestTraceroute:
    def test_single(self, small_world, small_platform):
        probe = small_world.probes[0]
        anchor = small_world.anchors[0]
        trace = small_platform.traceroute(probe.host_id, anchor.ip)
        assert trace is not None and trace.reached

    def test_unknown_target_none(self, small_world, small_platform):
        assert small_platform.traceroute(small_world.probes[0].host_id, "203.0.113.9") is None

    def test_batch_structure_and_cost(self, small_world, small_platform):
        ledger = CreditLedger()
        probe_ids = [p.host_id for p in small_world.probes[:3]]
        targets = [a.ip for a in small_world.anchors[:4]]
        batch = small_platform.traceroute_batch(probe_ids, targets, ledger=ledger)
        assert set(batch) == set(targets)
        for per_probe in batch.values():
            assert set(per_probe) == set(probe_ids)
        assert ledger.measurement_count("traceroute") == 12

    def test_batch_waves_bound_time(self, small_world, small_platform):
        clock = SimClock()
        probe_ids = [p.host_id for p in small_world.probes[:2]]
        targets = [a.ip for a in small_world.anchors[:5]]
        small_platform.traceroute_batch(probe_ids, targets, clock=clock)
        # 5 specs fit one concurrency wave: a single result wait.
        from repro.atlas.platform import API_OVERHEAD_S, RESULT_LATENCY_RANGE_S

        assert clock.now_s <= API_OVERHEAD_S + RESULT_LATENCY_RANGE_S[1]


class TestAnchorMesh:
    def test_shape_and_diagonal(self, small_world, small_platform):
        ids, mesh = small_platform.anchor_mesh()
        assert mesh.shape == (len(ids), len(ids))
        assert np.isnan(np.diag(mesh)).all()

    def test_cached_copy_isolated(self, small_platform):
        _ids, mesh_a = small_platform.anchor_mesh()
        mesh_a[0, 1] = -1.0
        _ids, mesh_b = small_platform.anchor_mesh()
        assert mesh_b[0, 1] != -1.0


class TestClient:
    def test_accounting_properties(self, small_world, small_platform):
        client = AtlasClient(small_platform)
        client.ping_from(
            [small_world.probes[0].host_id], small_world.anchors[0].ip
        )
        assert client.credits_spent == 3
        assert client.measurements_run == 1

    def test_with_clock_shares_ledger(self, small_world, small_platform):
        client = AtlasClient(small_platform)
        sibling = client.with_clock(SimClock())
        sibling.ping_from([small_world.probes[0].host_id], small_world.anchors[0].ip)
        assert client.credits_spent == 3
        assert sibling.clock.now_s > 0
        assert client.clock.now_s == 0
