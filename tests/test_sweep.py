"""Tests for the seed-robustness sweep utility."""

import math

import pytest

from repro.experiments.sweep import SweepStat, SweepSummary, seed_sweep


class TestSweepStat:
    def test_mean_and_spread(self):
        stat = SweepStat("x", [1.0, 2.0, 3.0])
        assert stat.mean == 2.0
        assert stat.spread == 2.0
        assert stat.relative_spread == 1.0

    def test_nan_values_skipped(self):
        stat = SweepStat("x", [1.0, math.nan, 3.0])
        assert stat.mean == 2.0

    def test_zero_mean_relative_nan(self):
        stat = SweepStat("x", [-1.0, 1.0])
        assert math.isnan(stat.relative_spread)


class TestSweepSummary:
    def test_robust_api(self):
        summary = SweepSummary("exp", [1, 2])
        summary.stats["a"] = SweepStat("a", [10.0, 11.0])
        assert summary.robust("a", max_relative_spread=0.2)
        assert not summary.robust("a", max_relative_spread=0.01)
        with pytest.raises(KeyError):
            summary.robust("missing")

    def test_render(self):
        summary = SweepSummary("exp", [1])
        summary.stats["a"] = SweepStat("a", [1.0], paper=2.0)
        text = summary.render()
        assert "exp" in text and "rel spread" in text


class TestSeedSweep:
    def test_sweep_over_two_seeds(self):
        """A fast sweep using table2 (cheap, no matrices)."""
        from repro.experiments.tables import run_table2

        summary = seed_sweep(run_table2, preset="small", seeds=(7, 8))
        assert summary.experiment_id == "table2"
        assert summary.seeds == [7, 8]
        access = summary.stats["combined_access_share"]
        assert len(access.values) == 2
        assert all(0.4 < v < 0.95 for v in access.values)
        # Paper value carried through from the experiment's expected dict.
        assert access.paper == pytest.approx(0.724)

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            seed_sweep(lambda s: None, preset="galaxy")

    def test_empty_sweep_grid(self):
        """Zero seeds is a legal (vacuous) sweep, not a crash."""
        summary = seed_sweep(lambda s: None, preset="small", seeds=())
        assert summary.seeds == []
        assert summary.stats == {}
        assert summary.experiment_id == "?"
        assert isinstance(summary.render(), str)

    def test_empty_sweep_still_rejects_unknown_preset(self):
        with pytest.raises(ValueError):
            seed_sweep(lambda s: None, preset="galaxy", seeds=())

    def test_single_point_sweep(self):
        """One seed: spread collapses to zero, relative spread to zero."""
        from repro.experiments.tables import run_table2

        summary = seed_sweep(run_table2, preset="quick", seeds=(11,))
        assert summary.seeds == [11]
        access = summary.stats["combined_access_share"]
        assert len(access.values) == 1
        assert access.spread == 0.0
        assert access.relative_spread == 0.0
        assert summary.robust("combined_access_share", max_relative_spread=0.0)
