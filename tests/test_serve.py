"""Serving engine tests: parity, admission control, coalescing, determinism.

The central promise (``docs/SERVING.md``) is that serving is a *view* of
the reproduction, not a second implementation: every answer the resident
engine returns is bitwise identical to the one-shot batch campaign, no
matter how requests are ordered, interleaved across tenants, or coalesced
into batches. The parity classes pin that over fuzzed mini-worlds; the
admission classes pin the typed-refusal contract (budget, rate, shedding,
unknown inputs) and the ``credits.conservation`` invariant across
interleaved tenants; the determinism class pins the event stream — byte
identical run to run, and identical whether the scenario underneath was
measured serially or with ``REPRO_WORKERS=2``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import rand
from repro.check.fuzz import fuzz_config
from repro.check.invariants import InvariantChecker
from repro.core import cbg_batch
from repro.errors import ConfigurationError
from repro.experiments.scenario import Scenario, config_for_preset
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observer
from repro.obs import events as _ev
from repro.serve import (
    REJECT_OVER_BUDGET,
    REJECT_OVER_RATE,
    REJECT_SHED,
    REJECT_UNKNOWN_TARGET,
    REJECT_UNKNOWN_TENANT,
    REJECTIONS,
    STATUS_NO_ESTIMATE,
    STATUS_OK,
    QueryState,
    ServeEngine,
    TenantConfig,
)

#: Fuzzed mini-worlds the serve-vs-batch parity sweep covers.
FUZZ_WORLDS = 10


@pytest.fixture(scope="module")
def quick_scenario():
    return Scenario.build(config_for_preset("quick"))


@pytest.fixture(scope="module")
def quick_state(quick_scenario):
    return quick_scenario.query_state()


def _fresh_engine(state, **kwargs):
    engine = ServeEngine(state, **kwargs)
    engine.register_tenant(TenantConfig(name="t"))
    return engine


def _served_arrays(engine, tenant, ips, order):
    """Serve ``ips`` in ``order``; answers scattered back to column order."""
    results = engine.geolocate(tenant, [ips[column] for column in order])
    lats = np.full(len(ips), np.nan)
    lons = np.full(len(ips), np.nan)
    for column, result in zip(order, results):
        assert result.status in (STATUS_OK, STATUS_NO_ESTIMATE)
        if result.status == STATUS_OK:
            lats[column] = result.lat
            lons[column] = result.lon
    return lats, lons


class TestServeVsBatchParity:
    """Served answers == the batch campaign, bitwise."""

    @pytest.mark.parametrize("index", range(FUZZ_WORLDS))
    def test_fuzz_world_parity(self, index):
        scenario = Scenario.build(fuzz_config(index))
        state = scenario.query_state()
        expected_lats, expected_lons = cbg_batch.cbg_centroids_batch(
            state.vp_lats, state.vp_lons, state.rtt_matrix
        )
        # Vary the coalescing width and the request order per world.
        engine = _fresh_engine(state, max_batch=1 + index % 5)
        order = rand.generator(("serve-fuzz", index)).permutation(state.n_targets)
        lats, lons = _served_arrays(engine, "t", state.target_ips, order)
        np.testing.assert_array_equal(lats, expected_lats)
        np.testing.assert_array_equal(lons, expected_lons)

    def test_quick_world_parity_across_batch_sizes(self, quick_state):
        expected = cbg_batch.cbg_centroids_batch(
            quick_state.vp_lats, quick_state.vp_lons, quick_state.rtt_matrix
        )
        order = np.arange(quick_state.n_targets)
        for max_batch in (1, 3, quick_state.n_targets, 4096):
            engine = _fresh_engine(quick_state, max_batch=max_batch)
            lats, lons = _served_arrays(engine, "t", quick_state.target_ips, order)
            np.testing.assert_array_equal(lats, expected[0])
            np.testing.assert_array_equal(lons, expected[1])


class TestPermutationInvariance:
    """Independent tenants get the same answers in any request order."""

    def test_orders_and_interleavings_agree(self, quick_state):
        ips = quick_state.target_ips
        n = quick_state.n_targets
        baseline = None
        for trial in range(3):
            engine = ServeEngine(quick_state, max_batch=4)
            engine.register_tenant(TenantConfig(name="alpha"))
            engine.register_tenant(TenantConfig(name="beta"))
            order = rand.generator(("serve-perm", trial)).permutation(2 * n)
            ids = {}
            for position in order:
                tenant = "alpha" if position < n else "beta"
                column = int(position) % n
                ids[(tenant, column)] = engine.submit(tenant, ips[column])
            engine.drain()
            answers = {
                key: (
                    engine.result(request_id).status,
                    engine.result(request_id).lat,
                    engine.result(request_id).lon,
                )
                for key, request_id in ids.items()
            }
            # Both tenants saw identical answers for identical targets.
            for column in range(n):
                assert answers[("alpha", column)] == answers[("beta", column)]
            if baseline is None:
                baseline = answers
            else:
                assert answers == baseline


class TestCoalescing:
    """Batch-boundary behaviour of the intake queue."""

    def test_batch_of_one(self, quick_state):
        engine = _fresh_engine(quick_state, max_batch=1)
        for ip in quick_state.target_ips[:4]:
            engine.submit("t", ip)
        assert engine.queue_depth == 4
        assert engine.process_one_batch() == 1
        assert engine.queue_depth == 3
        engine.drain()
        assert engine.queue_depth == 0
        assert engine.batches_processed == 4

    def test_batch_equals_queue_depth(self, quick_state):
        n = quick_state.n_targets
        engine = _fresh_engine(quick_state, max_batch=n)
        for ip in quick_state.target_ips:
            engine.submit("t", ip)
        assert engine.process_one_batch() == n
        assert engine.queue_depth == 0
        assert engine.batches_processed == 1

    def test_queue_drained_mid_stream(self, quick_state):
        """A partial batch mid-stream answers what is queued, no more."""
        ips = quick_state.target_ips
        engine = _fresh_engine(quick_state, max_batch=3)
        first = [engine.submit("t", ip) for ip in ips[:2]]
        assert engine.process_one_batch() == 2  # partial: queue < max_batch
        assert all(engine.result(i) is not None for i in first)
        later = [engine.submit("t", ip) for ip in ips[2:6]]
        assert engine.result(later[0]) is None  # still queued
        assert engine.drain() == 4
        assert engine.batches_processed == 3  # 2 + 3 + 1
        assert engine.process_one_batch() == 0  # empty queue is a no-op

    def test_empty_drain(self, quick_state):
        engine = _fresh_engine(quick_state)
        assert engine.drain() == 0
        assert engine.batches_processed == 0


class TestLedgerEdgeCases:
    """Typed budget/rate refusals and conservation across tenants."""

    def test_zero_credit_tenant_rejected_before_kernel_work(self, quick_state):
        obs = Observer()
        engine = ServeEngine(quick_state, obs=obs)
        engine.register_tenant(TenantConfig(name="broke", credit_budget=0))
        request_id = engine.submit("broke", quick_state.target_ips[0])
        result = engine.result(request_id)
        assert result.status == REJECT_OVER_BUDGET
        assert result.rejected
        engine.drain()
        # Refused before any kernel or queue work: no batch ran, no kernel
        # columns were touched, and nothing was charged.
        assert engine.batches_processed == 0
        assert obs.metrics.counter("cbg.fast_calls") == 0
        assert len(obs.events.of_type(_ev.SERVE_BATCH)) == 0
        assert engine.tenant("broke").ledger.spent == 0

    def test_burst_exactly_at_rate_limit_boundary(self, quick_state):
        engine = ServeEngine(quick_state)
        engine.register_tenant(
            TenantConfig(name="bursty", max_requests_per_window=3, window_s=2.0)
        )
        ips = quick_state.target_ips
        # Exactly max_requests admitted; the boundary request is refused.
        admitted = [engine.submit("bursty", ips[i % len(ips)]) for i in range(3)]
        assert all(engine.result(i) is None for i in admitted)  # queued
        refused = engine.submit("bursty", ips[0])
        assert engine.result(refused).status == REJECT_OVER_RATE
        assert "retry in" in engine.result(refused).detail
        # The window slides with the engine clock: after window_s the
        # tenant may burst again.
        engine.clock.advance(2.0, "test")
        again = engine.submit("bursty", ips[0])
        assert engine.result(again) is None
        engine.drain()
        assert engine.result(again).status in (STATUS_OK, STATUS_NO_ESTIMATE)

    def test_conservation_across_interleaved_tenants(self, quick_state):
        obs = Observer()
        checker = InvariantChecker(obs=obs)
        engine = ServeEngine(quick_state, obs=obs, checker=checker)
        engine.register_tenant(TenantConfig(name="a", cost_per_query=2))
        engine.register_tenant(TenantConfig(name="b", credit_budget=7))
        ips = quick_state.target_ips
        for index in range(10):
            engine.submit("a" if index % 2 == 0 else "b", ips[index % len(ips)])
        engine.drain()
        # a: 5 queries x 2 credits; b: capped at 7 -> 5 queries x 1, the
        # budget admits all 5.
        assert engine.tenant("a").ledger.spent == 10
        assert engine.tenant("b").ledger.spent == 5
        assert checker.passes["credits.conservation"] == 10
        assert not checker.violations
        # Per-kind ledger keys separate the tenants in the shared stream.
        assert engine.tenant("a").ledger.counts() == {"serve:a": 5}
        charges = obs.events.of_type(_ev.CREDIT_CHARGE)
        kinds = {dict(event.fields)["kind"] for event in charges}
        assert kinds == {"serve:a", "serve:b"}


class TestShedding:
    """Fault injection sheds requests with a typed reason."""

    def test_shed_requests_are_typed_and_uncharged(self, quick_state):
        plan = FaultPlan(seed=3, api_server_error_rate=0.5)
        engine = ServeEngine(quick_state, faults=FaultInjector(plan))
        engine.register_tenant(TenantConfig(name="t"))
        results = engine.geolocate("t", list(quick_state.target_ips) * 3)
        shed = [r for r in results if r.status == REJECT_SHED]
        served = [r for r in results if not r.rejected]
        assert shed and served  # the draw bands make both near-certain
        assert all(r.detail == "ApiServerError" for r in shed)
        # Shed requests consume neither credits nor answers.
        assert engine.tenant("t").ledger.spent == len(served)

    def test_no_faults_no_shedding(self, quick_state):
        engine = ServeEngine(quick_state, faults=FaultInjector(FaultPlan.none()))
        engine.register_tenant(TenantConfig(name="t"))
        results = engine.geolocate("t", list(quick_state.target_ips))
        assert not any(r.status == REJECT_SHED for r in results)


class TestDegenerateInputs:
    """Malformed queries come back as typed results, not exceptions."""

    def test_empty_target_list(self, quick_state):
        obs = Observer()
        engine = ServeEngine(quick_state, obs=obs)
        engine.register_tenant(TenantConfig(name="t"))
        assert engine.geolocate("t", []) == []
        assert engine.batches_processed == 0
        assert len(obs.events) == 0

    def test_duplicate_targets_in_one_batch(self, quick_state):
        obs = Observer()
        engine = ServeEngine(quick_state, obs=obs, max_batch=8)
        engine.register_tenant(TenantConfig(name="t"))
        ip = quick_state.target_ips[0]
        results = engine.geolocate("t", [ip, ip, ip])
        assert len({(r.status, r.lat, r.lon) for r in results}) == 1
        assert engine.batches_processed == 1
        [batch_event] = obs.events.of_type(_ev.SERVE_BATCH)
        fields = dict(batch_event.fields)
        assert fields["size"] == 3
        assert fields["columns"] == 1  # deduplicated before the kernel
        assert fields["cached"] == 0

    def test_repeat_queries_answered_from_memo(self, quick_state):
        obs = Observer()
        engine = ServeEngine(quick_state, obs=obs, max_batch=4)
        engine.register_tenant(TenantConfig(name="t"))
        ip = quick_state.target_ips[0]
        [first] = engine.geolocate("t", [ip])
        kernel_calls = obs.metrics.counter("cbg.fast_calls")
        [second] = engine.geolocate("t", [ip])
        # Identical answer, zero additional kernel work.
        assert (second.status, second.lat, second.lon) == (
            first.status,
            first.lat,
            first.lon,
        )
        assert obs.metrics.counter("cbg.fast_calls") == kernel_calls
        assert engine.column_cache_hits == 1
        assert obs.metrics.counter("serve.column_cache_hits") == 1

    def test_unknown_target_is_typed(self, quick_state):
        engine = _fresh_engine(quick_state)
        [result] = engine.geolocate("t", ["203.0.113.99"])
        assert result.status == REJECT_UNKNOWN_TARGET
        assert result.lat is None and result.lon is None

    def test_unknown_tenant_is_typed(self, quick_state):
        engine = ServeEngine(quick_state)
        [result] = engine.geolocate("ghost", [quick_state.target_ips[0]])
        assert result.status == REJECT_UNKNOWN_TENANT
        assert REJECT_UNKNOWN_TENANT in REJECTIONS

    def test_mixed_known_and_unknown(self, quick_state):
        engine = _fresh_engine(quick_state)
        results = engine.geolocate(
            "t", [quick_state.target_ips[0], "198.51.100.1", quick_state.target_ips[1]]
        )
        assert [r.rejected for r in results] == [False, True, False]

    def test_bad_configs_raise(self, quick_state):
        with pytest.raises(ConfigurationError):
            TenantConfig(name="")
        with pytest.raises(ConfigurationError):
            TenantConfig(name="x", cost_per_query=-1)
        with pytest.raises(ConfigurationError):
            TenantConfig(name="x", credit_budget=-5)
        with pytest.raises(ConfigurationError):
            ServeEngine(quick_state, max_batch=0)

    def test_query_state_validation(self):
        with pytest.raises(ValueError):
            QueryState(
                vp_lats=np.zeros(2),
                vp_lons=np.zeros(2),
                rtt_matrix=np.zeros(4),
                target_ips=("a", "b"),
            )
        with pytest.raises(ValueError):
            QueryState(
                vp_lats=np.zeros(2),
                vp_lons=np.zeros(2),
                rtt_matrix=np.zeros((2, 3)),
                target_ips=("a", "b"),
            )


def _serve_workload_jsonl(workers, monkeypatch):
    """Build an observed quick scenario and serve an interleaved two-tenant
    workload over it; returns the full event stream as JSONL bytes."""
    if workers is None:
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
    else:
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
    obs = Observer()
    scenario = Scenario.build(config_for_preset("quick"), obs=obs)
    engine = ServeEngine.from_scenario(scenario, max_batch=4)
    engine.register_tenant(TenantConfig(name="alpha", credit_budget=12))
    engine.register_tenant(
        TenantConfig(name="beta", max_requests_per_window=9, window_s=1.0)
    )
    ips = scenario.target_ips
    for index in range(2 * len(ips)):
        engine.submit("alpha" if index % 2 == 0 else "beta", ips[index % len(ips)])
        if index % 7 == 6:
            engine.process_one_batch()
    engine.submit("alpha", "203.0.113.1")
    engine.drain()
    return obs.events.to_jsonl(), obs.metrics_report()


class TestDeterministicObservability:
    """The serve event stream is a pure function of the submission order."""

    def test_serial_equals_parallel_golden_stream(self, monkeypatch):
        serial_events, serial_metrics = _serve_workload_jsonl(None, monkeypatch)
        parallel_events, parallel_metrics = _serve_workload_jsonl(2, monkeypatch)
        rerun_events, _ = _serve_workload_jsonl(None, monkeypatch)
        assert serial_events == rerun_events  # byte-identical run to run
        assert serial_events == parallel_events  # REPRO_WORKERS invisible
        assert serial_metrics == parallel_metrics
        # The serve taxonomy is present and closed: every serve event in
        # the stream is one of the three registered types.
        import json

        serve_types = {
            json.loads(line)["type"]
            for line in serial_events.splitlines()
            if line and json.loads(line)["type"].startswith("serve-")
        }
        assert serve_types == {
            _ev.SERVE_REQUEST,
            _ev.SERVE_REJECT,
            _ev.SERVE_BATCH,
        }

    def test_serve_event_sequence_regression(self, quick_state):
        """Golden sequence for a tiny fixed workload (no file needed)."""
        obs = Observer()
        engine = ServeEngine(quick_state, obs=obs, max_batch=2)
        engine.register_tenant(TenantConfig(name="t", credit_budget=2))
        ips = quick_state.target_ips
        for ip in (ips[0], ips[1], ips[2], "203.0.113.7"):
            engine.submit("t", ip)
        engine.drain()
        etypes = [event.etype for event in obs.events]
        assert etypes == [
            _ev.CREDIT_CHARGE,
            _ev.SERVE_REQUEST,
            _ev.CREDIT_CHARGE,
            _ev.SERVE_REQUEST,
            _ev.SERVE_REJECT,  # third query: budget of 2 exhausted
            _ev.SERVE_REJECT,  # unknown prefix
            _ev.SERVE_BATCH,
        ]
