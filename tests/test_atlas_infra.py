"""Tests for the platform's clock, credits, and rate limiting."""

import pytest

from repro.atlas.clock import SimClock
from repro.atlas.credits import CreditLedger
from repro.atlas.ratelimit import SlidingWindowRateLimiter
from repro.errors import CreditExhaustedError


class TestSimClock:
    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(5.0, "a")
        clock.advance(2.5, "b")
        assert clock.now_s == 7.5

    def test_categories_tracked(self):
        clock = SimClock()
        clock.advance(1.0, "mapping")
        clock.advance(2.0, "mapping")
        clock.advance(3.0, "atlas-api")
        assert clock.spent_in("mapping") == 3.0
        assert clock.breakdown() == {"mapping": 3.0, "atlas-api": 3.0}

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_unknown_category_zero(self):
        assert SimClock().spent_in("nothing") == 0.0


class TestCreditLedger:
    def test_charge_accumulates(self):
        ledger = CreditLedger()
        ledger.charge(10, "ping", count=5)
        ledger.charge(30, "traceroute", count=1)
        assert ledger.spent == 40
        assert ledger.measurement_count() == 6
        assert ledger.measurement_count("ping") == 5
        assert ledger.counts() == {"ping": 5, "traceroute": 1}

    def test_budget_enforced(self):
        ledger = CreditLedger(budget=100)
        ledger.charge(90, "ping")
        with pytest.raises(CreditExhaustedError):
            ledger.charge(20, "ping")
        # Failed charge spends nothing.
        assert ledger.spent == 90
        assert ledger.remaining == 10

    def test_unlimited_budget(self):
        ledger = CreditLedger()
        assert ledger.remaining is None
        ledger.charge(10**9, "ping")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CreditLedger().charge(-1, "ping")


class TestRateLimiter:
    def test_no_wait_below_limit(self):
        clock = SimClock()
        limiter = SlidingWindowRateLimiter(clock, max_requests=8)
        waits = [limiter.acquire() for _ in range(8)]
        assert all(w == 0.0 for w in waits)
        assert clock.now_s == 0.0

    def test_waits_once_window_full(self):
        clock = SimClock()
        limiter = SlidingWindowRateLimiter(clock, max_requests=2, window_s=1.0)
        limiter.acquire()
        limiter.acquire()
        waited = limiter.acquire()
        assert waited == pytest.approx(1.0)
        assert clock.now_s == pytest.approx(1.0)

    def test_sustained_rate(self):
        clock = SimClock()
        limiter = SlidingWindowRateLimiter(clock, max_requests=8, window_s=1.0)
        for _ in range(80):
            limiter.acquire()
        # 80 requests at 8/s take about 9 windows.
        assert clock.now_s == pytest.approx(9.0, abs=1.1)

    def test_invalid_parameters(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            SlidingWindowRateLimiter(clock, max_requests=0)
        with pytest.raises(ValueError):
            SlidingWindowRateLimiter(clock, max_requests=1, window_s=0.0)
