"""Tests for the street level concentric-circle sampling."""

import pytest

from repro.geo.coords import GeoPoint
from repro.geo.regions import Circle, cbg_region
from repro.geo.sampling import circle_points, concentric_circle_points


class TestCirclePoints:
    def test_count_from_alpha(self):
        center = GeoPoint(0, 0)
        assert len(circle_points(center, 10.0, 36.0)) == 10
        assert len(circle_points(center, 10.0, 10.0)) == 36

    def test_points_on_radius(self):
        center = GeoPoint(20, 30)
        for point in circle_points(center, 25.0, 45.0):
            assert center.distance_km(point) == pytest.approx(25.0, rel=1e-6)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            circle_points(GeoPoint(0, 0), 0.0, 36.0)
        with pytest.raises(ValueError):
            circle_points(GeoPoint(0, 0), 10.0, 0.0)


class TestConcentricSampling:
    def test_center_first(self):
        center = GeoPoint(0, 0)
        region = cbg_region([Circle(center, 50.0)])
        points = list(concentric_circle_points(center, region, 5.0, 36.0))
        assert points[0] == center

    def test_stops_outside_region(self):
        center = GeoPoint(0, 0)
        region = cbg_region([Circle(center, 23.0)])
        points = list(concentric_circle_points(center, region, 5.0, 36.0))
        # Circles at 5, 10, 15, 20 km are inside; 25 km is fully outside.
        assert all(center.distance_km(p) <= 23.0 for p in points)
        assert len(points) == 1 + 4 * 10

    def test_tier2_parameters_yield_10_per_circle(self):
        center = GeoPoint(10, 10)
        region = cbg_region([Circle(center, 12.0)])
        points = list(concentric_circle_points(center, region, 5.0, 36.0))
        assert len(points) == 1 + 2 * 10

    def test_max_circles_bounds_walk(self):
        center = GeoPoint(0, 0)
        points = list(
            concentric_circle_points(center, None, 5.0, 36.0, max_circles=3)
        )
        assert len(points) == 1 + 3 * 10

    def test_custom_inside_predicate(self):
        center = GeoPoint(0, 0)
        points = list(
            concentric_circle_points(
                center, None, 5.0, 90.0, max_circles=10, inside=lambda p: p.lat >= 0
            )
        )
        assert all(p.lat >= -1e-9 for p in points)
