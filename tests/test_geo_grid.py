"""Tests for the population-density field."""

import pytest

from repro.geo.coords import GeoPoint, destination
from repro.geo.grid import PopulationCenter, PopulationGrid


class TestPopulationCenter:
    def test_density_decreases_with_distance(self):
        center = PopulationCenter(GeoPoint(0, 0), 1_000_000.0, 10.0)
        assert center.density_at_distance(0.0) > center.density_at_distance(5.0)
        assert center.density_at_distance(5.0) > center.density_at_distance(20.0)

    def test_kernel_integrates_to_population(self):
        # Riemann sum over rings: integral of the Gaussian kernel ~ population.
        import math

        center = PopulationCenter(GeoPoint(0, 0), 500_000.0, 8.0)
        total = 0.0
        step = 0.25
        r = step / 2
        while r < 80.0:
            total += center.density_at_distance(r) * 2 * math.pi * r * step
            r += step
        assert total == pytest.approx(500_000.0, rel=0.01)


class TestPopulationGrid:
    def test_rural_baseline_far_from_cities(self):
        grid = PopulationGrid(
            [PopulationCenter(GeoPoint(0, 0), 1e6, 10.0)], rural_density=2.0
        )
        remote = grid.density_at(GeoPoint(45.0, 90.0))
        assert remote == pytest.approx(2.0)

    def test_city_center_is_dense(self):
        grid = PopulationGrid(
            [PopulationCenter(GeoPoint(0, 0), 1e6, 10.0)], rural_density=2.0
        )
        assert grid.density_at(GeoPoint(0, 0)) > 1000.0

    def test_density_monotone_outward(self):
        center = GeoPoint(10.0, 10.0)
        grid = PopulationGrid([PopulationCenter(center, 1e6, 10.0)])
        densities = [
            grid.density_at(destination(center, 90.0, d)) for d in (0.0, 5.0, 15.0, 30.0)
        ]
        assert densities == sorted(densities, reverse=True)

    def test_negative_rural_density_rejected(self):
        with pytest.raises(ValueError):
            PopulationGrid([], rural_density=-1.0)

    def test_len_counts_centers(self):
        centers = [PopulationCenter(GeoPoint(i, i), 1e5, 5.0) for i in range(4)]
        assert len(PopulationGrid(centers)) == 4

    def test_overlapping_cities_add(self):
        a = PopulationCenter(GeoPoint(0, 0), 1e6, 10.0)
        b = PopulationCenter(GeoPoint(0, 0.1), 1e6, 10.0)
        single = PopulationGrid([a]).density_at(GeoPoint(0, 0.05))
        double = PopulationGrid([a, b]).density_at(GeoPoint(0, 0.05))
        assert double > single * 1.5
