"""Content-addressed snapshot deltas: persistent incremental re-measurement.

A revision's canonical RTT matrix differs from its predecessor's in
exactly the columns whose /24 block moved (:mod:`repro.evolve.measure`),
so persisting the *delta* — the moved column indices plus their fresh
sub-matrix — is enough to reconstruct revision ``k`` from revision
``k-1`` without issuing a single simulated measurement. The
:class:`SnapshotDeltaStore` chains those deltas on top of the scenario's
own cached base matrix:

* **cold** — nothing on disk: each revision is built incrementally
  (measure only the moved columns — ``VPs x moved`` measurements, one
  API call) and its delta is stored (``evolve.delta.incremental``);
* **warm** — deltas on disk: each revision is spliced from the previous
  matrix plus the stored delta — zero measurements, zero API calls
  (``evolve.delta.hit``);
* **corrupted** — a delta file whose bytes no longer match its embedded
  digest is detected by :class:`~repro.cache.artifacts.ArtifactCache`
  (``cache.corrupt``; the file is deleted) and the store falls back to a
  full from-scratch replay of the revision
  (``evolve.delta.full``), then re-stores the delta;
* **foreign** — a structurally valid delta for a *different* timeline
  (the stored snapshot digest disagrees with this timeline's) is
  rebuilt incrementally and overwritten (``evolve.delta.mismatch``).

Keys are content addresses over the world config *and* the evolution
config, salted with :data:`DELTA_VERSION`, so changing any churn rate —
or the delta format itself — changes every path and stale artifacts are
simply never found. Each artifact additionally embeds the target
snapshot's world digest, which ties the delta to the exact host state it
measures: the digest is provenance the cache key cannot fake.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Dict

import numpy as np

from repro.cache.artifacts import (
    ArtifactCache,
    json_payload_array,
    json_payload_object,
)
from repro.evolve.measure import incremental_matrix, revision_matrix
from repro.evolve.timeline import EvolutionTimeline

#: Format-version salt for delta cache keys; bump on layout changes.
DELTA_VERSION = "evolve-deltas-v1"


def delta_key(world_config, evo_config) -> str:
    """Content address of one (world config, evolution config) timeline."""
    payload = json.dumps(
        {"world": asdict(world_config), "evolve": asdict(evo_config)},
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(
        f"{DELTA_VERSION}\n{payload}".encode("utf-8")
    ).hexdigest()


class SnapshotDeltaStore:
    """Chained snapshot deltas over one evolution timeline."""

    def __init__(
        self,
        cache: ArtifactCache,
        timeline: EvolutionTimeline,
        scenario,
        obs=None,
    ) -> None:
        self.cache = cache
        self.timeline = timeline
        self.scenario = scenario
        self.obs = obs if obs is not None else timeline.obs
        self.key = delta_key(scenario.world.config, timeline.config)
        self._matrices: Dict[int, np.ndarray] = {}

    def _name(self, revision: int) -> str:
        return f"evolve-delta-rev{revision}"

    def matrix(self, revision: int) -> np.ndarray:
        """The canonical revision matrix, cheapest available path.

        Revision 0 is the scenario's own (artifact-cached) campaign;
        later revisions replay from stored deltas when possible and
        measure only what they must otherwise (module docstring has the
        full path taxonomy). Memoized per store instance.
        """
        if revision in self._matrices:
            return self._matrices[revision]
        if revision == 0:
            matrix = self.scenario.rtt_matrix()
            self._matrices[0] = matrix
            return matrix
        snapshot = self.timeline.snapshot(revision)
        name = self._name(revision)
        existed = self.cache.path(name, self.key).exists()
        cached = self.cache.load(name, self.key)
        if cached is not None:
            meta = json_payload_object(cached["meta_json"])
            if meta["digest"] == snapshot.digest:
                matrix = np.array(self.matrix(revision - 1), copy=True)
                columns = cached["columns"].astype(np.intp)
                if columns.size:
                    matrix[:, columns] = cached["values"]
                self._count("evolve.delta.hit")
                self._matrices[revision] = matrix
                return matrix
            # A well-formed delta for some other timeline: rebuild and
            # overwrite below.
            self._count("evolve.delta.mismatch")
            cached = None
        if existed and cached is None and not self.cache.path(name, self.key).exists():
            # The file was there but failed its embedded digest — the
            # cache deleted it (cache.corrupt). Trust nothing derived
            # from it: rebuild this revision from scratch.
            matrix = revision_matrix(self.timeline, self.scenario, revision)
            self._count("evolve.delta.full")
        else:
            matrix = incremental_matrix(
                self.matrix(revision - 1), self.timeline, self.scenario, revision
            )
            self._count("evolve.delta.incremental")
        self._store(revision, snapshot.digest, matrix)
        self._matrices[revision] = matrix
        return matrix

    def _store(self, revision: int, digest: str, matrix: np.ndarray) -> None:
        columns = self.timeline.moved_target_columns(
            revision, self.scenario.target_ips
        )
        self.cache.store(
            self._name(revision),
            self.key,
            {
                "columns": columns.astype(np.int64),
                "values": matrix[:, columns],
                "meta_json": json_payload_array(
                    {"revision": revision, "digest": digest}
                ),
            },
        )

    def _count(self, name: str) -> None:
        if self.obs.enabled:
            self.obs.count(name)
