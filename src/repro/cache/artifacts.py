"""Content-addressed on-disk cache for scenario measurement artifacts.

Building a scenario replays the paper's measurement campaigns — the anchor
mesh, the §4.3 sanitization pings, the VP-to-target RTT matrix, and the
/24-representative matrices. All of them are pure functions of the
:class:`~repro.world.config.WorldConfig` (every draw is counter-keyed by
the seed), so their outputs can be written to disk once and replayed
byte-identically forever.

Addressing is by content, not by name: the cache key is the SHA-256 of the
canonical JSON of the full config plus :data:`CACHE_VERSION`, a code-version
salt. Any config change — and any code change that bumps the salt — yields
a different key, so stale artifacts are never *read*; they are simply
orphaned on disk. See DESIGN.md for the salt policy (when a change
requires bumping it).

Storage is one ``.npz`` per artifact with an embedded digest over the
payload arrays; a load that fails to decode or whose digest mismatches is
treated as a miss and the file is removed (a crashed writer cannot poison
later runs — writes are atomic renames anyway).

The cache is off unless ``REPRO_CACHE_DIR`` names a directory (or the CLI
maps ``--cache-dir``/``--no-cache`` onto it). Hits and misses are counted
on the campaign observer as ``cache.hit`` / ``cache.miss`` (plus
``cache.corrupt`` for integrity failures).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.check.invariants import NULL_CHECKER
from repro.obs.observer import NULL_OBSERVER
from repro.world.config import WorldConfig

#: Code-version salt folded into every cache key. Bump whenever measurement
#: semantics change — world generation, latency draws, sanitization, or the
#: campaign code whose outputs are cached — so old artifacts are orphaned
#: instead of replayed (DESIGN.md documents the policy).
CACHE_VERSION = "scenario-artifacts-v1"


def config_key(config: WorldConfig) -> str:
    """The content address of a world configuration.

    Canonical JSON (sorted keys, no whitespace) of every config field,
    salted with :data:`CACHE_VERSION`, hashed with SHA-256.
    """
    payload = json.dumps(
        asdict(config), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(
        f"{CACHE_VERSION}\n{payload}".encode("utf-8")
    ).hexdigest()


def cache_dir_from_env() -> Optional[Path]:
    """The cache root from ``REPRO_CACHE_DIR``, or ``None`` (cache off)."""
    raw = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return Path(raw) if raw else None


def json_payload_array(obj: object) -> np.ndarray:
    """Encode a JSON-serialisable object as a byte array for ``.npz``."""
    data = json.dumps(obj, sort_keys=True).encode("utf-8")
    return np.frombuffer(data, dtype=np.uint8)


def json_payload_object(array: np.ndarray) -> object:
    """Decode an array written by :func:`json_payload_array`."""
    return json.loads(bytes(bytearray(array)).decode("utf-8"))


def _digest(arrays: Dict[str, np.ndarray]) -> str:
    """Integrity digest over the payload arrays (order-independent)."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(array.dtype).encode("ascii"))
        digest.update(repr(array.shape).encode("ascii"))
        digest.update(array.tobytes())
    return digest.hexdigest()


class ArtifactCache:
    """A directory of content-addressed ``.npz`` measurement artifacts.

    Args:
        root: cache directory (created on first store).
        obs: campaign observer for ``cache.hit``/``cache.miss``/
            ``cache.corrupt`` counters.
        checker: optional :class:`~repro.check.InvariantChecker`. When
            armed, every digest comparison is accounted under the
            ``cache.digest`` invariant: matching loads count as passes, a
            mismatch is a violation (instead of the silent delete-and-
            recompute recovery), and every store re-reads its own file to
            verify the written payload round-trips.
    """

    def __init__(self, root: Path, obs=NULL_OBSERVER, checker=NULL_CHECKER) -> None:
        self.root = Path(root)
        self.obs = obs
        self.checker = checker

    def path(self, name: str, key: str) -> Path:
        """Where the artifact ``name`` for cache key ``key`` lives."""
        return self.root / f"{name}-{key[:24]}.npz"

    def load(self, name: str, key: str) -> Optional[Dict[str, np.ndarray]]:
        """The artifact's arrays, or ``None`` on miss/corruption.

        A file that cannot be decoded, lacks the digest, or whose digest
        does not match its payload is deleted and reported as a miss.
        """
        path = self.path(name, key)
        if not path.exists():
            self.obs.count("cache.miss")
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {
                    member: data[member]
                    for member in data.files
                    if member != "__digest__"
                }
                stored = bytes(bytearray(data["__digest__"])).decode("ascii")
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            return self._corrupt(path)
        if _digest(arrays) != stored:
            if self.checker.enabled:
                self.checker.check_cache_digest(False, name, f"load {path.name}")
            return self._corrupt(path)
        if self.checker.enabled:
            self.checker.check_cache_digest(True, name, f"load {path.name}")
        self.obs.count("cache.hit")
        return arrays

    def _corrupt(self, path: Path) -> None:
        self.obs.count("cache.corrupt")
        self.obs.count("cache.miss")
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing writers
            pass
        return None

    def store(self, name: str, key: str, arrays: Dict[str, np.ndarray]) -> None:
        """Write an artifact atomically (tmp file + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {member: np.asarray(array) for member, array in arrays.items()}
        digest = _digest(payload)
        payload["__digest__"] = np.frombuffer(
            digest.encode("ascii"), dtype=np.uint8
        )
        path = self.path(name, key)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.root, prefix=f".{name}-", suffix=".npz.tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                np.savez(handle, **payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if self.checker.enabled:
            # Store roundtrip: re-read the just-written file and verify the
            # payload digests to what we computed before writing — catches
            # writer/serialisation drift at the moment it happens.
            try:
                with np.load(path, allow_pickle=False) as data:
                    written = {
                        member: data[member]
                        for member in data.files
                        if member != "__digest__"
                    }
                ok = _digest(written) == digest
            except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
                ok = False
            self.checker.check_cache_digest(ok, name, f"store {path.name}")


def cache_from_env(obs=NULL_OBSERVER, checker=NULL_CHECKER) -> Optional[ArtifactCache]:
    """An :class:`ArtifactCache` rooted at ``REPRO_CACHE_DIR``, if set."""
    root = cache_dir_from_env()
    if root is None:
        return None
    return ArtifactCache(root, obs=obs, checker=checker)
