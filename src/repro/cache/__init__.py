"""Persistent scenario artifact cache (see :mod:`repro.cache.artifacts`)
and content-addressed snapshot deltas (:mod:`repro.cache.deltas`)."""

from repro.cache.artifacts import (
    CACHE_VERSION,
    ArtifactCache,
    cache_dir_from_env,
    cache_from_env,
    config_key,
)

__all__ = [
    "CACHE_VERSION",
    "ArtifactCache",
    "cache_dir_from_env",
    "cache_from_env",
    "config_key",
]
