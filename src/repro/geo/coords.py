"""Geographic coordinates and great-circle math on a spherical Earth."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.constants import EARTH_RADIUS_KM


@dataclass(frozen=True, order=True)
class GeoPoint:
    """A point on the Earth's surface.

    Attributes:
        lat: latitude in degrees, in ``[-90, 90]``.
        lon: longitude in degrees, in ``[-180, 180)``.
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon < 180.0001:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to another point, in kilometres."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)

    def as_radians(self) -> Tuple[float, float]:
        """Return ``(lat, lon)`` in radians."""
        return math.radians(self.lat), math.radians(self.lon)


def normalize_lon(lon: float) -> float:
    """Wrap a longitude into ``[-180, 180)``."""
    wrapped = (lon + 180.0) % 360.0 - 180.0
    return wrapped


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) pairs, in kilometres.

    Uses the haversine formula, which is numerically stable for small
    distances (unlike the spherical law of cosines).
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def bulk_haversine_km(
    lats1: np.ndarray, lons1: np.ndarray, lat2: float, lon2: float
) -> np.ndarray:
    """Vectorised haversine from many points to one point, in kilometres.

    Args:
        lats1: array of latitudes in degrees.
        lons1: array of longitudes in degrees, aligned with ``lats1``.
        lat2: destination latitude in degrees.
        lon2: destination longitude in degrees.

    Returns:
        Array of distances, same shape as ``lats1``.
    """
    phi1 = np.radians(np.asarray(lats1, dtype=np.float64))
    phi2 = math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = np.radians(lon2 - np.asarray(lons1, dtype=np.float64))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * math.cos(phi2) * np.sin(dlambda / 2.0) ** 2
    a = np.clip(a, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def matrix_haversine_km(
    lats1: np.ndarray, lons1: np.ndarray, lats2: np.ndarray, lons2: np.ndarray
) -> np.ndarray:
    """All-pairs haversine matrix: ``result[i, j]`` is the distance from
    point ``j`` of the first set to point ``i`` of the second, in km.

    Row ``i`` is bitwise-identical to
    ``bulk_haversine_km(lats1, lons1, float(lats2[i]), float(lons2[i]))``:
    the second set's trigonometry goes through ``math.radians``/``math.cos``
    exactly as the scalar destination of the bulk call does, and every
    operand is combined in the same order. The topology relies on this to
    vectorise its hub mesh and city homing without perturbing a single
    routed path (pinned by the regression suite).
    """
    lats2 = np.asarray(lats2, dtype=np.float64)
    lons2 = np.asarray(lons2, dtype=np.float64)
    phi1 = np.radians(np.asarray(lats1, dtype=np.float64))
    phi2 = np.array([math.radians(float(lat)) for lat in lats2])
    cos_phi2 = np.array([math.cos(p) for p in phi2])
    dphi = phi2[:, None] - phi1[None, :]
    dlambda = np.radians(lons2[:, None] - np.asarray(lons1, dtype=np.float64)[None, :])
    a = (
        np.sin(dphi / 2.0) ** 2
        + np.cos(phi1)[None, :] * cos_phi2[:, None] * np.sin(dlambda / 2.0) ** 2
    )
    a = np.clip(a, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def pairwise_haversine_km(
    lats1: np.ndarray, lons1: np.ndarray, lats2: np.ndarray, lons2: np.ndarray
) -> np.ndarray:
    """Vectorised haversine between aligned arrays of points, in kilometres."""
    phi1 = np.radians(np.asarray(lats1, dtype=np.float64))
    phi2 = np.radians(np.asarray(lats2, dtype=np.float64))
    dphi = phi2 - phi1
    dlambda = np.radians(np.asarray(lons2, dtype=np.float64) - np.asarray(lons1, dtype=np.float64))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlambda / 2.0) ** 2
    a = np.clip(a, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def bearing_deg(origin: GeoPoint, target: GeoPoint) -> float:
    """Initial great-circle bearing from ``origin`` to ``target``, in degrees.

    0 is north, 90 east; the result is in ``[0, 360)``.
    """
    phi1, lambda1 = origin.as_radians()
    phi2, lambda2 = target.as_radians()
    dlambda = lambda2 - lambda1
    y = math.sin(dlambda) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlambda)
    return math.degrees(math.atan2(y, x)) % 360.0


def destination(origin: GeoPoint, bearing: float, distance_km: float) -> GeoPoint:
    """The point reached by travelling ``distance_km`` along a bearing.

    Args:
        origin: starting point.
        bearing: initial bearing in degrees (0 = north, 90 = east).
        distance_km: great-circle distance to travel, in kilometres.

    Returns:
        The destination :class:`GeoPoint`.
    """
    phi1, lambda1 = origin.as_radians()
    theta = math.radians(bearing)
    delta = distance_km / EARTH_RADIUS_KM
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lambda2 = lambda1 + math.atan2(y, x)
    return GeoPoint(math.degrees(phi2), normalize_lon(math.degrees(lambda2)))


def bulk_destination(
    origin: GeoPoint, bearings_deg: np.ndarray, distances_km: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`destination` from one origin.

    Args:
        origin: starting point.
        bearings_deg: array of initial bearings in degrees.
        distances_km: array of distances in kilometres, aligned with bearings.

    Returns:
        ``(lats, lons)`` arrays in degrees, lons wrapped to ``[-180, 180)``.
    """
    phi1, lambda1 = origin.as_radians()
    theta = np.radians(np.asarray(bearings_deg, dtype=np.float64))
    delta = np.asarray(distances_km, dtype=np.float64) / EARTH_RADIUS_KM
    sin_phi2 = np.clip(
        math.sin(phi1) * np.cos(delta) + math.cos(phi1) * np.sin(delta) * np.cos(theta),
        -1.0,
        1.0,
    )
    phi2 = np.arcsin(sin_phi2)
    y = np.sin(theta) * np.sin(delta) * math.cos(phi1)
    x = np.cos(delta) - math.sin(phi1) * sin_phi2
    lambda2 = lambda1 + np.arctan2(y, x)
    lons = (np.degrees(lambda2) + 180.0) % 360.0 - 180.0
    return np.degrees(phi2), lons


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Great-circle midpoint of two points."""
    phi1, lambda1 = a.as_radians()
    phi2, lambda2 = b.as_radians()
    bx = math.cos(phi2) * math.cos(lambda2 - lambda1)
    by = math.cos(phi2) * math.sin(lambda2 - lambda1)
    phi3 = math.atan2(
        math.sin(phi1) + math.sin(phi2),
        math.sqrt((math.cos(phi1) + bx) ** 2 + by**2),
    )
    lambda3 = lambda1 + math.atan2(by, math.cos(phi1) + bx)
    return GeoPoint(math.degrees(phi3), normalize_lon(math.degrees(lambda3)))


def mean_point(points: "list[GeoPoint]") -> GeoPoint:
    """Spherical centroid (normalised 3-D mean) of a set of points.

    Raises:
        ValueError: if ``points`` is empty.
    """
    if not points:
        raise ValueError("cannot average zero points")
    xs = ys = zs = 0.0
    for point in points:
        phi, lam = point.as_radians()
        xs += math.cos(phi) * math.cos(lam)
        ys += math.cos(phi) * math.sin(lam)
        zs += math.sin(phi)
    n = len(points)
    xs, ys, zs = xs / n, ys / n, zs / n
    norm = math.sqrt(xs * xs + ys * ys + zs * zs)
    if norm < 1e-12:
        # Degenerate (e.g. antipodal points): fall back to the first point.
        return points[0]
    phi = math.asin(max(-1.0, min(1.0, zs / norm)))
    lam = math.atan2(ys, xs)
    return GeoPoint(math.degrees(phi), normalize_lon(math.degrees(lam)))
