"""Geodesy primitives: points, distances, circles, regions, and sampling.

Everything in this package works on a spherical Earth model (mean radius
:data:`repro.constants.EARTH_RADIUS_KM`), which is the model used by all the
latency-based geolocation literature this library replicates.
"""

from repro.geo.coords import (
    GeoPoint,
    bearing_deg,
    bulk_haversine_km,
    destination,
    haversine_km,
    midpoint,
)
from repro.geo.regions import Circle, IntersectionRegion, cbg_region
from repro.geo.sampling import concentric_circle_points
from repro.geo.grid import PopulationGrid

__all__ = [
    "GeoPoint",
    "bearing_deg",
    "bulk_haversine_km",
    "destination",
    "haversine_km",
    "midpoint",
    "Circle",
    "IntersectionRegion",
    "cbg_region",
    "concentric_circle_points",
    "PopulationGrid",
]
