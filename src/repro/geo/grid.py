"""Population-density queries (substitute for Gridded Population of the World).

The paper reads population density per target from the GPW v4 dataset (1 km
resolution). Offline, we compute density analytically from the synthetic
world's cities: each city contributes a Gaussian kernel whose integral equals
its population, on top of a small rural baseline. Evaluating the kernel sum
at a point is equivalent to reading a raster built from the same kernels, so
the downstream analyses (Figures 6b and 8) exercise identical code paths.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.geo.coords import GeoPoint, haversine_km


@dataclass(frozen=True)
class PopulationCenter:
    """One kernel of the density field: a city with population and spread."""

    location: GeoPoint
    population: float
    sigma_km: float

    def density_at_distance(self, distance_km: float) -> float:
        """People per square km contributed at a given distance."""
        variance = self.sigma_km**2
        return (
            self.population
            / (2.0 * math.pi * variance)
            * math.exp(-(distance_km**2) / (2.0 * variance))
        )


class PopulationGrid:
    """Queryable population-density field built from population centers.

    A 1-degree bucket index keeps queries fast: only centers within
    ``reach_deg`` buckets of the query point are evaluated (beyond roughly
    five sigmas a kernel contributes nothing measurable).
    """

    def __init__(
        self,
        centers: Iterable[PopulationCenter],
        rural_density: float = 2.0,
        reach_deg: int = 2,
    ) -> None:
        """Build the index.

        Args:
            centers: the population kernels.
            rural_density: baseline density (people/km^2) far from any city.
            reach_deg: bucket search radius in degrees.
        """
        if rural_density < 0:
            raise ValueError(f"rural density must be non-negative: {rural_density}")
        self._rural_density = rural_density
        self._reach_deg = reach_deg
        self._buckets: Dict[Tuple[int, int], List[PopulationCenter]] = defaultdict(list)
        count = 0
        for center in centers:
            self._buckets[self._bucket(center.location)].append(center)
            count += 1
        self._count = count

    @staticmethod
    def _bucket(point: GeoPoint) -> Tuple[int, int]:
        return int(math.floor(point.lat)), int(math.floor(point.lon))

    def __len__(self) -> int:
        return self._count

    def _nearby(self, point: GeoPoint) -> Iterable[PopulationCenter]:
        lat0, lon0 = self._bucket(point)
        for dlat in range(-self._reach_deg, self._reach_deg + 1):
            for dlon in range(-self._reach_deg, self._reach_deg + 1):
                lon = (lon0 + dlon + 180) % 360 - 180
                lat = lat0 + dlat
                if not -90 <= lat <= 90:
                    continue
                yield from self._buckets.get((lat, lon), ())

    def density_at(self, point: GeoPoint) -> float:
        """Population density (people/km^2) at a point.

        Includes the rural baseline, so the result is always positive —
        matching GPW, where inhabited land never reads exactly zero.
        """
        total = self._rural_density
        for center in self._nearby(point):
            distance = haversine_km(
                point.lat, point.lon, center.location.lat, center.location.lon
            )
            total += center.density_at_distance(distance)
        return total
