"""Concentric-circle sampling of a region (street level paper, tiers 2/3).

Tier 2 of the street level technique looks for landmarks around the CBG
centroid: it draws concentric circles whose radius grows by a step ``R``
(5 km in tier 2, 1 km in tier 3) and picks sample points on each circle by
rotating from 0 degrees in increments of ``alpha`` (36 degrees in tier 2,
10 degrees in tier 3). The process stops at the first circle that has no
point inside the region.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional

from repro.geo.coords import GeoPoint, destination
from repro.geo.regions import IntersectionRegion


def circle_points(center: GeoPoint, radius_km: float, alpha_deg: float) -> List[GeoPoint]:
    """Points on one circle, rotated from bearing 0 by steps of ``alpha_deg``.

    Args:
        center: circle center.
        radius_km: circle radius in kilometres (must be positive).
        alpha_deg: angular step in degrees; e.g. 36 yields 10 points.

    Raises:
        ValueError: if ``radius_km`` or ``alpha_deg`` is not positive.
    """
    if radius_km <= 0:
        raise ValueError(f"radius must be positive, got {radius_km}")
    if alpha_deg <= 0:
        raise ValueError(f"alpha must be positive, got {alpha_deg}")
    points = []
    bearing = 0.0
    while bearing < 360.0 - 1e-9:
        points.append(destination(center, bearing, radius_km))
        bearing += alpha_deg
    return points


def concentric_circle_points(
    center: GeoPoint,
    region: Optional[IntersectionRegion],
    step_km: float,
    alpha_deg: float,
    max_circles: int = 200,
    inside: Optional[Callable[[GeoPoint], bool]] = None,
) -> Iterator[GeoPoint]:
    """Yield region sample points per the street level paper's procedure.

    Yields the center first, then points on circles of radius ``k * step_km``
    (``k = 1, 2, ...``), keeping only points inside the region, and stopping
    at the first circle with no point inside the region (or after
    ``max_circles`` circles, a safety bound for huge regions).

    Args:
        center: circle center, the region centroid from the previous tier.
        region: the constraint region; ``None`` means "no constraint" and
            only ``max_circles`` bounds the walk.
        step_km: radius increment per circle (R in the paper).
        alpha_deg: rotation step per point (alpha in the paper).
        max_circles: hard bound on the number of circles.
        inside: optional membership override; defaults to
            ``region.contains``.
    """
    if inside is None:
        inside = region.contains if region is not None else (lambda _point: True)
    yield center
    for k in range(1, max_circles + 1):
        kept = [p for p in circle_points(center, k * step_km, alpha_deg) if inside(p)]
        if not kept:
            return
        for point in kept:
            yield point
