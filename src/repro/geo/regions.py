"""Spherical-cap constraints and their intersection (the CBG region).

Constraint-based geolocation (CBG, Gueye et al.) turns each RTT measurement
into a *circle*: "the target is at most ``r`` km from this vantage point".
The target must lie inside the intersection of all circles, and CBG's
estimate is the centroid of that intersection.

Intersections of spherical caps have no convenient closed form, so
:func:`cbg_region` computes the region numerically: it samples points inside
the tightest constraint circle (the only place the region can live),
keeps the feasible ones, and averages them. When sampling misses a thin
sliver region, an alternating-projection repair step walks a candidate point
into feasibility before re-sampling locally. The approach is validated
against analytic two-circle cases in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import MAX_GREAT_CIRCLE_KM
from repro.errors import EmptyRegionError
from repro.geo.coords import (
    GeoPoint,
    bearing_deg,
    bulk_destination,
    destination,
    mean_point,
)


@dataclass(frozen=True)
class Circle:
    """A spherical cap: all points within ``radius_km`` of ``center``."""

    center: GeoPoint
    radius_km: float

    def __post_init__(self) -> None:
        if self.radius_km < 0:
            raise ValueError(f"radius must be non-negative, got {self.radius_km}")

    def contains(self, point: GeoPoint, tolerance_km: float = 1e-6) -> bool:
        """Whether a point lies inside the cap (with a small tolerance)."""
        return self.center.distance_km(point) <= self.radius_km + tolerance_km

    def area_km2(self) -> float:
        """Surface area of the cap on the spherical Earth."""
        from repro.constants import EARTH_RADIUS_KM

        angular = min(self.radius_km / EARTH_RADIUS_KM, math.pi)
        return 2.0 * math.pi * EARTH_RADIUS_KM**2 * (1.0 - math.cos(angular))


@dataclass
class IntersectionRegion:
    """The intersection of constraint circles, found by sampling.

    Attributes:
        circles: the constraints that define the region (after dropping
            circles so large they constrain nothing).
        centroid: spherical mean of the feasible sample points — the CBG
            location estimate.
        feasible_points: the feasible samples used for the centroid.
        tightest: the smallest-radius circle, inside which the region lives.
    """

    circles: List[Circle]
    centroid: GeoPoint
    feasible_points: List[GeoPoint] = field(repr=False, default_factory=list)
    tightest: Optional[Circle] = None

    def contains(self, point: GeoPoint, tolerance_km: float = 1e-6) -> bool:
        """Whether a point satisfies every constraint circle."""
        return all(circle.contains(point, tolerance_km) for circle in self.circles)

    def extent_km(self) -> float:
        """Rough diameter of the region: max pairwise sample distance.

        Returns 0 for a region collapsed to a single sample.
        """
        points = self.feasible_points
        if len(points) < 2:
            return 0.0
        # The hull is small (a few hundred samples); an O(n^2) scan on the
        # boundary samples is cheap and robust.
        best = 0.0
        step = max(1, len(points) // 64)
        thinned = points[::step]
        for i, a in enumerate(thinned):
            for b in thinned[i + 1 :]:
                best = max(best, a.distance_km(b))
        return best


def region_contains_bulk(
    region: IntersectionRegion,
    lats: np.ndarray,
    lons: np.ndarray,
    tolerance_km: float = 1e-6,
) -> np.ndarray:
    """Vectorised membership test: which points satisfy every constraint.

    Args:
        region: the intersection region.
        lats: candidate latitudes (degrees).
        lons: candidate longitudes (degrees), aligned.
        tolerance_km: feasibility slack.

    Returns:
        Boolean array, aligned with the inputs.
    """
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    return _feasible_mask(lats, lons, region.circles, tolerance_km)


def _active_circles(circles: Sequence[Circle]) -> Tuple[Circle, List[Circle]]:
    """Split circles into (tightest, possibly-binding others).

    A circle that fully contains the tightest circle can never exclude any
    candidate point, so it is dropped from the feasibility test.
    """
    tightest = min(circles, key=lambda c: c.radius_km)
    active = []
    for circle in circles:
        if circle is tightest:
            continue
        separation = tightest.center.distance_km(circle.center)
        if circle.radius_km < separation + tightest.radius_km:
            active.append(circle)
    return tightest, active


def _sample_disk(
    center: GeoPoint, radius_km: float, rings: int, spokes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample points covering a spherical cap: center + rings x spokes grid."""
    bearings = []
    distances = []
    for ring in range(1, rings + 1):
        r = radius_km * ring / rings
        for spoke in range(spokes):
            bearings.append(360.0 * spoke / spokes)
            distances.append(r)
    lats, lons = bulk_destination(center, np.array(bearings), np.array(distances))
    lats = np.concatenate(([center.lat], lats))
    lons = np.concatenate(([center.lon], lons))
    return lats, lons


def _feasible_mask(
    lats: np.ndarray, lons: np.ndarray, circles: Sequence[Circle], tolerance_km: float
) -> np.ndarray:
    """Boolean mask of which sample points satisfy every circle."""
    from repro.geo.coords import bulk_haversine_km

    mask = np.ones(lats.shape, dtype=bool)
    for circle in circles:
        distances = bulk_haversine_km(lats, lons, circle.center.lat, circle.center.lon)
        mask &= distances <= circle.radius_km + tolerance_km
        if not mask.any():
            break
    return mask


def _repair_point(start: GeoPoint, circles: Sequence[Circle], max_iterations: int = 80) -> Optional[GeoPoint]:
    """Walk a point into the intersection via alternating projections.

    Repeatedly moves the point just inside the most-violated circle. This
    converges for non-empty intersections of convex caps; returns None when
    no feasible point is found within the iteration budget.
    """
    point = start
    for _ in range(max_iterations):
        worst: Optional[Circle] = None
        worst_excess = 1e-9
        for circle in circles:
            excess = point.distance_km(circle.center) - circle.radius_km
            if excess > worst_excess:
                worst_excess = excess
                worst = circle
        if worst is None:
            return point
        # Move along the great circle toward the violated circle's center,
        # landing slightly inside its boundary.
        bearing = bearing_deg(point, worst.center)
        point = destination(point, bearing, worst_excess + min(1.0, worst.radius_km * 0.01))
    return None


def cbg_region(
    circles: Sequence[Circle],
    rings: int = 10,
    spokes: int = 24,
    tolerance_km: float = 0.5,
) -> IntersectionRegion:
    """Compute the intersection region of constraint circles.

    Args:
        circles: the CBG constraints. Must be non-empty.
        rings: number of concentric sampling rings inside the tightest circle.
        spokes: number of angular samples per ring.
        tolerance_km: feasibility slack, absorbing spherical-trig round-off.

    Returns:
        An :class:`IntersectionRegion` whose ``centroid`` is the CBG estimate.

    Raises:
        ValueError: if no circles are given.
        EmptyRegionError: if the circles provably share no common point
            (within the sampling resolution and repair budget).
    """
    if not circles:
        raise ValueError("CBG needs at least one constraint circle")
    # A radius of >= half the Earth's circumference constrains nothing.
    meaningful = [c for c in circles if c.radius_km < MAX_GREAT_CIRCLE_KM]
    if not meaningful:
        tightest = min(circles, key=lambda c: c.radius_km)
        return IntersectionRegion(
            circles=list(circles), centroid=tightest.center, feasible_points=[tightest.center], tightest=tightest
        )
    tightest, active = _active_circles(meaningful)
    constraints: List[Circle] = [tightest] + active

    lats, lons = _sample_disk(tightest.center, tightest.radius_km, rings, spokes)
    mask = _feasible_mask(lats, lons, active, tolerance_km)

    if not mask.any():
        # The region may be a thin sliver between circle boundaries that the
        # grid missed; repair a candidate point, then sample locally.
        repaired = _repair_point(tightest.center, constraints)
        if repaired is None:
            raise EmptyRegionError(
                f"{len(constraints)} constraint circles share no common point"
            )
        local_radius = max(tightest.radius_km / max(rings, 1), 1.0)
        lats, lons = _sample_disk(repaired, local_radius, rings, spokes)
        mask = _feasible_mask(lats, lons, constraints, tolerance_km)
        if not mask.any():
            return IntersectionRegion(
                circles=constraints,
                centroid=repaired,
                feasible_points=[repaired],
                tightest=tightest,
            )

    feasible = [GeoPoint(float(lat), float(lon)) for lat, lon in zip(lats[mask], lons[mask])]
    centroid = mean_point(feasible)
    if not all(c.contains(centroid, tolerance_km=tightest.radius_km) for c in constraints):
        # Pathological concave slivers can place the mean outside; snap back.
        centroid = feasible[0]
    return IntersectionRegion(
        circles=constraints, centroid=centroid, feasible_points=feasible, tightest=tightest
    )
