"""The location-code corpus: from a world's cities to a match trie.

The corpus is the ground-truth side of the hint pipeline: which
lowercase-letter codes exist, which city each belongs to, and which
tokens are blacklisted. It is derived from the same
:func:`repro.world.hostnames.assign_codes` assignment the world builder
used to emit PTR names, so the finder and the namer agree by
construction — there is no second source of truth to drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.world.cities import City
from repro.world.config import WorldConfig
from repro.world.hostnames import NOISE_VOCABULARY, HostnameScheme, assign_codes

from repro.hints.trie import CodeTrie


@dataclass(frozen=True)
class CodeCorpus:
    """All location codes of one world, plus the token blacklist.

    Attributes:
        city_by_code: code → owning city id (codes are globally unique).
        blacklist: tokens the find stage must never match.
    """

    city_by_code: Dict[str, int]
    blacklist: frozenset

    def __len__(self) -> int:
        return len(self.city_by_code)

    @property
    def codes(self) -> Tuple[str, ...]:
        """All codes, sorted (deterministic iteration order)."""
        return tuple(sorted(self.city_by_code))

    def trie(self) -> CodeTrie:
        """A fresh :class:`~repro.hints.trie.CodeTrie` over this corpus.

        Blacklisted codes are skipped, not inserted — an operator-supplied
        extra blacklist silences a troublesome code without touching the
        corpus itself.
        """
        trie = CodeTrie(blacklist=self.blacklist)
        for code in self.codes:
            if code not in self.blacklist:
                trie.insert(code, self.city_by_code[code])
        return trie

    @classmethod
    def from_cities(
        cls,
        config: WorldConfig,
        cities: Sequence[City],
        extra_blacklist: Iterable[str] = (),
    ) -> "CodeCorpus":
        """Build the corpus by re-running the deterministic code assignment."""
        assigned = assign_codes(config, cities)
        city_by_code: Dict[str, int] = {}
        for city_id in sorted(assigned):
            for code in assigned[city_id].codes:
                city_by_code[code] = city_id
        blacklist = frozenset(NOISE_VOCABULARY) | frozenset(
            token.lower() for token in extra_blacklist
        )
        return cls(city_by_code=city_by_code, blacklist=blacklist)

    @classmethod
    def from_world(cls, world, extra_blacklist: Iterable[str] = ()) -> "CodeCorpus":
        """The corpus of a built world.

        Reuses the builder's :class:`~repro.world.hostnames.HostnameScheme`
        when present (no re-draw), falling back to
        :meth:`from_cities` for hand-assembled worlds.
        """
        scheme = getattr(world, "hostname_scheme", None)
        if not isinstance(scheme, HostnameScheme):
            return cls.from_cities(world.config, world.cities, extra_blacklist)
        city_by_code: Dict[str, int] = {}
        for city_id in sorted(scheme.codes_by_city):
            for code in scheme.codes_by_city[city_id].codes:
                city_by_code[code] = city_id
        blacklist = frozenset(NOISE_VOCABULARY) | frozenset(
            token.lower() for token in extra_blacklist
        )
        return cls(city_by_code=city_by_code, blacklist=blacklist)
