"""Latency verification of location hints (the fourth-technique core).

A hostname hint is a *claim* — operators misname routers, templates go
stale, and false friends embed another city's code. Before a hint may
drive geolocation it is checked against the same ping campaign CBG uses:
every answering vantage point's RTT bounds how far the target can be
(speed-of-Internet, 2/3 c), so each VP defines a feasible disk around its
registered position. The classifier is purely geometric:

* **refuted** — some VP's disk provably excludes the hinted city: the
  distance from the VP to the city centre exceeds the disk radius by more
  than the slack (VP metadata jitter + the city's own radius + 1 km).
  Keeping a refuted hint would violate ``rtt.soi_bound``.
* **confirmed** — no VP excludes the city *and* at least one VP pins the
  target down tightly: its disk radius is at most ``confirm_radius_km``.
  A confirmed hint therefore sits inside a small feasible region, which
  is what lets the hybrid estimator trust it.
* **unverifiable** — everything else (no answering VPs, or only loose
  disks that neither refute nor meaningfully confirm).

Verdicts are a pure function of the scenario's RTT matrix and the match
list, so a seeded run classifies identically every time; ``hint-verify``
and ``hint-refute`` events record each decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import SOI_FRACTION_CBG, SPEED_OF_LIGHT_KM_S
from repro.geo.coords import bulk_haversine_km
from repro.obs import events

from repro.hints.trie import HintMatch

#: A hint the RTT evidence is consistent with, tightly.
VERDICT_CONFIRMED = "confirmed"
#: A hint the RTT evidence provably excludes.
VERDICT_REFUTED = "refuted"
#: A hint the RTT evidence can neither confirm nor refute.
VERDICT_UNVERIFIABLE = "unverifiable"

#: Default tightness bar: some VP must place the target within this many
#: kilometres before a compatible hint counts as confirmed.
CONFIRM_RADIUS_KM = 250.0


@dataclass(frozen=True)
class VerifiedHint:
    """One hint with its latency verdict and the geometry behind it.

    Attributes:
        match: the mined hint.
        column: the target's column in the scenario's RTT matrix.
        verdict: one of the three ``VERDICT_*`` strings.
        lat: hinted city centre latitude (the hint's location estimate).
        lon: hinted city centre longitude.
        city_radius_km: the hinted city's metro radius.
        slack_km: tolerance used when testing disks against the centre.
        tightest_disk_km: smallest feasible-disk radius among answering
            VPs (``inf`` when nothing answered).
        worst_excess_km: largest ``distance - radius`` over answering VPs
            (how close the hint came to refutation; ``0`` when nothing
            answered).
    """

    match: HintMatch
    column: int
    verdict: str
    lat: float
    lon: float
    city_radius_km: float
    slack_km: float
    tightest_disk_km: float
    worst_excess_km: float


def hint_slack_km(config, city) -> float:
    """Refutation slack for one hinted city.

    VP positions are registered (jittered) ones, and "the city" is a disk,
    not a point — so a disk only *refutes* the hint when it misses the
    centre by more than jitter + city radius (+1 km of numerical margin).
    """
    return config.probe_metadata_jitter_max_km + city.radius_km + 1.0


def verify_hints(
    scenario,
    matches: Sequence[Optional[HintMatch]],
    confirm_radius_km: float = CONFIRM_RADIUS_KM,
    obs=None,
    checker=None,
) -> List[VerifiedHint]:
    """Classify every mined hint against the scenario's ping campaign.

    Args:
        scenario: a built :class:`~repro.experiments.scenario.Scenario`;
            ``match.index`` must be a target column of its RTT matrix.
        matches: index-aligned output of
            :func:`~repro.hints.trie.find_hints` (``None`` entries are
            skipped).
        confirm_radius_km: tightness bar for confirmation.
        obs: observer; defaults to the scenario's.
        checker: invariant checker; defaults to the scenario's. Every
            confirmed hint is pushed through ``rtt.soi_bound`` with the
            hinted distances, proving confirmation never contradicts the
            physics floor.

    Returns:
        One :class:`VerifiedHint` per non-``None`` match, in match order.
    """
    obs = scenario.obs if obs is None else obs
    checker = scenario.checker if checker is None else checker
    matrix = scenario.rtt_matrix()
    vp_lats = scenario.vp_lats
    vp_lons = scenario.vp_lons
    config = scenario.world.config
    verified: List[VerifiedHint] = []
    for match in matches:
        if match is None:
            continue
        column = match.index
        city = scenario.world.city(match.city_id)
        center = city.location
        slack = hint_slack_km(config, city)
        rtts = matrix[:, column]
        answered = ~np.isnan(rtts)
        if not answered.any():
            verdict = VERDICT_UNVERIFIABLE
            tightest = float("inf")
            worst = 0.0
        else:
            radii = rtts[answered] * (
                SOI_FRACTION_CBG * SPEED_OF_LIGHT_KM_S / 2000.0
            )
            distances = bulk_haversine_km(
                vp_lats[answered], vp_lons[answered], center.lat, center.lon
            )
            tightest = float(radii.min())
            worst = float((distances - radii).max())
            if worst > slack:
                verdict = VERDICT_REFUTED
            elif tightest <= confirm_radius_km:
                verdict = VERDICT_CONFIRMED
            else:
                verdict = VERDICT_UNVERIFIABLE
            if verdict == VERDICT_CONFIRMED and checker.enabled:
                # A confirmed hint must satisfy the SOI bound when the
                # target is assumed to sit anywhere in the hinted city:
                # the most favourable consistent distance per VP.
                checker.check_soi_bound(
                    rtts[answered],
                    np.maximum(distances - slack, 0.0),
                    f"hints.verify target {column} ({match.code})",
                )
        verified.append(
            VerifiedHint(
                match=match,
                column=column,
                verdict=verdict,
                lat=center.lat,
                lon=center.lon,
                city_radius_km=city.radius_km,
                slack_km=slack,
                tightest_disk_km=tightest,
                worst_excess_km=worst,
            )
        )
        if obs.enabled:
            obs.count(f"hints.{verdict}")
            if verdict == VERDICT_REFUTED:
                obs.event(
                    events.HINT_REFUTE,
                    index=column,
                    ip=match.ip,
                    code=match.code,
                    city=match.city_id,
                    excess_km=round(worst, 3),
                )
            else:
                obs.event(
                    events.HINT_VERIFY,
                    index=column,
                    ip=match.ip,
                    code=match.code,
                    city=match.city_id,
                    verdict=verdict,
                )
    return verified


def confirmed_hints(verified: Sequence[VerifiedHint]) -> List[VerifiedHint]:
    """Just the confirmed subset, in order."""
    return [hint for hint in verified if hint.verdict == VERDICT_CONFIRMED]
