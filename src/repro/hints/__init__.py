"""Hint-based geolocation: rDNS hostnames as a fourth technique.

The paper's three techniques (CBG, street level, million scale) are all
latency-driven. Operators leak a fourth signal for free: *location codes
embedded in reverse-DNS hostnames* (``xe-2-1-0.core3.fra03.as65010.
example.net`` says Frankfurt), the signal HLOC and DRoP mine at Internet
scale. This package turns that signal into verified locations in three
stages:

1. **corpus** (:mod:`repro.hints.codes`) — the world's city location
   codes, shared with the PTR emitter in :mod:`repro.world.hostnames`;
2. **find** (:mod:`repro.hints.trie`) — tokenize PTR names and match
   codes through a trie, batch-parallel via :mod:`repro.exec`;
3. **verify** (:mod:`repro.hints.verify`) — classify each hint as
   confirmed / refuted / unverifiable against the ping campaign's
   speed-of-Internet geometry.

Confirmed hints feed the hint+CBG hybrid estimator in
:mod:`repro.core.hint_hybrid`. Every stage is seeded-deterministic and
observable (``hint-find`` / ``hint-verify`` / ``hint-refute`` events,
``hints.*`` metrics); the ``diff_hints`` selfcheck leg pins serial vs
parallel byte-equality end to end.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.hints.codes import CodeCorpus
from repro.hints.trie import CodeTrie, HintMatch, find_hints, tokenize
from repro.hints.verify import (
    CONFIRM_RADIUS_KM,
    VERDICT_CONFIRMED,
    VERDICT_REFUTED,
    VERDICT_UNVERIFIABLE,
    VerifiedHint,
    confirmed_hints,
    hint_slack_km,
    verify_hints,
)

__all__ = [
    "CodeCorpus",
    "CodeTrie",
    "HintMatch",
    "VerifiedHint",
    "CONFIRM_RADIUS_KM",
    "VERDICT_CONFIRMED",
    "VERDICT_REFUTED",
    "VERDICT_UNVERIFIABLE",
    "confirmed_hints",
    "find_hints",
    "hint_slack_km",
    "mine_hints",
    "target_names",
    "tokenize",
    "verify_hints",
]


def target_names(scenario) -> List[Tuple[str, Optional[str]]]:
    """``(ip, PTR name or None)`` per target, in target-column order."""
    world = scenario.world
    return [(ip, world.rdns_of(ip)) for ip in scenario.target_ips]


def mine_hints(
    scenario,
    confirm_radius_km: float = CONFIRM_RADIUS_KM,
    obs=None,
    checker=None,
) -> Tuple[List[Optional[HintMatch]], List[VerifiedHint]]:
    """The full pipeline over a scenario's targets: find, then verify.

    Returns ``(matches, verified)`` — matches index-aligned with the
    target columns, verdicts in match order. Uses the scenario's observer
    and checker unless overridden.
    """
    obs = scenario.obs if obs is None else obs
    checker = scenario.checker if checker is None else checker
    trie = CodeCorpus.from_world(scenario.world).trie()
    matches = find_hints(target_names(scenario), trie, obs=obs, checker=checker)
    verified = verify_hints(
        scenario,
        matches,
        confirm_radius_km=confirm_radius_km,
        obs=obs,
        checker=checker,
    )
    return matches, verified
