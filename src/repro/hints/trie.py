"""Location-code matching: tokenizer, code trie, and the batch find stage.

The find stage is the HLOC-style half of the hint pipeline: split every
PTR name into tokens, walk each token through a trie of the world's
location codes, and report at most one :class:`HintMatch` per name.

Matching semantics (the property tests pin these exactly):

* a hostname is split into dot-labels, each label into hyphen/underscore
  tokens, everything lowercased;
* a token ``t`` matches a code ``c`` iff ``t == c`` or ``t`` is ``c``
  followed by a pure digit tail (site numbering: ``fra03``);
* blacklisted tokens (:data:`~repro.world.hostnames.NOISE_VOCABULARY` by
  default) never match, and blacklisted codes are refused at insert time;
* among several candidate matches the *longest code* wins, ties broken by
  leftmost token position, then lexicographically smallest code — so the
  result is independent of insertion order and of token scan details.

:func:`find_hints` fans the scan out over
:func:`repro.exec.parallel_map`; worker-side observer capture keeps the
``hint-find`` event stream and ``hints.*`` counters byte-identical to a
serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.check.invariants import NULL_CHECKER
from repro.exec import parallel_map
from repro.obs import events
from repro.obs.observer import NULL_OBSERVER


def tokenize(hostname: str) -> List[str]:
    """The match tokens of a hostname: dot-labels split on ``-``/``_``,
    lowercased, empties dropped. Never raises, whatever the input."""
    if not hostname:
        return []
    tokens: List[str] = []
    for label in hostname.lower().split("."):
        for token in label.replace("_", "-").split("-"):
            if token:
                tokens.append(token)
    return tokens


class _Node:
    __slots__ = ("children", "code", "city_id")

    def __init__(self) -> None:
        self.children: Dict[str, _Node] = {}
        self.code: Optional[str] = None
        self.city_id: int = -1


class CodeTrie:
    """A character trie over location codes, with the digit-tail match rule."""

    def __init__(self, blacklist: Iterable[str] = ()) -> None:
        self._root = _Node()
        self._blacklist = frozenset(token.lower() for token in blacklist)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def blacklist(self) -> frozenset:
        """Tokens (and codes) this trie refuses to match."""
        return self._blacklist

    def insert(self, code: str, city_id: int) -> None:
        """Install one code.

        Raises:
            ValueError: for empty, non-lowercase-alphabetic, or
                blacklisted codes, and for duplicate codes mapping to a
                different city.
        """
        if not code or not code.isascii() or not code.isalpha() or not code.islower():
            raise ValueError(f"location codes must be lowercase letters: {code!r}")
        if code in self._blacklist:
            raise ValueError(f"blacklisted code: {code!r}")
        node = self._root
        for char in code:
            node = node.children.setdefault(char, _Node())
        if node.code is not None and node.city_id != city_id:
            raise ValueError(f"code {code!r} already maps to city {node.city_id}")
        if node.code is None:
            self._size += 1
        node.code = code
        node.city_id = city_id

    def match_token(self, token: str) -> Optional[Tuple[str, int]]:
        """The longest code this one token carries, or ``None``.

        A blacklisted token never matches. A non-matching walk simply
        falls off the trie — degenerate tokens (unicode, digits-only,
        empty) return ``None`` without raising.
        """
        if not token or token in self._blacklist:
            return None
        best: Optional[Tuple[str, int]] = None
        node = self._root
        for position, char in enumerate(token):
            node = node.children.get(char)
            if node is None:
                break
            if node.code is not None:
                tail = token[position + 1 :]
                if not tail or (tail.isascii() and tail.isdigit()):
                    best = (node.code, node.city_id)
        return best

    def find(self, hostname: Optional[str]) -> Optional[Tuple[str, int, int]]:
        """The best match in a hostname: ``(code, city_id, token_position)``.

        Longest code wins; ties break on leftmost token, then smallest
        code — a pure function of the *set* of installed codes and the
        name, independent of insertion and scan order.
        """
        if not hostname:
            return None
        best: Optional[Tuple[str, int, int]] = None
        for position, token in enumerate(tokenize(hostname)):
            found = self.match_token(token)
            if found is None:
                continue
            code, city_id = found
            candidate = (code, city_id, position)
            if best is None or (-len(code), position, code) < (
                -len(best[0]),
                best[2],
                best[0],
            ):
                best = candidate
        return best


@dataclass(frozen=True)
class HintMatch:
    """One location hint mined from one PTR name.

    Attributes:
        index: position of the name in the scanned sequence (for the
            experiment pipelines this is the target column).
        ip: the address the name reverse-resolves from.
        hostname: the PTR name the code was found in.
        code: the matched location code.
        city_id: the city the code belongs to.
    """

    index: int
    ip: str
    hostname: str
    code: str
    city_id: int


#: Module-global context for the find workers: populated before the
#: parallel_map fork, read-only afterwards (same pattern as the fig2
#: trial context).
_FIND_CTX: Dict[str, object] = {}


def _find_one(index: int) -> Optional[HintMatch]:
    names: Sequence[Tuple[str, Optional[str]]] = _FIND_CTX["names"]
    trie: CodeTrie = _FIND_CTX["trie"]
    obs = _FIND_CTX["obs"]
    ip, hostname = names[index]
    found = trie.find(hostname)
    if obs.enabled:
        obs.count("hints.names_scanned")
        if found is not None:
            obs.count("hints.matches")
            obs.event(
                events.HINT_FIND,
                index=index,
                ip=ip,
                code=found[0],
                city=found[1],
            )
    if found is None:
        return None
    return HintMatch(
        index=index, ip=ip, hostname=hostname or "", code=found[0], city_id=found[1]
    )


def find_hints(
    names: Sequence[Tuple[str, Optional[str]]],
    trie: CodeTrie,
    obs=NULL_OBSERVER,
    checker=NULL_CHECKER,
    live=None,
) -> List[Optional[HintMatch]]:
    """Scan ``(ip, hostname)`` pairs for location hints, index-aligned.

    Entry ``i`` of the result is the :class:`HintMatch` for ``names[i]``
    or ``None`` (unnamed address, or no code found). Honours the
    ``REPRO_WORKERS`` knob through :func:`repro.exec.parallel_map`;
    worker-side event/metric capture makes a parallel scan byte-identical
    to a serial one, which the ``diff_hints`` selfcheck leg pins.
    """
    names = list(names)
    _FIND_CTX.update(names=names, trie=trie, obs=obs)
    return parallel_map(
        _find_one, range(len(names)), obs=obs, checker=checker, live=live
    )
