"""Prefix-keyed geolocation database with a pluggable error model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.geo.coords import GeoPoint
from repro.net.addressing import ip_to_int
from repro.world.hosts import Host
from repro.world.world import World

#: An error model: (prefix_base, true_location) -> recorded location or
#: ``None`` when the provider has no data for the prefix.
ErrorModel = Callable[[int, GeoPoint], Optional[GeoPoint]]


@dataclass(frozen=True)
class _PrefixEntry:
    location: Optional[GeoPoint]


class GeoDatabase:
    """An IP-to-location database, queried like MaxMind/IPinfo dumps.

    Entries are derived lazily, one /24 at a time: the provider "knows" the
    prefix's true position (from its own measurements and hints) degraded
    through the provider-specific error model. Lookups are deterministic —
    the same prefix always answers the same location, like a real snapshot.
    """

    def __init__(self, name: str, world: World, error_model: ErrorModel) -> None:
        self.name = name
        self._world = world
        self._error_model = error_model
        self._cache: Dict[int, _PrefixEntry] = {}
        # /24 -> hosts index over the static world (the routable truth).
        self._hosts_by_prefix: Dict[int, List[Host]] = {}
        for host in world.hosts:
            base = ip_to_int(host.ip) & 0xFFFFFF00
            self._hosts_by_prefix.setdefault(base, []).append(host)

    def lookup(self, ip: str) -> Optional[GeoPoint]:
        """The database's location for an address (``None`` if uncovered)."""
        base = ip_to_int(ip) & 0xFFFFFF00
        entry = self._cache.get(base)
        if entry is None:
            hosts = self._hosts_by_prefix.get(base)
            if not hosts:
                entry = _PrefixEntry(None)
            else:
                # The prefix's representative truth: its first host's
                # physical position (providers see prefixes, not hosts).
                truth = hosts[0].true_location
                entry = _PrefixEntry(self._error_model(base, truth))
            self._cache[base] = entry
        return entry.location

    def coverage_of(self, ips: List[str]) -> float:
        """Fraction of the given addresses the database can answer."""
        if not ips:
            return 0.0
        answered = sum(1 for ip in ips if self.lookup(ip) is not None)
        return answered / len(ips)
