"""Per-provider error profiles (calibrated against Figure 7).

The paper reports, over its 723 targets:

* **IPinfo** — 89% within 40 km. The provider told the authors they reach
  ~20% of targets within 42 km from latency alone and ~70% within 137 km,
  then refine with DNS/WHOIS/geofeed hints.
* **MaxMind free** — 55% within 40 km, with a long error tail (hundreds to
  thousands of km for mislocated prefixes).

Each /24 deterministically falls into an accuracy band (city-accurate,
region-accurate, or mislocated) with provider-specific shares; see
EXPERIMENTS.md for the paper-vs-measured calibration of these shares.
"""

from __future__ import annotations

from typing import Optional

from repro import rand
from repro.geo.coords import GeoPoint, destination
from repro.geodb.database import GeoDatabase
from repro.world.world import World


def _displaced(
    key: rand.Key, truth: GeoPoint, minimum_km: float, maximum_km: float
) -> GeoPoint:
    """Truth displaced by a log-uniform distance in a random direction."""
    import math

    bearing = rand.uniform((key, "bearing"), 0.0, 360.0)
    log_min, log_max = math.log(max(minimum_km, 0.1)), math.log(maximum_km)
    distance = math.exp(rand.uniform((key, "dist"), log_min, log_max))
    return destination(truth, bearing, distance)


def build_maxmind_free(world: World) -> GeoDatabase:
    """The MaxMind-free profile: 55% city-accurate, a heavy error tail."""
    seed = world.config.seed

    def model(prefix_base: int, truth: GeoPoint) -> Optional[GeoPoint]:
        key = (seed, "maxmind", prefix_base)
        band = rand.uniform((key, "band"))
        if band < 0.02:
            return None  # uncovered prefix
        if band < 0.02 + 0.53:
            # City-accurate: a few km of jitter around the truth.
            return _displaced(key, truth, 0.5, 15.0)
        if band < 0.02 + 0.53 + 0.25:
            # Region/country level: tens to hundreds of km off.
            return _displaced(key, truth, 60.0, 600.0)
        # Mislocated: the long tail prior work complained about.
        return _displaced(key, truth, 600.0, 8000.0)

    return GeoDatabase("maxmind-free", world, model)


def build_ipinfo(world: World) -> GeoDatabase:
    """The IPinfo profile: latency base + hints; 89% city-accurate."""
    seed = world.config.seed

    def model(prefix_base: int, truth: GeoPoint) -> Optional[GeoPoint]:
        key = (seed, "ipinfo", prefix_base)
        band = rand.uniform((key, "band"))
        if band < 0.87:
            # Hint-refined: street-to-city accuracy.
            return _displaced(key, truth, 0.2, 12.0)
        if band < 0.87 + 0.09:
            # Latency-only: correct to the wider metro region.
            return _displaced(key, truth, 30.0, 200.0)
        # Stale hints: occasionally badly wrong.
        return _displaced(key, truth, 300.0, 5000.0)

    return GeoDatabase("ipinfo", world, model)
