"""Geolocation database revision sequences over an evolving world.

Gouel et al.'s longitudinal study (PAPERS.md) shows commercial geodb
snapshots are not one dataset but a *sequence* of weekly revisions, with
~5% of blocks moving between revisions and providers refreshing entries
asynchronously — so at any instant a realistic share of the database is
stale: the block has moved but the entry still answers the old place.

:class:`GeoDbRevisions` reproduces that weather over an
:class:`~repro.evolve.timeline.EvolutionTimeline`. Each provider entry
for a /24 has a *last-refresh revision*: a counter-keyed Bernoulli draw
per (provider, prefix, revision) at the timeline config's
``geodb_refresh_rate``. A lookup at revision ``k`` answers through the
provider's usual error model (:mod:`repro.geodb.providers`) applied to
the prefix's truth **as of its last refresh** — the error-model draws
are keyed ``(seed, provider, prefix)`` with no revision term, so a
prefix keeps its accuracy band across refreshes (a city-accurate
provider stays city-accurate; what changes is *which city* it is
accurate about). A prefix that moved after its last refresh is a stale
entry: the answer is confidently wrong by however far the block moved.

Per-revision provenance (:class:`RevisionRecord`) pins which prefixes
were refreshed and which are stale, against the snapshot's world digest;
:meth:`GeoDbRevisions.staleness_revisions` feeds the drift experiment's
staleness CDF. Everything is a pure function of (seed, provider,
revision) — byte-identical across runs and under ``REPRO_WORKERS=2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import rand
from repro.errors import ConfigurationError
from repro.evolve import events as ev
from repro.evolve.timeline import EvolutionTimeline
from repro.geo.coords import GeoPoint
from repro.geodb.database import GeoDatabase
from repro.geodb.providers import build_ipinfo, build_maxmind_free
from repro.net.addressing import int_to_ip, ip_to_int

_PREFIX_MASK = 0xFFFFFF00

_BUILDERS = {
    "ipinfo": build_ipinfo,
    "maxmind-free": build_maxmind_free,
}


@dataclass(frozen=True)
class RevisionRecord:
    """Provenance of one provider revision.

    Attributes:
        revision: the timeline revision this record describes.
        provider: provider name ("ipinfo" or "maxmind-free").
        world_digest: digest of the snapshot the revision describes —
            ties the record to the exact host state.
        refreshed: /24 bases whose entry was refreshed at this revision.
        stale: /24 bases whose block moved after their last refresh —
            entries answering a place the block has left.
    """

    revision: int
    provider: str
    world_digest: str
    refreshed: Tuple[str, ...]
    stale: Tuple[str, ...]


class _RevisionView:
    """One revision's queryable database (GeoDatabase-shaped)."""

    def __init__(self, revisions: "GeoDbRevisions", revision: int) -> None:
        self.name = f"{revisions.provider}@r{revision}"
        self._revisions = revisions
        self._revision = revision

    def lookup(self, ip: str) -> Optional[GeoPoint]:
        return self._revisions.lookup(ip, self._revision)

    def coverage_of(self, ips: List[str]) -> float:
        if not ips:
            return 0.0
        answered = sum(1 for ip in ips if self.lookup(ip) is not None)
        return answered / len(ips)


class GeoDbRevisions:
    """A provider's revision sequence over one evolution timeline."""

    def __init__(self, timeline: EvolutionTimeline, provider: str = "ipinfo") -> None:
        if provider not in _BUILDERS:
            raise ConfigurationError(
                f"unknown geodb provider {provider!r}; "
                f"known: {sorted(_BUILDERS)}"
            )
        self.timeline = timeline
        self.provider = provider
        self.refresh_rate = timeline.config.geodb_refresh_rate
        self._seed = timeline.base_world.config.seed
        self._snapshot_dbs: Dict[int, GeoDatabase] = {}
        self._moved: Optional[Dict[int, List[int]]] = None

    # --- refresh bookkeeping -----------------------------------------------

    def _refreshed_at(self, base: int, revision: int) -> bool:
        return rand.chance(
            (self._seed, "geodb-refresh", self.provider, base, revision),
            self.refresh_rate,
        )

    def last_refresh(self, ip: str, revision: int) -> int:
        """Last revision <= ``revision`` the address's entry refreshed
        (0 = the base snapshot the provider shipped with)."""
        base = ip_to_int(ip) & _PREFIX_MASK
        for k in range(revision, 0, -1):
            if self._refreshed_at(base, k):
                return k
        return 0

    def _moved_revisions(self) -> Dict[int, List[int]]:
        """Prefix base → revisions at which any host in the block moved."""
        if self._moved is None:
            moved: Dict[int, List[int]] = {}
            world = self.timeline.base_world
            for k in range(1, self.timeline.revisions + 1):
                for event in self.timeline.snapshot(k).events:
                    if event.kind == ev.EVENT_PREFIX_REASSIGN:
                        base = ip_to_int(event.prefix)
                    elif event.kind == ev.EVENT_HOST_MIGRATE:
                        base = ip_to_int(world.host_by_id(event.host_id).ip) & _PREFIX_MASK
                    else:
                        continue
                    revisions = moved.setdefault(base, [])
                    if not revisions or revisions[-1] != k:
                        revisions.append(k)
            self._moved = moved
        return self._moved

    def is_stale(self, ip: str, revision: int) -> bool:
        """Whether the entry answers a position its block has left."""
        base = ip_to_int(ip) & _PREFIX_MASK
        refreshed = self.last_refresh(ip, revision)
        return any(
            refreshed < m <= revision for m in self._moved_revisions().get(base, ())
        )

    def staleness_revisions(self, ips: Sequence[str], revision: int) -> np.ndarray:
        """Entry age in revisions, per address: ``revision - last_refresh``
        for stale entries, 0 for entries still describing reality (the
        drift experiment's staleness CDF input)."""
        ages = np.zeros(len(ips), dtype=np.int64)
        for i, ip in enumerate(ips):
            if self.is_stale(ip, revision):
                ages[i] = revision - self.last_refresh(ip, revision)
        return ages

    # --- lookups -----------------------------------------------------------

    def _snapshot_db(self, revision: int) -> GeoDatabase:
        if revision not in self._snapshot_dbs:
            self._snapshot_dbs[revision] = _BUILDERS[self.provider](
                self.timeline.snapshot(revision).world
            )
        return self._snapshot_dbs[revision]

    def lookup(self, ip: str, revision: int) -> Optional[GeoPoint]:
        """The provider's answer at ``revision``: the usual error model
        over the truth as of the entry's last refresh."""
        return self._snapshot_db(self.last_refresh(ip, revision)).lookup(ip)

    def database(self, revision: int) -> _RevisionView:
        """The revision's database, queryable like a
        :class:`~repro.geodb.database.GeoDatabase`."""
        if not 0 <= revision <= self.timeline.revisions:
            raise ConfigurationError(
                f"revision {revision} outside [0, {self.timeline.revisions}]"
            )
        return _RevisionView(self, revision)

    def record(self, revision: int) -> RevisionRecord:
        """Provenance for one revision over the world's static prefixes."""
        world = self.timeline.base_world
        bases = sorted(
            {
                ip_to_int(h.ip) & _PREFIX_MASK
                for h in world.hosts[: world.static_host_count]
            }
        )
        refreshed = tuple(
            int_to_ip(base)
            for base in bases
            if revision >= 1 and self._refreshed_at(base, revision)
        )
        stale = tuple(
            int_to_ip(base)
            for base in bases
            if self.is_stale(int_to_ip(base), revision)
        )
        return RevisionRecord(
            revision=revision,
            provider=self.provider,
            world_digest=self.timeline.snapshot(revision).digest,
            refreshed=refreshed,
            stale=stale,
        )
