"""Simulated commercial geolocation databases (paper §6).

The paper compares CBG against MaxMind's free database and IPinfo's free
API. Offline we generate databases *from the world's ground truth plus a
per-provider error model*, mirroring how commercial providers actually
work: latency measurements plus DNS/WHOIS/geofeed hints of varying quality
per prefix. The calibrated profiles reproduce the paper's Figure 7
ordering: IPinfo (89% of targets within 40 km) > CBG with all VPs (73%) >
MaxMind free (55%).
"""

from repro.geodb.database import GeoDatabase
from repro.geodb.providers import build_ipinfo, build_maxmind_free

__all__ = [
    "GeoDatabase",
    "GeoDbRevisions",
    "RevisionRecord",
    "build_ipinfo",
    "build_maxmind_free",
]


def __getattr__(name):
    # Lazy: repro.geodb.revisions pulls in the evolve layer, which plain
    # database users never need.
    if name in ("GeoDbRevisions", "RevisionRecord"):
        from repro.geodb import revisions

        return getattr(revisions, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
