"""The publishable geolocation dataset (the paper's stated end goal).

The paper's title is "Towards a Publicly Available Internet Scale IP
Geolocation Dataset": beyond the replication it argues the community needs
an *accurate, complete, explainable* dataset. This module produces the
explainable artefact this repository can publish — one record per target
with the estimate of every technique, the measurement evidence behind it,
and an honest per-record quality class — plus JSON/CSV writers and a
reader, so downstream users can consume it without running the simulator.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.geo.coords import GeoPoint

#: Schema version written into every export.
DATASET_SCHEMA_VERSION = 1

#: Quality classes, from the paper's §7.1 baseline framing.
QUALITY_STREET = "street-level"  # error evidence within ~1 km
QUALITY_CITY = "city-level"  # within ~40 km
QUALITY_REGION = "region-level"  # beyond city level
QUALITY_UNKNOWN = "unknown"  # technique produced no estimate


@dataclass
class GeolocationRecord:
    """One dataset row: everything known about one IP address.

    Attributes:
        ip: the geolocated address.
        estimates: technique name -> (lat, lon), for every technique run.
        preferred_technique: which estimate the dataset recommends.
        quality: one of the QUALITY_* classes — an *explainable* confidence
            statement, derived from measurement evidence (e.g. the lowest
            observed RTT), never from ground truth.
        evidence: free-form per-technique diagnostics (min RTT, number of
            constraints, chosen landmark, ...), the explainability payload.
    """

    ip: str
    estimates: Dict[str, Optional[List[float]]] = field(default_factory=dict)
    preferred_technique: str = ""
    quality: str = QUALITY_UNKNOWN
    evidence: Dict[str, object] = field(default_factory=dict)

    def preferred_location(self) -> Optional[GeoPoint]:
        """The recommended estimate as a GeoPoint, if any."""
        pair = self.estimates.get(self.preferred_technique)
        if pair is None:
            return None
        return GeoPoint(pair[0], pair[1])


def quality_from_min_rtt(min_rtt_ms: Optional[float]) -> str:
    """Classify confidence from the lowest observed RTT (explainable rule).

    Sub-millisecond RTTs pin the target to a few dozen km (city level, and
    plausibly street level below ~0.3 ms); above ~1.5 ms the constraint
    radius exceeds city scale.
    """
    if min_rtt_ms is None:
        return QUALITY_UNKNOWN
    if min_rtt_ms < 0.3:
        return QUALITY_STREET
    if min_rtt_ms < 1.5:
        return QUALITY_CITY
    return QUALITY_REGION


class GeolocationDataset:
    """An ordered collection of records with JSON/CSV round-tripping."""

    def __init__(self, records: Optional[Iterable[GeolocationRecord]] = None) -> None:
        self._records: List[GeolocationRecord] = list(records or [])
        self._by_ip = {record.ip: record for record in self._records}
        if len(self._by_ip) != len(self._records):
            raise ValueError("duplicate IPs in dataset")

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def add(self, record: GeolocationRecord) -> None:
        """Append a record (one per IP).

        Raises:
            ValueError: if the IP already has a record.
        """
        if record.ip in self._by_ip:
            raise ValueError(f"duplicate record for {record.ip}")
        self._records.append(record)
        self._by_ip[record.ip] = record

    def lookup(self, ip: str) -> Optional[GeolocationRecord]:
        """The record for an address, if present."""
        return self._by_ip.get(ip)

    def quality_counts(self) -> Dict[str, int]:
        """How many records fall in each quality class."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.quality] = counts.get(record.quality, 0) + 1
        return counts

    # --- JSON ---------------------------------------------------------------

    def write_json(self, path: Union[str, Path]) -> None:
        """Write the dataset as a single JSON document."""
        payload = {
            "schema_version": DATASET_SCHEMA_VERSION,
            "records": [asdict(record) for record in self._records],
        }
        Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))

    @classmethod
    def read_json(cls, path: Union[str, Path]) -> "GeolocationDataset":
        """Read a dataset written by :meth:`write_json`.

        Raises:
            ValueError: on schema mismatches.
        """
        payload = json.loads(Path(path).read_text())
        version = payload.get("schema_version")
        if version != DATASET_SCHEMA_VERSION:
            raise ValueError(f"unsupported dataset schema version: {version}")
        records = [GeolocationRecord(**row) for row in payload["records"]]
        return cls(records)

    # --- CSV ----------------------------------------------------------------

    _CSV_FIELDS = ("ip", "technique", "lat", "lon", "quality", "preferred")

    def write_csv(self, path: Union[str, Path]) -> None:
        """Write a flat CSV: one row per (ip, technique) estimate."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self._CSV_FIELDS)
            for record in self._records:
                for technique, pair in sorted(record.estimates.items()):
                    if pair is None:
                        continue
                    writer.writerow(
                        [
                            record.ip,
                            technique,
                            f"{pair[0]:.5f}",
                            f"{pair[1]:.5f}",
                            record.quality,
                            "1" if technique == record.preferred_technique else "0",
                        ]
                    )

    @classmethod
    def read_csv(cls, path: Union[str, Path]) -> "GeolocationDataset":
        """Read a CSV written by :meth:`write_csv` (evidence is not kept)."""
        by_ip: Dict[str, GeolocationRecord] = {}
        with open(path, newline="") as handle:
            reader = csv.DictReader(handle)
            if reader.fieldnames is None or tuple(reader.fieldnames) != cls._CSV_FIELDS:
                raise ValueError(f"unexpected CSV header: {reader.fieldnames}")
            for row in reader:
                record = by_ip.get(row["ip"])
                if record is None:
                    record = GeolocationRecord(ip=row["ip"], quality=row["quality"])
                    by_ip[row["ip"]] = record
                record.estimates[row["technique"]] = [float(row["lat"]), float(row["lon"])]
                if row["preferred"] == "1":
                    record.preferred_technique = row["technique"]
        return cls(by_ip.values())


def main(argv: Optional[List[str]] = None) -> int:
    """CLI: export the baseline dataset.

    Usage::

        python -m repro.dataset --preset small --out baseline.json
        repro-dataset --preset paper --format csv --out baseline.csv
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Export the replication's baseline geolocation dataset."
    )
    parser.add_argument("--preset", choices=["paper", "small"], default="small")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--format", choices=["json", "csv"], default="json")
    parser.add_argument("--out", required=True, help="output file path")
    parser.add_argument("--max-targets", type=int, default=None)
    args = parser.parse_args(argv)

    from repro.experiments.scenario import get_scenario

    scenario = get_scenario(args.preset, args.seed)
    dataset = build_dataset_from_scenario(scenario, args.max_targets)
    if args.format == "json":
        dataset.write_json(args.out)
    else:
        dataset.write_csv(args.out)
    print(
        f"wrote {len(dataset)} records to {args.out} "
        f"(quality: {dataset.quality_counts()})"
    )
    return 0


def build_dataset_from_scenario(scenario, max_targets: Optional[int] = None) -> GeolocationDataset:
    """Produce the baseline dataset from a scenario's measurements.

    Runs all-VP CBG and Shortest Ping per target, classifies quality from
    the lowest observed RTT, and records the evidence. (Street level
    estimates can be merged in afterwards from the street runner.)
    """
    import numpy as np

    from repro.core.cbg import cbg_centroid_fast

    matrix = scenario.rtt_matrix()
    dataset = GeolocationDataset()
    targets = scenario.targets if max_targets is None else scenario.targets[:max_targets]
    for column, target in enumerate(targets):
        rtts = matrix[:, column]
        answered = ~np.isnan(rtts)
        min_rtt = float(np.nanmin(rtts)) if answered.any() else None

        estimates: Dict[str, Optional[List[float]]] = {}
        centroid = cbg_centroid_fast(scenario.vp_lats, scenario.vp_lons, rtts)
        estimates["cbg"] = None if centroid is None else [centroid[0], centroid[1]]
        if answered.any():
            best = int(np.nanargmin(rtts))
            vp = scenario.vps[best]
            estimates["shortest-ping"] = [vp.location.lat, vp.location.lon]
        else:
            estimates["shortest-ping"] = None

        dataset.add(
            GeolocationRecord(
                ip=target.ip,
                estimates=estimates,
                preferred_technique="cbg" if estimates["cbg"] is not None else "shortest-ping",
                quality=quality_from_min_rtt(min_rtt),
                evidence={
                    "min_rtt_ms": min_rtt,
                    "answering_vps": int(answered.sum()),
                    "vp_count": len(scenario.vps),
                },
            )
        )
    return dataset


if __name__ == "__main__":  # pragma: no cover - CLI entry
    import sys

    sys.exit(main())
