"""Resident geolocation serving (see ``docs/SERVING.md``).

The batch reproduction answers "re-run the campaign"; this package answers
"keep the world loaded and serve queries": a :class:`QueryState` (the
query-time half of a scenario), per-tenant admission control
(:class:`TenantConfig` / :class:`TenantAccount`), and the
:class:`ServeEngine` that coalesces admitted requests into vectorised
kernel batches. Served answers are bitwise identical to the batch campaign
path — pinned by ``tests/test_serve.py`` and the ``serve: engine vs
batch`` leg of the differential self-check.
"""

from repro.serve.engine import (
    REJECT_OVER_BUDGET,
    REJECT_OVER_RATE,
    REJECT_SHED,
    REJECT_UNKNOWN_TARGET,
    REJECT_UNKNOWN_TENANT,
    REJECTIONS,
    STATUS_NO_ESTIMATE,
    STATUS_OK,
    ServeEngine,
    ServeRequest,
    ServeResult,
)
from repro.serve.state import QueryState
from repro.serve.tenancy import TenantAccount, TenantConfig

__all__ = [
    "QueryState",
    "TenantConfig",
    "TenantAccount",
    "ServeEngine",
    "ServeRequest",
    "ServeResult",
    "STATUS_OK",
    "STATUS_NO_ESTIMATE",
    "REJECT_UNKNOWN_TENANT",
    "REJECT_UNKNOWN_TARGET",
    "REJECT_SHED",
    "REJECT_OVER_RATE",
    "REJECT_OVER_BUDGET",
    "REJECTIONS",
]
