"""The resident geolocation serving engine.

A :class:`ServeEngine` turns the batch-oriented reproduction into a
long-lived query service: load a measured world once (a
:class:`~repro.serve.state.QueryState`, typically extracted from a
scenario whose campaigns replay from the content-addressed artifact
cache), derive the CBG kernel arrays once (a resident
:class:`~repro.core.cbg_batch.CbgBatchSolver`), then answer a stream of
geolocate requests:

1. **Admission** (:meth:`ServeEngine.submit`) — every request passes
   typed admission control *before any kernel work*: unknown tenants and
   unknown target prefixes are refused outright; under fault injection a
   counter-keyed draw sheds requests the way the Atlas API sheds calls;
   a full rate window refuses with ``over-rate`` instead of blocking;
   an unaffordable query refuses with ``over-budget`` before anything is
   charged. Admitted requests charge their tenant's ledger and join the
   intake queue.
2. **Coalescing** (:meth:`ServeEngine.process_one_batch`) — queued
   requests are drained in FIFO batches of at most ``max_batch``,
   deduplicated to unique target columns, and solved in one vectorised
   pass of the resident kernel; because the loaded world is immutable,
   answers are memoized per column and repeat queries never touch the
   kernel again. Per-request answers are bitwise identical to the batch
   campaign path no matter how requests are batched or ordered — pinned
   by ``tests/test_serve.py`` and the ``serve: engine vs batch``
   differential leg. When the world churns underneath the engine
   (:mod:`repro.evolve`), :meth:`ServeEngine.install_epoch` swaps in the
   new revision's :class:`QueryState` at a batch boundary, invalidating
   exactly the memo columns whose matrix bytes moved — pinned by
   ``tests/test_serve_epoch.py`` and the ``serve: epochs vs batch``
   differential leg.
3. **Observability** — admissions, refusals, and batches are typed
   events in the closed taxonomy (``serve-request`` / ``serve-reject`` /
   ``serve-batch``), counters live under ``serve.*``, and each batch
   solve runs inside a ``serve:batch`` span. Everything emitted is a
   deterministic function of the submission sequence (wall-clock
   latencies are kept off the observer, on
   :attr:`ServeEngine.wall_latencies_s`, so same-seed event streams stay
   byte-identical).
4. **Live telemetry** — passing a
   :class:`~repro.obs.live.LiveTelemetry` as ``live`` arms the second,
   *operational* plane: per-stage wall-clock attribution (queue wait /
   coalesce / kernel / memo answering the p50-vs-p99 question), latency
   sketches per tenant, rolling refusal rates, queue/occupancy/memo-hit
   gauges, per-tenant SLO burn, and a flight-recorder ring of recent
   requests dumped on refusal spikes or invariant violations. The
   default :data:`~repro.obs.live.NULL_LIVE` keeps the uninstrumented
   path at parity, and the live plane never writes to the deterministic
   observer — ``tests/test_serve_live.py`` pins both properties.

The engine is deliberately synchronous and in-process: determinism is the
product being served, and the vectorised kernel already exploits the
hardware within a batch. Throughput comes from coalescing, not from
threads — the load benchmark (``benchmarks/test_bench_serve.py``)
sustains well over the 10k queries/sec target this way.
"""

from __future__ import annotations

import array
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.atlas.clock import SimClock
from repro.check.invariants import NULL_CHECKER
from repro.core.cbg_batch import CbgBatchSolver
from repro.errors import ConfigurationError
from repro.obs import events as _ev
from repro.obs.live import NULL_LIVE, FlightRecord, SloPolicy
from repro.obs.observer import NULL_OBSERVER
from repro.serve.state import QueryState
from repro.serve.tenancy import TenantAccount, TenantConfig

#: The request was answered with a centroid estimate.
STATUS_OK = "ok"
#: The request was admitted and solved, but CBG had no usable answer.
STATUS_NO_ESTIMATE = "no-estimate"
#: Refused: the tenant is not registered with the engine.
REJECT_UNKNOWN_TENANT = "unknown-tenant"
#: Refused: the target address is outside the loaded world's prefixes.
REJECT_UNKNOWN_TARGET = "unknown-target"
#: Refused: the fault layer shed the request (injected API weather).
REJECT_SHED = "shedding"
#: Refused: the tenant's sliding rate window is full.
REJECT_OVER_RATE = "over-rate"
#: Refused: the query cost does not fit the tenant's remaining budget.
REJECT_OVER_BUDGET = "over-budget"

#: Every typed refusal reason (:attr:`ServeResult.rejected` is membership).
REJECTIONS = frozenset(
    {
        REJECT_UNKNOWN_TENANT,
        REJECT_UNKNOWN_TARGET,
        REJECT_SHED,
        REJECT_OVER_RATE,
        REJECT_OVER_BUDGET,
    }
)


@dataclass(frozen=True)
class ServeRequest:
    """One admitted geolocate request waiting in the intake queue."""

    request_id: int
    tenant: str
    ip: str
    column: int


@dataclass(frozen=True)
class ServeResult:
    """The typed outcome of one geolocate request.

    Attributes:
        request_id: the id :meth:`ServeEngine.submit` returned.
        tenant: requesting tenant.
        ip: requested target address.
        status: :data:`STATUS_OK`, :data:`STATUS_NO_ESTIMATE`, or one of
            :data:`REJECTIONS`.
        lat: estimated latitude (``None`` unless status is ``ok``).
        lon: estimated longitude (``None`` unless status is ``ok``).
        batch: sequence number of the batch that solved the request
            (``None`` for refusals, which never reach a batch).
        detail: human-readable refusal context (e.g. the injected fault
            type, or the rate-window wait).
    """

    request_id: int
    tenant: str
    ip: str
    status: str
    lat: Optional[float] = None
    lon: Optional[float] = None
    batch: Optional[int] = None
    detail: str = ""

    @property
    def rejected(self) -> bool:
        """Whether the request was refused by admission control."""
        return self.status in REJECTIONS


class ServeEngine:
    """A resident engine answering geolocate queries over one world."""

    def __init__(
        self,
        state: QueryState,
        clock: Optional[SimClock] = None,
        obs=NULL_OBSERVER,
        checker=NULL_CHECKER,
        faults=None,
        max_batch: int = 256,
        min_vps: int = 1,
        live=NULL_LIVE,
    ) -> None:
        """Load the world and derive the resident kernel arrays.

        Args:
            state: the query-time world (see :class:`QueryState`).
            clock: simulated clock for rate windows and event timestamps;
                a fresh one by default. The engine never advances it —
                time passes when the caller says it does, which keeps
                admission decisions deterministic.
            obs: campaign observer; serve events, counters, and spans are
                emitted through it.
            checker: optional invariant checker. When armed, every ledger
                charge is conservation-checked and every solved batch is
                containment-checked against the ground truth (when the
                state carries it).
            faults: optional :class:`~repro.faults.FaultInjector`; when
                its plan injects API faults, the corresponding admission
                draws shed requests with the :data:`REJECT_SHED` reason.
            max_batch: most requests one batch may coalesce (>= 1).
            min_vps: minimum answering vantage points per target (kernel
                knob, as in the campaign path).
            live: operational telemetry plane
                (:class:`~repro.obs.live.LiveTelemetry`); the shared
                :data:`~repro.obs.live.NULL_LIVE` no-op by default.
        """
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1: {max_batch}")
        self.state = state
        self.clock = clock if clock is not None else SimClock()
        self.obs = obs
        self.checker = checker
        self.faults = faults
        self.max_batch = int(max_batch)
        self.solver = CbgBatchSolver(
            state.vp_lats,
            state.vp_lons,
            state.rtt_matrix,
            soi_fraction=state.soi_fraction,
            min_vps=min_vps,
        )
        self._tenants: Dict[str, TenantAccount] = {}
        self._queue: Deque[ServeRequest] = deque()
        self._results: Dict[int, ServeResult] = {}
        self._next_id = 0
        self.batches_processed = 0
        #: world epochs installed so far; 0 until the first
        #: :meth:`install_epoch` swap.
        self.epoch = 0
        # The loaded world is immutable *within an epoch*, so a column's
        # centroid never changes between swaps: answers are memoized
        # after their first solve and the kernel runs only on cold
        # columns. Repeat queries — the common case for a resident
        # server — cost an array gather, which is what carries
        # paper-scale throughput past the 10k qps target.
        # install_epoch() un-solves exactly the columns whose bytes moved.
        self._answer_lats = np.full(state.n_targets, np.nan)
        self._answer_lons = np.full(state.n_targets, np.nan)
        self._solved = np.zeros(state.n_targets, dtype=bool)
        self.column_cache_hits = 0
        #: wall-clock seconds from admission to answer, per answered
        #: request (load-benchmark material; never emitted on the
        #: observer, which must stay deterministic).
        self.wall_latencies_s: List[float] = []
        self._admitted_wall: Dict[int, float] = {}
        #: the operational plane (wall-clock sketches, rates, gauges,
        #: SLOs, flight recorder). Never forwarded to ``obs``.
        self.live = live
        #: tenants with a registered SLO; only these pay for per-tenant
        #: latency collection in the batch loop.
        self._slo_tenants: set = set()
        self._columns_seen = 0
        self._violations_seen = len(getattr(checker, "violations", ()))
        # Buffered admission timings: array('d') instead of a list so the
        # per-batch flush converts to ndarray with a memcpy, not a boxed
        # float walk (worth ~40us per 256-request batch).
        self._pending_admission_s = array.array("d")
        if live.enabled:
            # Direct sketch handles keep registry lookups off the
            # per-batch flush path (absorb() merges in place, so the
            # handles never go stale).
            self._sk_admission = live.sketch("serve.stage.admission_s")
            self._sk_queue = live.sketch("serve.stage.queue_s")
            self._sk_coalesce = live.sketch("serve.stage.coalesce_s")
            self._sk_kernel = live.sketch("serve.stage.kernel_s")
            self._sk_memo = live.sketch("serve.stage.memo_s")
            self._sk_latency = live.sketch("serve.latency_s")

    # --- construction ------------------------------------------------------------

    @classmethod
    def from_scenario(cls, scenario, **kwargs) -> "ServeEngine":
        """An engine over a built scenario's query-time state.

        The scenario's observer, checker, and live plane are adopted
        unless overridden in ``kwargs``.
        """
        kwargs.setdefault("obs", scenario.obs)
        kwargs.setdefault("checker", scenario.checker)
        kwargs.setdefault("live", getattr(scenario, "live", NULL_LIVE))
        return cls(QueryState.from_scenario(scenario), **kwargs)

    @classmethod
    def from_arena(cls, token, **kwargs) -> "ServeEngine":
        """An engine over a shared-memory query state published elsewhere.

        Attaches to the arena behind ``token``
        (:meth:`QueryState.share` in the publishing process) and serves
        straight off the shared pages: a fleet of worker engines holds
        one physical copy of the RTT matrix between them. The arena
        handle is pinned on the engine (``_arena``) so the views outlive
        construction.
        """
        state, arena = QueryState.attach(token)
        engine = cls(state, **kwargs)
        engine._arena = arena
        return engine

    @classmethod
    def for_preset(cls, preset: str, seed: Optional[int] = None, **kwargs) -> "ServeEngine":
        """An engine over a preset world ("paper", "small", or "quick").

        Goes through :func:`~repro.experiments.scenario.get_scenario`, so
        with ``REPRO_CACHE_DIR`` set the heavyweight measurement
        campaigns replay from the content-addressed artifact cache and
        engine startup costs one disk read per artifact.
        """
        from repro.experiments.scenario import get_scenario

        return cls.from_scenario(get_scenario(preset, seed), **kwargs)

    # --- epoch swap --------------------------------------------------------------

    def install_epoch(self, state: QueryState, label: str = "") -> int:
        """Atomically swap in a new world revision between batches.

        The serving contract under churn: after the swap, every answer is
        byte-identical to a fresh engine loaded with ``state`` — but the
        memo survives for every column whose matrix bytes did not move.
        The engine diffs the old and new states:

        * same VP coordinates (the re-measurement case produced by
          :func:`repro.evolve.measure.epoch_state`, which pins VP
          registrations): columns are compared bitwise (NaN == NaN) and
          exactly the changed ones are invalidated (``column-delta``);
        * different VP coordinates or VP count: every answer depends on
          every VP row, so the whole memo is invalidated (``vp-drift``).

        Queued-but-unsolved requests survive the swap (their columns
        still resolve in the new state) and are answered from the new
        epoch's matrix at the next batch — the swap point *is* the batch
        boundary. Targets are identity here: installing a state with a
        different target set is a configuration error, not churn.

        Emits one ``serve-epoch`` event and bumps the ``serve.epoch.*``
        counters (swaps / changed_columns / invalidated / retained).
        Returns the number of changed columns.

        Raises:
            ConfigurationError: when ``state`` serves a different target
                set than the loaded world.
        """
        old = self.state
        if tuple(state.target_ips) != tuple(old.target_ips):
            raise ConfigurationError(
                f"epoch swap must keep the target set: {old.n_targets} loaded "
                f"targets vs {state.n_targets} in the new state"
            )
        vp_same = (
            old.rtt_matrix.shape[0] == state.rtt_matrix.shape[0]
            and np.array_equal(old.vp_lats, state.vp_lats)
            and np.array_equal(old.vp_lons, state.vp_lons)
        )
        if vp_same:
            same = (old.rtt_matrix == state.rtt_matrix) | (
                np.isnan(old.rtt_matrix) & np.isnan(state.rtt_matrix)
            )
            changed_mask = ~same.all(axis=0)
            reason = "column-delta"
        else:
            changed_mask = np.ones(state.n_targets, dtype=bool)
            reason = "vp-drift"
        changed = int(changed_mask.sum())
        invalidated = int((changed_mask & self._solved).sum())
        retained = int((self._solved & ~changed_mask).sum())
        self.state = state
        self.solver = CbgBatchSolver(
            state.vp_lats,
            state.vp_lons,
            state.rtt_matrix,
            soi_fraction=state.soi_fraction,
            min_vps=self.solver.min_vps,
        )
        self._answer_lats[changed_mask] = np.nan
        self._answer_lons[changed_mask] = np.nan
        self._solved[changed_mask] = False
        self.epoch += 1
        if self.obs.enabled:
            self.obs.event(
                _ev.SERVE_EPOCH,
                t_s=self.clock.now_s,
                epoch=self.epoch,
                changed=changed,
                invalidated=invalidated,
                retained=retained,
                reason=reason,
                label=label,
            )
            self.obs.count("serve.epoch.swaps")
            self.obs.count("serve.epoch.changed_columns", changed)
            self.obs.count("serve.epoch.invalidated", invalidated)
            self.obs.count("serve.epoch.retained", retained)
        if self.live.enabled:
            self.live.count("serve.epoch.swaps")
            self.live.gauge("serve.epoch", float(self.epoch))
        return changed

    # --- tenancy -----------------------------------------------------------------

    def register_tenant(self, config: TenantConfig) -> TenantAccount:
        """Create (or replace) a tenant account under the engine's clock."""
        account = TenantAccount(
            config, self.clock, obs=self.obs, checker=self.checker
        )
        self._tenants[config.name] = account
        return account

    def tenant(self, name: str) -> Optional[TenantAccount]:
        """The named tenant's live account, if registered."""
        return self._tenants.get(name)

    # --- admission ---------------------------------------------------------------

    def submit(self, tenant: str, ip: str) -> int:
        """Admit one geolocate request (or refuse it with a typed reason).

        Returns the request id in either case; refused requests have
        their :class:`ServeResult` available immediately via
        :meth:`result`, admitted ones after the batch that solves them.
        Admission order is part of the contract: target resolution, then
        fault shedding, then the rate window, then the budget — so a
        zero-credit tenant is refused *before any kernel work*, and an
        unknown prefix consumes neither a rate slot nor credits.
        """
        if not self.live.enabled:
            return self._admit(tenant, ip)
        # Live plane attached: time the admission ladder. The admitted
        # path is the hot one (tens of thousands per second), so it only
        # buffers a float and an int here; the buffers are flushed into
        # the plane vectorised at the next batch. A refusal has a result
        # installed already, and pays for rich recording immediately.
        t_start = time.perf_counter()
        request_id = self._admit(tenant, ip)
        admission_s = time.perf_counter() - t_start
        if request_id in self._results:
            self._record_refusal(request_id, tenant, ip, admission_s)
        else:
            self._pending_admission_s.append(admission_s)
        return request_id

    def _admit(self, tenant: str, ip: str) -> int:
        """The admission ladder itself (identical with live on or off)."""
        request_id = self._next_id
        self._next_id += 1
        account = self._tenants.get(tenant)
        if account is None:
            return self._refuse(request_id, tenant, ip, REJECT_UNKNOWN_TENANT)
        column = self.state.column_of(ip)
        if column is None:
            return self._refuse(request_id, tenant, ip, REJECT_UNKNOWN_TARGET)
        if self.faults is not None:
            error = self.faults.api_error("serve", self.faults.next_call())
            if error is not None:
                return self._refuse(
                    request_id,
                    tenant,
                    ip,
                    REJECT_SHED,
                    detail=type(error).__name__,
                )
        wait_s = account.rate_wait_s()
        if wait_s > 0.0:
            return self._refuse(
                request_id,
                tenant,
                ip,
                REJECT_OVER_RATE,
                detail=f"retry in {wait_s:.3f}s",
            )
        if not account.can_afford_query():
            return self._refuse(
                request_id,
                tenant,
                ip,
                REJECT_OVER_BUDGET,
                detail=f"cost {account.config.cost_per_query} exceeds "
                f"remaining {account.ledger.remaining}",
            )
        account.charge_query()
        self._queue.append(ServeRequest(request_id, tenant, ip, column))
        self._admitted_wall[request_id] = time.perf_counter()
        if self.obs.enabled:
            self.obs.event(
                _ev.SERVE_REQUEST,
                t_s=self.clock.now_s,
                request=request_id,
                tenant=tenant,
                ip=ip,
            )
            self.obs.count("serve.requests")
            self.obs.count("serve.admitted")
            self.obs.gauge("serve.queue_depth", len(self._queue))
        return request_id

    def _refuse(
        self, request_id: int, tenant: str, ip: str, reason: str, detail: str = ""
    ) -> int:
        self._results[request_id] = ServeResult(
            request_id, tenant, ip, reason, detail=detail
        )
        if self.obs.enabled:
            self.obs.event(
                _ev.SERVE_REJECT,
                t_s=self.clock.now_s,
                request=request_id,
                tenant=tenant,
                ip=ip,
                reason=reason,
            )
            self.obs.count("serve.requests")
            self.obs.count("serve.rejected")
            self.obs.count(f"serve.rejected.{reason}")
        return request_id

    # --- live telemetry ----------------------------------------------------------

    def set_slo(self, policy: SloPolicy) -> None:
        """Register a per-tenant SLO on the live plane.

        ``policy.name`` names the tenant: the objective is evaluated from
        that tenant's latency sketch plus its refusal counter (a refusal
        is always budget-burning, however fast it was).
        """
        self.live.set_slo(
            policy,
            f"serve.tenant.{policy.name}.latency_s",
            f"serve.tenant.{policy.name}.refusals",
        )
        self._slo_tenants.add(policy.name)

    def _record_refusal(
        self, request_id: int, tenant: str, ip: str, admission_s: float
    ) -> None:
        """Live-plane bookkeeping for one refused admission.

        Refusals are rare and interesting, so (unlike the buffered
        admitted path in :meth:`submit`) they pay for prompt counters, a
        flight record, and the refusal-spike check immediately.
        """
        result = self._results[request_id]
        live = self.live
        live.count("serve.requests")
        live.count("serve.refusals")
        live.count(f"serve.refusals.{result.status}")
        live.count(f"serve.tenant.{tenant}.refusals")
        live.observe("serve.stage.admission_s", admission_s)
        live.flight.record(
            FlightRecord(
                request_id=request_id,
                tenant=tenant,
                target=ip,
                outcome=result.status,
                detail=result.detail,
                stages=(("admission", admission_s),),
                t_wall=time.time(),
            )
        )
        live.check_refusal_spike()

    def _flush_live_batch(
        self,
        seq: int,
        size: int,
        answered: int,
        unique_count: int,
        coalesce_s: float,
        kernel_s: float,
        memo_s: float,
        batch_span_s: float,
        lat_start: int,
        per_tenant: Dict[str, List[float]],
    ) -> None:
        """Fold one solved batch (and buffered admissions) into the plane."""
        live = self.live
        pending = self._pending_admission_s
        if pending:
            live.count("serve.requests", len(pending))
            live.count("serve.admitted", len(pending))
            self._sk_admission.add_many(np.frombuffer(pending, dtype=np.float64))
            self._pending_admission_s = array.array("d")
        live.count("serve.batches")
        live.count("serve.answered", answered)
        if answered < size:
            live.count("serve.no_estimate", size - answered)
        # Batch-shared stages carry per-request multiplicity so sketch
        # sums keep the per-request identity queue+coalesce+kernel+memo
        # == total (the serve_tail bench asserts it).
        self._sk_coalesce.add(coalesce_s, size)
        self._sk_kernel.add(kernel_s, size)
        self._sk_memo.add(memo_s, size)
        # total_i = done - submitted_i and the batch span is done -
        # t_batch, so queue_i = t_batch - submitted_i = total_i - span:
        # the per-request queue waits fall out of the totals the engine
        # already collects, with no per-request work in the batch loop.
        totals = np.asarray(self.wall_latencies_s[lat_start:], dtype=np.float64)
        self._sk_queue.add_many(totals - batch_span_s)
        self._sk_latency.add_many(totals)
        for tenant, tenant_totals in per_tenant.items():
            live.observe_many(f"serve.tenant.{tenant}.latency_s", tenant_totals)
        live.gauge("serve.queue_depth", float(len(self._queue)))
        live.gauge("serve.batch_occupancy", size / self.max_batch)
        self._columns_seen += unique_count
        live.gauge(
            "serve.memo_hit_ratio", self.column_cache_hits / self._columns_seen
        )
        violations = len(getattr(self.checker, "violations", ()))
        if violations > self._violations_seen:
            # A record-mode checker accumulated new violations during
            # this batch: freeze the recent-request ring for post-mortem.
            self._violations_seen = violations
            live.dump_flight("invariant-violation")

    # --- batching ----------------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet solved."""
        return len(self._queue)

    def process_one_batch(self) -> int:
        """Coalesce and solve at most ``max_batch`` queued requests.

        Requests are deduplicated to unique target columns, and columns
        already solved in an earlier batch are answered from the memo —
        the kernel runs only on cold columns. Returns the number of
        requests answered (0 on an empty queue — draining a queue shorter
        than ``max_batch`` solves a partial batch, which the coalescing
        boundary tests pin).
        """
        if not self._queue:
            return 0
        live = self.live
        live_on = live.enabled
        # Stage attribution (live plane only): queue wait ends when the
        # batch starts; coalesce covers drain + dedup + checks; kernel is
        # the span; memo is the answer gather. The four sum exactly to
        # the admission-to-answer total per request, which the serve_tail
        # bench section asserts.
        t_batch = time.perf_counter() if live_on else 0.0
        size = min(self.max_batch, len(self._queue))
        batch = [self._queue.popleft() for _ in range(size)]
        self.batches_processed += 1
        seq = self.batches_processed
        columns = np.array([request.column for request in batch], dtype=np.intp)
        unique_columns, inverse = np.unique(columns, return_inverse=True)
        fresh = unique_columns[~self._solved[unique_columns]]
        cached = int(unique_columns.size - fresh.size)
        self.column_cache_hits += cached
        if fresh.size and self.checker.enabled and self.state.target_true_lats is not None:
            self.checker.check_cbg_containment(
                self.state.vp_lats,
                self.state.vp_lons,
                self.state.rtt_matrix[:, fresh],
                self.state.target_true_lats[fresh],
                self.state.target_true_lons[fresh],
                self.state.soi_fraction,
                f"serve batch #{seq} ({fresh.size} columns)",
            )
        t_solve = time.perf_counter() if live_on else 0.0
        with self.obs.span(
            "serve:batch",
            clock=self.clock,
            batch=seq,
            size=size,
            columns=int(fresh.size),
            cached=cached,
        ):
            if fresh.size:
                fresh_lats, fresh_lons = self.solver.centroids(fresh, obs=self.obs)
                self._answer_lats[fresh] = fresh_lats
                self._answer_lons[fresh] = fresh_lons
                self._solved[fresh] = True
        t_gather = time.perf_counter() if live_on else 0.0
        lats = self._answer_lats[unique_columns]
        lons = self._answer_lons[unique_columns]
        done_wall = time.perf_counter()
        if live_on:
            coalesce_s = t_solve - t_batch
            kernel_s = t_gather - t_solve
            memo_s = done_wall - t_gather
            batch_span_s = done_wall - t_batch
            batch_wall = time.time()
            sample = live.flight_sample
            slo_tenants = self._slo_tenants
            # Per-request totals for this batch are exactly the slice of
            # wall_latencies_s the loop below appends (already collected
            # with the plane off), so the hot loop adds no bookkeeping;
            # queue waits are derived vectorised in the flush.
            lat_start = len(self.wall_latencies_s)
            per_tenant: Dict[str, List[float]] = {}
        answered = 0
        for position, request in enumerate(batch):
            lat = lats[inverse[position]]
            if np.isnan(lat):
                result = ServeResult(
                    request.request_id,
                    request.tenant,
                    request.ip,
                    STATUS_NO_ESTIMATE,
                    batch=seq,
                )
            else:
                answered += 1
                result = ServeResult(
                    request.request_id,
                    request.tenant,
                    request.ip,
                    STATUS_OK,
                    lat=float(lat),
                    lon=float(lons[inverse[position]]),
                    batch=seq,
                )
            self._results[request.request_id] = result
            submitted = self._admitted_wall.pop(request.request_id, None)
            if submitted is not None:
                elapsed = done_wall - submitted
                self.wall_latencies_s.append(elapsed)
                if live_on:
                    if slo_tenants and request.tenant in slo_tenants:
                        per_tenant.setdefault(request.tenant, []).append(elapsed)
                    # OK-request flights are sampled (1-in-flight_sample)
                    # so the fixed ring spans more than a few
                    # milliseconds of healthy traffic; anomalies
                    # (no-estimate, and refusals at admission) are
                    # always recorded.
                    if result.status != STATUS_OK or request.request_id % sample == 0:
                        live.flight.record(
                            FlightRecord(
                                request_id=request.request_id,
                                tenant=request.tenant,
                                target=request.ip,
                                outcome=result.status,
                                batch=seq,
                                stages=(
                                    ("queue", t_batch - submitted),
                                    ("coalesce", coalesce_s),
                                    ("kernel", kernel_s),
                                    ("memo", memo_s),
                                ),
                                t_wall=batch_wall,
                            )
                        )
        if live_on:
            self._flush_live_batch(
                seq, size, answered, unique_columns.size,
                coalesce_s, kernel_s, memo_s, batch_span_s, lat_start, per_tenant,
            )
        if self.obs.enabled:
            self.obs.event(
                _ev.SERVE_BATCH,
                t_s=self.clock.now_s,
                batch=seq,
                size=size,
                columns=int(fresh.size),
                cached=cached,
                answered=answered,
            )
            if cached:
                self.obs.count("serve.column_cache_hits", cached)
            self.obs.count("serve.batches")
            self.obs.count("serve.answered", answered)
            if answered < size:
                self.obs.count("serve.no_estimate", size - answered)
            self.obs.observe("serve.batch_size", size)
            self.obs.gauge("serve.queue_depth", len(self._queue))
        return size

    def drain(self) -> int:
        """Solve every queued request; returns how many were answered."""
        total = 0
        while self._queue:
            total += self.process_one_batch()
        return total

    # --- results -----------------------------------------------------------------

    def result(self, request_id: int) -> Optional[ServeResult]:
        """The result for a request id, or ``None`` while still queued."""
        return self._results.get(request_id)

    def geolocate(
        self, tenant: str, ips: Sequence[str]
    ) -> List[ServeResult]:
        """Submit a list of addresses and drain; results in request order.

        The synchronous convenience wrapper: an empty list is a valid
        query and returns an empty list (no kernel work, no events).
        """
        request_ids = [self.submit(tenant, ip) for ip in ips]
        self.drain()
        return [self._results[request_id] for request_id in request_ids]

    def stats(self) -> Dict[str, Union[int, float]]:
        """Engine-lifetime admission and batch totals (plain dict)."""
        by_status: Dict[str, int] = {}
        for result in self._results.values():
            by_status[result.status] = by_status.get(result.status, 0) + 1
        return {
            "requests": self._next_id,
            "queued": len(self._queue),
            "batches": self.batches_processed,
            "epoch": self.epoch,
            "column_cache_hits": self.column_cache_hits,
            **{f"status.{status}": count for status, count in sorted(by_status.items())},
        }
