"""Per-tenant accounting for the serving engine.

The paper's measurement platform already has both halves of multi-tenant
admission control — :class:`~repro.atlas.credits.CreditLedger` (budgeted
spend with the ``credits.conservation`` invariant) and
:class:`~repro.atlas.ratelimit.SlidingWindowRateLimiter` (windowed request
caps over a simulated clock). Serving generalizes them from "one platform
account" to "one account per tenant": every tenant of a
:class:`~repro.serve.engine.ServeEngine` owns a ledger and, optionally, a
limiter, both threaded onto the engine's observer and invariant checker so
interleaved tenants share one deterministic event stream and every charge
is conservation-checked.

Admission is *non-blocking*: a request that would have to wait for a rate
slot or would overdraw the budget is refused with a typed reason instead
of charging the clock — the serving analogue of
:meth:`~repro.atlas.ratelimit.SlidingWindowRateLimiter.acquire_or_raise`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.atlas.clock import SimClock
from repro.atlas.credits import CreditLedger
from repro.atlas.ratelimit import SlidingWindowRateLimiter
from repro.check.invariants import NULL_CHECKER
from repro.errors import ConfigurationError
from repro.obs.observer import NULL_OBSERVER


@dataclass(frozen=True)
class TenantConfig:
    """Admission-control knobs for one serving tenant.

    Attributes:
        name: tenant identifier (non-empty; appears in events and the
            per-kind ledger key ``serve:<name>``).
        credit_budget: maximum credits the tenant may spend; ``None`` is
            unlimited. A zero budget admits nothing — the degenerate case
            the ledger edge-case tests pin.
        cost_per_query: credits one admitted query charges (>= 0).
        max_requests_per_window: rate cap per sliding window; ``None``
            disables rate limiting for the tenant.
        window_s: sliding-window length in simulated seconds.
    """

    name: str
    credit_budget: Optional[int] = None
    cost_per_query: int = 1
    max_requests_per_window: Optional[int] = None
    window_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("tenant name must be non-empty")
        if self.cost_per_query < 0:
            raise ConfigurationError(
                f"cost_per_query must be non-negative: {self.cost_per_query}"
            )
        if self.credit_budget is not None and self.credit_budget < 0:
            raise ConfigurationError(
                f"credit_budget must be non-negative: {self.credit_budget}"
            )


class TenantAccount:
    """Live admission state for one tenant: ledger plus optional limiter."""

    def __init__(
        self,
        config: TenantConfig,
        clock: SimClock,
        obs=NULL_OBSERVER,
        checker=NULL_CHECKER,
    ) -> None:
        self.config = config
        self.ledger = CreditLedger(
            budget=config.credit_budget, observer=obs, checker=checker
        )
        self.limiter: Optional[SlidingWindowRateLimiter] = None
        if config.max_requests_per_window is not None:
            self.limiter = SlidingWindowRateLimiter(
                clock,
                config.max_requests_per_window,
                config.window_s,
                obs=obs,
            )

    def rate_wait_s(self) -> float:
        """Seconds until a rate slot frees up (0 = admit now)."""
        if self.limiter is None:
            return 0.0
        return self.limiter.would_wait()

    def can_afford_query(self) -> bool:
        """Whether one query's cost fits the remaining budget."""
        return self.ledger.can_afford(self.config.cost_per_query)

    def charge_query(self) -> None:
        """Consume one admitted query: rate slot plus credits.

        Call only after :meth:`rate_wait_s` returned 0 and
        :meth:`can_afford_query` returned True — the slot acquisition is
        then free (no clock charge) and the ledger charge cannot raise.
        """
        if self.limiter is not None:
            self.limiter.acquire("serve")
        self.ledger.charge(
            self.config.cost_per_query, kind=f"serve:{self.config.name}"
        )
