"""Query-time state: the serving half of a :class:`Scenario`.

A :class:`~repro.experiments.scenario.Scenario` bundles two very different
lifetimes. *Build-time* state — the world generator, the platform, the
measurement client, the sanitization bookkeeping — exists to run campaigns
and is only needed while measurements happen. *Query-time* state — the
registered VP coordinates, the min-RTT matrix, and the target address
index — is everything a geolocate query needs, and it is immutable once
the campaigns are done.

:class:`QueryState` is that second half, split out so a resident serving
engine (:mod:`repro.serve.engine`) can hold only the arrays it reads:
loading one through :meth:`QueryState.from_scenario` forces the RTT
campaign exactly once (replayed from the content-addressed artifact cache
on warm starts), after which the world, platform, and client are free to
be dropped. Ground-truth target coordinates ride along for evaluation and
for the armed ``cbg.containment`` invariant check; a real deployment
would not have them, and nothing in the serving path requires them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.constants import SOI_FRACTION_CBG


@dataclass
class QueryState:
    """Everything a geolocate query reads, frozen at load time.

    Attributes:
        vp_lats: registered vantage-point latitudes (degrees).
        vp_lons: registered vantage-point longitudes, aligned.
        rtt_matrix: min-RTT matrix, shape (VPs, targets); NaN = no answer.
        target_ips: target addresses, aligned with the matrix columns.
        soi_fraction: RTT-to-distance conversion speed for CBG.
        target_true_lats: optional ground-truth latitudes (evaluation and
            armed containment checks only).
        target_true_lons: optional ground-truth longitudes, aligned.
        seed: the world seed the state was measured under (provenance).
    """

    vp_lats: np.ndarray
    vp_lons: np.ndarray
    rtt_matrix: np.ndarray
    target_ips: Tuple[str, ...]
    soi_fraction: float = SOI_FRACTION_CBG
    target_true_lats: Optional[np.ndarray] = None
    target_true_lons: Optional[np.ndarray] = None
    seed: Optional[int] = None
    _column_by_ip: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.rtt_matrix = np.asarray(self.rtt_matrix, dtype=np.float64)
        if self.rtt_matrix.ndim != 2:
            raise ValueError(
                f"rtt_matrix must be 2-D, got shape {self.rtt_matrix.shape}"
            )
        if len(self.target_ips) != self.rtt_matrix.shape[1]:
            raise ValueError(
                f"{len(self.target_ips)} target ips vs "
                f"{self.rtt_matrix.shape[1]} matrix columns"
            )
        self._column_by_ip = {
            ip: column for column, ip in enumerate(self.target_ips)
        }

    @property
    def n_targets(self) -> int:
        """Number of addressable targets."""
        return len(self.target_ips)

    @property
    def n_vps(self) -> int:
        """Number of vantage points."""
        return self.rtt_matrix.shape[0]

    def column_of(self, ip: str) -> Optional[int]:
        """Matrix column of a target address, or ``None`` when unknown."""
        return self._column_by_ip.get(ip)

    @classmethod
    def from_scenario(cls, scenario) -> "QueryState":
        """Extract the query-time half of a built scenario.

        Forces the VP-to-target RTT campaign (cached across calls on the
        scenario, and replayed from the artifact cache when one is
        wired), then copies out only the arrays a query reads.
        """
        return cls(
            vp_lats=scenario.vp_lats,
            vp_lons=scenario.vp_lons,
            rtt_matrix=scenario.rtt_matrix(),
            target_ips=tuple(scenario.target_ips),
            target_true_lats=scenario.target_true_lats,
            target_true_lons=scenario.target_true_lons,
            seed=scenario.world.config.seed,
        )

    # --- shared-memory arena -----------------------------------------------

    def share(self):
        """Publish the query state into a shared-memory arena.

        Every array a query reads — VP coordinates, the RTT matrix, the
        target address table (as fixed-width bytes), optional ground
        truth — goes into one read-only segment, so a fleet of serving
        workers holds a single physical copy of the matrix instead of one
        per fork. Returns the owning
        :class:`~repro.world.arrays.SharedArena`; pass its ``token`` to
        :meth:`attach` in the workers. Gate with
        :func:`~repro.world.arrays.arena_supported`.
        """
        from repro.world.arrays import SharedArena

        payload = {
            "vp_lats": np.asarray(self.vp_lats, dtype=np.float64),
            "vp_lons": np.asarray(self.vp_lons, dtype=np.float64),
            "rtt_matrix": self.rtt_matrix,
            "target_ips": np.array(self.target_ips, dtype="S"),
            "meta": np.array(
                [
                    -1 if self.seed is None else int(self.seed),
                    0 if self.target_true_lats is None else 1,
                ],
                dtype=np.int64,
            ),
            "soi": np.array([self.soi_fraction], dtype=np.float64),
        }
        if self.target_true_lats is not None:
            payload["target_true_lats"] = np.asarray(
                self.target_true_lats, dtype=np.float64
            )
            payload["target_true_lons"] = np.asarray(
                self.target_true_lons, dtype=np.float64
            )
        return SharedArena.create(payload)

    @classmethod
    def attach(cls, token) -> Tuple["QueryState", object]:
        """Rebuild a query state over an arena's read-only views.

        Returns ``(state, arena)``; the caller keeps the arena handle
        alive while the state is in use. The arrays are zero-copy views
        into the shared segment — byte-identical to the published state
        (pinned by the serve tests).
        """
        from repro.world.arrays import SharedArena

        arena = SharedArena.attach(token)
        meta = arena.array("meta")
        has_truth = bool(meta[1])
        state = cls(
            vp_lats=arena.array("vp_lats"),
            vp_lons=arena.array("vp_lons"),
            rtt_matrix=arena.array("rtt_matrix"),
            target_ips=tuple(
                ip.decode("ascii") for ip in arena.array("target_ips")
            ),
            soi_fraction=float(arena.array("soi")[0]),
            target_true_lats=arena.array("target_true_lats") if has_truth else None,
            target_true_lons=arena.array("target_true_lons") if has_truth else None,
            seed=None if int(meta[0]) < 0 else int(meta[0]),
        )
        return state, arena
