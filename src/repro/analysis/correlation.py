"""Correlation analysis for the street level insight re-evaluation (§5.2.3).

The street level technique assumes the *order* of landmark-target measured
distances matches the order of geographic distances. The replication tests
this with the Pearson correlation coefficient between measured and
geographic distances per target, finding a median of 0.08 — essentially no
correlation.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence


def pearson(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Pearson correlation coefficient of two aligned samples.

    Returns:
        The coefficient in ``[-1, 1]``, or ``None`` when fewer than two
        points exist or either sample has zero variance.

    Raises:
        ValueError: if the samples have different lengths.
    """
    if len(xs) != len(ys):
        raise ValueError(f"length mismatch: {len(xs)} vs {len(ys)}")
    n = len(xs)
    if n < 2:
        return None
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0.0 or var_y <= 0.0:
        return None
    return cov / math.sqrt(var_x * var_y)
