"""Distribution comparison utilities (CDF similarity)."""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


def ks_distance(
    sample_a: Iterable[Optional[float]], sample_b: Iterable[Optional[float]]
) -> float:
    """Two-sample Kolmogorov-Smirnov distance: sup |CDF_a - CDF_b|.

    None/NaN entries are dropped. Used to quantify "the curves are
    similar" claims (e.g. the paper's statement that shortest ping tracks
    CBG).

    Raises:
        ValueError: when either sample has no defined values.
    """
    a = np.sort(_clean(sample_a))
    b = np.sort(_clean(sample_b))
    if a.size == 0 or b.size == 0:
        raise ValueError("KS distance needs non-empty samples")
    # Evaluate both empirical CDFs on the union of sample points.
    grid = np.concatenate([a, b])
    grid.sort(kind="mergesort")
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def median_ratio(
    sample_a: Iterable[Optional[float]], sample_b: Iterable[Optional[float]]
) -> float:
    """Ratio of medians (a over b), on the defined values.

    Raises:
        ValueError: on empty samples or a zero denominator median.
    """
    a = _clean(sample_a)
    b = _clean(sample_b)
    if a.size == 0 or b.size == 0:
        raise ValueError("median ratio needs non-empty samples")
    denominator = float(np.median(b))
    if denominator == 0.0:
        raise ValueError("median of the second sample is zero")
    return float(np.median(a)) / denominator


def _clean(values: Iterable[Optional[float]]) -> np.ndarray:
    kept = [v for v in values if v is not None]
    array = np.asarray(kept, dtype=np.float64)
    return array[~np.isnan(array)]
