"""Error-distance statistics used throughout the evaluation."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import CITY_LEVEL_KM, STREET_LEVEL_KM


def _clean(values: Iterable[Optional[float]]) -> np.ndarray:
    """Drop None/NaN entries and return a float array."""
    kept = [v for v in values if v is not None]
    array = np.asarray(kept, dtype=np.float64)
    return array[~np.isnan(array)]


def median(values: Iterable[Optional[float]]) -> float:
    """Median of the defined values.

    Raises:
        ValueError: when no defined values exist.
    """
    array = _clean(values)
    if array.size == 0:
        raise ValueError("median of no values")
    return float(np.median(array))


def percentile(values: Iterable[Optional[float]], q: float) -> float:
    """q-th percentile (0-100) of the defined values."""
    array = _clean(values)
    if array.size == 0:
        raise ValueError("percentile of no values")
    return float(np.percentile(array, q))


def fraction_within(values: Iterable[Optional[float]], threshold: float) -> float:
    """Fraction of defined values at or below a threshold.

    Undefined entries (no estimate) count in the denominator — a technique
    that produces no answer is not rewarded for it.
    """
    values = list(values)
    if not values:
        return 0.0
    array = np.asarray(
        [v if v is not None else np.inf for v in values], dtype=np.float64
    )
    array = np.where(np.isnan(array), np.inf, array)
    return float((array <= threshold).mean())


def cdf_points(values: Iterable[Optional[float]]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the defined values: ``(sorted x, P(X <= x))``."""
    array = np.sort(_clean(values))
    if array.size == 0:
        return np.array([]), np.array([])
    y = np.arange(1, array.size + 1) / array.size
    return array, y


def cdf_at(values: Iterable[Optional[float]], xs: Sequence[float]) -> List[float]:
    """The empirical CDF evaluated at the given thresholds."""
    return [fraction_within(values, x) for x in xs]


def summarize_errors(errors: Iterable[Optional[float]]) -> Dict[str, float]:
    """The paper's headline statistics for a list of error distances.

    Returns a dict with the median error, the city-level fraction
    (<= 40 km), and the street-level fraction (<= 1 km).
    """
    errors = list(errors)
    return {
        "median_km": median(errors),
        "city_level_fraction": fraction_within(errors, CITY_LEVEL_KM),
        "street_level_fraction": fraction_within(errors, STREET_LEVEL_KM),
        "count": float(len(errors)),
    }
