"""Evaluation helpers: error metrics, CDFs, correlations, table formatting."""

from repro.analysis.metrics import (
    cdf_points,
    fraction_within,
    median,
    percentile,
    summarize_errors,
)
from repro.analysis.correlation import pearson
from repro.analysis.tables import format_table

__all__ = [
    "cdf_points",
    "fraction_within",
    "median",
    "percentile",
    "summarize_errors",
    "pearson",
    "format_table",
]
