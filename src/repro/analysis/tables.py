"""Plain-text table rendering for experiment and benchmark output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column titles.
        rows: row cells; everything is str()-ed.

    Returns:
        The table as a single string (no trailing newline).
    """
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines = [fmt(list(headers)), fmt(["-" * width for width in widths])]
    lines.extend(fmt(row) for row in text_rows)
    return "\n".join(lines)
