"""GeoJSON export: put worlds, estimates, and CBG regions on a map.

Everything this library manipulates is geographic, and the fastest way to
debug a geolocation technique is to *look* at it. These helpers emit
RFC 7946 GeoJSON FeatureCollections that drop straight into any GIS tool
(QGIS, geojson.io, kepler.gl):

* :func:`world_features` — hosts of a world, colour-coded by kind, with
  true-vs-recorded displacement lines for mislocated hosts;
* :func:`dataset_features` — a :class:`repro.dataset.GeolocationDataset`'s
  estimates;
* :func:`region_feature` — a CBG :class:`IntersectionRegion`'s constraint
  circles and centroid;
* :func:`dump` — serialise any feature list to a file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.geo.coords import GeoPoint, destination
from repro.geo.regions import IntersectionRegion
from repro.world.hosts import HostKind
from repro.world.world import World

#: Marker colours per host kind (GeoJSON simplestyle convention).
_KIND_COLOURS = {
    HostKind.ANCHOR: "#d62728",
    HostKind.PROBE: "#1f77b4",
    HostKind.REPRESENTATIVE: "#9467bd",
    HostKind.WEBSERVER: "#2ca02c",
}


def _point(location: GeoPoint) -> Dict[str, object]:
    return {"type": "Point", "coordinates": [location.lon, location.lat]}


def _feature(geometry: Dict[str, object], properties: Dict[str, object]) -> Dict[str, object]:
    return {"type": "Feature", "geometry": geometry, "properties": properties}


def world_features(
    world: World,
    kinds: Sequence[HostKind] = (HostKind.ANCHOR, HostKind.PROBE),
    max_hosts: Optional[int] = None,
    displacement_lines: bool = True,
) -> List[Dict[str, object]]:
    """Features for a world's hosts.

    Args:
        world: the world to export.
        kinds: which host kinds to include.
        max_hosts: optional cap (hosts are taken in id order).
        displacement_lines: also emit a LineString from recorded to true
            position for every host whose metadata is wrong — the §4.3
            sanitization targets, made visible.
    """
    features: List[Dict[str, object]] = []
    count = 0
    wanted = set(kinds)
    for host in world.hosts:
        if host.kind not in wanted:
            continue
        if max_hosts is not None and count >= max_hosts:
            break
        count += 1
        features.append(
            _feature(
                _point(host.recorded_location),
                {
                    "ip": host.ip,
                    "kind": host.kind.value,
                    "asn": host.asn,
                    "mislocated": host.mislocated,
                    "marker-color": _KIND_COLOURS.get(host.kind, "#7f7f7f"),
                },
            )
        )
        if displacement_lines and host.geolocation_error_km > 0.5:
            features.append(
                _feature(
                    {
                        "type": "LineString",
                        "coordinates": [
                            [host.recorded_location.lon, host.recorded_location.lat],
                            [host.true_location.lon, host.true_location.lat],
                        ],
                    },
                    {
                        "ip": host.ip,
                        "displacement_km": round(host.geolocation_error_km, 1),
                        "stroke": "#ff7f0e",
                    },
                )
            )
    return features


def dataset_features(dataset) -> List[Dict[str, object]]:
    """Features for a :class:`repro.dataset.GeolocationDataset`.

    One point per (record, technique) estimate; the preferred estimate is
    flagged so styling can emphasise it.
    """
    features: List[Dict[str, object]] = []
    for record in dataset:
        for technique, pair in sorted(record.estimates.items()):
            if pair is None:
                continue
            features.append(
                _feature(
                    {"type": "Point", "coordinates": [pair[1], pair[0]]},
                    {
                        "ip": record.ip,
                        "technique": technique,
                        "quality": record.quality,
                        "preferred": technique == record.preferred_technique,
                    },
                )
            )
    return features


def _circle_polygon(center: GeoPoint, radius_km: float, points: int = 48) -> Dict[str, object]:
    """A polygon approximating a spherical cap's boundary."""
    ring = []
    for index in range(points):
        vertex = destination(center, 360.0 * index / points, radius_km)
        ring.append([vertex.lon, vertex.lat])
    ring.append(ring[0])
    return {"type": "Polygon", "coordinates": [ring]}


def region_feature(
    region: IntersectionRegion, max_circles: int = 12
) -> List[Dict[str, object]]:
    """Features for a CBG region: constraint circles plus the centroid.

    Only the ``max_circles`` tightest circles are drawn — the huge ones
    would cover the map without adding information.
    """
    features: List[Dict[str, object]] = []
    circles = sorted(region.circles, key=lambda c: c.radius_km)[:max_circles]
    for circle in circles:
        features.append(
            _feature(
                _circle_polygon(circle.center, circle.radius_km),
                {
                    "radius_km": round(circle.radius_km, 1),
                    "fill-opacity": 0.05,
                    "stroke": "#1f77b4",
                },
            )
        )
    features.append(
        _feature(
            _point(region.centroid),
            {"role": "cbg-centroid", "marker-color": "#d62728"},
        )
    )
    return features


def collection(features: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Wrap features into a FeatureCollection."""
    return {"type": "FeatureCollection", "features": list(features)}


def dump(features: Iterable[Dict[str, object]], path: Union[str, Path]) -> None:
    """Write a FeatureCollection to a ``.geojson`` file."""
    Path(path).write_text(json.dumps(collection(features)))
