"""Terminal plots: CDF curves and scatter clouds rendered as text.

The paper's figures are CDFs and scatter plots; offline benchmarks cannot
pop up matplotlib windows, so experiments render their series as compact
ASCII panels. These are deliberately simple — enough to eyeball a curve's
shape (where it rises, where series cross) straight from the benchmark log.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

_SERIES_MARKS = "*o+x#@%&"


def _log_positions(low: float, high: float, width: int) -> List[float]:
    """Log-spaced x positions from low to high inclusive."""
    if low <= 0:
        low = min(0.1, high / 1000.0 if high > 0 else 0.1)
    if high <= low:
        high = low * 10.0
    step = (math.log10(high) - math.log10(low)) / max(width - 1, 1)
    return [10 ** (math.log10(low) + i * step) for i in range(width)]


def ascii_cdf(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "km",
    log_x: bool = True,
) -> str:
    """Render one or more CDFs on a shared (optionally log) x axis.

    Args:
        series: label -> sample values (None/NaN entries are skipped).
        width: plot width in characters.
        height: plot height in rows.
        x_label: x-axis unit label.
        log_x: log-scale the x axis (the paper's figures all do).

    Returns:
        The rendered panel (no trailing newline); empty series produce a
        placeholder message.
    """
    cleaned: Dict[str, List[float]] = {}
    for label, values in series.items():
        kept = sorted(
            v for v in values if v is not None and not (isinstance(v, float) and math.isnan(v))
        )
        if kept:
            cleaned[label] = kept
    if not cleaned:
        return "(no data to plot)"

    low = min(values[0] for values in cleaned.values())
    high = max(values[-1] for values in cleaned.values())
    if log_x:
        xs = _log_positions(max(low, 1e-3), high, width)
    else:
        span = (high - low) or 1.0
        xs = [low + span * i / (width - 1) for i in range(width)]

    grid = [[" "] * width for _ in range(height)]
    for series_index, (label, values) in enumerate(sorted(cleaned.items())):
        mark = _SERIES_MARKS[series_index % len(_SERIES_MARKS)]
        count = len(values)
        position = 0
        for column, x in enumerate(xs):
            while position < count and values[position] <= x:
                position += 1
            fraction = position / count
            row = height - 1 - int(round(fraction * (height - 1)))
            grid[row][column] = mark

    lines = []
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        prefix = f"{fraction:4.2f} |"
        lines.append(prefix + "".join(row))
    axis = "     +" + "-" * width
    lines.append(axis)
    left = f"{xs[0]:.3g}"
    right = f"{xs[-1]:.3g} {x_label}" + (" (log)" if log_x else "")
    padding = " " * max(1, width - len(left) - len(right))
    lines.append("      " + left + padding + right)
    legend = "      " + "  ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]}={label}"
        for i, label in enumerate(sorted(cleaned))
    )
    lines.append(legend)
    return "\n".join(lines)


def ascii_scatter(
    points: Iterable[Tuple[float, float]],
    width: int = 56,
    height: int = 18,
    x_label: str = "x",
    y_label: str = "y",
    log: bool = True,
) -> str:
    """Render a scatter cloud (optionally log-log).

    Args:
        points: (x, y) pairs; non-finite pairs are skipped.
        width: plot width in characters.
        height: plot height in rows.
        x_label: x-axis label.
        y_label: y-axis label.
        log: log-scale both axes.
    """
    kept = [
        (x, y)
        for x, y in points
        if all(map(math.isfinite, (x, y))) and (not log or (x > 0 and y > 0))
    ]
    if not kept:
        return "(no data to plot)"

    def fwd(value: float) -> float:
        return math.log10(value) if log else value

    xs = [fwd(x) for x, _y in kept]
    ys = [fwd(y) for _x, y in kept]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        column = int((x - x_low) / x_span * (width - 1))
        row = height - 1 - int((y - y_low) / y_span * (height - 1))
        current = grid[row][column]
        if current == " ":
            grid[row][column] = "."
        elif current == ".":
            grid[row][column] = "o"
        else:
            grid[row][column] = "#"

    lines = [f"{y_label}" + (" (log)" if log else "")]
    lines.extend("  |" + "".join(row) for row in grid)
    lines.append("  +" + "-" * width)
    lines.append(f"   {x_label}" + (" (log)" if log else "") + f"  [{len(kept)} points]")
    return "\n".join(lines)
