"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A world, platform, or algorithm was configured with invalid values."""


class MeasurementError(ReproError):
    """A measurement could not be scheduled or executed."""


class CreditExhaustedError(MeasurementError):
    """The RIPE Atlas credit budget does not cover the requested measurement."""


class RateLimitError(MeasurementError):
    """A probing-rate or API rate limit would be exceeded."""


class UnknownHostError(ReproError):
    """An IP address does not belong to any host in the simulated world."""


class GeolocationError(ReproError):
    """A geolocation technique could not produce an estimate."""


class EmptyRegionError(GeolocationError):
    """CBG constraints admit no feasible region (circles do not intersect)."""
