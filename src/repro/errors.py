"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A world, platform, or algorithm was configured with invalid values."""


class InvariantViolation(ReproError):
    """A runtime correctness invariant failed (see :mod:`repro.check`).

    Raised by an :class:`repro.check.InvariantChecker` in raise mode when a
    registered physics/accounting invariant — RTT above the speed-of-
    Internet floor, monotone traceroute hops, credit conservation, CBG
    containment of the ground truth, cache digest integrity, executor
    parity — does not hold. The violation has already been recorded on the
    campaign observer (an ``invariant-violation`` event plus ``check.*``
    counters) by the time this propagates.
    """


class MeasurementError(ReproError):
    """A measurement could not be scheduled or executed."""


class CreditExhaustedError(MeasurementError):
    """The RIPE Atlas credit budget does not cover the requested measurement."""


class RateLimitError(MeasurementError):
    """A probing-rate or API rate limit would be exceeded."""


class AtlasApiError(MeasurementError):
    """A transient RIPE Atlas API failure (timeout, 429, 5xx).

    These are the operational failures "Day in the Life of RIPE Atlas"
    documents and the fault layer (:mod:`repro.faults`) injects. They are
    *retryable*: :class:`repro.atlas.resilient.ResilientClient` backs off
    and tries again, charging the simulated clock for every attempt.

    Attributes:
        cost_s: simulated seconds the failed call consumed before the error
            surfaced (charged to the clock at the injection site).
    """

    #: Whether a retry can plausibly succeed (overridden per subclass).
    retryable = True

    def __init__(self, message: str, cost_s: float = 0.0) -> None:
        super().__init__(message)
        self.cost_s = cost_s


class ApiTimeoutError(AtlasApiError):
    """The API call timed out before returning a response."""


class ApiRateLimitError(AtlasApiError, RateLimitError):
    """The API answered 429 Too Many Requests.

    Attributes:
        retry_after_s: the server's suggested wait before retrying.
    """

    def __init__(
        self, message: str, cost_s: float = 0.0, retry_after_s: float = 30.0
    ) -> None:
        super().__init__(message, cost_s=cost_s)
        self.retry_after_s = retry_after_s


class ApiServerError(AtlasApiError):
    """The API answered with a 5xx server error.

    Attributes:
        status: the HTTP-like status code (500-class).
    """

    def __init__(self, message: str, cost_s: float = 0.0, status: int = 503) -> None:
        super().__init__(message, cost_s=cost_s)
        self.status = status


class ProbeDisconnectedError(MeasurementError):
    """A measurement was requested from a probe that is offline."""


class UnknownHostError(ReproError):
    """An IP address does not belong to any host in the simulated world."""


class GeolocationError(ReproError):
    """A geolocation technique could not produce an estimate."""


class EmptyRegionError(GeolocationError):
    """CBG constraints admit no feasible region (circles do not intersect)."""
