"""IPv4 addresses, prefixes, and deterministic address allocation.

Addresses are represented as dotted-quad strings at API boundaries (matching
what a measurement platform returns) and as integers internally. The
replicated techniques reason in terms of /24 prefixes — the million scale
paper's vantage-point selection probes three *representatives* inside the
target's /24 — so /24 helpers get first-class treatment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import ConfigurationError


def ip_to_int(ip: str) -> int:
    """Parse a dotted-quad IPv4 address into a 32-bit integer.

    Raises:
        ValueError: if the string is not a valid IPv4 address.
    """
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise ValueError(f"not an IPv4 address: {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"octet out of range in {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Format a 32-bit integer as a dotted-quad IPv4 address.

    Raises:
        ValueError: if the value does not fit in 32 bits.
    """
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"not a 32-bit value: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def prefix24_of(ip: str) -> "Prefix":
    """The /24 prefix containing an address."""
    return Prefix(ip_to_int(ip) & 0xFFFFFF00, 24)


def same_prefix24(ip_a: str, ip_b: str) -> bool:
    """Whether two addresses share a /24 prefix."""
    return (ip_to_int(ip_a) & 0xFFFFFF00) == (ip_to_int(ip_b) & 0xFFFFFF00)


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 prefix: a base address (masked) plus a prefix length."""

    base: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ValueError(f"prefix length out of range: {self.length}")
        mask = self.mask
        if self.base & ~mask & 0xFFFFFFFF:
            raise ValueError(f"base {int_to_ip(self.base)} has bits below /{self.length}")

    @property
    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains(self, ip: str) -> bool:
        """Whether an address falls inside this prefix."""
        return (ip_to_int(ip) & self.mask) == self.base

    def contains_int(self, value: int) -> bool:
        """Whether an integer address falls inside this prefix."""
        return (value & self.mask) == self.base

    @property
    def size(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (32 - self.length)

    def addresses(self) -> Iterator[str]:
        """Iterate every address in the prefix (use only on small prefixes)."""
        for offset in range(self.size):
            yield int_to_ip(self.base + offset)

    def __str__(self) -> str:
        return f"{int_to_ip(self.base)}/{self.length}"

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` notation."""
        try:
            base_text, length_text = text.split("/")
        except ValueError as exc:
            raise ValueError(f"not CIDR notation: {text!r}") from exc
        return cls(ip_to_int(base_text), int(length_text))


class AddressAllocator:
    """Hands out disjoint prefixes and host addresses deterministically.

    The allocator walks the unicast space from ``base`` upward in /16 blocks;
    each AS claims one or more /16s, and hosts receive consecutive /24s (or
    individual addresses) within their AS's blocks. Determinism comes from
    allocation order, which the world builder fixes by AS number.
    """

    def __init__(self, first_octet: int = 11) -> None:
        """Start allocating at ``first_octet.0.0.0`` (default avoids 10/8)."""
        if not 1 <= first_octet <= 223:
            raise ConfigurationError(f"first octet must be unicast: {first_octet}")
        self._next_slash16 = first_octet << 24

    def allocate_slash16(self) -> Prefix:
        """Claim the next free /16 block.

        Raises:
            ConfigurationError: if the unicast space is exhausted.
        """
        base = self._next_slash16
        if base > (223 << 24) + 0xFFFF0000:
            raise ConfigurationError("IPv4 allocation space exhausted")
        self._next_slash16 = base + 0x10000
        return Prefix(base, 16)


class Slash24Pool:
    """Allocates /24s and host addresses within one AS's /16 blocks."""

    def __init__(self, allocator: AddressAllocator) -> None:
        self._allocator = allocator
        self._blocks: List[Prefix] = []
        self._next_slash24 = 0

    def allocate_slash24(self) -> Prefix:
        """Claim the next free /24, growing the /16 pool as needed."""
        total_slash24s = len(self._blocks) * 256
        if self._next_slash24 >= total_slash24s:
            self._blocks.append(self._allocator.allocate_slash16())
        block = self._blocks[self._next_slash24 // 256]
        offset = self._next_slash24 % 256
        self._next_slash24 += 1
        return Prefix(block.base + (offset << 8), 24)

    @property
    def blocks(self) -> List[Prefix]:
        """The /16 blocks claimed so far (for BGP table construction)."""
        return list(self._blocks)
