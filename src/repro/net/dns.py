"""Minimal DNS and HTTP-header simulation for the website hosting checks.

The street level technique must decide whether a candidate website is
*locally hosted* or served by a CDN / cloud platform. The paper does this
with one DNS query and two ``wget`` fetches per website (§5.2.5: 2,755,315
such tests). This module reproduces the observable surface those tests need:

* :class:`DnsResolver` resolves a hostname to a record that may carry a
  CNAME chain ending at a CDN's domain;
* the HTTP "fetch" surface (served-by headers) lives on the website objects
  in :mod:`repro.landmarks.websites`, which the validation code reads like
  response headers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import UnknownHostError

#: Hostname suffixes that identify well-known CDN platforms; resolving to a
#: CNAME under one of these is what a CDN check looks for in practice.
CDN_DOMAINS: Tuple[str, ...] = (
    "edge.cdnexample.net",
    "cache.fastroute.io",
    "global.cloudfrontier.com",
    "pop.anycastweb.org",
)


@dataclass(frozen=True)
class DnsRecord:
    """Resolution result for one hostname.

    Attributes:
        hostname: the queried name.
        ip: the final A record.
        cname_chain: intermediate CNAMEs, outermost first (empty when the
            name resolves directly).
    """

    hostname: str
    ip: str
    cname_chain: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def final_name(self) -> str:
        """The name the A record is attached to."""
        return self.cname_chain[-1] if self.cname_chain else self.hostname

    @property
    def behind_cdn(self) -> bool:
        """Whether any CNAME in the chain lands on a known CDN domain."""
        return any(
            name.endswith(suffix) for name in self.cname_chain for suffix in CDN_DOMAINS
        )


class DnsResolver:
    """In-memory resolver populated by the world builder.

    Serves both the forward zone (website hostnames → A records, for the
    street-level hosting checks) and the reverse zone (addresses → PTR
    names, mined by the :mod:`repro.hints` pipeline).
    """

    def __init__(self) -> None:
        self._records: Dict[str, DnsRecord] = {}
        self._reverse: Dict[str, str] = {}

    def register(self, record: DnsRecord) -> None:
        """Install a record; later registrations replace earlier ones."""
        self._records[record.hostname] = record

    def register_reverse(self, ip: str, hostname: str) -> None:
        """Install a PTR record for an address."""
        self._reverse[ip] = hostname

    def reverse_lookup(self, ip: str) -> Optional[str]:
        """The PTR name of an address, or ``None`` (no reverse record)."""
        return self._reverse.get(ip)

    @property
    def reverse_count(self) -> int:
        """How many addresses have PTR records."""
        return len(self._reverse)

    def __len__(self) -> int:
        return len(self._records)

    def resolve(self, hostname: str) -> DnsRecord:
        """Resolve a hostname.

        Raises:
            UnknownHostError: if the name has no record.
        """
        record = self._records.get(hostname)
        if record is None:
            raise UnknownHostError(f"no DNS record for {hostname!r}")
        return record

    def try_resolve(self, hostname: str) -> Optional[DnsRecord]:
        """Resolve a hostname, returning ``None`` instead of raising."""
        return self._records.get(hostname)
