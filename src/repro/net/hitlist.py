"""An ISI-hitlist-like inventory of responsive addresses per /24 prefix.

The million scale technique probes *representatives* of a target: the three
most responsive addresses in the target's /24, as listed by the USC/ISI
hitlist. This module provides the equivalent inventory over the simulated
world: every host address is listed with a responsiveness score in [0, 99],
and the selection rule ("three highest-scoring responsive addresses,
falling back to random addresses in the /24 when fewer exist") is the one
described in §4.1.3 of the replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro import rand
from repro.net.addressing import Prefix, int_to_ip, prefix24_of


@dataclass(frozen=True, order=True)
class HitlistEntry:
    """One hitlist row: an address and its historical responsiveness score."""

    ip: str
    score: int

    def __post_init__(self) -> None:
        if not 0 <= self.score <= 99:
            raise ValueError(f"score must be in [0, 99]: {self.score}")

    @property
    def responsive(self) -> bool:
        """The hitlist convention: positive score means the address replied."""
        return self.score > 0


class Hitlist:
    """Per-/24 index of hitlist entries with representative selection."""

    def __init__(self, seed: int = 0) -> None:
        self._by_prefix: Dict[Prefix, List[HitlistEntry]] = {}
        self._seed = seed

    def add(self, ip: str, score: int) -> None:
        """Record an address with its responsiveness score."""
        self._by_prefix.setdefault(prefix24_of(ip), []).append(HitlistEntry(ip, score))

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._by_prefix.values())

    def entries_for(self, prefix: Prefix) -> Sequence[HitlistEntry]:
        """All entries recorded in a /24, highest score first."""
        entries = self._by_prefix.get(prefix, [])
        return sorted(entries, key=lambda e: (-e.score, e.ip))

    def representatives(self, target_ip: str, count: int = 3) -> List[str]:
        """Pick representatives of a target per the million scale rule.

        Takes the ``count`` most responsive addresses in the target's /24,
        excluding the target itself. When fewer responsive addresses exist
        (8 of the paper's 723 targets), random addresses in the /24 fill the
        missing slots — those may turn out to be unresponsive when probed,
        exactly as in the real study.

        Args:
            target_ip: the address whose /24 defines the candidate pool.
            count: how many representatives to return.

        Returns:
            ``count`` distinct addresses in the target's /24.
        """
        prefix = prefix24_of(target_ip)
        chosen = [
            entry.ip
            for entry in self.entries_for(prefix)
            if entry.responsive and entry.ip != target_ip
        ][:count]
        taken = set(chosen) | {target_ip}
        attempt = 0
        while len(chosen) < count:
            offset = rand.randint(
                (self._seed, "hitlist-filler", target_ip, attempt), 1, 255
            )
            candidate = int_to_ip(prefix.base + offset)
            attempt += 1
            if candidate in taken:
                continue
            taken.add(candidate)
            chosen.append(candidate)
        return chosen
