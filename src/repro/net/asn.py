"""Autonomous-system records with CAIDA-style types and ASDB categories.

The paper characterises its datasets (Table 2 and Section 4.4.1) with two
classifications:

* the CAIDA AS classification (Content / Access / Transit-Access /
  Enterprise / Tier-1 / Unknown);
* the ASDB taxonomy (16 coarse categories, dominated by "Computer and
  Information Technology" for the anchor targets).

The synthetic world assigns both labels at AS creation time so the Table 2
replication reads them exactly as the paper reads the public datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

#: CAIDA AS classification values, in the order Table 2 reports them.
CAIDA_TYPES: Tuple[str, ...] = (
    "Content",
    "Access",
    "Transit/Access",
    "Enterprise",
    "Tier-1",
    "Unknown",
)

#: The 16 ASDB categories observed for the paper's targets (§4.4.1).
ASDB_CATEGORIES: Tuple[str, ...] = (
    "Computer and Information Technology",
    "R&E",
    "Media, Publishing, and Broadcasting",
    "Finance and Insurance",
    "Service",
    "Retail Stores, Wholesale, and E-commerce Sites",
    "Government and Public Administration",
    "Community Groups and Nonprofits",
    "Health Care Services",
    "Education",
    "Manufacturing",
    "Utilities",
    "Construction and Real Estate",
    "Travel and Accommodation",
    "Freight, Shipment, and Postal Services",
    "Agriculture, Mining, and Refineries",
)


@dataclass
class ASRecord:
    """One autonomous system in the simulated Internet.

    Attributes:
        asn: the AS number.
        name: a human-readable synthetic name.
        caida_type: one of :data:`CAIDA_TYPES`.
        asdb_category: one of :data:`ASDB_CATEGORIES`.
        country: ISO-like country code of the AS's registration.
        city_ids: cities where the AS has a point of presence.
    """

    asn: int
    name: str
    caida_type: str
    asdb_category: str
    country: str
    city_ids: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.caida_type not in CAIDA_TYPES:
            raise ValueError(f"unknown CAIDA type: {self.caida_type!r}")
        if self.asdb_category not in ASDB_CATEGORIES:
            raise ValueError(f"unknown ASDB category: {self.asdb_category!r}")
        if self.asn <= 0:
            raise ValueError(f"AS number must be positive: {self.asn}")

    @property
    def is_eyeball(self) -> bool:
        """Whether the AS mainly serves end users (access network)."""
        return self.caida_type == "Access"

    @property
    def is_transit(self) -> bool:
        """Whether the AS carries transit traffic."""
        return self.caida_type in ("Transit/Access", "Tier-1")
