"""A RouteViews-like BGP prefix table with longest-prefix matching.

The street level re-evaluation (§5.2.3) checks whether landmarks share a BGP
prefix with the target. The world builder announces each AS's address blocks
here (sometimes as one /16, sometimes de-aggregated), and analyses query the
table exactly as they would query a RouteViews snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.net.addressing import Prefix, ip_to_int


class PrefixTable:
    """Maps IPv4 prefixes to origin AS numbers, with longest-prefix match."""

    def __init__(self) -> None:
        # One dict per prefix length keeps lookups O(32) worst case.
        self._by_length: Dict[int, Dict[int, Tuple[Prefix, int]]] = {}
        self._count = 0

    def announce(self, prefix: Prefix, origin_asn: int) -> None:
        """Insert (or replace) an announcement.

        Args:
            prefix: the announced prefix.
            origin_asn: the originating AS number (must be positive).

        Raises:
            ValueError: if the origin AS number is not positive.
        """
        if origin_asn <= 0:
            raise ValueError(f"origin ASN must be positive: {origin_asn}")
        bucket = self._by_length.setdefault(prefix.length, {})
        if prefix.base not in bucket:
            self._count += 1
        bucket[prefix.base] = (prefix, origin_asn)

    def __len__(self) -> int:
        return self._count

    def lookup(self, ip: str) -> Optional[Tuple[Prefix, int]]:
        """Longest-prefix match for an address.

        Returns:
            ``(prefix, origin_asn)`` of the most specific covering
            announcement, or ``None`` if nothing covers the address.
        """
        value = ip_to_int(ip)
        for length in range(32, -1, -1):
            bucket = self._by_length.get(length)
            if not bucket:
                continue
            mask = 0 if length == 0 else (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
            hit = bucket.get(value & mask)
            if hit is not None:
                return hit
        return None

    def origin_asn(self, ip: str) -> Optional[int]:
        """The origin AS for an address, or ``None`` if unrouted."""
        hit = self.lookup(ip)
        return hit[1] if hit is not None else None

    def covering_prefix(self, ip: str) -> Optional[Prefix]:
        """The most specific announced prefix covering an address."""
        hit = self.lookup(ip)
        return hit[0] if hit is not None else None

    def same_bgp_prefix(self, ip_a: str, ip_b: str) -> bool:
        """Whether two addresses fall in the same announced prefix."""
        pfx_a = self.covering_prefix(ip_a)
        return pfx_a is not None and pfx_a == self.covering_prefix(ip_b)

    def __iter__(self) -> Iterator[Tuple[Prefix, int]]:
        for bucket in self._by_length.values():
            yield from bucket.values()
