"""Network-layer primitives: IPv4 addressing, AS records, hitlist, BGP, DNS."""

from repro.net.addressing import (
    AddressAllocator,
    Prefix,
    int_to_ip,
    ip_to_int,
    prefix24_of,
    same_prefix24,
)
from repro.net.asn import ASRecord, ASDB_CATEGORIES, CAIDA_TYPES
from repro.net.bgp import PrefixTable
from repro.net.hitlist import Hitlist, HitlistEntry
from repro.net.dns import DnsResolver, DnsRecord

__all__ = [
    "AddressAllocator",
    "Prefix",
    "int_to_ip",
    "ip_to_int",
    "prefix24_of",
    "same_prefix24",
    "ASRecord",
    "ASDB_CATEGORIES",
    "CAIDA_TYPES",
    "PrefixTable",
    "Hitlist",
    "HitlistEntry",
    "DnsResolver",
    "DnsRecord",
]
