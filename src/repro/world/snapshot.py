"""World snapshots: clone-with-new-hosts and content digests.

The world evolution layer (:mod:`repro.evolve`) produces a *sequence* of
worlds from one built base world. Each revision differs only in host
state — positions, city assignments, connect/disconnect sessions — while
the expensive shared parts (geography, the AS fabric, the BGP table, the
DNS zone, the population field) are structurally identical and safe to
share by reference. :func:`clone_world_with_hosts` performs exactly that
clone: a new :class:`~repro.world.world.World` is constructed over a new
host list, which rebuilds the static host arrays the vectorised latency
and routing engines read (so an :class:`~repro.atlas.platform.AtlasPlatform`
over the clone measures the *evolved* positions), while every shared part
is the same object as the base world's.

Because the clone is a real ``World``, everything downstream keeps
working unchanged: ``Topology`` derives evolved per-host parameters,
``WorldArrays.from_topology`` packs the evolved arrays, and the
shared-memory arena re-share (:meth:`~repro.world.arrays.WorldArrays.share`)
publishes an evolved snapshot exactly like a base one — pinned by
``tests/test_evolve.py``.

:func:`world_digest` is the content address of one snapshot's host
state: a SHA-256 over the static arrays plus the recorded locations and
addresses. Same seed + same event stream → byte-identical hosts → equal
digests, which is what the churn golden and replay tests pin.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

from repro.world.hosts import Host
from repro.world.world import World


def clone_world_with_hosts(base: World, hosts: Sequence[Host]) -> World:
    """A new :class:`World` over ``hosts``, sharing everything else.

    The shared parts (cities, countries, ASes, hitlist, BGP, DNS,
    population, hub list, POI factory) are the base world's objects, not
    copies — churn never touches them. The host list is the evolved
    state; the constructor rebuilds the static host arrays from it.

    Lazily registered web-server hosts are deliberately *not* carried
    over: snapshots start from the static host set, and POIs should be
    materialised against the base world only (the clone shares the base
    POI factory purely so the container stays a complete ``World``).
    """
    clone = World(
        config=base.config,
        cities=base.cities,
        countries=base.countries,
        ases=base.ases,
        hosts=list(hosts),
        hitlist=base.hitlist,
        bgp=base.bgp,
        dns=base.dns,
        population=base.population,
        hub_city_ids=base.hub_city_ids,
        poi_factory=base._poi_factory,
    )
    clone.web_directory = base.web_directory
    clone.hostname_scheme = base.hostname_scheme
    return clone


def world_digest(world: World) -> str:
    """SHA-256 content digest of a world's static host state.

    Covers everything churn can change — true and recorded positions,
    city assignments, responsiveness, last-mile delays, AS numbers — plus
    the address and kind of every static host, so two worlds digest equal
    iff their host state is byte-identical.
    """
    digest = hashlib.sha256()
    for array in (
        world.host_true_lats,
        world.host_true_lons,
        world.host_last_mile,
        world.host_responsive,
        world.host_city_ids,
        world.host_asns,
    ):
        contiguous = np.ascontiguousarray(array)
        digest.update(str(contiguous.dtype).encode("ascii"))
        digest.update(contiguous.tobytes())
    hosts: List[Host] = list(world.hosts)[: world.static_host_count]
    recorded = np.array(
        [(h.recorded_location.lat, h.recorded_location.lon) for h in hosts]
    )
    digest.update(np.ascontiguousarray(recorded).tobytes())
    digest.update(
        "\n".join(f"{h.ip}|{h.kind.value}|{int(h.mislocated)}" for h in hosts).encode(
            "ascii"
        )
    )
    return digest.hexdigest()
