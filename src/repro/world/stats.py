"""World statistics: distributions behind the substrate's behaviour.

Every calibration claim in EXPERIMENTS.md traces back to a distribution in
the generated world; this module computes them so they can be inspected,
asserted on, and printed (``examples/world_report.py``). Nothing here is
used by the geolocation algorithms — it is diagnostics and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis import format_table
from repro.world.world import World


@dataclass
class WorldStats:
    """Aggregated distributions of one world.

    All percentile tuples are (p10, p50, p90).
    """

    cities: int
    countries: int
    ases: int
    anchors: int
    probes: int
    city_population_percentiles: tuple
    probe_last_mile_ms_percentiles: tuple
    anchor_last_mile_ms_percentiles: tuple
    probe_metadata_error_km_percentiles: tuple
    anchors_per_city_max: int
    distinct_anchor_cities: int
    continent_probe_counts: Dict[str, int] = field(default_factory=dict)
    as_type_counts: Dict[str, int] = field(default_factory=dict)

    def render(self) -> str:
        """Printable multi-section report."""
        def pct(values: tuple) -> str:
            return " / ".join(f"{v:.2f}" for v in values)

        rows = [
            ["cities", self.cities],
            ["countries", self.countries],
            ["ASes", self.ases],
            ["anchors", self.anchors],
            ["probes", self.probes],
            ["distinct anchor cities", self.distinct_anchor_cities],
            ["max anchors in one city", self.anchors_per_city_max],
            ["city population p10/50/90", pct(self.city_population_percentiles)],
            ["probe last mile ms p10/50/90", pct(self.probe_last_mile_ms_percentiles)],
            ["anchor last mile ms p10/50/90", pct(self.anchor_last_mile_ms_percentiles)],
            [
                "probe metadata error km p10/50/90",
                pct(self.probe_metadata_error_km_percentiles),
            ],
        ]
        sections = [format_table(["statistic", "value"], rows)]
        sections.append(
            format_table(
                ["continent", "probes"],
                sorted(self.continent_probe_counts.items()),
            )
        )
        sections.append(
            format_table(["AS type", "count"], sorted(self.as_type_counts.items()))
        )
        return "\n\n".join(sections)


def compute_world_stats(world: World) -> WorldStats:
    """Compute the distributions for a world."""
    anchors = world.anchors
    probes = world.probes

    def percentiles(values: List[float]) -> tuple:
        if not values:
            return (0.0, 0.0, 0.0)
        return tuple(np.percentile(values, [10, 50, 90]))

    anchors_per_city: Dict[int, int] = {}
    for anchor in anchors:
        anchors_per_city[anchor.city_id] = anchors_per_city.get(anchor.city_id, 0) + 1

    continent_counts: Dict[str, int] = {}
    for probe in probes:
        code = world.city_of_host(probe).continent
        continent_counts[code] = continent_counts.get(code, 0) + 1

    as_type_counts: Dict[str, int] = {}
    for record in world.ases.values():
        as_type_counts[record.caida_type] = as_type_counts.get(record.caida_type, 0) + 1

    metadata_errors = [
        probe.geolocation_error_km
        for probe in probes
        if not probe.mislocated and probe.geolocation_error_km > 0.0
    ]

    return WorldStats(
        cities=len(world.cities),
        countries=len(world.countries),
        ases=len(world.ases),
        anchors=len(anchors),
        probes=len(probes),
        city_population_percentiles=percentiles([c.population for c in world.cities]),
        probe_last_mile_ms_percentiles=percentiles([p.last_mile_ms for p in probes]),
        anchor_last_mile_ms_percentiles=percentiles([a.last_mile_ms for a in anchors]),
        probe_metadata_error_km_percentiles=percentiles(metadata_errors),
        anchors_per_city_max=max(anchors_per_city.values()) if anchors_per_city else 0,
        distinct_anchor_cities=len(anchors_per_city),
        continent_probe_counts=continent_counts,
        as_type_counts=as_type_counts,
    )
