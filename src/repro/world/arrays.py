"""Structure-of-arrays world state and the shared-memory arena.

A fork worker that touches a million ``Host`` dataclasses dirties every
copy-on-write page they live on — Python refcounting writes to the object
headers even for pure reads — so the "shared" world costs a full private
copy per worker. This module flips the layout: everything the hot routing
and serving paths read is packed into flat numpy arrays
(:class:`WorldArrays`), and those arrays can be published once into a
single read-only :mod:`multiprocessing.shared_memory` segment
(:class:`SharedArena`) that workers *attach* to by name. Attaching maps
the same physical pages into the worker — no pickling, no COW copies, and
reads never dirty a page because there are no per-element Python objects.

The arena is deliberately dumb: a byte buffer plus a manifest of
``(name, dtype, shape, offset)`` records. :class:`ArenaToken` — the
manifest plus the segment name — is tiny and picklable, so it travels to
workers through fork inheritance or over any IPC for the spawn case.
Platforms without POSIX shared memory (or without ``fork``) simply keep
using the in-process arrays: :func:`arena_supported` gates every consumer,
and the serial path computes identical bytes.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - import guard for exotic builds
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    _shm = None

#: Byte alignment of each array inside the segment (cache-line friendly).
_ALIGN = 64

#: Arenas created by this process that still own their segment; unlinked
#: at interpreter exit so an abandoned parent never leaks /dev/shm space.
_LIVE_OWNED: Dict[str, "SharedArena"] = {}


def arena_supported() -> bool:
    """Whether this platform can publish shared-memory arenas."""
    return _shm is not None


def _cleanup_live_arenas() -> None:  # pragma: no cover - exit hook
    for arena in list(_LIVE_OWNED.values()):
        try:
            arena.close()
        except Exception:
            pass


atexit.register(_cleanup_live_arenas)


@dataclass(frozen=True)
class ArenaField:
    """Manifest record of one array inside the segment."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ArenaToken:
    """Everything needed to attach to an arena from another process.

    Picklable and small (the manifest, not the data): pass it to workers
    through fork globals or over a pipe.
    """

    segment: str
    fields: Tuple[ArenaField, ...]
    nbytes: int


def _attach_segment(name: str):
    """Attach to an existing segment without adopting its lifetime.

    Python < 3.13 registers *attached* segments with the resource tracker
    as if this process owned them, which makes the tracker unlink the
    arena when a short-lived worker exits. Unregistering afterwards is
    not enough: forked workers share the parent's tracker, whose cache is
    a set, so the worker's unregister would erase the *owner's* legit
    registration too. Instead, suppress ``register`` for the duration of
    the attach — the creating process owns cleanup (and its exit hook
    guarantees it).
    """
    try:
        return _shm.SharedMemory(name=name, create=False, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 fallback below
        pass
    try:
        from multiprocessing import resource_tracker
    except Exception:  # pragma: no cover - absent on some platforms
        return _shm.SharedMemory(name=name, create=False)
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return _shm.SharedMemory(name=name, create=False)
    finally:
        resource_tracker.register = original


class SharedArena:
    """A named bundle of read-only numpy arrays in one shared segment.

    Create with :meth:`create` (the owner), attach elsewhere with
    :meth:`attach`. All views handed out are non-writable regardless of
    role: the arena is a publication, not a blackboard.
    """

    def __init__(self, shm, token: ArenaToken, owner: bool) -> None:
        self._shm = shm
        self.token = token
        self.owner = owner
        self._views: Dict[str, np.ndarray] = {}

    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "SharedArena":
        """Publish arrays into a fresh segment; the caller owns its lifetime.

        Raises:
            RuntimeError: when the platform has no shared memory
                (gate with :func:`arena_supported`).
            ValueError: on an empty bundle.
        """
        if not arena_supported():  # pragma: no cover - POSIX containers
            raise RuntimeError("shared memory is unavailable on this platform")
        if not arrays:
            raise ValueError("cannot publish an empty arena")
        fields = []
        offset = 0
        contiguous = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            offset = -(-offset // _ALIGN) * _ALIGN
            fields.append(
                ArenaField(
                    name=name,
                    dtype=array.dtype.str,
                    shape=tuple(int(side) for side in array.shape),
                    offset=offset,
                )
            )
            offset += array.nbytes
        shm = _shm.SharedMemory(create=True, size=max(offset, 1))
        token = ArenaToken(
            segment=shm.name, fields=tuple(fields), nbytes=max(offset, 1)
        )
        for field, array in zip(fields, contiguous.values()):
            view = np.ndarray(
                field.shape, dtype=np.dtype(field.dtype), buffer=shm.buf,
                offset=field.offset,
            )
            view[...] = array
        arena = cls(shm, token, owner=True)
        _LIVE_OWNED[token.segment] = arena
        return arena

    @classmethod
    def attach(cls, token: ArenaToken) -> "SharedArena":
        """Map an existing arena by token (read-only, not owning).

        Raises:
            RuntimeError: when shared memory is unavailable.
            FileNotFoundError: when the owner already unlinked the segment.
        """
        if not arena_supported():  # pragma: no cover - POSIX containers
            raise RuntimeError("shared memory is unavailable on this platform")
        return cls(_attach_segment(token.segment), token, owner=False)

    def array(self, name: str) -> np.ndarray:
        """The named array as a read-only view into the segment."""
        view = self._views.get(name)
        if view is None:
            for field in self.token.fields:
                if field.name == name:
                    break
            else:
                raise KeyError(f"no array {name!r} in arena")
            view = np.ndarray(
                field.shape, dtype=np.dtype(field.dtype), buffer=self._shm.buf,
                offset=field.offset,
            )
            view.flags.writeable = False
            self._views[name] = view
        return view

    def names(self) -> Iterator[str]:
        """The published array names, in manifest order."""
        return (field.name for field in self.token.fields)

    def arrays(self) -> Dict[str, np.ndarray]:
        """All arrays as read-only views."""
        return {name: self.array(name) for name in self.names()}

    def close(self) -> None:
        """Drop the mapping; the owner also unlinks the segment.

        Idempotent. Numpy views handed out become invalid — callers that
        outlive the arena must copy first.
        """
        if self._shm is None:
            return
        self._views.clear()
        try:
            self._shm.close()
        finally:
            if self.owner:
                _LIVE_OWNED.pop(self.token.segment, None)
                try:
                    self._shm.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
            self._shm = None

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: The manifest field names of a :class:`WorldArrays` bundle, in the order
#: they are published. Scalar metadata rides in two tiny arrays.
WORLD_ARRAY_FIELDS = (
    "host_true_lats",
    "host_true_lons",
    "host_last_mile",
    "host_responsive",
    "host_city_ids",
    "host_asns",
    "host_tail_km",
    "host_uplink_km",
    "host_hub_index",
    "city_hub_index",
    "city_uplink_km",
    "hub_distance_km",
    "csr_indptr",
    "csr_indices",
    "csr_weight_km",
)


@dataclass
class WorldArrays:
    """The hot per-host/per-city/per-router state as flat arrays.

    Everything the routing kernel, the latency engine, and the serving
    path read about static hosts — nothing else. Build one with
    :meth:`from_topology` (real worlds) or the million-scale synthesizer
    (:mod:`repro.world.scale`); publish with :meth:`share`; reattach with
    :meth:`attach`.
    """

    host_true_lats: np.ndarray
    host_true_lons: np.ndarray
    host_last_mile: np.ndarray
    host_responsive: np.ndarray
    host_city_ids: np.ndarray
    host_asns: np.ndarray
    host_tail_km: np.ndarray
    host_uplink_km: np.ndarray
    host_hub_index: np.ndarray
    city_hub_index: np.ndarray
    city_uplink_km: np.ndarray
    hub_distance_km: np.ndarray
    csr_indptr: np.ndarray
    csr_indices: np.ndarray
    csr_weight_km: np.ndarray
    hub_count: int
    city_count: int
    static_host_count: int
    seed: int
    peering_probability: float

    @classmethod
    def from_topology(cls, topology) -> "WorldArrays":
        """Collect the hot arrays of a built world + topology (zero-copy)."""
        world = topology.world
        csr = topology.csr()
        return cls(
            host_true_lats=world.host_true_lats,
            host_true_lons=world.host_true_lons,
            host_last_mile=world.host_last_mile,
            host_responsive=world.host_responsive,
            host_city_ids=world.host_city_ids,
            host_asns=world.host_asns,
            host_tail_km=topology.host_tail_km,
            host_uplink_km=topology.host_uplink_km,
            host_hub_index=topology.host_hub_index,
            city_hub_index=topology.city_hub_index,
            city_uplink_km=topology.city_uplink_km,
            hub_distance_km=topology.hub_distance_km,
            csr_indptr=csr.indptr,
            csr_indices=csr.indices,
            csr_weight_km=csr.weight_km,
            hub_count=csr.hub_count,
            city_count=csr.city_count,
            static_host_count=csr.host_count,
            seed=csr.seed,
            peering_probability=csr.peering_probability,
        )

    def _meta_arrays(self) -> Dict[str, np.ndarray]:
        return {
            "meta_ints": np.array(
                [self.hub_count, self.city_count, self.static_host_count, self.seed],
                dtype=np.int64,
            ),
            "meta_floats": np.array([self.peering_probability], dtype=np.float64),
        }

    def share(self) -> SharedArena:
        """Publish the bundle into a fresh shared arena (caller owns it)."""
        payload = {name: getattr(self, name) for name in WORLD_ARRAY_FIELDS}
        payload.update(self._meta_arrays())
        return SharedArena.create(payload)

    @classmethod
    def from_arena(cls, arena: SharedArena) -> "WorldArrays":
        """Rebuild the bundle over an arena's read-only views (zero-copy)."""
        meta_ints = arena.array("meta_ints")
        meta_floats = arena.array("meta_floats")
        return cls(
            **{name: arena.array(name) for name in WORLD_ARRAY_FIELDS},
            hub_count=int(meta_ints[0]),
            city_count=int(meta_ints[1]),
            static_host_count=int(meta_ints[2]),
            seed=int(meta_ints[3]),
            peering_probability=float(meta_floats[0]),
        )

    @classmethod
    def attach(cls, token: ArenaToken) -> Tuple["WorldArrays", SharedArena]:
        """Attach to a published bundle; returns (arrays, arena handle).

        The caller keeps the arena handle alive for as long as the arrays
        are in use and closes it afterwards.
        """
        arena = SharedArena.attach(token)
        return cls.from_arena(arena), arena

    def router_graph(self):
        """A routing-capable CSR graph over these arrays (no ``World``)."""
        from repro.topology.csr import CsrRouterGraph

        return CsrRouterGraph.from_arrays(self)

    def nbytes(self) -> int:
        """Total payload bytes across the published arrays."""
        total = 0
        for name in WORLD_ARRAY_FIELDS:
            total += np.asarray(getattr(self, name)).nbytes
        return total
