"""Million-scale world synthesis, straight into flat arrays.

:func:`repro.world.builder.build_world` creates one Python ``Host``
dataclass per host — perfect for paper-scale worlds (~10k hosts) where
campaigns inspect individual hosts, hopeless at the paper's titular
"million scale": a million dataclasses cost gigabytes of object headers
and minutes of allocator time before a single route is computed. This
module synthesizes the *array* form directly: city, router, and host
state are drawn with vectorized numpy generators and assembled into a
:class:`~repro.world.arrays.WorldArrays` bundle (including the CSR router
graph), without ever materialising a host object.

Scale worlds are for capacity work — topology benchmarks, arena RSS
measurements, churn rehearsals — not for replication experiments: their
randomness is generator-seeded per stage (documented here), not
counter-keyed per measurement like :mod:`repro.rand`, so they sit outside
the bitwise-replay guarantees of the campaign worlds. Routing over them
is still exact: the CSR arrays obey the same layout contract as
``Topology``-derived graphs, and the kernel parity suite runs on both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

import numpy as np

from repro.geo.coords import matrix_haversine_km, pairwise_haversine_km
from repro.topology.csr import build_csr_arrays
from repro.world.arrays import WorldArrays
from repro.world.cities import CONTINENTS

#: Cross-continent homing penalty, km — same constant the Topology uses.
_CONTINENT_PENALTY_KM = 1500.0

#: Cities per homing chunk: bounds the cities x hubs distance block to a
#: few megabytes regardless of world size.
_HOMING_CHUNK = 8192


@dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the synthetic scale world (array form only)."""

    seed: int = 2023
    hosts: int = 1_000_000
    cities_per_continent: Mapping[str, int] = field(
        default_factory=lambda: {
            "EU": 30_000,
            "NA": 20_000,
            "AS": 25_000,
            "SA": 9_000,
            "OC": 4_000,
            "AF": 12_000,
        }
    )
    hubs_per_continent: int = 40
    total_ases: int = 65_000
    local_peering_probability: float = 0.7
    #: std-dev of the host scatter around its city centre, degrees.
    host_scatter_deg: float = 0.08
    last_mile_mean_ms: float = 1.8
    last_mile_floor_ms: float = 0.3

    @property
    def city_count(self) -> int:
        return sum(self.cities_per_continent.values())

    @property
    def router_count(self) -> int:
        """Metro + hub routers (gateways are per-host on top)."""
        return self.city_count + self.hubs_per_continent * len(
            self.cities_per_continent
        )


#: Named presets for the topology benchmark ladder. ``million`` is the
#: headline configuration from ROADMAP item 3: 1M+ hosts and 100k+
#: metro/hub routers.
SCALE_PRESETS: Dict[str, ScaleConfig] = {
    "quick": ScaleConfig(
        hosts=20_000,
        cities_per_continent={
            "EU": 600, "NA": 400, "AS": 500, "SA": 180, "OC": 80, "AF": 240,
        },
        hubs_per_continent=6,
        total_ases=2_000,
    ),
    "small": ScaleConfig(
        hosts=120_000,
        cities_per_continent={
            "EU": 3_600, "NA": 2_400, "AS": 3_000, "SA": 1_100, "OC": 500,
            "AF": 1_400,
        },
        hubs_per_continent=12,
        total_ases=8_000,
    ),
    "million": ScaleConfig(),
}


def scale_config(preset: str) -> ScaleConfig:
    """The named scale preset.

    Raises:
        KeyError: for unknown preset names.
    """
    if preset not in SCALE_PRESETS:
        raise KeyError(
            f"unknown scale preset {preset!r}; expected one of "
            f"{sorted(SCALE_PRESETS)}"
        )
    return SCALE_PRESETS[preset]


def synthesize_scale_world(config: ScaleConfig) -> WorldArrays:
    """Synthesize a scale world as a :class:`WorldArrays` bundle.

    Stages (each with its own seeded generator, all vectorized):

    1. cities: uniform in each continent's bounding box, log-normal
       populations;
    2. hubs: the most populous ``hubs_per_continent`` cities per
       continent, mesh distances in one broadcast;
    3. homing: every city to its nearest hub under the same
       cross-continent penalty the ``Topology`` applies, in bounded
       chunks;
    4. hosts: city assignment proportional to population, Gaussian
       scatter around the city centre, exponential last-mile delays,
       uniform AS numbers;
    5. the CSR router graph over all of it
       (:func:`~repro.topology.csr.build_csr_arrays`).
    """
    codes = sorted(config.cities_per_continent)
    city_count = config.city_count

    # 1. Cities.
    rng = np.random.default_rng([config.seed, 0xC17135])
    city_lats = np.empty(city_count)
    city_lons = np.empty(city_count)
    city_cont = np.empty(city_count, dtype=np.int64)
    cursor = 0
    for cont_idx, code in enumerate(codes):
        box = CONTINENTS[code]
        n = config.cities_per_continent[code]
        city_lats[cursor : cursor + n] = rng.uniform(box.lat_min, box.lat_max, n)
        city_lons[cursor : cursor + n] = rng.uniform(box.lon_min, box.lon_max, n)
        city_cont[cursor : cursor + n] = cont_idx
        cursor += n
    population = np.exp(rng.normal(12.2, 1.1, city_count))

    # 2. Hubs.
    hub_cids = []
    for cont_idx in range(len(codes)):
        members = np.flatnonzero(city_cont == cont_idx)
        top = members[np.argsort(population[members])[::-1][: config.hubs_per_continent]]
        hub_cids.append(np.sort(top))
    hub_cids = np.concatenate(hub_cids)
    hub_lats = city_lats[hub_cids]
    hub_lons = city_lons[hub_cids]
    hub_cont = city_cont[hub_cids]
    hub_distance_km = matrix_haversine_km(hub_lats, hub_lons, hub_lats, hub_lons)

    # 3. Homing, chunked so the distance block stays small.
    city_hub_index = np.empty(city_count, dtype=np.int64)
    city_uplink_km = np.empty(city_count)
    for start in range(0, city_count, _HOMING_CHUNK):
        stop = min(start + _HOMING_CHUNK, city_count)
        block = matrix_haversine_km(
            hub_lats, hub_lons, city_lats[start:stop], city_lons[start:stop]
        )
        penalised = block + np.where(
            city_cont[start:stop, None] == hub_cont[None, :],
            0.0,
            _CONTINENT_PENALTY_KM,
        )
        nearest = np.argmin(penalised, axis=1)
        city_hub_index[start:stop] = nearest
        city_uplink_km[start:stop] = block[np.arange(stop - start), nearest]

    # 4. Hosts.
    rng = np.random.default_rng([config.seed, 0x4057])
    weights = population / population.sum()
    host_city_ids = np.searchsorted(
        np.cumsum(weights), rng.random(config.hosts)
    ).astype(np.int64)
    np.clip(host_city_ids, 0, city_count - 1, out=host_city_ids)
    host_lats = np.clip(
        city_lats[host_city_ids] + rng.normal(0.0, config.host_scatter_deg, config.hosts),
        -90.0,
        90.0,
    )
    host_lons = (
        city_lons[host_city_ids]
        + rng.normal(0.0, config.host_scatter_deg, config.hosts)
        + 180.0
    ) % 360.0 - 180.0
    host_tail_km = pairwise_haversine_km(
        host_lats, host_lons, city_lats[host_city_ids], city_lons[host_city_ids]
    )
    host_last_mile = config.last_mile_floor_ms + rng.exponential(
        config.last_mile_mean_ms, config.hosts
    )
    host_asns = rng.integers(1, config.total_ases + 1, config.hosts, dtype=np.int64)

    # 5. The CSR router graph.
    indptr, indices, weight_km = build_csr_arrays(
        hub_distance_km,
        city_hub_index,
        city_uplink_km,
        host_city_ids,
        host_tail_km,
    )

    return WorldArrays(
        host_true_lats=host_lats,
        host_true_lons=host_lons,
        host_last_mile=host_last_mile,
        host_responsive=np.ones(config.hosts, dtype=bool),
        host_city_ids=host_city_ids,
        host_asns=host_asns,
        host_tail_km=host_tail_km,
        host_uplink_km=city_uplink_km[host_city_ids],
        host_hub_index=city_hub_index[host_city_ids],
        city_hub_index=city_hub_index,
        city_uplink_km=city_uplink_km,
        hub_distance_km=hub_distance_km,
        csr_indptr=indptr,
        csr_indices=indices,
        csr_weight_km=weight_km,
        hub_count=len(hub_cids),
        city_count=city_count,
        static_host_count=config.hosts,
        seed=config.seed,
        peering_probability=config.local_peering_probability,
    )
