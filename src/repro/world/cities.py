"""Continents, countries, and cities of the synthetic world.

Cities carry everything the substrates need: a location, a population (which
drives probe placement weights, POI counts, and the population-density
field), a metro radius, and a zip-code scheme (square cells of configurable
size, used by the reverse-geocoding service).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import rand
from repro.geo.coords import GeoPoint, destination, haversine_km, normalize_lon
from repro.world.config import WorldConfig


@dataclass(frozen=True)
class Continent:
    """A continent: a code and a (crude) bounding box for city placement."""

    code: str
    name: str
    lat_min: float
    lat_max: float
    lon_min: float
    lon_max: float

    def contains(self, point: GeoPoint) -> bool:
        """Whether a point falls in the continent's bounding box."""
        return (
            self.lat_min <= point.lat <= self.lat_max
            and self.lon_min <= point.lon <= self.lon_max
        )


#: The six populated continents, with bounding boxes that roughly avoid the
#: large oceans. Geometry only needs to be *plausible*: what matters for the
#: replication is the relative geography (intra-Europe distances small,
#: trans-Atlantic large), not coastline fidelity.
CONTINENTS: Dict[str, Continent] = {
    "EU": Continent("EU", "Europe", 36.0, 60.0, -9.0, 30.0),
    "NA": Continent("NA", "North America", 25.0, 50.0, -124.0, -70.0),
    "SA": Continent("SA", "South America", -35.0, 5.0, -75.0, -40.0),
    "AS": Continent("AS", "Asia", 5.0, 55.0, 60.0, 140.0),
    "AF": Continent("AF", "Africa", -30.0, 33.0, -12.0, 45.0),
    "OC": Continent("OC", "Oceania", -43.0, -12.0, 114.0, 154.0),
}


@dataclass(frozen=True)
class Country:
    """A country: a synthetic code, its continent, and a centroid."""

    code: str
    continent: str
    centroid: GeoPoint


@dataclass
class City:
    """One city of the synthetic world.

    Attributes:
        city_id: dense integer id (index into the world's city list).
        name: synthetic name, stable across runs for a given seed.
        country: country code.
        continent: continent code.
        location: city-centre coordinates.
        population: inhabitants; drives density, POIs, and placement weights.
        radius_km: metro radius; hosts and POIs scatter within ~this range.
        zip_prefix: numeric prefix of all zip codes in the city.
        zipcode_cell_km: side of the square zip-code cells.
        compactness: how concentrated the population is; < 1 means a dense
            core (high peak density), > 1 a sprawling town. Only the
            population-density field reads this — real cities of equal
            population differ by orders of magnitude in density, and the
            paper's Figures 6b/8 need that spread.
    """

    city_id: int
    name: str
    country: str
    continent: str
    location: GeoPoint
    population: float
    radius_km: float
    zip_prefix: int
    zipcode_cell_km: float = 2.5
    compactness: float = 1.0

    def zipcode_at(self, point: GeoPoint) -> str:
        """The zip code covering a point, using the city's cell grid.

        Cells are indexed by east/north offsets from the city centre, so two
        points within the same ``zipcode_cell_km`` square share a code.
        """
        east, north = self._offsets_km(point)
        cell_east = int(math.floor(east / self.zipcode_cell_km))
        cell_north = int(math.floor(north / self.zipcode_cell_km))
        # Fold signed cells into a compact positive code; 500 cells on each
        # side covers a metro area of >1000 km across.
        return f"{self.zip_prefix:04d}-{cell_east + 500:03d}{cell_north + 500:03d}"

    def _offsets_km(self, point: GeoPoint) -> Tuple[float, float]:
        """Approximate east/north offsets of a point from the city centre."""
        north = haversine_km(self.location.lat, self.location.lon, point.lat, self.location.lon)
        if point.lat < self.location.lat:
            north = -north
        east = haversine_km(point.lat, self.location.lon, point.lat, point.lon)
        d_lon = normalize_lon(point.lon - self.location.lon)
        if d_lon < 0:
            east = -east
        return east, north

    def random_point(self, key: rand.Key, sigma_scale: float = 0.5) -> GeoPoint:
        """A deterministic point scattered around the city centre.

        Distances follow a half-normal with sigma ``radius_km * sigma_scale``
        (most activity near the centre, thinning outward).
        """
        bearing = rand.uniform((key, "bearing"), 0.0, 360.0)
        distance = abs(rand.normal((key, "dist"), 0.0, self.radius_km * sigma_scale))
        return destination(self.location, bearing, distance)

    @property
    def density_sigma_km(self) -> float:
        """Kernel width used by the population-density field."""
        return max(1.0, self.radius_km * 0.6 * self.compactness)


def _spread_points_in_box(
    continent: Continent, count: int, seed_key: rand.Key, margin: float = 1.0
) -> List[GeoPoint]:
    """Scatter points uniformly in a continent's box (deterministic)."""
    points = []
    for index in range(count):
        lat = rand.uniform(
            (seed_key, "lat", index), continent.lat_min + margin, continent.lat_max - margin
        )
        lon = rand.uniform(
            (seed_key, "lon", index), continent.lon_min + margin, continent.lon_max - margin
        )
        points.append(GeoPoint(lat, lon))
    return points


def generate_countries(config: WorldConfig) -> List[Country]:
    """Generate country centroids per continent."""
    countries: List[Country] = []
    for code, continent in sorted(CONTINENTS.items()):
        count = config.countries_per_continent.get(code, 0)
        centroids = _spread_points_in_box(continent, count, (config.seed, "country", code), 2.0)
        for index, centroid in enumerate(centroids):
            countries.append(Country(f"{code}{index:02d}", code, centroid))
    return countries


def generate_cities(config: WorldConfig, countries: List[Country]) -> List[City]:
    """Generate the world's cities, clustered around country centroids.

    Each city picks the nearest country centroid of a deterministic jittered
    position inside its continent, takes a log-normal population, and derives
    a metro radius that grows with the square root of population.
    """
    by_continent: Dict[str, List[Country]] = {}
    for country in countries:
        by_continent.setdefault(country.continent, []).append(country)

    cities: List[City] = []
    for code in sorted(CONTINENTS):
        continent = CONTINENTS[code]
        count = config.cities_per_continent.get(code, 0)
        continent_countries = by_continent.get(code, [])
        if count and not continent_countries:
            raise ValueError(f"continent {code} has cities but no countries")
        for index in range(count):
            key = (config.seed, "city", code, index)
            # Cluster around a country centroid: pick one, scatter nearby.
            country = continent_countries[
                rand.randint((key, "country"), 0, len(continent_countries))
            ]
            bearing = rand.uniform((key, "bearing"), 0.0, 360.0)
            spread = rand.exponential((key, "spread"), 250.0)
            location = destination(country.centroid, bearing, min(spread, 900.0))
            location = _clamp_to_box(location, continent)
            population = rand.lognormal(
                (key, "pop"), config.city_population_mu, config.city_population_sigma
            )
            population = min(population, 2.5e7)
            radius_km = max(3.0, 0.022 * math.sqrt(population))
            compactness = rand.lognormal((key, "compact"), 0.0, 1.0)
            compactness = min(max(compactness, 0.05), 8.0)
            cities.append(
                City(
                    city_id=len(cities),
                    name=f"{code.lower()}-{country.code.lower()}-{index:04d}",
                    country=country.code,
                    continent=code,
                    location=location,
                    population=population,
                    radius_km=radius_km,
                    zip_prefix=(len(cities) + 1) % 10000,
                    zipcode_cell_km=config.zipcode_cell_km,
                    compactness=compactness,
                )
            )
    return cities


def _clamp_to_box(point: GeoPoint, continent: Continent) -> GeoPoint:
    """Clamp a point into a continent's bounding box."""
    lat = min(max(point.lat, continent.lat_min), continent.lat_max)
    lon = min(max(point.lon, continent.lon_min), continent.lon_max)
    return GeoPoint(lat, lon)


class CityIndex:
    """Bucketed spatial index over cities for nearest-city queries."""

    def __init__(self, cities: List[City], bucket_deg: float = 2.0) -> None:
        self._cities = cities
        self._bucket_deg = bucket_deg
        self._buckets: Dict[Tuple[int, int], List[City]] = {}
        for city in cities:
            self._buckets.setdefault(self._bucket(city.location), []).append(city)

    def _bucket(self, point: GeoPoint) -> Tuple[int, int]:
        return (
            int(math.floor(point.lat / self._bucket_deg)),
            int(math.floor(point.lon / self._bucket_deg)),
        )

    def nearest(self, point: GeoPoint, max_distance_km: Optional[float] = None) -> Optional[City]:
        """The closest city to a point, optionally within a distance bound."""
        blat, blon = self._bucket(point)
        best: Optional[City] = None
        best_distance = math.inf
        found_ring: Optional[int] = None
        for ring in range(0, 12):
            for city in self._ring_candidates(blat, blon, ring):
                distance = point.distance_km(city.location)
                if distance < best_distance:
                    best_distance = distance
                    best = city
                    if found_ring is None:
                        found_ring = ring
            # One extra ring after the first hit guarantees correctness at
            # this bucket granularity (a nearer city can hide one ring out).
            if found_ring is not None and ring >= found_ring + 1:
                break
        if best is None:
            for city in self._cities:
                distance = point.distance_km(city.location)
                if distance < best_distance:
                    best_distance = distance
                    best = city
        if max_distance_km is not None and best_distance > max_distance_km:
            return None
        return best

    def _ring_candidates(self, blat: int, blon: int, ring: int) -> List[City]:
        candidates: List[City] = []
        for dlat in range(-ring, ring + 1):
            for dlon in range(-ring, ring + 1):
                if max(abs(dlat), abs(dlon)) != ring:
                    continue
                candidates.extend(self._buckets.get((blat + dlat, blon + dlon), ()))
        return candidates

    def within(self, point: GeoPoint, radius_km: float) -> List[City]:
        """All cities whose centre lies within ``radius_km`` of a point."""
        # Conservative bucket window from the radius.
        ring = int(radius_km / (self._bucket_deg * 100.0)) + 2
        blat, blon = self._bucket(point)
        seen: List[City] = []
        for dlat in range(-ring, ring + 1):
            for dlon in range(-ring, ring + 1):
                for city in self._buckets.get((blat + dlat, blon + dlon), ()):
                    if point.distance_km(city.location) <= radius_km:
                        seen.append(city)
        return seen
