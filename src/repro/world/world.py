"""The World container: everything the simulated Internet is made of.

A :class:`World` owns the geography (cities, countries, population field),
the AS fabric, the BGP table, the DNS zone, the hitlist, and every host.
Points of interest (and the web servers behind their websites) are
materialised lazily per city, deterministically from the seed, because only
the cities inside some target's CBG region are ever inspected.

Nothing in this class implements geolocation: algorithms observe the world
exclusively through the measurement APIs in :mod:`repro.atlas` and the
mapping services in :mod:`repro.landmarks`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import UnknownHostError
from repro.geo.coords import GeoPoint
from repro.geo.grid import PopulationGrid
from repro.net.asn import ASRecord
from repro.net.bgp import PrefixTable
from repro.net.dns import DnsResolver
from repro.net.hitlist import Hitlist
from repro.world.cities import City, CityIndex, Country
from repro.world.config import WorldConfig
from repro.world.hosts import Host, HostKind
from repro.world.pois import PointOfInterest


class World:
    """Immutable-after-build snapshot of the simulated Internet.

    Instances are created by :func:`repro.world.builder.build_world`; the
    constructor only wires the parts together.
    """

    def __init__(
        self,
        config: WorldConfig,
        cities: List[City],
        countries: List[Country],
        ases: Dict[int, ASRecord],
        hosts: List[Host],
        hitlist: Hitlist,
        bgp: PrefixTable,
        dns: DnsResolver,
        population: PopulationGrid,
        hub_city_ids: List[int],
        poi_factory: Callable[["World", int], List[PointOfInterest]],
    ) -> None:
        self.config = config
        self.cities = cities
        self.countries = countries
        self.ases = ases
        self.hitlist = hitlist
        self.bgp = bgp
        self.dns = dns
        self.population = population
        self.hub_city_ids = hub_city_ids
        self.city_index = CityIndex(cities)
        #: Filled by the builder: the global website/zip-code directory used
        #: by the street level multi-zipcode test.
        self.web_directory = None
        #: Filled by the builder: the rDNS naming scheme (city location
        #: codes + PTR emission), the corpus behind :mod:`repro.hints`.
        self.hostname_scheme = None

        self._hosts: List[Host] = list(hosts)
        self._hosts_tuple: Optional[tuple] = None
        self._static_host_count = len(hosts)
        self._host_by_ip: Dict[str, Host] = {host.ip: host for host in hosts}
        if len(self._host_by_ip) != len(hosts):
            raise ValueError("duplicate host IPs in world build")

        self._poi_factory = poi_factory
        self._pois_by_city: Dict[int, List[PointOfInterest]] = {}
        self._poi_index: Dict[int, PointOfInterest] = {}
        self._zip_index: Dict[int, Dict[str, List[PointOfInterest]]] = {}

        # Static-host arrays for the vectorised latency engine.
        self.host_true_lats = np.array([h.true_location.lat for h in hosts])
        self.host_true_lons = np.array([h.true_location.lon for h in hosts])
        self.host_last_mile = np.array([h.last_mile_ms for h in hosts])
        self.host_responsive = np.array([h.responsive for h in hosts], dtype=bool)
        self.host_city_ids = np.array([h.city_id for h in hosts], dtype=np.int64)
        self.host_asns = np.array([h.asn for h in hosts], dtype=np.int64)

    # --- hosts ---------------------------------------------------------------

    @property
    def hosts(self) -> Sequence[Host]:
        """All hosts created so far (static + lazily built web servers).

        The tuple is cached and invalidated on lazy host registration —
        rebuilding it per access is O(n), which a million-host world
        cannot afford on a hot property.
        """
        if self._hosts_tuple is None or len(self._hosts_tuple) != len(self._hosts):
            self._hosts_tuple = tuple(self._hosts)
        return self._hosts_tuple

    @property
    def static_host_count(self) -> int:
        """Number of hosts present at build time (before lazy web servers)."""
        return self._static_host_count

    def host(self, ip: str) -> Host:
        """The host owning an address.

        Raises:
            UnknownHostError: if no host has this address.
        """
        host = self._host_by_ip.get(ip)
        if host is None:
            raise UnknownHostError(f"no host with address {ip}")
        return host

    def try_host(self, ip: str) -> Optional[Host]:
        """Like :meth:`host` but returns ``None`` for unknown addresses."""
        return self._host_by_ip.get(ip)

    def host_by_id(self, host_id: int) -> Host:
        """The host with a given dense id."""
        return self._hosts[host_id]

    def register_host(self, host: Host) -> None:
        """Add a lazily created host (web servers only).

        Raises:
            ValueError: on duplicate addresses or out-of-sequence ids.
        """
        if host.ip in self._host_by_ip:
            raise ValueError(f"duplicate host address {host.ip}")
        if host.host_id != len(self._hosts):
            raise ValueError(
                f"host_id {host.host_id} out of sequence (expected {len(self._hosts)})"
            )
        self._hosts.append(host)
        self._hosts_tuple = None
        self._host_by_ip[host.ip] = host

    def next_host_id(self) -> int:
        """The id the next registered host must use."""
        return len(self._hosts)

    def hosts_of_kind(self, kind: HostKind) -> List[Host]:
        """All hosts of one kind, in id order."""
        return [host for host in self._hosts if host.kind is kind]

    @property
    def anchors(self) -> List[Host]:
        """All anchors (including any mis-geolocated ones)."""
        return self.hosts_of_kind(HostKind.ANCHOR)

    @property
    def probes(self) -> List[Host]:
        """All probes (including any mis-geolocated ones)."""
        return self.hosts_of_kind(HostKind.PROBE)

    # --- geography -----------------------------------------------------------

    def city(self, city_id: int) -> City:
        """The city with a given id."""
        return self.cities[city_id]

    def city_of_host(self, host: Host) -> City:
        """The city a host physically sits in."""
        return self.cities[host.city_id]

    def continent_of_ip(self, ip: str) -> str:
        """Continent code of the host owning an address."""
        return self.city_of_host(self.host(ip)).continent

    def rdns_of(self, ip: str) -> Optional[str]:
        """PTR name of an address, or ``None`` (no reverse record)."""
        return self.dns.reverse_lookup(ip)

    # --- autonomous systems ----------------------------------------------------

    def as_of_host(self, host: Host) -> ASRecord:
        """The AS record of a host."""
        return self.ases[host.asn]

    # --- points of interest ------------------------------------------------------

    def pois_of_city(self, city_id: int) -> List[PointOfInterest]:
        """The city's points of interest, materialising them on first use."""
        cached = self._pois_by_city.get(city_id)
        if cached is None:
            cached = self._poi_factory(self, city_id)
            self._pois_by_city[city_id] = cached
            for poi in cached:
                self._poi_index[poi.poi_id] = poi
        return cached

    def pois_by_spatial_zip(self, city_id: int) -> Dict[str, List[PointOfInterest]]:
        """A city's POIs indexed by the zip-code cell they physically sit in.

        This is the index the Overpass-like amenity service queries; note
        that a POI's *listed* ``zipcode`` attribute may disagree with its
        spatial cell (stale map data), which is what the street level
        zip-code test screens for.
        """
        cached = self._zip_index.get(city_id)
        if cached is None:
            city = self.cities[city_id]
            cached = {}
            for poi in self.pois_of_city(city_id):
                cached.setdefault(city.zipcode_at(poi.location), []).append(poi)
            self._zip_index[city_id] = cached
        return cached

    def pois_near(self, point: GeoPoint, radius_km: float) -> List[PointOfInterest]:
        """POIs within a radius of a point (materialises nearby cities).

        The search window covers every city whose metro area could reach the
        query circle.
        """
        results: List[PointOfInterest] = []
        max_metro_radius = 60.0
        for city in self.city_index.within(point, radius_km + max_metro_radius):
            for poi in self.pois_of_city(city.city_id):
                if poi.location.distance_km(point) <= radius_km:
                    results.append(poi)
        return results

    def materialized_poi_count(self) -> int:
        """How many POIs have been generated so far (diagnostics)."""
        return len(self._poi_index)

    def materialize_all_pois(self) -> int:
        """Materialise every city's POIs and zip index, in city-id order.

        Lazy materialisation mutates shared state (the global POI counter,
        per-AS address pools, web-server host ids, chain-website pools) in
        *visit order*, so two campaigns that inspect cities in different
        orders build observably different web servers. Campaigns that fan
        out across worker processes call this first: with the whole world
        materialised in one canonical order before the fork, workers only
        ever read, and a parallel run is byte-identical to a serial one.

        Idempotent and cheap once materialised. Returns the POI count.
        """
        for city in self.cities:
            self.pois_of_city(city.city_id)
            self.pois_by_spatial_zip(city.city_id)
        return len(self._poi_index)

    def describe(self) -> str:
        """Multi-line human-readable summary (for examples and logs)."""
        lines = [
            f"World(seed={self.config.seed}):",
            f"  cities: {len(self.cities)} in {len(self.countries)} countries",
            f"  ASes: {len(self.ases)}",
            f"  anchors: {len(self.anchors)} ({self.config.bad_anchors} mis-geolocated)",
            f"  probes: {len(self.probes)} ({self.config.bad_probes} mis-geolocated)",
            f"  hitlist entries: {len(self.hitlist)}",
            f"  BGP announcements: {len(self.bgp)}",
        ]
        return "\n".join(lines)
