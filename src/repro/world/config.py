"""World generation parameters.

Two presets matter:

* :meth:`WorldConfig.paper` mirrors the replication's scale — 732 generated
  anchors (9 mis-geolocated, leaving the paper's 723 sanitized targets),
  ~9.4K probes (96 mis-geolocated, leaving ~10K usable vantage points
  including anchors), with the paper's continental distribution;
* :meth:`WorldConfig.small` is a fast miniature for unit tests.

Free parameters whose values were *calibrated* against statistics reported
in the paper (rather than copied from it) are marked CALIBRATED; see
EXPERIMENTS.md for the paper-vs-measured comparison that justifies them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.errors import ConfigurationError

#: Continental quotas for sanitized anchors, from §4.1.2 of the paper.
#: The paper's reported per-continent counts (399/125/133/27/18/16) sum to
#: 718, not to its 723 total; we distribute the 5 unaccounted targets over
#: the three largest continents so the sanitized total is exactly 723.
PAPER_ANCHOR_QUOTAS: Mapping[str, int] = {
    "EU": 402,
    "NA": 126,
    "AS": 134,
    "SA": 27,
    "OC": 18,
    "AF": 16,
}

#: Continental shares of RIPE Atlas probes (Europe-heavy platform bias).
PAPER_PROBE_SHARES: Mapping[str, float] = {
    "EU": 0.58,
    "NA": 0.18,
    "AS": 0.12,
    "SA": 0.04,
    "OC": 0.04,
    "AF": 0.04,
}

#: CAIDA-type shares of anchors (Table 2, "Anchors" row).
PAPER_ANCHOR_AS_TYPE_SHARES: Mapping[str, float] = {
    "Content": 0.317,
    "Access": 0.292,
    "Transit/Access": 0.272,
    "Enterprise": 0.076,
    "Tier-1": 0.008,
    "Unknown": 0.035,
}

#: CAIDA-type shares of probes (Table 2, "Probes" row).
PAPER_PROBE_AS_TYPE_SHARES: Mapping[str, float] = {
    "Content": 0.092,
    "Access": 0.752,
    "Transit/Access": 0.083,
    "Enterprise": 0.034,
    "Tier-1": 0.014,
    "Unknown": 0.026,
}

#: ASDB category shares of the anchors' ASes (§4.4.1: 72% IT, 5% R&E, rest
#: spread below 5% each over the remaining 14 categories).
PAPER_ANCHOR_ASDB_SHARES: Mapping[str, float] = {
    "Computer and Information Technology": 0.72,
    "R&E": 0.05,
}


@dataclass
class WorldConfig:
    """All knobs of the synthetic world generator."""

    seed: int = 2023

    # --- geography ---------------------------------------------------------
    #: cities per continent (before population weighting).
    cities_per_continent: Dict[str, int] = field(
        default_factory=lambda: {"EU": 420, "NA": 260, "AS": 300, "SA": 120, "OC": 60, "AF": 140}
    )
    #: countries per continent.
    countries_per_continent: Dict[str, int] = field(
        default_factory=lambda: {"EU": 40, "NA": 12, "AS": 25, "SA": 10, "OC": 4, "AF": 30}
    )
    #: hub (core-router) cities per continent, chosen by population.
    #: CALIBRATED: hub density bounds the uplink detour of same-region
    #: traffic, and with it how tight nearby anchors' CBG circles can get.
    hubs_per_continent: int = 40
    #: how much more likely an anchor is to sit in a hub (IXP) city than
    #: population alone suggests — anchors are hosted in well-connected
    #: facilities. CALIBRATED against the anchors-only CBG curve (Fig. 5a).
    anchor_hub_city_boost: float = 3.0
    #: log-normal parameters of city population.
    city_population_mu: float = 12.2
    city_population_sigma: float = 1.1
    #: baseline rural population density, people per km^2.
    rural_density: float = 2.0

    # --- platform (anchors = targets, probes = vantage points) --------------
    anchor_quotas: Dict[str, int] = field(default_factory=lambda: dict(PAPER_ANCHOR_QUOTAS))
    #: anchors generated with a wrong recorded location (removed by §4.3).
    bad_anchors: int = 9
    probes_total: int = 9379
    probe_shares: Dict[str, float] = field(default_factory=lambda: dict(PAPER_PROBE_SHARES))
    #: probes generated with a wrong recorded location (removed by §4.3).
    bad_probes: int = 96
    #: minimum displacement of a mis-geolocated host, km. CALIBRATED: large
    #: enough that the SOI sanitization provably catches every planted host.
    mislocation_min_km: float = 4000.0
    mislocation_max_km: float = 12000.0
    #: share of probes whose registered location is off by a *sub-SOI*
    #: amount (city-level registration, moved probes): plausible errors the
    #: sanitization cannot catch. CALIBRATED against Figure 2a/§5.1.1 (all-
    #: VP CBG: median 8 km but only 73% of targets at city level) and
    #: Figure 3a (62% within 10 km with the single closest VP).
    probe_metadata_jitter_share: float = 0.30
    probe_metadata_jitter_min_km: float = 8.0
    probe_metadata_jitter_max_km: float = 40.0
    #: share of cities whose access infrastructure is congested: every
    #: probe there carries extra last-mile delay. CALIBRATED against §5.1.5
    #: (European targets whose close probes give a median 7.96 ms RTT).
    city_congested_share: float = 0.28
    city_congestion_extra_ms: float = 8.0
    #: targets whose /24 has fewer than three responsive representatives
    #: (8 of 723 in §4.1.3).
    underpopulated_prefixes: int = 8
    representatives_per_anchor_min: int = 3
    representatives_per_anchor_max: int = 6

    # --- autonomous systems --------------------------------------------------
    #: total ASes in the world; RIPE Atlas spans 3,494 ASes (§2.2.1).
    total_ases: int = 3500
    anchor_as_type_shares: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_ANCHOR_AS_TYPE_SHARES)
    )
    probe_as_type_shares: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_PROBE_AS_TYPE_SHARES)
    )
    anchor_asdb_shares: Dict[str, float] = field(
        default_factory=lambda: dict(PAPER_ANCHOR_ASDB_SHARES)
    )

    # --- latency model (see repro.latency.model) ----------------------------
    #: per-pair fibre slowdown factor range. CALIBRATED so that CBG circle
    #: constraints at 2/3c stay valid (factor >= 1) with realistic inflation.
    fiber_factor_min: float = 1.05
    fiber_factor_max: float = 1.25
    #: probability that two ASes exchange same-city traffic locally (at the
    #: metro). Unpeered pairs trombone through the regional hub, which is
    #: why same-city RTTs are often milliseconds, not microseconds.
    #: CALIBRATED against Figure 5b's latency-check attrition and the
    #: overall city-level fraction (73%).
    local_peering_probability: float = 0.7
    #: round-trip last-mile delay, ms: anchors are well connected servers.
    anchor_last_mile_mean_ms: float = 0.15
    #: probes sit in access networks; exponential tail plus a floor.
    probe_last_mile_floor_ms: float = 0.3
    probe_last_mile_mean_ms: float = 1.8
    #: share of probes behind a congested/bufferbloated last mile, and the
    #: extra round-trip delay they suffer. CALIBRATED: drives the §5.1.5
    #: observation that some European targets see no small RTT from nearby
    #: probes (median 7.96 ms over the 26 high-error EU targets).
    probe_bad_last_mile_share: float = 0.10
    probe_bad_last_mile_extra_ms: float = 9.0
    #: per-packet queueing jitter (exponential mean, ms).
    jitter_mean_ms: float = 0.25
    #: probability that any single probe packet is lost.
    packet_loss_rate: float = 0.01
    #: probability and magnitude (exp mean, ms) of ICMP slow-path spikes on
    #: traceroute hop timestamps. CALIBRATED against Figure 6a: for half the
    #: targets at least ~28% of landmark D1+D2 values come out negative.
    hop_spike_probability: float = 0.03
    hop_spike_mean_ms: float = 2.5
    hop_noise_std_ms: float = 0.25

    # --- web / landmarks -----------------------------------------------------
    #: points of interest per city per 10k population. CALIBRATED against
    #: Figure 5b (28% of targets with a landmark within 1 km) and the
    #: §5.2.5 candidate volume (~3,800 website tests per target).
    pois_per_10k_population: float = 14.0
    poi_max_per_city: int = 1800
    #: probability that a POI advertises a website on the mapping service.
    poi_website_probability: float = 0.62
    #: hosting mix of websites. CALIBRATED against §5.2.2: only a few
    #: percent of candidate websites pass the locally-hosted tests.
    website_local_share: float = 0.075
    website_cloud_share: float = 0.70
    # (remainder is CDN-fronted)
    #: share of locally hosted websites that belong to a multi-site chain
    #: (they fail the "appears in multiple zipcodes" test).
    website_chain_share: float = 0.15
    #: share of POIs whose mapping-service zip code is stale/wrong (they fail
    #: the zip-code comparison test even when locally hosted).
    poi_wrong_zip_share: float = 0.12
    #: web-server round-trip last-mile delay, ms.
    webserver_last_mile_mean_ms: float = 0.4

    # --- zip codes -----------------------------------------------------------
    #: side of the square cells that partition a city into zip codes, km.
    zipcode_cell_km: float = 2.5

    # --- reverse DNS (see repro.world.hostnames and repro.hints) -------------
    #: share of anchors/probes whose address has a PTR record at all.
    #: CALIBRATED loosely against HLOC-style studies: most router/anchor
    #: addresses reverse-resolve, many access-network probes do too.
    rdns_coverage: float = 0.85
    #: of the named hosts, the share whose hostname embeds the host's own
    #: city's location code (a *true* hint the find stage can mine).
    rdns_hint_share: float = 0.70
    #: of the named hosts, the share whose hostname embeds a *different*
    #: city's code — misleading names (off-site naming, stale templates)
    #: that only latency verification can refute.
    rdns_false_friend_share: float = 0.06
    # (remaining named hosts carry pure infrastructure noise labels)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Check internal consistency; raise ConfigurationError otherwise."""
        if self.seed < 0:
            raise ConfigurationError("seed must be non-negative")
        for mapping_name in ("cities_per_continent", "countries_per_continent"):
            mapping = getattr(self, mapping_name)
            if any(v <= 0 for v in mapping.values()):
                raise ConfigurationError(f"{mapping_name} must be positive")
        if set(self.anchor_quotas) - set(self.cities_per_continent):
            raise ConfigurationError("anchor quotas name unknown continents")
        share_sum = sum(self.probe_shares.values())
        if abs(share_sum - 1.0) > 1e-6:
            raise ConfigurationError(f"probe shares must sum to 1, got {share_sum}")
        if self.website_local_share + self.website_cloud_share >= 1.0:
            raise ConfigurationError("website hosting shares exceed 1")
        if self.bad_anchors < 0 or self.bad_probes < 0:
            raise ConfigurationError("bad host counts must be non-negative")
        if self.mislocation_min_km > self.mislocation_max_km:
            raise ConfigurationError("mislocation range is inverted")
        for share_name in ("rdns_coverage", "rdns_hint_share", "rdns_false_friend_share"):
            value = getattr(self, share_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{share_name} must be in [0, 1], got {value}")
        if self.rdns_hint_share + self.rdns_false_friend_share > 1.0:
            raise ConfigurationError("rdns hint + false-friend shares exceed 1")

    @property
    def total_anchors(self) -> int:
        """Generated anchors: the sanitized quota plus the planted bad ones."""
        return sum(self.anchor_quotas.values()) + self.bad_anchors

    @classmethod
    def paper(cls, seed: int = 2023) -> "WorldConfig":
        """The full paper-scale world (723 sanitized targets, ~10K VPs)."""
        return cls(seed=seed)

    @classmethod
    def small(cls, seed: int = 7) -> "WorldConfig":
        """A miniature world for unit tests: ~60 anchors, ~700 probes."""
        return cls(
            seed=seed,
            cities_per_continent={"EU": 40, "NA": 24, "AS": 24, "SA": 12, "OC": 8, "AF": 12},
            countries_per_continent={"EU": 8, "NA": 4, "AS": 5, "SA": 3, "OC": 2, "AF": 4},
            hubs_per_continent=3,
            anchor_quotas={"EU": 30, "NA": 12, "AS": 10, "SA": 4, "OC": 2, "AF": 2},
            bad_anchors=2,
            probes_total=700,
            bad_probes=8,
            underpopulated_prefixes=2,
            total_ases=220,
        )

    @classmethod
    def quick(cls, seed: int = 11) -> "WorldConfig":
        """A tiny world for self-checks: ~20 anchors, ~220 probes.

        Small enough that a fully *checked* campaign (``REPRO_CHECK=1``)
        plus the differential harness finishes in CI seconds, while still
        exercising every continent, mis-geolocated hosts, and an
        underpopulated prefix.
        """
        return cls(
            seed=seed,
            cities_per_continent={"EU": 16, "NA": 10, "AS": 10, "SA": 6, "OC": 4, "AF": 6},
            countries_per_continent={"EU": 4, "NA": 3, "AS": 3, "SA": 2, "OC": 2, "AF": 2},
            hubs_per_continent=2,
            anchor_quotas={"EU": 8, "NA": 4, "AS": 4, "SA": 2, "OC": 1, "AF": 1},
            bad_anchors=1,
            probes_total=220,
            bad_probes=4,
            underpopulated_prefixes=1,
            total_ases=120,
        )
