"""World construction: from a :class:`WorldConfig` to a ready :class:`World`.

Build order (everything keyed off ``config.seed``):

1. countries and cities (clustered, population-weighted, Europe-dense);
2. hub cities (the backbone waypoints of the topology);
3. the AS fabric, with CAIDA types, ASDB categories, and city footprints;
4. anchors (with their /24 representative hosts), then probes — a planted
   subset of each carries a wrong recorded location for §4.3 to catch;
5. the hitlist, BGP announcements (driven by address allocation), and the
   population-density field;
6. a lazy POI factory: a city's points of interest, websites, web-server
   hosts, and DNS records materialise the first time a landmark search
   touches the city.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import rand
from repro.errors import ConfigurationError
from repro.geo.coords import GeoPoint, destination
from repro.geo.grid import PopulationCenter, PopulationGrid
from repro.net.addressing import AddressAllocator, Prefix, Slash24Pool, int_to_ip
from repro.net.asn import ASDB_CATEGORIES, ASRecord, CAIDA_TYPES
from repro.net.bgp import PrefixTable
from repro.net.dns import DnsRecord, DnsResolver
from repro.net.hitlist import Hitlist
from repro.world.cities import City, generate_cities, generate_countries
from repro.world.config import WorldConfig
from repro.world.hostnames import HostnameScheme
from repro.world.hosts import Host, HostKind
from repro.world.pois import AMENITY_CATEGORIES, HostingKind, PointOfInterest, Website
from repro.world.world import World

#: Share of each CAIDA type in the AS fabric itself (not in host placement).
_AS_TYPE_FABRIC_SHARES: Dict[str, float] = {
    "Access": 0.58,
    "Content": 0.13,
    "Transit/Access": 0.09,
    "Enterprise": 0.13,
    "Tier-1": 0.008,
    "Unknown": 0.062,
}


class WebDirectory:
    """Global index of which zip codes advertise each website.

    This stands in for "searching the mapping service for the website": the
    street level technique flags websites that appear under multiple zip
    codes (franchise chains) as not locally hosted. The directory is filled
    when websites are created; chain branches are registered eagerly so the
    answer does not depend on which cities happen to be materialised.
    """

    def __init__(self) -> None:
        self._zipcodes: Dict[str, Set[str]] = {}

    def register(self, hostname: str, zipcode: str) -> None:
        """Record that a website is advertised under a zip code."""
        self._zipcodes.setdefault(hostname, set()).add(zipcode)

    def zipcodes_of(self, hostname: str) -> Set[str]:
        """All zip codes a website is advertised under (empty if unknown)."""
        return set(self._zipcodes.get(hostname, ()))

    def appears_in_multiple_zipcodes(self, hostname: str) -> bool:
        """The street level multi-zipcode test's data source."""
        return len(self._zipcodes.get(hostname, ())) > 1


class _ASAddressSpace:
    """Per-AS address pool that keeps the BGP table in sync.

    Every /16 claimed by the pool is announced; a configurable share of /24s
    is also announced more specifically (de-aggregation), which creates the
    "landmark in the same BGP prefix as the target" cases of §5.2.3.
    """

    def __init__(self, asn: int, allocator: AddressAllocator, bgp: PrefixTable, seed: int) -> None:
        self.asn = asn
        self._pool = Slash24Pool(allocator)
        self._bgp = bgp
        self._seed = seed
        self._announced_blocks = 0
        self._packed_prefix: Optional[Prefix] = None
        self._packed_offset = 255

    def allocate_slash24(self) -> Prefix:
        """Claim a /24, announcing new covering /16s (and some /24s)."""
        prefix = self._pool.allocate_slash24()
        blocks = self._pool.blocks
        while self._announced_blocks < len(blocks):
            self._bgp.announce(blocks[self._announced_blocks], self.asn)
            self._announced_blocks += 1
        if rand.chance((self._seed, "deagg", prefix.base), 0.25):
            self._bgp.announce(prefix, self.asn)
        return prefix

    def allocate_address(self) -> str:
        """Claim a single address, packing a /24 before opening a new one.

        Used for web servers: real hosting ASes pack many customers per
        /24, so websites must not each burn a whole prefix.
        """
        if self._packed_prefix is None or self._packed_offset > 254:
            self._packed_prefix = self.allocate_slash24()
            self._packed_offset = 1
        ip = int_to_ip(self._packed_prefix.base + self._packed_offset)
        self._packed_offset += 1
        return ip


@dataclass
class _Wiring:
    """Mutable state shared between build phases and the lazy POI factory."""

    config: WorldConfig
    allocator: AddressAllocator
    bgp: PrefixTable
    dns: DnsResolver
    directory: WebDirectory
    spaces: Dict[int, _ASAddressSpace] = field(default_factory=dict)
    city_access_asns: Dict[int, List[int]] = field(default_factory=dict)
    content_asns_by_continent: Dict[str, List[int]] = field(default_factory=dict)
    asns_by_type_continent: Dict[Tuple[str, str], List[int]] = field(default_factory=dict)
    hub_city_ids: List[int] = field(default_factory=list)
    hub_by_continent: Dict[str, List[int]] = field(default_factory=dict)
    next_poi_id: int = 0
    chain_websites: Dict[str, List[Website]] = field(default_factory=dict)
    hostnames: Optional[HostnameScheme] = None

    def space(self, asn: int) -> _ASAddressSpace:
        """The address space of an AS, created on first use."""
        existing = self.spaces.get(asn)
        if existing is None:
            existing = _ASAddressSpace(asn, self.allocator, self.bgp, self.config.seed)
            self.spaces[asn] = existing
        return existing


def build_world(config: WorldConfig) -> World:
    """Build a complete :class:`World` from a configuration.

    Deterministic: equal configs produce byte-for-byte equal worlds.
    """
    countries = generate_countries(config)
    cities = generate_cities(config, countries)
    if not cities:
        raise ConfigurationError("world has no cities")

    hub_city_ids, hub_by_continent = _pick_hubs(config, cities)
    ases, city_access_asns, content_by_continent, asns_by_type_continent = _build_as_fabric(
        config, cities, hub_by_continent
    )

    allocator = AddressAllocator()
    bgp = PrefixTable()
    dns = DnsResolver()
    directory = WebDirectory()
    wiring = _Wiring(
        config=config,
        allocator=allocator,
        bgp=bgp,
        dns=dns,
        directory=directory,
        city_access_asns=city_access_asns,
        content_asns_by_continent=content_by_continent,
        asns_by_type_continent=asns_by_type_continent,
        hub_city_ids=hub_city_ids,
        hub_by_continent=hub_by_continent,
        hostnames=HostnameScheme(config, cities),
    )

    hitlist = Hitlist(seed=config.seed)
    hosts: List[Host] = []
    _build_anchors_and_representatives(config, cities, ases, wiring, hosts, hitlist)
    _build_probes(config, cities, ases, wiring, hosts)

    population = PopulationGrid(
        (
            PopulationCenter(city.location, city.population, city.density_sigma_km)
            for city in cities
        ),
        rural_density=config.rural_density,
    )

    world = World(
        config=config,
        cities=cities,
        countries=countries,
        ases=ases,
        hosts=hosts,
        hitlist=hitlist,
        bgp=bgp,
        dns=dns,
        population=population,
        hub_city_ids=hub_city_ids,
        poi_factory=lambda w, city_id: _materialize_city_pois(w, city_id, wiring),
    )
    world.web_directory = directory
    world.hostname_scheme = wiring.hostnames
    return world


# --- geography helpers --------------------------------------------------------


def _pick_hubs(
    config: WorldConfig, cities: Sequence[City]
) -> Tuple[List[int], Dict[str, List[int]]]:
    """Hub cities: the most populated cities of each continent."""
    by_continent: Dict[str, List[City]] = {}
    for city in cities:
        by_continent.setdefault(city.continent, []).append(city)
    hub_ids: List[int] = []
    hub_map: Dict[str, List[int]] = {}
    for continent, group in sorted(by_continent.items()):
        top = sorted(group, key=lambda c: -c.population)[: config.hubs_per_continent]
        ids = [city.city_id for city in top]
        hub_map[continent] = ids
        hub_ids.extend(ids)
    return hub_ids, hub_map


# --- AS fabric ------------------------------------------------------------------


def _weighted_type(key: rand.Key, shares: Dict[str, float]) -> str:
    """Draw a CAIDA type according to a share mapping."""
    draw = rand.uniform(key) * sum(shares.values())
    cumulative = 0.0
    for caida_type in CAIDA_TYPES:
        cumulative += shares.get(caida_type, 0.0)
        if draw < cumulative:
            return caida_type
    return "Unknown"


def _asdb_category(key: rand.Key, config: WorldConfig) -> str:
    """Draw an ASDB category following the paper's observed mix."""
    draw = rand.uniform(key)
    cumulative = 0.0
    for category, share in config.anchor_asdb_shares.items():
        cumulative += share
        if draw < cumulative:
            return category
    remaining = [c for c in ASDB_CATEGORIES if c not in config.anchor_asdb_shares]
    return remaining[rand.randint((key, "rest"), 0, len(remaining))]


def _build_as_fabric(
    config: WorldConfig,
    cities: Sequence[City],
    hub_by_continent: Dict[str, List[int]],
) -> Tuple[
    Dict[int, ASRecord],
    Dict[int, List[int]],
    Dict[str, List[int]],
    Dict[Tuple[str, str], List[int]],
]:
    """Create the AS records with their footprints and city indexes."""
    cities_by_continent: Dict[str, List[City]] = {}
    cities_by_country: Dict[str, List[City]] = {}
    for city in cities:
        cities_by_continent.setdefault(city.continent, []).append(city)
        cities_by_country.setdefault(city.country, []).append(city)

    continent_weights = {code: len(group) for code, group in cities_by_continent.items()}
    continent_codes = sorted(continent_weights)
    total_weight = sum(continent_weights.values())

    ases: Dict[int, ASRecord] = {}
    city_access_asns: Dict[int, List[int]] = {}
    content_by_continent: Dict[str, List[int]] = {code: [] for code in continent_codes}
    asns_by_type_continent: Dict[Tuple[str, str], List[int]] = {}

    for index in range(config.total_ases):
        asn = 10000 + index
        key = (config.seed, "as", asn)
        caida_type = _weighted_type((key, "type"), _AS_TYPE_FABRIC_SHARES)
        # Continent by city-count weight.
        draw = rand.uniform((key, "continent")) * total_weight
        cumulative = 0
        continent = continent_codes[-1]
        for code in continent_codes:
            cumulative += continent_weights[code]
            if draw < cumulative:
                continent = code
                break
        continent_cities = cities_by_continent[continent]
        home_city = continent_cities[rand.randint((key, "home"), 0, len(continent_cities))]
        country = home_city.country

        footprint = _as_footprint(
            key, caida_type, home_city, cities_by_country, continent_cities, hub_by_continent
        )
        record = ASRecord(
            asn=asn,
            name=f"AS-{caida_type.replace('/', '-')}-{asn}",
            caida_type=caida_type,
            asdb_category=_asdb_category((key, "asdb"), config),
            country=country,
            city_ids=footprint,
        )
        ases[asn] = record
        asns_by_type_continent.setdefault((caida_type, continent), []).append(asn)
        if caida_type in ("Access", "Enterprise", "Transit/Access", "Unknown"):
            for city_id in footprint:
                city_access_asns.setdefault(city_id, []).append(asn)
        if caida_type == "Content":
            content_by_continent[continent].append(asn)

    # Every continent must offer content ASes (for cloud/CDN hosting).
    for code in continent_codes:
        if not content_by_continent[code]:
            fallback = next(iter(ases))
            content_by_continent[code].append(fallback)
    return ases, city_access_asns, content_by_continent, asns_by_type_continent


def _as_footprint(
    key: rand.Key,
    caida_type: str,
    home_city: City,
    cities_by_country: Dict[str, List[City]],
    continent_cities: Sequence[City],
    hub_by_continent: Dict[str, List[int]],
) -> List[int]:
    """City ids where an AS has points of presence."""
    if caida_type == "Tier-1":
        return [cid for ids in hub_by_continent.values() for cid in ids]
    if caida_type == "Transit/Access":
        count = min(len(continent_cities), rand.randint((key, "fp"), 8, 25))
        picks = {home_city.city_id}
        attempt = 0
        while len(picks) < count:
            picks.add(
                continent_cities[
                    rand.randint((key, "fp", attempt), 0, len(continent_cities))
                ].city_id
            )
            attempt += 1
        return sorted(picks)
    if caida_type == "Content":
        hubs = hub_by_continent[home_city.continent]
        count = min(len(hubs), rand.randint((key, "fp"), 1, 5))
        return sorted(hubs[:count])
    if caida_type == "Access":
        country_cities = cities_by_country[home_city.country]
        count = min(len(country_cities), rand.randint((key, "fp"), 3, 16))
        picks = {home_city.city_id}
        attempt = 0
        while len(picks) < count:
            picks.add(
                country_cities[
                    rand.randint((key, "fp", attempt), 0, len(country_cities))
                ].city_id
            )
            attempt += 1
        return sorted(picks)
    # Enterprise / Unknown: a single site.
    return [home_city.city_id]


# --- platform hosts -------------------------------------------------------------


def _pick_weighted_city(
    key: rand.Key, cities: Sequence[City], weights: Sequence[float]
) -> City:
    """Population-weighted deterministic city choice."""
    total = sum(weights)
    draw = rand.uniform(key) * total
    cumulative = 0.0
    for city, weight in zip(cities, weights):
        cumulative += weight
        if draw < cumulative:
            return city
    return cities[-1]


def _pick_as_for_host(
    key: rand.Key,
    city: City,
    shares: Dict[str, float],
    ases: Dict[int, ASRecord],
    wiring: _Wiring,
) -> ASRecord:
    """Pick an AS for a host: draw a CAIDA type, then an AS of that type.

    Prefers ASes already present in the host's city; otherwise extends a
    same-continent AS's footprint into the city (the AS opens a PoP there).
    """
    caida_type = _weighted_type((key, "host-type"), shares)
    in_city = [
        asn
        for asn in wiring.city_access_asns.get(city.city_id, [])
        if ases[asn].caida_type == caida_type
    ]
    if in_city:
        return ases[in_city[rand.randint((key, "pick"), 0, len(in_city))]]
    same_continent = wiring.asns_by_type_continent.get((caida_type, city.continent), [])
    if not same_continent:
        same_continent = [
            asn
            for (kind, _continent), asns in wiring.asns_by_type_continent.items()
            for asn in asns
            if kind == caida_type
        ]
    if not same_continent:
        same_continent = sorted(ases)
    record = ases[same_continent[rand.randint((key, "fallback"), 0, len(same_continent))]]
    if city.city_id not in record.city_ids:
        record.city_ids.append(city.city_id)
        if record.caida_type in ("Access", "Enterprise", "Transit/Access", "Unknown"):
            wiring.city_access_asns.setdefault(city.city_id, []).append(record.asn)
    return record


def _mislocate(key: rand.Key, true_location: GeoPoint, config: WorldConfig) -> GeoPoint:
    """A wrong recorded location, displaced by a large random offset."""
    bearing = rand.uniform((key, "bearing"), 0.0, 360.0)
    distance = rand.uniform(
        (key, "distance"), config.mislocation_min_km, config.mislocation_max_km
    )
    return destination(true_location, bearing, distance)


def _build_anchors_and_representatives(
    config: WorldConfig,
    cities: Sequence[City],
    ases: Dict[int, ASRecord],
    wiring: _Wiring,
    hosts: List[Host],
    hitlist: Hitlist,
) -> None:
    """Create anchors per continental quota, plus their /24 representatives."""
    cities_by_continent: Dict[str, List[City]] = {}
    for city in cities:
        cities_by_continent.setdefault(city.continent, []).append(city)

    anchor_specs: List[Tuple[str, bool]] = []
    for continent in sorted(config.anchor_quotas):
        anchor_specs.extend((continent, False) for _ in range(config.anchor_quotas[continent]))
    # Mis-geolocated anchors: spread over the quota continents round-robin.
    quota_continents = sorted(config.anchor_quotas)
    for index in range(config.bad_anchors):
        anchor_specs.append((quota_continents[index % len(quota_continents)], True))

    # Which anchors sit in a sparsely populated /24 (fewer than 3 responsive
    # representatives): a deterministic subset of the good anchors.
    good_indexes = [i for i, (_, bad) in enumerate(anchor_specs) if not bad]
    underpopulated = set(
        good_indexes[:: max(1, len(good_indexes) // max(config.underpopulated_prefixes, 1))][
            : config.underpopulated_prefixes
        ]
    )

    hub_cities = set(wiring.hub_city_ids)
    anchors_in_city: Dict[int, int] = {}
    for index, (continent, mislocated) in enumerate(anchor_specs):
        key = (config.seed, "anchor", index)
        group = cities_by_continent[continent]
        weights = [
            city.population
            * (config.anchor_hub_city_boost if city.city_id in hub_cities else 1.0)
            / (1.0 + 2.0 * anchors_in_city.get(city.city_id, 0))
            for city in group
        ]
        city = _pick_weighted_city((key, "city"), group, weights)
        anchors_in_city[city.city_id] = anchors_in_city.get(city.city_id, 0) + 1

        record = _pick_as_for_host(key, city, config.anchor_as_type_shares, ases, wiring)
        prefix = wiring.space(record.asn).allocate_slash24()
        anchor_offset = rand.randint((key, "offset"), 1, 200)
        anchor_ip = int_to_ip(prefix.base + anchor_offset)
        # Anchors are hosted facilities: they sit near the urban core.
        true_location = city.random_point((key, "loc"), sigma_scale=0.25)
        recorded = (
            _mislocate((key, "mis"), true_location, config) if mislocated else true_location
        )
        rdns = wiring.hostnames.hostname((key, "rdns"), city, record.asn, "anchor")
        anchor = Host(
            host_id=len(hosts),
            ip=anchor_ip,
            kind=HostKind.ANCHOR,
            true_location=true_location,
            recorded_location=recorded,
            city_id=city.city_id,
            asn=record.asn,
            last_mile_ms=rand.exponential((key, "lm"), config.anchor_last_mile_mean_ms),
            mislocated=mislocated,
            rdns=rdns,
        )
        hosts.append(anchor)
        if rdns is not None:
            wiring.dns.register_reverse(anchor_ip, rdns)

        rep_count = rand.randint(
            (key, "repcount"),
            config.representatives_per_anchor_min,
            config.representatives_per_anchor_max + 1,
        )
        responsive_quota = rep_count
        if index in underpopulated:
            responsive_quota = rand.randint((key, "under"), 0, 3)
        used_offsets = {anchor_offset}
        for rep_index in range(rep_count):
            rep_key = (key, "rep", rep_index)
            offset = rand.randint(rep_key, 1, 255)
            while offset in used_offsets:
                offset = (offset % 254) + 1
            used_offsets.add(offset)
            rep_ip = int_to_ip(prefix.base + offset)
            bearing = rand.uniform((rep_key, "bearing"), 0.0, 360.0)
            distance = abs(rand.normal((rep_key, "dist"), 0.0, 2.5))
            rep_location = destination(true_location, bearing, distance)
            responsive = rep_index < responsive_quota
            hosts.append(
                Host(
                    host_id=len(hosts),
                    ip=rep_ip,
                    kind=HostKind.REPRESENTATIVE,
                    true_location=rep_location,
                    recorded_location=rep_location,
                    city_id=city.city_id,
                    asn=record.asn,
                    last_mile_ms=rand.exponential(
                        (rep_key, "lm"), config.anchor_last_mile_mean_ms * 2.0
                    ),
                    responsive=responsive,
                )
            )
            if responsive:
                hitlist.add(rep_ip, rand.randint((rep_key, "score"), 20, 100))


def _build_probes(
    config: WorldConfig,
    cities: Sequence[City],
    ases: Dict[int, ASRecord],
    wiring: _Wiring,
    hosts: List[Host],
) -> None:
    """Create probes with the platform's continental and AS-type mix."""
    cities_by_continent: Dict[str, List[City]] = {}
    for city in cities:
        cities_by_continent.setdefault(city.continent, []).append(city)

    continents = sorted(config.probe_shares)
    counts = {
        code: int(round(config.probe_shares[code] * config.probes_total))
        for code in continents
    }
    # Fix rounding drift on the largest share.
    drift = config.probes_total - sum(counts.values())
    counts[max(counts, key=lambda c: counts[c])] += drift

    probe_index = 0
    bad_stride = max(1, config.probes_total // max(config.bad_probes, 1))
    for continent in continents:
        group = cities_by_continent[continent]
        for _ in range(counts[continent]):
            key = (config.seed, "probe", probe_index)
            weights = [city.population for city in group]
            city = _pick_weighted_city((key, "city"), group, weights)
            record = _pick_as_for_host(key, city, config.probe_as_type_shares, ases, wiring)
            prefix = wiring.space(record.asn).allocate_slash24()
            ip = int_to_ip(prefix.base + rand.randint((key, "offset"), 1, 255))
            true_location = city.random_point((key, "loc"), sigma_scale=0.6)
            mislocated = (
                probe_index % bad_stride == 0
                and probe_index // bad_stride < config.bad_probes
            )
            if mislocated:
                recorded = _mislocate((key, "mis"), true_location, config)
            elif rand.chance((key, "jitter"), config.probe_metadata_jitter_share):
                # Sub-SOI metadata error: city-level registration, probes
                # moved without updating coordinates. Plausible enough that
                # the §4.3 sanitization (mostly) cannot catch it.
                recorded = destination(
                    true_location,
                    rand.uniform((key, "jit-bearing"), 0.0, 360.0),
                    rand.uniform(
                        (key, "jit-dist"),
                        config.probe_metadata_jitter_min_km,
                        config.probe_metadata_jitter_max_km,
                    ),
                )
            else:
                recorded = true_location
            last_mile = config.probe_last_mile_floor_ms + rand.exponential(
                (key, "lm"), config.probe_last_mile_mean_ms
            )
            if rand.chance((key, "badlm"), config.probe_bad_last_mile_share):
                last_mile += config.probe_bad_last_mile_extra_ms * (
                    0.5 + rand.uniform((key, "badlm-mag"))
                )
            if rand.chance(
                (config.seed, "congested-city", city.city_id),
                config.city_congested_share,
            ):
                last_mile += config.city_congestion_extra_ms * (
                    0.5 + rand.uniform((key, "cong-mag"))
                )
            rdns = wiring.hostnames.hostname((key, "rdns"), city, record.asn, "probe")
            hosts.append(
                Host(
                    host_id=len(hosts),
                    ip=ip,
                    kind=HostKind.PROBE,
                    true_location=true_location,
                    recorded_location=recorded,
                    city_id=city.city_id,
                    asn=record.asn,
                    last_mile_ms=last_mile,
                    mislocated=mislocated,
                    rdns=rdns,
                )
            )
            if rdns is not None:
                wiring.dns.register_reverse(ip, rdns)
            probe_index += 1


# --- lazy POIs and websites ------------------------------------------------------


def _materialize_city_pois(world: World, city_id: int, wiring: _Wiring) -> List[PointOfInterest]:
    """Generate a city's POIs, websites, web servers, and DNS records."""
    config = wiring.config
    city = world.city(city_id)
    count = int(city.population / 10_000.0 * config.pois_per_10k_population)
    count = max(3, min(count, config.poi_max_per_city))

    pois: List[PointOfInterest] = []
    for index in range(count):
        key = (config.seed, "poi", city_id, index)
        location = city.random_point((key, "loc"), sigma_scale=0.35)
        category = AMENITY_CATEGORIES[
            rand.randint((key, "cat"), 0, len(AMENITY_CATEGORIES))
        ]
        zipcode = city.zipcode_at(location)
        if rand.chance((key, "wrongzip"), config.poi_wrong_zip_share):
            # Stale mapping data: the listed code is a different cell's.
            shifted = destination(
                location,
                rand.uniform((key, "wz-bearing"), 0.0, 360.0),
                rand.uniform((key, "wz-dist"), 6.0, 25.0),
            )
            zipcode = city.zipcode_at(shifted)

        website = None
        if rand.chance((key, "haswww"), config.poi_website_probability):
            website = _make_website(world, wiring, key, city, location, zipcode)

        poi_id = wiring.next_poi_id
        wiring.next_poi_id += 1
        pois.append(
            PointOfInterest(
                poi_id=poi_id,
                name=f"{category}-{city.name}-{index}",
                category=category,
                location=location,
                city_id=city_id,
                zipcode=zipcode,
                website=website,
            )
        )
    return pois


def _make_website(
    world: World,
    wiring: _Wiring,
    key: rand.Key,
    city: City,
    poi_location: GeoPoint,
    poi_zipcode: str,
) -> Website:
    """Create (or reuse, for chains) the website advertised by a POI."""
    config = wiring.config
    draw = rand.uniform((key, "hosting"))
    if draw < config.website_local_share:
        hosting = HostingKind.LOCAL
    elif draw < config.website_local_share + config.website_cloud_share:
        hosting = HostingKind.CLOUD
    else:
        hosting = HostingKind.CDN

    # Franchise chains: reuse an existing chain site of the country when one
    # exists; its branches appear under several zip codes.
    if hosting is HostingKind.LOCAL and rand.chance((key, "chain"), config.website_chain_share):
        pool = wiring.chain_websites.setdefault(city.country, [])
        if pool and rand.chance((key, "chain-reuse"), 0.7):
            website = pool[rand.randint((key, "chain-pick"), 0, len(pool))]
            wiring.directory.register(website.hostname, poi_zipcode)
            return website
        website = _new_website(world, wiring, key, city, poi_location, hosting, chain=True)
        wiring.directory.register(website.hostname, poi_zipcode)
        # Pre-register a few future branches so the multi-zip answer does not
        # depend on materialisation order.
        for branch in range(rand.randint((key, "branches"), 1, 4)):
            synthetic = f"{website.hostname}-branch{branch}"
            wiring.directory.register(website.hostname, synthetic)
        pool.append(website)
        return website

    website = _new_website(world, wiring, key, city, poi_location, hosting, chain=False)
    wiring.directory.register(website.hostname, poi_zipcode)
    return website


def _new_website(
    world: World,
    wiring: _Wiring,
    key: rand.Key,
    city: City,
    poi_location: GeoPoint,
    hosting: HostingKind,
    chain: bool,
) -> Website:
    """Allocate the server address, DNS record, and Website object.

    Only locally hosted websites get a full :class:`Host` (they are the
    ones the street level technique pings and traceroutes). Cloud and CDN
    sites get an address inside a content AS — enough for the hosting
    checks, which inspect DNS and BGP origin — without the memory cost of
    hundreds of thousands of never-probed host objects.
    """
    config = wiring.config
    serial = wiring.next_poi_id
    hostname = f"www.site-{city.country.lower()}-{serial}.example"
    server_host_id: Optional[int] = None

    if hosting is HostingKind.LOCAL:
        asns = wiring.city_access_asns.get(city.city_id) or []
        if asns:
            asn = asns[rand.randint((key, "las"), 0, len(asns))]
        else:
            # No access AS reaches this city yet: any non-hosting AS keeps
            # the site plausibly on premises (a Content AS would make the
            # CDN/hosting test reject a genuinely local site).
            asn = next(
                record.asn
                for record in world.ases.values()
                if record.caida_type != "Content"
            )
        ip = wiring.space(asn).allocate_address()
        server = Host(
            host_id=world.next_host_id(),
            ip=ip,
            kind=HostKind.WEBSERVER,
            true_location=poi_location,
            recorded_location=poi_location,
            city_id=city.city_id,
            asn=asn,
            last_mile_ms=rand.exponential((key, "wlm"), config.webserver_last_mile_mean_ms),
        )
        world.register_host(server)
        server_host_id = server.host_id
        cname_chain = ()
    elif hosting is HostingKind.CLOUD:
        # Cloud region: a hub city, same continent 60% of the time.
        if rand.chance((key, "samecont"), 0.6):
            continent = city.continent
        else:
            continents = sorted(wiring.hub_by_continent)
            continent = continents[rand.randint((key, "cont"), 0, len(continents))]
        pool = wiring.content_asns_by_continent[continent]
        asn = pool[rand.randint((key, "cas"), 0, len(pool))]
        ip = wiring.space(asn).allocate_address()
        cname_chain = (
            (f"{hostname}.lb.cloudhosting.example",)
            if rand.chance((key, "cloudcname"), 0.5)
            else ()
        )
    else:  # CDN: anycast behind a well-known CDN domain.
        pool = wiring.content_asns_by_continent[city.continent]
        asn = pool[rand.randint((key, "cdnas"), 0, len(pool))]
        ip = wiring.space(asn).allocate_address()
        cname_chain = (f"{hostname}.pop.anycastweb.org",)

    wiring.dns.register(DnsRecord(hostname=hostname, ip=ip, cname_chain=cname_chain))
    chain_id = serial if chain else None
    return Website(
        hostname=hostname,
        ip=ip,
        hosting=hosting,
        server_host_id=server_host_id,
        chain_id=chain_id,
    )
