"""Synthetic world generation: continents, cities, ASes, hosts, websites.

The world is the simulated counterpart of "the Internet + RIPE Atlas + the
web" that the paper measures. Everything is generated deterministically from
``WorldConfig.seed``; see DESIGN.md §1 for the substitution rationale.
"""

from repro.world.config import WorldConfig
from repro.world.cities import City, Continent, Country, CONTINENTS
from repro.world.hosts import Host, HostKind
from repro.world.pois import PointOfInterest, Website
from repro.world.world import World
from repro.world.builder import build_world
from repro.world.arrays import (
    ArenaToken,
    SharedArena,
    WorldArrays,
    arena_supported,
)

__all__ = [
    "WorldConfig",
    "City",
    "Continent",
    "Country",
    "CONTINENTS",
    "Host",
    "HostKind",
    "PointOfInterest",
    "Website",
    "World",
    "build_world",
    "ArenaToken",
    "SharedArena",
    "WorldArrays",
    "arena_supported",
]
