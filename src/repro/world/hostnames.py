"""Deterministic rDNS hostname schemes for the world's hosts.

Real operators encode *location codes* into router and server hostnames —
IATA airport codes (``fra``, ``syd``), CLLI-style facility codes
(``nycmny``), and ad-hoc city abbreviations — next to interface and role
labels (``xe-2-1-0``, ``core3``). HLOC (Scheitle et al.) mines exactly
those names. This module gives every synthetic city a small set of
globally unique location codes and emits realistic PTR names for anchors
and probes, seeded entirely from counter-keyed draws so a rebuild is
byte-identical.

Three name classes (shares from :class:`~repro.world.config.WorldConfig`):

* **true hints** — the name embeds one of the host's own city's codes;
* **false friends** — the name embeds a *different* city's code
  (off-site naming conventions, stale templates); only latency
  verification (:mod:`repro.hints.verify`) can refute these;
* **noise** — infrastructure vocabulary only, no location code at all.

The guarantees the hint pipeline's property tests lean on:

* every code is a pure lowercase-letter string, globally unique across
  cities and code kinds, and never a :data:`NOISE_VOCABULARY` word;
* noise labels are always ``<vocabulary word>[digits]``. Because matching
  (:mod:`repro.hints.trie`) accepts a token for a code only when the
  token *is* the code or the code plus a digit tail, a noise token can
  match a code only if the vocabulary word equals the code — which code
  assignment excludes. Noise provably never matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import rand
from repro.world.cities import City
from repro.world.config import WorldConfig

#: Infrastructure words that appear in hostnames but are *not* location
#: codes. Doubles as the code-assignment blacklist and the find stage's
#: label blacklist; includes interface prefixes and the reserved suffix
#: labels so every non-code token of a generated name is covered.
NOISE_VOCABULARY: Tuple[str, ...] = (
    # roles
    "core", "edge", "agg", "border", "peer", "spine", "leaf", "gw", "rtr",
    # access-network boilerplate
    "static", "dynamic", "dyn", "pool", "dsl", "cable", "fiber", "ftth",
    "dialup", "cust", "host", "ip", "nat", "wan", "lan",
    # interface prefixes
    "xe", "ge", "te", "et", "ae", "eth", "lo", "vlan",
    # reserved suffix labels of the synthetic zone
    "as", "net", "example", "rev", "in", "addr",
)

#: Interface-name prefixes used by the first label (all in the vocabulary).
_INTERFACE_PREFIXES: Tuple[str, ...] = ("xe", "ge", "te", "et", "ae")

#: Role words used by the second label (all in the vocabulary).
_ROLE_WORDS: Tuple[str, ...] = ("core", "edge", "agg", "border", "gw", "rtr")

#: Access-style words for probe names (all in the vocabulary).
_ACCESS_WORDS: Tuple[str, ...] = ("static", "dyn", "pool", "dsl", "cable", "cust")

_LETTERS = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class CityCodes:
    """The location codes assigned to one city.

    Attributes:
        city_id: the city.
        codes: globally unique pure-letter codes — an IATA-style 3-letter
            code, a 5-letter abbreviation, and a 6-letter CLLI-style code
            ending in the country's letters.
    """

    city_id: int
    codes: Tuple[str, ...]


def _letter_string(key: rand.Key, length: int) -> str:
    return "".join(
        _LETTERS[rand.randint((key, position), 0, len(_LETTERS))]
        for position in range(length)
    )


def _country_letters(country_code: str) -> str:
    """The alphabetic part of a synthetic country code, lowercased."""
    letters = "".join(ch for ch in country_code.lower() if ch.isalpha())
    return (letters + "xx")[:2]


def assign_codes(config: WorldConfig, cities: Sequence[City]) -> Dict[int, CityCodes]:
    """Assign every city its location codes, deterministically.

    Codes are drawn keyed by ``(seed, "citycode", city_id, kind, attempt)``
    and re-drawn until unique: no two cities share a code, and no code is a
    :data:`NOISE_VOCABULARY` word. Visiting cities in id order makes the
    result a pure function of (config, cities).
    """
    taken = set(NOISE_VOCABULARY)
    assigned: Dict[int, CityCodes] = {}
    for city in cities:
        codes: List[str] = []
        for kind, length, suffix in (
            ("iata", 3, ""),
            ("abbr", 5, ""),
            ("clli", 4, _country_letters(city.country)),
        ):
            attempt = 0
            while True:
                candidate = (
                    _letter_string(
                        (config.seed, "citycode", city.city_id, kind, attempt), length
                    )
                    + suffix
                )
                if candidate not in taken:
                    break
                attempt += 1
            taken.add(candidate)
            codes.append(candidate)
        assigned[city.city_id] = CityCodes(city_id=city.city_id, codes=tuple(codes))
    return assigned


class HostnameScheme:
    """Emits PTR names for the world's hosts from the city code corpus."""

    def __init__(self, config: WorldConfig, cities: Sequence[City]) -> None:
        self.config = config
        self.cities = list(cities)
        self.codes_by_city = assign_codes(config, cities)

    def _code_label(self, key: rand.Key, city_id: int) -> str:
        """A location-code token, optionally with a numeric site suffix."""
        codes = self.codes_by_city[city_id].codes
        code = codes[rand.randint((key, "pick"), 0, len(codes))]
        if rand.chance((key, "site"), 0.6):
            return f"{code}{rand.randint((key, 'siteno'), 1, 100):02d}"
        return code

    def _noise_label(self, key: rand.Key) -> str:
        word = NOISE_VOCABULARY[rand.randint((key, "word"), 0, len(NOISE_VOCABULARY))]
        if rand.chance((key, "digits"), 0.7):
            return f"{word}{rand.randint((key, 'no'), 0, 1000)}"
        return word

    def _false_friend_city(self, key: rand.Key, city: City) -> Optional[City]:
        if len(self.cities) < 2:
            return None
        pick = rand.randint((key, "ffcity"), 0, len(self.cities))
        if self.cities[pick].city_id == city.city_id:
            pick = (pick + 1) % len(self.cities)
        return self.cities[pick]

    def hostname(self, key: rand.Key, city: City, asn: int, kind: str) -> Optional[str]:
        """The PTR name for one host, or ``None`` when uncovered.

        Args:
            key: the host's draw key; all randomness hangs off it.
            city: the city the host physically sits in.
            asn: the host's AS (becomes the operator label).
            kind: ``"anchor"`` (router-style names) or ``"probe"``
                (access-network-style names).
        """
        config = self.config
        if not rand.chance((key, "named"), config.rdns_coverage):
            return None
        draw = rand.uniform((key, "class"))
        if draw < config.rdns_hint_share:
            code_city: Optional[City] = city
        elif draw < config.rdns_hint_share + config.rdns_false_friend_share:
            code_city = self._false_friend_city(key, city)
        else:
            code_city = None

        labels: List[str] = []
        if kind == "anchor":
            prefix = _INTERFACE_PREFIXES[
                rand.randint((key, "iface"), 0, len(_INTERFACE_PREFIXES))
            ]
            labels.append(
                f"{prefix}-{rand.randint((key, 'slot'), 0, 8)}"
                f"-{rand.randint((key, 'port'), 0, 4)}"
                f"-{rand.randint((key, 'chan'), 0, 64)}"
            )
            role = _ROLE_WORDS[rand.randint((key, "role"), 0, len(_ROLE_WORDS))]
            labels.append(f"{role}{rand.randint((key, 'roleno'), 1, 10)}")
        else:
            word = _ACCESS_WORDS[rand.randint((key, "acc"), 0, len(_ACCESS_WORDS))]
            labels.append(f"{word}-{rand.randint((key, 'accno'), 0, 255)}")

        if code_city is not None:
            labels.append(self._code_label((key, "code"), code_city.city_id))
        else:
            labels.append(self._noise_label((key, "noise")))
        if rand.chance((key, "extra"), 0.4):
            labels.append(self._noise_label((key, "extra-noise")))
        labels.append(f"as{asn}")
        labels.append("example")
        labels.append("net")
        return ".".join(labels)
