"""Hosts: the network endpoints of the simulated Internet.

A host is anything with an IP address that can send or answer probes:
RIPE Atlas anchors and probes, the /24 "representative" addresses the
million scale technique pings, and the web servers behind candidate
landmark websites.

Each host carries *two* locations:

* ``true_location`` — where the machine physically sits; the latency model
  uses only this;
* ``recorded_location`` — what the platform's metadata claims; geolocation
  algorithms and error computations against VP positions use only this.

The two differ for the deliberately mis-geolocated hosts that the paper's
§4.3 sanitization process is designed to catch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.geo.coords import GeoPoint


class HostKind(enum.Enum):
    """What role a host plays on the platform."""

    ANCHOR = "anchor"
    PROBE = "probe"
    REPRESENTATIVE = "representative"
    WEBSERVER = "webserver"


@dataclass
class Host:
    """One network endpoint.

    Attributes:
        host_id: dense integer id (index into the world's host arrays).
        ip: IPv4 address, unique across the world.
        kind: the host's role.
        true_location: physical position (drives latency).
        recorded_location: advertised position (drives algorithms); equal to
            ``true_location`` unless the host is mis-geolocated.
        city_id: the city the host physically sits in.
        asn: the host's AS.
        last_mile_ms: round-trip delay contributed by the host's access link.
        responsive: whether the host answers pings at all.
        mislocated: whether recorded and true locations deliberately differ.
        rdns: the address's PTR name, or ``None`` when the address does
            not reverse-resolve (see :mod:`repro.world.hostnames`).
    """

    host_id: int
    ip: str
    kind: HostKind
    true_location: GeoPoint
    recorded_location: GeoPoint
    city_id: int
    asn: int
    last_mile_ms: float
    responsive: bool = True
    mislocated: bool = False
    rdns: Optional[str] = None

    def __post_init__(self) -> None:
        if self.last_mile_ms < 0:
            raise ValueError(f"last-mile delay must be non-negative: {self.last_mile_ms}")

    @property
    def geolocation_error_km(self) -> float:
        """Distance between the recorded and true positions."""
        return self.recorded_location.distance_km(self.true_location)

    def describe(self) -> str:
        """One-line human-readable summary (for logs and examples)."""
        flag = " MISLOCATED" if self.mislocated else ""
        return (
            f"{self.kind.value} {self.ip} AS{self.asn} "
            f"@({self.recorded_location.lat:.3f},{self.recorded_location.lon:.3f})"
            f"{flag}"
        )
