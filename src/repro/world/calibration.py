"""Calibration self-checks: is the substrate still paper-faithful?

The world generator has free parameters whose values were calibrated
against statistics the paper reports (see the CALIBRATED tags in
:mod:`repro.world.config` and the table in EXPERIMENTS.md). This module
recomputes those statistics from a live scenario and compares them with
the paper's values, so any change to the generator that silently drifts
the substrate away from the paper fails loudly (the test suite runs the
checks with loose tolerances; ``repro-experiment calibration`` prints
them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class CalibrationCheck:
    """One paper statistic vs its measured counterpart.

    Attributes:
        name: what is being checked.
        paper: the paper's reported value.
        measured: the value on this scenario.
        low: lower acceptance bound.
        high: upper acceptance bound.
    """

    name: str
    paper: float
    measured: float
    low: float
    high: float

    @property
    def ok(self) -> bool:
        """Whether the measured value falls inside the acceptance band."""
        return self.low <= self.measured <= self.high

    def render(self) -> str:
        """One printable line."""
        flag = "ok " if self.ok else "DRIFT"
        return (
            f"[{flag}] {self.name}: paper={self.paper:g} measured={self.measured:.3g} "
            f"(accept {self.low:g}..{self.high:g})"
        )


def calibration_checks(scenario) -> List[CalibrationCheck]:
    """Compute the calibration suite for a scenario.

    Bands are intentionally wide — they guard against *drift* (an order of
    magnitude, a broken mechanism), not against noise. Several statistics
    only make sense at paper scale; on small scenarios those bands widen
    further with the platform size.
    """
    from repro.core.cbg import cbg_errors_for_subsets

    checks: List[CalibrationCheck] = []
    matrix = scenario.rtt_matrix()
    vp_count = len(scenario.vps)
    paper_scale = vp_count > 5000

    errors = cbg_errors_for_subsets(
        scenario.vp_lats,
        scenario.vp_lons,
        matrix,
        scenario.target_true_lats,
        scenario.target_true_lons,
        np.arange(vp_count),
    )
    checks.append(
        CalibrationCheck(
            "all-VP CBG median error km",
            paper=8.0,
            measured=float(np.nanmedian(errors)),
            low=3.0,
            high=25.0 if paper_scale else 60.0,
        )
    )
    checks.append(
        CalibrationCheck(
            "all-VP CBG city-level fraction",
            paper=0.73,
            measured=float(np.nanmean(errors <= 40.0)),
            low=0.55,
            high=0.97,
        )
    )

    # Sanitization catches exactly the planted hosts.
    planted_anchors = sum(1 for a in scenario.world.anchors if a.mislocated)
    checks.append(
        CalibrationCheck(
            "anchors removed by sanitization",
            paper=9.0,
            measured=float(len(scenario.removed_anchor_ids)),
            low=planted_anchors,
            high=planted_anchors,
        )
    )

    # Platform composition (Table 2).
    access = sum(
        1
        for vp in scenario.vps
        if scenario.world.ases[vp.asn].caida_type == "Access"
    )
    checks.append(
        CalibrationCheck(
            "VPs in access networks",
            paper=0.724,
            measured=access / vp_count,
            low=0.55,
            high=0.85,
        )
    )

    # Probing rates (§5.1.3): probes must be orders below the 500 pps the
    # original study used.
    probe_rates = [vp.probing_rate_pps for vp in scenario.vps if not vp.is_anchor]
    checks.append(
        CalibrationCheck(
            "median probe probing rate pps",
            paper=8.0,  # "between 4 and 12"
            measured=float(np.median(probe_rates)),
            low=4.0,
            high=12.0,
        )
    )

    # RTT floor sanity: no measurement beats the speed of Internet.
    from repro.constants import distance_to_min_rtt_ms

    violations = 0
    sampled = 0
    for column, target in enumerate(scenario.targets[:20]):
        rtts = matrix[:, column]
        answered = np.where(~np.isnan(rtts))[0]
        for row in answered[:: max(1, answered.size // 50)]:
            vp_host = scenario.world.host_by_id(int(scenario.vp_ids[row]))
            direct = vp_host.true_location.distance_km(target.true_location)
            sampled += 1
            if rtts[row] < distance_to_min_rtt_ms(direct) - 1e-9:
                violations += 1
    checks.append(
        CalibrationCheck(
            "speed-of-Internet violations in true space",
            paper=0.0,
            measured=float(violations),
            low=0.0,
            high=0.0,
        )
    )
    return checks


def render_report(checks: List[CalibrationCheck]) -> str:
    """The full printable calibration report."""
    lines = [check.render() for check in checks]
    failed = sum(1 for check in checks if not check.ok)
    lines.append(
        f"-- {len(checks) - failed}/{len(checks)} checks in band"
        + ("" if failed == 0 else f", {failed} DRIFTED")
    )
    return "\n".join(lines)
