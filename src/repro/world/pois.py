"""Points of interest and their websites (the landmark substrate).

Tier 2 of the street level technique turns map data into landmarks: it
reverse-geocodes sample points into zip codes, asks for the points of
interest (amenities) around those zip codes, and keeps the POIs that
advertise a website. A website is only usable as a landmark if it is
*locally hosted* — physically at the POI's postal address — which the
technique tests heuristically.

This module defines the data model; generation lives in the world builder,
which materialises each city's POIs lazily and deterministically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geo.coords import GeoPoint

#: Amenity categories, a blend of the street level paper's Geonames keywords
#: ("business", "university", "government office") and the Overpass amenity
#: values the replication queries instead.
AMENITY_CATEGORIES: Tuple[str, ...] = (
    "business",
    "university",
    "government_office",
    "hospital",
    "school",
    "library",
    "restaurant",
    "bank",
    "hotel",
    "museum",
)


class HostingKind(enum.Enum):
    """Where a website's content is actually served from."""

    LOCAL = "local"  # on premises, at the POI's postal address
    CLOUD = "cloud"  # in some datacenter, often far away
    CDN = "cdn"  # behind an anycast CDN edge


@dataclass(frozen=True)
class Website:
    """A website advertised by a point of interest.

    Attributes:
        hostname: the site's DNS name.
        ip: address the hostname resolves to (the A record target).
        hosting: ground-truth hosting kind — *never* read by algorithms,
            only by the world when simulating DNS/HTTP and by evaluation
            code computing oracle bounds.
        server_host_id: host id of the serving machine for locally hosted
            sites; ``None`` for cloud/CDN sites, whose serving address
            lives in a content AS and is never probed (the hosting checks
            reject them first).
        chain_id: non-None when the site belongs to a multi-branch chain
            (same website advertised by POIs in several zip codes).
    """

    hostname: str
    ip: str
    hosting: HostingKind
    server_host_id: Optional[int]
    chain_id: Optional[int] = None


@dataclass(frozen=True)
class PointOfInterest:
    """A mapped amenity: the unit the landmark discovery pipeline consumes.

    Attributes:
        poi_id: globally unique integer id.
        name: synthetic display name.
        category: one of :data:`AMENITY_CATEGORIES`.
        location: physical position of the amenity.
        city_id: city the POI belongs to.
        zipcode: postal code the mapping service lists for the POI. Usually
            the code of ``location``'s cell, but a configurable share of POIs
            carries a stale/wrong code — those fail the street level zip test.
        website: advertised website, if any.
    """

    poi_id: int
    name: str
    category: str
    location: GeoPoint
    city_id: int
    zipcode: str
    website: Optional[Website] = None

    @property
    def has_website(self) -> bool:
        """Whether the mapping service lists a website for this POI."""
        return self.website is not None
