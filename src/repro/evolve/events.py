"""Typed churn events and the seeded streams that produce them.

The Internet underneath a geolocation dataset never holds still. Gouel
et al.'s longitudinal study (PAPERS.md) measures ~5% of address blocks
moving per weekly database revision, and the RIPE Atlas fleet itself
connects and disconnects continuously ("Day in the Life of RIPE Atlas").
This module gives the simulated world the same weather, as a *closed*
taxonomy of churn events:

``prefix-reassign``
    An address block (/24) is sold or re-announced and every host in it
    physically moves to a new city. Anchors only move this way — an
    anchor is infrastructure that goes where its block goes.
``host-migrate``
    One probe host moves to a new city (its volunteer host relocated).
``probe-session``
    A probe connects or disconnects. Disconnected probes answer nothing
    until they reconnect (the platform masks their measurement rows).

Every draw is counter-keyed off the *base world's seed* — the event
stream for revision ``k`` is a pure function of ``(seed, k)`` plus the
previous snapshot's state, so the same seed replays the same churn
byte-for-byte, serial or parallel. Events within a revision are emitted
in a canonical order (prefix reassignments by block, then migrations by
host id, then sessions by host id) and applied in that order, which
makes "replay events 0..k" a deterministic recipe for snapshot ``k``
(pinned by the golden and property tests in ``tests/test_evolve.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import rand
from repro.errors import ConfigurationError
from repro.net.addressing import int_to_ip, ip_to_int
from repro.world.hosts import Host, HostKind
from repro.world.world import World

#: A /24 block (with every host in it) reassigned to a new city.
EVENT_PREFIX_REASSIGN = "prefix-reassign"

#: One probe host migrated to a new city.
EVENT_HOST_MIGRATE = "host-migrate"

#: A probe connect/disconnect session boundary.
EVENT_PROBE_SESSION = "probe-session"

EVENT_KINDS = (EVENT_PREFIX_REASSIGN, EVENT_HOST_MIGRATE, EVENT_PROBE_SESSION)

_PREFIX_MASK = 0xFFFFFF00

#: Spread of the fresh position draw inside the destination city, matching
#: the builder's anchor placement discipline (hosts move to real places,
#: not city centroids).
_RELOCATE_SIGMA = 0.35


@dataclass(frozen=True)
class EvolutionConfig:
    """Churn rates for one evolution run; validated at construction.

    Attributes:
        revisions: number of churned revisions after the base snapshot
            (snapshot 0 is always the unmodified base world).
        prefix_move_share: per-revision probability that an anchor /24
            block is reassigned — Gouel et al.'s ~5%/revision default.
        migration_share: per-revision probability that a probe migrates.
        probe_session_share: per-revision probability that a probe's
            session flips (connect <-> disconnect).
        geodb_refresh_rate: per-revision probability that a geolocation
            provider refreshes its entry for a prefix (see
            :mod:`repro.geodb.revisions`); everything not refreshed after
            a move is a stale entry.
    """

    revisions: int = 4
    prefix_move_share: float = 0.05
    migration_share: float = 0.02
    probe_session_share: float = 0.08
    geodb_refresh_rate: float = 0.6

    def __post_init__(self) -> None:
        if self.revisions < 0:
            raise ConfigurationError(f"revisions must be >= 0: {self.revisions}")
        for name in (
            "prefix_move_share",
            "migration_share",
            "probe_session_share",
            "geodb_refresh_rate",
        ):
            share = getattr(self, name)
            if not 0.0 <= share <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {share}")


@dataclass(frozen=True)
class ChurnEvent:
    """One churn event; unused fields stay ``None`` per kind.

    Attributes:
        revision: the revision this event belongs to (>= 1).
        kind: one of :data:`EVENT_KINDS`.
        prefix: dotted /24 base for ``prefix-reassign``.
        host_id: the moving/toggling host for migrate/session events.
        city_id: destination city for reassignments and migrations.
        connected: the probe's *new* session state for ``probe-session``.
    """

    revision: int
    kind: str
    prefix: Optional[str] = None
    host_id: Optional[int] = None
    city_id: Optional[int] = None
    connected: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ConfigurationError(f"unknown churn event kind: {self.kind!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form, omitting unused fields (digest + provenance)."""
        payload: Dict[str, object] = {"revision": self.revision, "kind": self.kind}
        for field in ("prefix", "host_id", "city_id", "connected"):
            value = getattr(self, field)
            if value is not None:
                payload[field] = value
        return payload


def prefix_base(ip: str) -> str:
    """Dotted /24 base of an address (``"10.1.2.57"`` → ``"10.1.2.0"``)."""
    return int_to_ip(ip_to_int(ip) & _PREFIX_MASK)


def anchor_prefixes(world: World) -> Tuple[str, ...]:
    """Sorted /24 bases containing at least one anchor — the blocks that
    can be reassigned (targets are anchors; their churn drives drift)."""
    bases = {
        ip_to_int(h.ip) & _PREFIX_MASK
        for h in world.hosts[: world.static_host_count]
        if h.kind is HostKind.ANCHOR
    }
    return tuple(int_to_ip(base) for base in sorted(bases))


def _destination_city(key: rand.Key, current_city: int, n_cities: int) -> int:
    """A uniformly drawn city id guaranteed different from the current one."""
    if n_cities < 2:
        raise ConfigurationError("cannot reassign in a world with fewer than 2 cities")
    drawn = rand.randint(key, 0, n_cities - 1)
    return drawn + 1 if drawn >= current_city else drawn


def generate_events(
    previous: World,
    config: EvolutionConfig,
    revision: int,
    connected: Dict[int, bool],
) -> Tuple[ChurnEvent, ...]:
    """The canonical event stream for one revision.

    Draws are keyed ``(seed, "evolve", <kind>, revision, <identity>)`` —
    pure functions of the base seed, never of iteration order — and the
    result tuple is emitted in the canonical order described in the
    module docstring. ``previous`` is the revision ``k-1`` snapshot world
    (destination-city draws exclude the *current* city, which evolves);
    ``connected`` maps probe host id to its live session state, so
    session events always record the *new* state of a toggle.
    """
    if revision < 1:
        raise ConfigurationError(f"events exist only for revisions >= 1: {revision}")
    seed = previous.config.seed
    hosts = list(previous.hosts)[: previous.static_host_count]
    by_prefix: Dict[str, List[Host]] = {}
    for host in hosts:
        by_prefix.setdefault(prefix_base(host.ip), []).append(host)
    n_cities = len(previous.cities)

    events: List[ChurnEvent] = []
    moved_hosts = set()
    for base in anchor_prefixes(previous):
        key_base = ip_to_int(base)
        if not rand.chance(
            (seed, "evolve", "prefix", revision, key_base), config.prefix_move_share
        ):
            continue
        block = by_prefix[base]
        current_city = block[0].city_id
        city_id = _destination_city(
            (seed, "evolve", "prefix-city", revision, key_base), current_city, n_cities
        )
        events.append(
            ChurnEvent(
                revision=revision,
                kind=EVENT_PREFIX_REASSIGN,
                prefix=base,
                city_id=city_id,
            )
        )
        moved_hosts.update(h.host_id for h in block)

    probes = [h for h in hosts if h.kind is HostKind.PROBE]
    for host in probes:
        if host.host_id in moved_hosts:
            continue  # its whole block already moved this revision
        if not rand.chance(
            (seed, "evolve", "migrate", revision, host.host_id), config.migration_share
        ):
            continue
        city_id = _destination_city(
            (seed, "evolve", "migrate-city", revision, host.host_id),
            host.city_id,
            n_cities,
        )
        events.append(
            ChurnEvent(
                revision=revision,
                kind=EVENT_HOST_MIGRATE,
                host_id=host.host_id,
                city_id=city_id,
            )
        )

    for host in probes:
        if rand.chance(
            (seed, "evolve", "session", revision, host.host_id),
            config.probe_session_share,
        ):
            events.append(
                ChurnEvent(
                    revision=revision,
                    kind=EVENT_PROBE_SESSION,
                    host_id=host.host_id,
                    connected=not connected[host.host_id],
                )
            )
    return tuple(events)


def _relocated(host: Host, world: World, city_id: int, revision: int) -> Host:
    """The host after a move: fresh position draw in the destination city.

    Moves repair deliberate mislocations — whoever re-deployed the
    machine registered where it actually landed — which is itself a
    source of drift: the sanitization verdicts of the base snapshot go
    stale as flagged hosts move to honestly-recorded positions.
    """
    seed = world.config.seed
    point = world.cities[city_id].random_point(
        (seed, "evolve", "loc", revision, host.host_id), sigma_scale=_RELOCATE_SIGMA
    )
    return dataclasses.replace(
        host,
        true_location=point,
        recorded_location=point,
        city_id=city_id,
        mislocated=False,
    )


def apply_events(
    previous: World, events: Sequence[ChurnEvent]
) -> List[Host]:
    """The revision's host list: ``previous``'s hosts with events applied.

    Pure with respect to the inputs — the same previous world and event
    tuple always produce the same host list (replay determinism). Host
    ids, addresses, kinds, ASNs, and last-mile delays are invariant under
    churn; only positions, city assignments, mislocation flags, and
    session state change.
    """
    hosts = [
        dataclasses.replace(h) for h in list(previous.hosts)[: previous.static_host_count]
    ]
    by_id = {h.host_id: i for i, h in enumerate(hosts)}
    for event in events:
        if event.kind == EVENT_PREFIX_REASSIGN:
            for i, host in enumerate(hosts):
                if prefix_base(host.ip) == event.prefix:
                    hosts[i] = _relocated(host, previous, event.city_id, event.revision)
        elif event.kind == EVENT_HOST_MIGRATE:
            i = by_id[event.host_id]
            hosts[i] = _relocated(hosts[i], previous, event.city_id, event.revision)
        else:  # EVENT_PROBE_SESSION
            i = by_id[event.host_id]
            hosts[i] = dataclasses.replace(hosts[i], responsive=event.connected)
    return hosts


def event_stream_digest(events: Sequence[ChurnEvent]) -> str:
    """SHA-256 of the canonical JSON encoding of an event stream."""
    payload = json.dumps([e.to_dict() for e in events], sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
