"""Measurement over an evolving world: canonical revision matrices.

The RTT matrix at revision ``k`` is defined *epoch-wise*: column ``j``
holds the measurement taken at its epoch — the last revision at which
column ``j``'s /24 block moved (0 if never) — over that epoch's
platform. That is exactly what an operator with a measurement budget
has on disk after ``k`` revisions of "re-measure only what moved":
unmoved columns still carry their original campaign bytes (including
rows from probes that have since disconnected or migrated — stale VP
data is part of the drift being studied), and moved columns carry the
fresh campaign from the revision they moved.

Two construction paths produce this matrix, and they are byte-identical
by construction:

* :func:`revision_matrix` — the **full replay**: rebuild from scratch by
  grouping columns by epoch and measuring each group over its epoch's
  platform. Costs ``VPs x targets`` simulated measurements — the
  from-scratch baseline.
* :func:`incremental_matrix` — the **incremental path**: copy revision
  ``k-1``'s matrix and re-measure only the columns whose block moved at
  ``k``. Costs ``VPs x moved`` measurements and a single API call.

The drift experiment asserts the bitwise equality and reads the cost
ratio off the ``atlas.api_calls`` / ``atlas.ping.measurements``
counters; the delta cache (:mod:`repro.cache.deltas`) persists the
incremental artifacts so a warm rebuild costs nothing at all.

:func:`epoch_state` wraps a revision matrix as a
:class:`~repro.serve.state.QueryState` for the serve engine's epoch
swap. VP coordinates are deliberately pinned to the *base* scenario's
registrations: the swap models re-measurement of a drifted world, not
re-registration of the fleet — the serving side keeps using the VP
metadata it registered at build time, exactly like a real deployment
whose probe metadata lags reality. (It also keeps unmoved columns'
answers bit-stable across epochs, which makes memo invalidation exact.)
Ground truth is omitted: stale matrices legitimately violate
containment against moved targets — that violation *is* the drift
signal, measured by the experiment rather than asserted against.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.evolve.timeline import EvolutionTimeline
from repro.serve.state import QueryState


def _self_ping_rows(scenario) -> Dict[str, Optional[int]]:
    """Target ip → VP row of that same host (or None): rows to NaN.

    Mirrors the self-ping scrub in ``Scenario.rtt_matrix`` — a host does
    not ping itself over the network, at any revision.
    """
    target_id_by_ip = {t.ip: t.host_id for t in scenario.targets}
    vp_index = {int(vp_id): row for row, vp_id in enumerate(scenario.vp_ids)}
    return {
        ip: vp_index.get(target_id_by_ip[ip]) for ip in scenario.target_ips
    }


def revision_matrix(
    timeline: EvolutionTimeline, scenario, revision: int
) -> np.ndarray:
    """The canonical revision matrix, built by full replay (from scratch).

    Groups columns by epoch and measures each group over its epoch's
    platform — ``VPs x targets`` measurements total, one API call per
    distinct epoch. Revision 0 reproduces ``scenario.rtt_matrix()``
    byte-for-byte (same world, same counter-keyed draws).
    """
    ips = list(scenario.target_ips)
    vp_ids = scenario.vp_ids
    epochs = timeline.column_epochs(revision, ips)
    matrix = np.full((len(vp_ids), len(ips)), np.nan)
    for epoch in sorted(set(epochs.tolist())):
        columns = np.flatnonzero(epochs == epoch)
        platform = timeline.platform(epoch)
        matrix[:, columns] = platform.ping_matrix(
            vp_ids, [ips[c] for c in columns], seq=0
        )
    self_rows = _self_ping_rows(scenario)
    for column, ip in enumerate(ips):
        row = self_rows[ip]
        if row is not None:
            matrix[row, column] = np.nan
    return matrix


def incremental_matrix(
    previous: np.ndarray,
    timeline: EvolutionTimeline,
    scenario,
    revision: int,
) -> np.ndarray:
    """The canonical revision matrix, built incrementally from ``k-1``'s.

    Copies the previous matrix and re-measures only the columns whose
    /24 block was reassigned at ``revision`` — ``VPs x moved``
    measurements in one API call (zero calls when nothing moved).
    Byte-identical to :func:`revision_matrix` at the same revision.
    """
    ips = list(scenario.target_ips)
    matrix = np.array(previous, dtype=np.float64, copy=True)
    moved = timeline.moved_target_columns(revision, ips)
    if moved.size == 0:
        return matrix
    platform = timeline.platform(revision)
    matrix[:, moved] = platform.ping_matrix(
        scenario.vp_ids, [ips[c] for c in moved], seq=0
    )
    self_rows = _self_ping_rows(scenario)
    for column in moved:
        row = self_rows[ips[column]]
        if row is not None:
            matrix[row, column] = np.nan
    return matrix


def epoch_state(
    timeline: EvolutionTimeline,
    scenario,
    revision: int,
    matrix: Optional[np.ndarray] = None,
) -> QueryState:
    """A :class:`QueryState` for serving revision ``revision``.

    VP coordinates pinned to the base registrations, ground truth
    omitted (see module docstring). Pass ``matrix`` to reuse an
    already-built revision matrix; otherwise a full replay runs.
    """
    if matrix is None:
        matrix = revision_matrix(timeline, scenario, revision)
    return QueryState(
        vp_lats=scenario.vp_lats,
        vp_lons=scenario.vp_lons,
        rtt_matrix=matrix,
        target_ips=tuple(scenario.target_ips),
        seed=scenario.world.config.seed,
    )
