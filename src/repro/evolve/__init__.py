"""repro.evolve: seeded world evolution — longitudinal churn over a base world.

The paper's dataset is a frozen snapshot; this package makes it a
timeline. A built world evolves through typed, seeded churn events
(prefix reassignments, probe migrations, connect/disconnect sessions)
into a sequence of snapshots, with canonical per-revision RTT matrices
that an incremental re-measurement path reproduces byte-for-byte at a
fraction of the cost. See docs/EVOLUTION.md for the full design.
"""

from repro.evolve.events import (
    EVENT_HOST_MIGRATE,
    EVENT_KINDS,
    EVENT_PREFIX_REASSIGN,
    EVENT_PROBE_SESSION,
    ChurnEvent,
    EvolutionConfig,
    anchor_prefixes,
    apply_events,
    event_stream_digest,
    generate_events,
    prefix_base,
)
from repro.evolve.measure import epoch_state, incremental_matrix, revision_matrix
from repro.evolve.timeline import EvolutionTimeline, Snapshot

__all__ = [
    "ChurnEvent",
    "EvolutionConfig",
    "EvolutionTimeline",
    "Snapshot",
    "EVENT_HOST_MIGRATE",
    "EVENT_KINDS",
    "EVENT_PREFIX_REASSIGN",
    "EVENT_PROBE_SESSION",
    "anchor_prefixes",
    "apply_events",
    "epoch_state",
    "event_stream_digest",
    "generate_events",
    "incremental_matrix",
    "prefix_base",
    "revision_matrix",
]
