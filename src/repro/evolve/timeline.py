"""The evolution timeline: base world → seeded sequence of snapshots.

:class:`EvolutionTimeline` is the one object the drift experiment, the
delta cache, the geodb revision layer, and the serve epoch-swap tests
all hang off. It owns the sequential replay — snapshot ``k`` is the base
world with event streams ``1..k`` applied in order — and memoizes the
per-revision worlds and measurement platforms so the expensive parts
(``Topology`` + ``LatencyModel`` rebuilds) happen once per revision.

Two bookkeeping views matter downstream:

* :meth:`column_epochs` — for each target column, the *epoch*: the last
  revision at which the target's /24 block moved (0 if never). This is
  the canonical definition of the revision-``k`` RTT matrix
  (:mod:`repro.evolve.measure`): column ``j`` holds the measurement
  taken at its epoch, over that epoch's platform. Unmoved columns are
  bitwise unchanged across revisions, which is what makes the serve
  engine's memo invalidation exact and the incremental re-measurement
  path byte-identical to a full replay.
* :meth:`event_stream_digest` / per-snapshot :attr:`Snapshot.digest` —
  content addresses of the churn stream and of each world's host state,
  pinned by goldens and used by the delta cache to detect that a cached
  artifact belongs to a different timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.atlas.platform import AtlasPlatform
from repro.check.invariants import NULL_CHECKER
from repro.errors import ConfigurationError
from repro.evolve import events as ev
from repro.obs.observer import NULL_OBSERVER
from repro.world.hosts import HostKind
from repro.world.snapshot import clone_world_with_hosts, world_digest
from repro.world.world import World


@dataclass(frozen=True)
class Snapshot:
    """One revision of the evolving world.

    Attributes:
        revision: 0 for the unmodified base world, then 1, 2, ...
        world: the revision's :class:`~repro.world.world.World` (shares
            every non-host part with the base world).
        events: the churn events that produced this revision from the
            previous one (empty for revision 0).
        digest: :func:`~repro.world.snapshot.world_digest` of ``world``.
        moved_prefixes: /24 bases reassigned *at this revision* — the
            blocks whose target columns must be re-measured.
    """

    revision: int
    world: World
    events: Tuple[ev.ChurnEvent, ...]
    digest: str
    moved_prefixes: Tuple[str, ...]


class EvolutionTimeline:
    """Seeded, memoized world evolution from one built base world."""

    def __init__(
        self,
        base_world: World,
        config: ev.EvolutionConfig,
        obs=NULL_OBSERVER,
        checker=NULL_CHECKER,
    ) -> None:
        self.base_world = base_world
        self.config = config
        self.obs = obs
        self.checker = checker
        self._snapshots: Dict[int, Snapshot] = {
            0: Snapshot(
                revision=0,
                world=base_world,
                events=(),
                digest=world_digest(base_world),
                moved_prefixes=(),
            )
        }
        self._platforms: Dict[int, AtlasPlatform] = {}
        # Live probe session state, advanced as snapshots build.
        self._connected: Dict[int, bool] = {
            h.host_id: h.responsive
            for h in base_world.hosts[: base_world.static_host_count]
            if h.kind is HostKind.PROBE
        }
        self._built_through = 0

    @property
    def revisions(self) -> int:
        """Number of churned revisions this timeline produces."""
        return self.config.revisions

    def snapshot(self, revision: int) -> Snapshot:
        """Snapshot ``revision``, building predecessors as needed."""
        if not 0 <= revision <= self.config.revisions:
            raise ConfigurationError(
                f"revision {revision} outside [0, {self.config.revisions}]"
            )
        while self._built_through < revision:
            self._build_next()
        return self._snapshots[revision]

    def _build_next(self) -> None:
        k = self._built_through + 1
        previous = self._snapshots[self._built_through].world
        events = ev.generate_events(previous, self.config, k, self._connected)
        for event in events:
            if event.kind == ev.EVENT_PROBE_SESSION:
                self._connected[event.host_id] = event.connected
        hosts = ev.apply_events(previous, events)
        world = clone_world_with_hosts(self.base_world, hosts)
        snapshot = Snapshot(
            revision=k,
            world=world,
            events=events,
            digest=world_digest(world),
            moved_prefixes=tuple(
                e.prefix for e in events if e.kind == ev.EVENT_PREFIX_REASSIGN
            ),
        )
        self._snapshots[k] = snapshot
        self._built_through = k

    def platform(self, revision: int) -> AtlasPlatform:
        """The revision's measurement platform (memoized).

        Fault-free by construction — churn is modelled as world state
        (sessions mask rows via host responsiveness), not as API faults —
        so measurements over a snapshot are pure functions of the
        snapshot, which the byte-parity story depends on. The timeline's
        checker keeps physics invariants armed per snapshot.
        """
        if revision not in self._platforms:
            self._platforms[revision] = AtlasPlatform(
                self.snapshot(revision).world, obs=self.obs, checker=self.checker
            )
        return self._platforms[revision]

    def event_stream(self, through: int) -> Tuple[ev.ChurnEvent, ...]:
        """All events of revisions ``1..through``, in replay order."""
        return tuple(
            event
            for k in range(1, through + 1)
            for event in self.snapshot(k).events
        )

    def event_stream_digest(self, through: int) -> str:
        """Content digest of the full event stream through a revision."""
        return ev.event_stream_digest(self.event_stream(through))

    # --- column bookkeeping for measurement + serving ----------------------

    def column_epochs(self, revision: int, target_ips) -> np.ndarray:
        """Per-column epoch: last revision <= ``revision`` the column's
        /24 block moved; 0 for never-moved columns."""
        epochs = np.zeros(len(target_ips), dtype=np.int64)
        bases = [ev.prefix_base(ip) for ip in target_ips]
        for k in range(1, revision + 1):
            moved = set(self.snapshot(k).moved_prefixes)
            if not moved:
                continue
            for column, base in enumerate(bases):
                if base in moved:
                    epochs[column] = k
        return epochs

    def moved_target_columns(self, revision: int, target_ips) -> np.ndarray:
        """Columns whose /24 block was reassigned *at* ``revision``."""
        moved = set(self.snapshot(revision).moved_prefixes)
        columns = [
            column
            for column, ip in enumerate(target_ips)
            if ev.prefix_base(ip) in moved
        ]
        return np.asarray(columns, dtype=np.int64)

    def connected_probe_ids(self, revision: int) -> List[int]:
        """Probe host ids responsive in snapshot ``revision`` (tests)."""
        world = self.snapshot(revision).world
        return [
            h.host_id
            for h in world.hosts[: world.static_host_count]
            if h.kind is HostKind.PROBE and h.responsive
        ]
