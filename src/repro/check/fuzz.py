"""Seeded mini-world fuzzer for the property/invariant test suites.

:func:`fuzz_config` deterministically maps an index to a small random —
but always *valid* — :class:`~repro.world.config.WorldConfig`: a world
with a handful of anchors and a couple hundred probes that builds in tens
of milliseconds, yet spans the same latency, sanitization, and topology
machinery as the paper preset. The property suite runs every registered
invariant (:data:`repro.check.INVARIANTS`) over dozens of such worlds
across the three geolocation algorithms.

Two constraints keep the fuzzed space inside the invariants' premises:

* ``fiber_factor_min >= 1.0`` — the ``rtt.soi_bound`` and
  ``cbg.containment`` invariants are theorems of the latency model *only*
  when fibre never beats 2/3 c;
* mislocated hosts stay >= 4000 km off so the §4.3 sanitization provably
  removes them (same calibration argument as the paper preset).

:func:`scaled_config` supports the metamorphic delay test: every draw in
the latency model is keyed by counters, never by parameter values, so
scaling all delay *means* by ``k`` scales every RTT by exactly ``k``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np

from repro.world.config import WorldConfig

#: Continents every world covers (keys of the per-continent mappings).
CONTINENTS = ("EU", "NA", "AS", "SA", "OC", "AF")

#: Config fields that are pure delay means/bounds: scaling them all by k
#: scales every simulated RTT component by k (propagation via the fibre
#: factor range, access links, queueing) — the metamorphic scaling law.
DELAY_FIELDS = (
    "anchor_last_mile_mean_ms",
    "probe_last_mile_floor_ms",
    "probe_last_mile_mean_ms",
    "probe_bad_last_mile_extra_ms",
    "city_congestion_extra_ms",
    "jitter_mean_ms",
    "webserver_last_mile_mean_ms",
)


def fuzz_config(index: int, base_seed: int = 20260806) -> WorldConfig:
    """The ``index``-th fuzzed mini-world configuration (deterministic)."""
    rng = np.random.default_rng([base_seed, index])

    def pick(low: int, high: int) -> int:
        return int(rng.integers(low, high + 1))

    def span(low: float, high: float) -> float:
        return float(rng.uniform(low, high))

    shares = rng.uniform(0.5, 2.0, size=len(CONTINENTS))
    shares /= shares.sum()
    fiber_min = span(1.0, 1.12)
    return WorldConfig(
        seed=base_seed + index,
        cities_per_continent={c: pick(4, 10) for c in CONTINENTS},
        countries_per_continent={c: pick(2, 4) for c in CONTINENTS},
        hubs_per_continent=pick(1, 3),
        anchor_quotas={c: pick(1, 4) for c in CONTINENTS},
        bad_anchors=pick(0, 2),
        probes_total=pick(120, 260),
        probe_shares={c: float(s) for c, s in zip(CONTINENTS, shares)},
        bad_probes=pick(0, 5),
        probe_metadata_jitter_share=span(0.0, 0.4),
        probe_metadata_jitter_min_km=4.0,
        probe_metadata_jitter_max_km=span(20.0, 60.0),
        city_congested_share=span(0.0, 0.4),
        city_congestion_extra_ms=span(2.0, 12.0),
        underpopulated_prefixes=pick(0, 2),
        total_ases=pick(60, 160),
        fiber_factor_min=fiber_min,
        fiber_factor_max=fiber_min + span(0.05, 0.25),
        jitter_mean_ms=span(0.05, 0.6),
        packet_loss_rate=span(0.0, 0.04),
        hop_spike_probability=span(0.0, 0.08),
        hop_spike_mean_ms=span(0.5, 4.0),
        hop_noise_std_ms=span(0.05, 0.5),
        pois_per_10k_population=span(2.0, 8.0),
        poi_max_per_city=pick(40, 120),
    )


def fuzz_configs(count: int, base_seed: int = 20260806) -> List[WorldConfig]:
    """The first ``count`` fuzzed configurations."""
    return [fuzz_config(index, base_seed) for index in range(count)]


def scaled_config(config: WorldConfig, factor: float) -> WorldConfig:
    """``config`` with every delay component scaled by ``factor``.

    Scales the fibre factor range and all delay means/floors/extras in
    :data:`DELAY_FIELDS`. Because randomness is counter-keyed (draws do
    not depend on parameter values), the resulting world observes RTTs
    exactly ``factor`` times the original's — the metamorphic law
    ``tests/test_check_properties.py`` asserts.
    """
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor}")
    changes = {name: getattr(config, name) * factor for name in DELAY_FIELDS}
    changes["fiber_factor_min"] = config.fiber_factor_min * factor
    changes["fiber_factor_max"] = config.fiber_factor_max * factor
    return replace(config, **changes)
