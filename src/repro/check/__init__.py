"""Invariant checking and differential self-verification (``repro.check``).

Three layers of runtime correctness tooling for the measurement substrate
(see ``docs/CORRECTNESS.md``):

* :mod:`repro.check.invariants` — an :class:`InvariantChecker` enforcing
  the :data:`INVARIANTS` registry (physics and accounting properties that
  hold by construction) at instrumented sites in ``latency``, ``atlas``,
  ``core.cbg_batch``, ``cache``, and ``exec``; armed by ``REPRO_CHECK=1``
  / ``--check``, free when off (:data:`NULL_CHECKER`).
* :mod:`repro.check.diff` — a differential harness running campaigns
  through paired paths (batched vs loop CBG, serial vs parallel, cold vs
  warm cache, serving engine vs batch campaign) and asserting bitwise
  equality; exposed as ``experiments/run.py --selfcheck`` and a pytest
  fixture.
* :mod:`repro.check.fuzz` — a seeded mini-world fuzzer feeding the
  property suite random-but-valid :class:`~repro.world.config.WorldConfig`
  instances.
"""

from repro.check.diff import (
    DiffOutcome,
    SelfCheckReport,
    diff_batch_vs_loop,
    diff_cold_vs_warm_cache,
    diff_serial_vs_parallel,
    diff_serve_vs_batch,
    diff_topology,
    run_selfcheck,
)
from repro.check.fuzz import fuzz_config, fuzz_configs, scaled_config
from repro.check.invariants import (
    INVARIANTS,
    NULL_CHECKER,
    InvariantChecker,
    NullChecker,
    check_enabled,
    checker_from_env,
)
from repro.errors import InvariantViolation

__all__ = [
    "INVARIANTS",
    "NULL_CHECKER",
    "DiffOutcome",
    "InvariantChecker",
    "InvariantViolation",
    "NullChecker",
    "SelfCheckReport",
    "check_enabled",
    "checker_from_env",
    "diff_batch_vs_loop",
    "diff_cold_vs_warm_cache",
    "diff_serial_vs_parallel",
    "diff_serve_vs_batch",
    "diff_topology",
    "fuzz_config",
    "fuzz_configs",
    "run_selfcheck",
    "scaled_config",
]
