"""Differential self-verification: run paired paths, assert equal bytes.

The substrate promises seven expensive equivalences:

* the batched CBG kernel computes exactly what the per-target reference
  loop computes (``repro.core.cbg_batch``);
* the flat-array CSR router graph resolves whole target columns to
  exactly the per-pair scalar waypoint path, and its explicit node walks
  are the routes traceroute sees (``repro.topology.csr``);
* a parallel campaign (``REPRO_WORKERS=N``) produces byte-identical
  results to the serial path (``repro.exec``);
* a warm artifact-cache rebuild replays byte-identical measurements to a
  cold build (``repro.cache``);
* the resident serving engine answers exactly what the one-shot batch
  campaign computes, regardless of request order or batching
  (``repro.serve``);
* the hint pipeline mines and verifies identically serial and parallel,
  and no confirmed hint contradicts the CBG containment physics
  (``repro.hints``);
* the serving engine followed through epoch swaps over a churning world
  answers exactly what a fresh batch run on each revision's snapshot
  computes (``repro.evolve`` + ``repro.serve``).

Each promise is pinned by golden tests, but those only run under pytest.
This module packages the same comparisons as a *runtime* harness: each
``diff_*`` function runs one campaign through both sides of a pair and
compares outputs bitwise, and :func:`run_selfcheck` bundles all seven into
the :class:`SelfCheckReport` behind ``experiments/run.py --selfcheck``
(exit 0 iff every pair agrees) and the ``selfcheck_report`` pytest
fixture. The paired computations are invoked through their *modules*, so
a monkeypatched (deliberately broken) kernel is caught — which is exactly
how ``tests/test_check_diff.py`` proves the harness can fail.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import rand
from repro.world.config import WorldConfig


@dataclass(frozen=True)
class DiffOutcome:
    """Result of one paired-path comparison.

    Attributes:
        pair: which equivalence was exercised.
        ok: whether every compared artifact was bitwise equal.
        compared: how many artifacts (arrays/series) were compared.
        detail: human-readable note — the first divergence, or context
            such as "fork unavailable" for a degenerate comparison.
    """

    pair: str
    ok: bool
    compared: int
    detail: str = ""


@dataclass
class SelfCheckReport:
    """All paired-path outcomes of one self-check run."""

    outcomes: List[DiffOutcome] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(outcome.ok for outcome in self.outcomes)

    def render(self) -> str:
        lines = ["self-check: differential verification of paired paths", ""]
        for outcome in self.outcomes:
            status = "ok" if outcome.ok else "DIVERGED"
            lines.append(
                f"  {outcome.pair:<24} {status:<9} "
                f"({outcome.compared} artifacts) {outcome.detail}".rstrip()
            )
        lines.append("")
        lines.append("result: " + ("all paths agree" if self.ok else "DIVERGENCE"))
        return "\n".join(lines)


def _arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    return a.shape == b.shape and bool(np.array_equal(a, b, equal_nan=True))


def diff_batch_vs_loop(
    scenario, sizes=(8, 24), trials: int = 2
) -> DiffOutcome:
    """Batched CBG kernel vs the per-target reference loop, bitwise.

    Runs random VP subsets (and the full set) of the scenario's RTT matrix
    through ``cbg_errors_batch`` and ``cbg_errors_for_subsets_loop`` —
    via the module, so a patched kernel diverges visibly.
    """
    from repro.core import cbg_batch

    matrix = scenario.rtt_matrix()
    vp_count = len(scenario.vps)
    seed = scenario.world.config.seed
    subsets = [np.arange(vp_count)]
    for size in sizes:
        size = min(size, vp_count)
        for trial in range(trials):
            rng = rand.generator((seed, "selfcheck-batch", size, trial))
            subsets.append(np.sort(rng.choice(vp_count, size=size, replace=False)))
    compared = 0
    for subset in subsets:
        batch = cbg_batch.cbg_errors_batch(
            scenario.vp_lats,
            scenario.vp_lons,
            matrix,
            scenario.target_true_lats,
            scenario.target_true_lons,
            subset,
        )
        loop = cbg_batch.cbg_errors_for_subsets_loop(
            scenario.vp_lats,
            scenario.vp_lons,
            matrix,
            scenario.target_true_lats,
            scenario.target_true_lons,
            subset,
        )
        compared += 1
        if not _arrays_equal(batch, loop):
            mismatch = int(np.argmax(~(np.isclose(batch, loop, equal_nan=True))))
            return DiffOutcome(
                "cbg: batch vs loop",
                ok=False,
                compared=compared,
                detail=f"subset of {subset.size} VPs diverges at target "
                f"{mismatch}: batch={batch[mismatch]!r} loop={loop[mismatch]!r}",
            )
    return DiffOutcome("cbg: batch vs loop", ok=True, compared=compared)


def diff_topology(scenario, sample: int = 24) -> DiffOutcome:
    """CSR bucketed kernel vs the scalar waypoint path, bitwise.

    Builds the flat-array router graph over the scenario's world and
    resolves a seeded sample of (source, destination) host pairs three
    ways — the batched column kernel, the vectorised ``bulk_path_km``,
    and the per-pair scalar ``path_km`` — requiring bitwise agreement.
    The sample is augmented with hosts of the most crowded city so the
    same-city peering and trombone policies are always exercised. A few
    pairs are additionally walked hop by hop: the CSR node sequence must
    map exactly onto :func:`~repro.topology.routing.build_route`'s router
    hops, and the route's total length onto the kernel's entry. The graph
    is built through :mod:`repro.topology.csr`, so a patched kernel
    diverges visibly.
    """
    from repro.topology import csr as csr_mod
    from repro.topology.graph import Topology
    from repro.topology.routing import build_route

    world = scenario.world
    topology = Topology(world)
    graph = csr_mod.CsrRouterGraph.from_topology(topology)
    graph.validate()
    count = world.static_host_count
    seed = world.config.seed
    rng = rand.generator((seed, "selfcheck-topology"))
    size = min(sample, count)
    values, crowd = np.unique(world.host_city_ids, return_counts=True)
    crowded = np.flatnonzero(world.host_city_ids == values[np.argmax(crowd)])[:3]
    src = np.unique(
        np.concatenate([rng.choice(count, size=size, replace=False), crowded])
    )
    dst = np.unique(
        np.concatenate([rng.choice(count, size=size, replace=False), crowded])
    )
    matrix = graph.path_km_matrix(src, dst)
    params = {
        int(h): topology.params_for(world.host_by_id(int(h)))
        for h in np.union1d(src, dst)
    }
    pair = "topology: csr vs scalar"
    compared = 0
    src_tail = topology.host_tail_km[src]
    src_uplink = topology.host_uplink_km[src]
    src_hub = topology.host_hub_index[src]
    src_city = world.host_city_ids[src]
    src_asn = world.host_asns[src]
    for column, d in enumerate(dst):
        bulk = topology.bulk_path_km(
            src_tail, src_uplink, src_hub, src_city, src_asn, params[int(d)]
        )
        compared += 1
        if not _arrays_equal(bulk, matrix[:, column]):
            row = int(np.argmax(bulk != matrix[:, column]))
            return DiffOutcome(
                pair,
                ok=False,
                compared=compared,
                detail=f"column {column} diverges from bulk_path_km at row "
                f"{row}: csr={matrix[row, column]!r} bulk={bulk[row]!r}",
            )
        for row, s in enumerate(src):
            scalar = topology.path_km(params[int(s)], params[int(d)])
            compared += 1
            if scalar != matrix[row, column]:
                return DiffOutcome(
                    pair,
                    ok=False,
                    compared=compared,
                    detail=f"pair ({int(s)}, {int(d)}) diverges: "
                    f"csr={matrix[row, column]!r} scalar={scalar!r}",
                )
    for s in src[:4]:
        for d in dst[:4]:
            if s == d:
                continue
            route = build_route(
                topology,
                params[int(s)],
                params[int(d)],
                world.host_by_id(int(s)).ip,
                world.host_by_id(int(d)).ip,
            )
            walked = [graph.node_ip(node) for node in graph.route_nodes(int(s), int(d))]
            expected = [hop.ip for hop in route.hops[:-1]]
            compared += 1
            if walked != expected or route.total_km != graph.path_km_scalar(
                int(s), int(d)
            ):
                return DiffOutcome(
                    pair,
                    ok=False,
                    compared=compared,
                    detail=f"route ({int(s)}, {int(d)}) diverges: "
                    f"csr walk {walked} vs build_route {expected}",
                )
    return DiffOutcome(
        pair,
        ok=True,
        compared=compared,
        detail=f"{len(src)}x{len(dst)} pairs, 3 paths, routes walked",
    )


def diff_serial_vs_parallel(scenario, trials: int = 3, workers: int = 2) -> DiffOutcome:
    """Serial campaign vs ``REPRO_WORKERS=N``, bitwise on the fig2a series.

    Runs the same Figure-2a campaign twice over one scenario — once with
    the executor forced serial, once with ``workers`` processes — and
    compares every per-size trial series float for float.
    """
    from repro.exec.pool import _fork_context
    from repro.experiments import fig2

    def run_with_workers(value: Optional[str]) -> Dict[str, object]:
        saved = os.environ.get("REPRO_WORKERS")
        try:
            if value is None:
                os.environ.pop("REPRO_WORKERS", None)
            else:
                os.environ["REPRO_WORKERS"] = value
            return fig2.run_fig2a(scenario, trials=trials).series
        finally:
            if saved is None:
                os.environ.pop("REPRO_WORKERS", None)
            else:
                os.environ["REPRO_WORKERS"] = saved

    serial = run_with_workers(None)
    parallel = run_with_workers(str(workers))
    degenerate = "" if _fork_context() is not None else " (fork unavailable: both serial)"
    if sorted(serial) != sorted(parallel):
        return DiffOutcome(
            "exec: serial vs parallel",
            ok=False,
            compared=len(serial),
            detail=f"size keys differ: {sorted(serial)} vs {sorted(parallel)}",
        )
    for size_key in sorted(serial):
        if list(serial[size_key]) != list(parallel[size_key]):
            return DiffOutcome(
                "exec: serial vs parallel",
                ok=False,
                compared=len(serial),
                detail=f"trial series for {size_key} VPs diverges: "
                f"{serial[size_key]} vs {parallel[size_key]}",
            )
    return DiffOutcome(
        "exec: serial vs parallel",
        ok=True,
        compared=len(serial),
        detail=f"fig2a x{trials} trials, {workers} workers{degenerate}",
    )


def diff_cold_vs_warm_cache(
    config: WorldConfig, cache_root: Optional[str] = None
) -> DiffOutcome:
    """Cold scenario build vs a warm cache replay, bitwise.

    Builds the scenario twice against the same artifact-cache root — the
    first populates it, the second must replay from disk — and compares
    the sanitized id sets, the anchor mesh, and the campaign RTT matrix.
    A warm rebuild that never hits the cache is reported as a failure:
    the comparison would be vacuous.
    """
    from repro.cache.artifacts import ArtifactCache
    from repro.experiments.scenario import Scenario
    from repro.obs import Observer

    def build(root: str):
        obs = Observer()
        scenario = Scenario.build(config, obs=obs, cache=ArtifactCache(root, obs=obs))
        artifacts = {
            "vp_ids": scenario.vp_ids,
            "target_ids": np.asarray(scenario.target_ids, dtype=np.int64),
            "removed_anchors": np.asarray(scenario.removed_anchor_ids, dtype=np.int64),
            "removed_probes": np.asarray(scenario.removed_probe_ids, dtype=np.int64),
            "mesh": scenario.mesh()[1],
            "rtt_matrix": scenario.rtt_matrix(),
        }
        return artifacts, int(obs.metrics.counter("cache.hit"))

    owned = None
    if cache_root is None:
        owned = tempfile.TemporaryDirectory(prefix="repro-selfcheck-cache-")
        cache_root = owned.name
    try:
        cold, _cold_hits = build(cache_root)
        warm, warm_hits = build(cache_root)
    finally:
        if owned is not None:
            owned.cleanup()
    if warm_hits == 0:
        return DiffOutcome(
            "cache: cold vs warm",
            ok=False,
            compared=0,
            detail="warm rebuild never hit the cache (comparison vacuous)",
        )
    for name in cold:
        if not _arrays_equal(cold[name], warm[name]):
            return DiffOutcome(
                "cache: cold vs warm",
                ok=False,
                compared=len(cold),
                detail=f"artifact {name!r} differs between cold build and "
                "warm replay",
            )
    return DiffOutcome(
        "cache: cold vs warm",
        ok=True,
        compared=len(cold),
        detail=f"{warm_hits} cache hits on the warm rebuild",
    )


def diff_serve_vs_batch(scenario, batch_sizes=(1, 7, 64)) -> DiffOutcome:
    """Resident serving engine vs the one-shot batch campaign, bitwise.

    Loads the scenario into a :class:`~repro.serve.ServeEngine` and serves
    every target through the intake queue — in a seeded *permuted* order,
    once per coalescing batch size — then compares each answer float for
    float against one ``cbg_centroids_batch`` pass over the full matrix.
    The engine is invoked through :mod:`repro.serve` and the campaign path
    through :mod:`repro.core.cbg_batch`, so a patched engine (or solver)
    diverges visibly.
    """
    from repro.core import cbg_batch
    from repro.serve import STATUS_OK, ServeEngine, TenantConfig

    matrix = scenario.rtt_matrix()
    expected_lats, expected_lons = cbg_batch.cbg_centroids_batch(
        scenario.vp_lats, scenario.vp_lons, matrix
    )
    ips = scenario.target_ips
    seed = scenario.world.config.seed
    compared = 0
    for batch_size in batch_sizes:
        engine = ServeEngine.from_scenario(scenario, max_batch=batch_size)
        engine.register_tenant(TenantConfig(name="selfcheck"))
        order = rand.generator((seed, "selfcheck-serve", batch_size)).permutation(
            len(ips)
        )
        served = engine.geolocate("selfcheck", [ips[column] for column in order])
        got_lats = np.full(len(ips), np.nan)
        got_lons = np.full(len(ips), np.nan)
        for column, result in zip(order, served):
            if result.status == STATUS_OK:
                got_lats[column] = result.lat
                got_lons[column] = result.lon
        compared += 2
        if not (
            _arrays_equal(got_lats, expected_lats)
            and _arrays_equal(got_lons, expected_lons)
        ):
            close = np.isclose(got_lats, expected_lats, equal_nan=True) & np.isclose(
                got_lons, expected_lons, equal_nan=True
            )
            mismatch = int(np.argmax(~close))
            return DiffOutcome(
                "serve: engine vs batch",
                ok=False,
                compared=compared,
                detail=f"max_batch={batch_size} diverges at target {mismatch}: "
                f"served=({got_lats[mismatch]!r}, {got_lons[mismatch]!r}) "
                f"batch=({expected_lats[mismatch]!r}, {expected_lons[mismatch]!r})",
            )
    return DiffOutcome(
        "serve: engine vs batch",
        ok=True,
        compared=compared,
        detail=f"{len(ips)} targets served in permuted order at "
        f"{len(batch_sizes)} batch sizes",
    )


def diff_hints(scenario, workers: int = 2) -> DiffOutcome:
    """Hint pipeline serial vs parallel, bitwise — plus hint physics.

    Mines and verifies the scenario's targets twice through
    :mod:`repro.hints` — once forced serial, once with ``workers``
    processes — each under a fresh observer, and compares the match list,
    the verdicts, the ``hint-*`` event stream, and the metrics report
    byte for byte. Then replays every confirmed hint through the
    ``cbg.containment`` invariant with the hinted city centre standing in
    for the truth (slack widened by that city's radius): a confirmed hint
    must be a feasible location under every answering VP's disk. The
    pipeline is invoked through the module, so a patched finder or
    verifier diverges visibly.
    """
    from repro import hints as hints_mod
    from repro.check.invariants import InvariantChecker
    from repro.exec.pool import _fork_context
    from repro.obs import Observer

    def run_with_workers(value: Optional[str]):
        saved = os.environ.get("REPRO_WORKERS")
        try:
            if value is None:
                os.environ.pop("REPRO_WORKERS", None)
            else:
                os.environ["REPRO_WORKERS"] = value
            obs = Observer()
            matches, verified = hints_mod.mine_hints(scenario, obs=obs)
            return matches, verified, obs.events.to_jsonl(), obs.metrics_report()
        finally:
            if saved is None:
                os.environ.pop("REPRO_WORKERS", None)
            else:
                os.environ["REPRO_WORKERS"] = saved

    serial = run_with_workers(None)
    parallel = run_with_workers(str(workers))
    pair = "hints: serial vs parallel"
    compared = 0
    for name, index in (("matches", 0), ("verdicts", 1), ("events", 2), ("metrics", 3)):
        compared += 1
        if serial[index] != parallel[index]:
            return DiffOutcome(
                pair,
                ok=False,
                compared=compared,
                detail=f"{name} diverge between serial and {workers}-worker runs",
            )

    # Physics: every confirmed hint survives cbg.containment with the
    # hinted centre as the location claim.
    matrix = scenario.rtt_matrix()
    confirmed = hints_mod.confirmed_hints(serial[1])
    for hint in confirmed:
        checker = InvariantChecker(
            raise_on_violation=False, cbg_slack_km=hint.slack_km
        )
        checker.check_cbg_containment(
            scenario.vp_lats,
            scenario.vp_lons,
            matrix[:, [hint.column]],
            np.array([hint.lat]),
            np.array([hint.lon]),
            soi_fraction=2.0 / 3.0,
            context=f"selfcheck hints target {hint.column}",
        )
        compared += 1
        if checker.violations:
            return DiffOutcome(
                pair,
                ok=False,
                compared=compared,
                detail=f"confirmed hint at target {hint.column} "
                f"({hint.match.code!r}) violates cbg.containment",
            )
    degenerate = "" if _fork_context() is not None else " (fork unavailable: both serial)"
    return DiffOutcome(
        pair,
        ok=True,
        compared=compared,
        detail=f"{len(confirmed)} confirmed hints contained, "
        f"{workers} workers{degenerate}",
    )


def diff_serve_under_churn(scenario, revisions: int = 3) -> DiffOutcome:
    """Epoch-swapped serving engine vs fresh per-revision batch, bitwise.

    Evolves the scenario's world through ``revisions`` churned revisions
    (churn rates elevated above the Gouel defaults so even mini worlds
    move real prefixes), then serves every target through *one* resident
    engine that follows the world via
    :meth:`~repro.serve.ServeEngine.install_epoch` — memo surviving
    across swaps — and compares each revision's answers float for float
    against a fresh ``cbg_centroids_batch`` pass over that revision's
    canonical matrix. The engine is driven through :mod:`repro.serve`
    and the matrices through :mod:`repro.evolve.measure`, so a patched
    invalidation path (e.g. a memo entry surviving a moved column)
    diverges visibly.
    """
    from repro.core import cbg_batch
    from repro.evolve import (
        EvolutionConfig,
        EvolutionTimeline,
        epoch_state,
        incremental_matrix,
    )
    from repro.serve import STATUS_OK, ServeEngine, TenantConfig

    pair = "serve: epochs vs batch"
    config = EvolutionConfig(
        revisions=revisions,
        prefix_move_share=0.30,
        migration_share=0.10,
        probe_session_share=0.15,
    )
    timeline = EvolutionTimeline(scenario.world, config, checker=scenario.checker)
    engine = ServeEngine.from_scenario(scenario, max_batch=16)
    engine.register_tenant(TenantConfig(name="selfcheck"))
    ips = scenario.target_ips
    seed = scenario.world.config.seed
    matrix = scenario.rtt_matrix()
    compared = 0
    for revision in range(revisions + 1):
        if revision:
            matrix = incremental_matrix(matrix, timeline, scenario, revision)
            engine.install_epoch(
                epoch_state(timeline, scenario, revision, matrix),
                label=f"selfcheck-r{revision}",
            )
        expected_lats, expected_lons = cbg_batch.cbg_centroids_batch(
            scenario.vp_lats, scenario.vp_lons, matrix
        )
        order = rand.generator((seed, "selfcheck-epoch", revision)).permutation(
            len(ips)
        )
        served = engine.geolocate("selfcheck", [ips[column] for column in order])
        got_lats = np.full(len(ips), np.nan)
        got_lons = np.full(len(ips), np.nan)
        for column, result in zip(order, served):
            if result.status == STATUS_OK:
                got_lats[column] = result.lat
                got_lons[column] = result.lon
        compared += 2
        if not (
            _arrays_equal(got_lats, expected_lats)
            and _arrays_equal(got_lons, expected_lons)
        ):
            close = np.isclose(got_lats, expected_lats, equal_nan=True) & np.isclose(
                got_lons, expected_lons, equal_nan=True
            )
            mismatch = int(np.argmax(~close))
            return DiffOutcome(
                pair,
                ok=False,
                compared=compared,
                detail=f"epoch {revision} diverges at target {mismatch}: "
                f"served=({got_lats[mismatch]!r}, {got_lons[mismatch]!r}) "
                f"batch=({expected_lats[mismatch]!r}, {expected_lons[mismatch]!r})",
            )
    moved_total = sum(
        timeline.moved_target_columns(k, ips).size for k in range(1, revisions + 1)
    )
    return DiffOutcome(
        pair,
        ok=True,
        compared=compared,
        detail=f"{len(ips)} targets served across {revisions} epoch swaps "
        f"({moved_total} moved columns, memo retained between swaps)",
    )


def run_selfcheck(
    preset: str = "quick",
    seed: Optional[int] = None,
    trials: int = 3,
    workers: int = 2,
) -> SelfCheckReport:
    """Run all seven paired-path comparisons over one preset world."""
    from repro.experiments.scenario import Scenario, config_for_preset

    config = config_for_preset(preset, seed)
    scenario = Scenario.build(config)
    report = SelfCheckReport()
    report.outcomes.append(diff_batch_vs_loop(scenario))
    report.outcomes.append(diff_topology(scenario))
    report.outcomes.append(
        diff_serial_vs_parallel(scenario, trials=trials, workers=workers)
    )
    report.outcomes.append(diff_cold_vs_warm_cache(config))
    report.outcomes.append(diff_serve_vs_batch(scenario))
    report.outcomes.append(diff_hints(scenario, workers=workers))
    report.outcomes.append(diff_serve_under_churn(scenario))
    return report
