"""Runtime invariant checking for the measurement substrate.

The substrate has three fast paths (batched CBG kernel, parallel executor,
artifact cache) whose correctness is pinned by golden tests — but golden
tests only run when the test suite does. This module adds *runtime*
verification: a registry of physics and accounting invariants that hold by
construction in this simulator, enforced at the sites that produce the
numbers. Any violation means code drift (a kernel, cache, or accounting
bug), never bad luck:

* ``rtt.soi_bound`` — every observed RTT is at least the round-trip time
  light in fibre (2/3 c) needs over the *true* great-circle distance. The
  latency model guarantees it (routed path >= direct, fibre factor >= 1).
* ``trace.hop_delta`` — consecutive traceroute hop RTTs never decrease by
  more than the noise model allows (ICMP slow-path spikes are capped by
  the clamped uniform draw; Gaussian interface noise by a 12-sigma margin).
* ``credits.conservation`` — the ledger's total equals the sum of its
  per-kind charges and never exceeds the budget.
* ``cbg.containment`` — at 2/3 c every CBG constraint disk contains the
  ground-truth target, up to the registered-vs-true metadata jitter the
  §4.3 sanitization provably cannot catch. (Street-level tier 1 runs at
  4/9 c, where exclusion is legitimate — the check skips sub-2/3 c calls.)
* ``cache.digest`` — artifacts read back from the cache match their
  embedded content digest; stores verify their own roundtrip.
* ``exec.item_parity`` — a parallel map's first item, re-run serially in
  the parent, is equal to what the worker returned.

Checking is **off by default**: every instrumented call site holds a
:data:`NULL_CHECKER` whose ``enabled`` flag is ``False`` and guards the
work behind it, mirroring the :data:`~repro.obs.observer.NULL_OBSERVER`
pattern — the overhead bench pins the disabled cost at <2%. Set
``REPRO_CHECK=1`` (or pass ``--check`` to ``experiments/run.py``) to arm
a real :class:`InvariantChecker`. Violations emit an
``invariant-violation`` event plus ``check.*`` counters on the campaign
observer and then raise :class:`~repro.errors.InvariantViolation` (raise
mode, the default) or accumulate on ``checker.violations`` (record mode).
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional

import numpy as np

from repro.constants import SOI_FRACTION_CBG, SPEED_OF_LIGHT_KM_S
from repro.errors import InvariantViolation
from repro.obs import events as _ev
from repro.obs.observer import NULL_OBSERVER

#: The closed invariant registry: name -> what must hold. Checker methods
#: report under exactly these names; the registry-completeness test pins
#: that every entry is exercised by the property suite.
INVARIANTS: Dict[str, str] = {
    "rtt.soi_bound": (
        "observed RTT >= 2 * true_distance / (2/3 c): the latency model "
        "routes over a path >= the great circle with a fibre factor >= 1"
    ),
    "trace.hop_delta": (
        "consecutive traceroute hop RTTs decrease by at most the spike cap "
        "plus a 12-sigma interface-noise margin"
    ),
    "credits.conservation": (
        "ledger total == sum of per-kind charges, and never above budget"
    ),
    "cbg.containment": (
        "at >= 2/3 c, every constraint disk contains the true target up to "
        "the registered-location metadata jitter"
    ),
    "cache.digest": (
        "cached artifact payloads match their embedded SHA-256 digest, on "
        "load and on store-roundtrip"
    ),
    "exec.item_parity": (
        "parallel_map's first item, recomputed serially in the parent, "
        "equals the worker's result"
    ),
}

#: Absolute slack (ms) absorbing float rounding in the SOI comparison.
SOI_TOLERANCE_MS = 1e-6

#: ``rand.uniform`` draws are clamped at 1e-12 before the log, so every
#: exponential spike/jitter term is capped at ``mean * ln(1e12)``.
EXPONENTIAL_CAP_FACTOR = math.log(1e12)


def check_enabled() -> bool:
    """Whether ``REPRO_CHECK`` arms invariant checking.

    Accepts ``1/true/yes/on`` (armed) and ``''/0/false/no/off`` (off),
    case-insensitively; anything else raises — a silently ignored typo
    would defeat the point of a correctness knob.
    """
    raw = os.environ.get("REPRO_CHECK", "").strip().lower()
    if raw in ("", "0", "false", "no", "off"):
        return False
    if raw in ("1", "true", "yes", "on"):
        return True
    raise ValueError(f"unintelligible REPRO_CHECK value: {raw!r}")


class InvariantChecker:
    """Enforces the :data:`INVARIANTS` registry at instrumented sites.

    Args:
        obs: campaign observer; violations emit an ``invariant-violation``
            event and ``check.*`` counters through it, passes bump
            ``check.<name>.pass`` (so a run manifest can prove which
            checks were live).
        raise_on_violation: raise :class:`InvariantViolation` on the first
            failure (default — a checked campaign should stop on drift);
            ``False`` records violations on :attr:`violations` instead,
            which the differential/fuzz harnesses use to collect all of
            them.
        hop_delta_tolerance_ms: largest legitimate *decrease* between
            consecutive traceroute hop RTTs. Derive it from the world
            config via :meth:`for_config`; the default covers the paper
            presets' noise parameters.
        cbg_slack_km: containment slack absorbing the registered-vs-true
            location jitter of sanitization-surviving vantage points
            (``probe_metadata_jitter_max_km`` plus rounding).
    """

    enabled = True

    def __init__(
        self,
        obs=NULL_OBSERVER,
        raise_on_violation: bool = True,
        hop_delta_tolerance_ms: float = 2.5 * EXPONENTIAL_CAP_FACTOR + 12.0 * 0.25,
        cbg_slack_km: float = 41.0,
    ) -> None:
        self.obs = obs
        self.raise_on_violation = raise_on_violation
        self.hop_delta_tolerance_ms = hop_delta_tolerance_ms
        self.cbg_slack_km = cbg_slack_km
        self.passes: Dict[str, int] = {}
        self.violations: List[Dict[str, object]] = []

    @classmethod
    def for_config(
        cls, config, obs=NULL_OBSERVER, raise_on_violation: bool = True
    ) -> "InvariantChecker":
        """A checker whose tolerances are derived from a world config.

        The hop-delta tolerance is the exponential spike cap
        (``hop_spike_mean_ms * ln(1e12)``) plus a 12-sigma margin on the
        difference of two interface-noise draws; the containment slack is
        the config's maximum metadata-jitter displacement.
        """
        return cls(
            obs=obs,
            raise_on_violation=raise_on_violation,
            hop_delta_tolerance_ms=config.hop_spike_mean_ms * EXPONENTIAL_CAP_FACTOR
            + 12.0 * config.hop_noise_std_ms
            + 1e-3,
            cbg_slack_km=config.probe_metadata_jitter_max_km + 1.0,
        )

    # --- accounting -------------------------------------------------------------

    def _pass(self, name: str, count: int = 1) -> None:
        self.passes[name] = self.passes.get(name, 0) + count
        if self.obs.enabled:
            self.obs.count(f"check.{name}.pass", count)

    def violation(self, name: str, detail: str, **fields: object) -> None:
        """Record (and, in raise mode, raise) one invariant violation.

        Always lands on the observer first — the event stream and counters
        document the failure even when the exception then aborts the run.
        """
        if name not in INVARIANTS:
            raise ValueError(f"unknown invariant: {name!r}")
        record: Dict[str, object] = {"invariant": name, "detail": detail}
        record.update(fields)
        self.violations.append(record)
        if self.obs.enabled:
            self.obs.count("check.violations")
            self.obs.count(f"check.{name}.violation")
            self.obs.event(
                _ev.INVARIANT_VIOLATION, invariant=name, detail=detail, **fields
            )
        if self.raise_on_violation:
            raise InvariantViolation(f"{name}: {detail}")

    def summary(self) -> Dict[str, object]:
        """Pass/violation totals, for reports and assertions."""
        return {
            "mode": "raise" if self.raise_on_violation else "record",
            "passes": dict(self.passes),
            "violations": list(self.violations),
        }

    # --- physics ----------------------------------------------------------------

    def check_soi_bound(self, rtts_ms, true_distances_km, context: str) -> None:
        """``rtt.soi_bound``: RTTs respect the 2/3 c physics floor.

        Args:
            rtts_ms: observed RTTs (scalar or array); NaN entries (lost /
                unanswered) are skipped.
            true_distances_km: ground-truth great-circle distances,
                broadcastable against ``rtts_ms``.
            context: where the measurement came from, for the report.
        """
        rtts = np.asarray(rtts_ms, dtype=np.float64)
        bounds = (
            2.0
            * np.asarray(true_distances_km, dtype=np.float64)
            / (SOI_FRACTION_CBG * SPEED_OF_LIGHT_KM_S)
            * 1000.0
        )
        rtts, bounds = np.broadcast_arrays(rtts, bounds)
        with np.errstate(invalid="ignore"):
            bad = rtts < bounds - SOI_TOLERANCE_MS
        bad &= ~np.isnan(rtts)
        checked = int((~np.isnan(rtts)).sum())
        if bad.any():
            worst = int(np.argmax(np.where(bad, bounds - rtts, -np.inf)))
            self.violation(
                "rtt.soi_bound",
                f"{context}: rtt {rtts.flat[worst]:.6f} ms below physical "
                f"minimum {bounds.flat[worst]:.6f} ms "
                f"({int(bad.sum())}/{checked} measurements)",
                rtt_ms=float(rtts.flat[worst]),
                floor_ms=float(bounds.flat[worst]),
                count=int(bad.sum()),
            )
        elif checked:
            self._pass("rtt.soi_bound", checked)

    def check_trace_hops(
        self, hop_rtts_ms, context: str, tolerance_ms: Optional[float] = None
    ) -> None:
        """``trace.hop_delta``: hop RTTs are positive and near-monotone."""
        rtts = np.asarray(hop_rtts_ms, dtype=np.float64)
        if rtts.size == 0:
            return
        if tolerance_ms is None:
            tolerance_ms = self.hop_delta_tolerance_ms
        if (rtts <= 0.0).any():
            worst = int(np.argmin(rtts))
            self.violation(
                "trace.hop_delta",
                f"{context}: non-positive hop RTT {rtts[worst]:.6f} ms at "
                f"hop {worst}",
                hop=worst,
                rtt_ms=float(rtts[worst]),
            )
            return
        deltas = np.diff(rtts)
        bad = deltas < -tolerance_ms
        if bad.any():
            worst = int(np.argmin(deltas))
            self.violation(
                "trace.hop_delta",
                f"{context}: hop {worst + 1} RTT drops {-deltas[worst]:.6f} ms "
                f"(tolerance {tolerance_ms:.3f} ms)",
                hop=worst + 1,
                drop_ms=float(-deltas[worst]),
                tolerance_ms=float(tolerance_ms),
            )
        else:
            self._pass("trace.hop_delta")

    # --- accounting invariants ----------------------------------------------------

    def check_ledger(
        self,
        spent: int,
        per_kind_total: int,
        budget: Optional[int],
        context: str,
    ) -> None:
        """``credits.conservation``: the ledger books balance."""
        if spent != per_kind_total:
            self.violation(
                "credits.conservation",
                f"{context}: spent total {spent} != per-kind sum {per_kind_total}",
                spent=int(spent),
                per_kind_total=int(per_kind_total),
            )
            return
        if spent < 0 or (budget is not None and spent > budget):
            self.violation(
                "credits.conservation",
                f"{context}: spent {spent} outside [0, {budget}]",
                spent=int(spent),
                budget=budget,
            )
            return
        self._pass("credits.conservation")

    # --- geolocation ---------------------------------------------------------------

    def check_cbg_containment(
        self,
        vp_lats: np.ndarray,
        vp_lons: np.ndarray,
        rtt_matrix: np.ndarray,
        target_true_lats: np.ndarray,
        target_true_lons: np.ndarray,
        soi_fraction: float,
        context: str,
    ) -> None:
        """``cbg.containment``: every 2/3 c constraint disk holds the truth.

        Args:
            vp_lats: registered latitudes of the vantage points in play.
            vp_lons: registered longitudes, aligned.
            rtt_matrix: min-RTT matrix (VPs x targets); NaN = no answer,
                and NaN entries constrain nothing.
            target_true_lats: ground-truth target latitudes.
            target_true_lons: ground-truth target longitudes.
            soi_fraction: the conversion speed the caller used. Below
                2/3 c (street-level tier 1) exclusion of the truth is
                legitimate — the paper's fallback exists precisely for it —
                so the check silently skips those calls.
            context: calling campaign, for the report.
        """
        if soi_fraction < SOI_FRACTION_CBG - 1e-9:
            return
        rtts = np.asarray(rtt_matrix, dtype=np.float64)
        if rtts.size == 0:
            return
        radii = (rtts / 2000.0) * soi_fraction * SPEED_OF_LIGHT_KM_S
        # Broadcast haversine: registered VP positions vs true targets.
        phi1 = np.radians(np.asarray(vp_lats, dtype=np.float64))[:, None]
        phi2 = np.radians(np.asarray(target_true_lats, dtype=np.float64))[None, :]
        dphi = phi2 - phi1
        dlambda = np.radians(
            np.asarray(target_true_lons, dtype=np.float64)[None, :]
            - np.asarray(vp_lons, dtype=np.float64)[:, None]
        )
        a = (
            np.sin(dphi / 2.0) ** 2
            + np.cos(phi1) * np.cos(phi2) * np.sin(dlambda / 2.0) ** 2
        )
        from repro.constants import EARTH_RADIUS_KM

        distances = 2.0 * EARTH_RADIUS_KM * np.arcsin(
            np.sqrt(np.clip(a, 0.0, 1.0))
        )
        with np.errstate(invalid="ignore"):
            bad = distances > radii + self.cbg_slack_km
        bad &= ~np.isnan(rtts)
        checked = int((~np.isnan(rtts)).sum())
        if bad.any():
            excess = np.where(bad, distances - radii, -np.inf)
            vp_row, target_col = np.unravel_index(int(np.argmax(excess)), bad.shape)
            self.violation(
                "cbg.containment",
                f"{context}: disk of VP {int(vp_row)} excludes target "
                f"{int(target_col)} by "
                f"{distances[vp_row, target_col] - radii[vp_row, target_col]:.3f} km "
                f"(slack {self.cbg_slack_km:.1f} km, "
                f"{int(bad.sum())}/{checked} constraints)",
                vp=int(vp_row),
                target=int(target_col),
                excess_km=float(distances[vp_row, target_col] - radii[vp_row, target_col]),
                count=int(bad.sum()),
            )
        elif checked:
            self._pass("cbg.containment", checked)

    # --- infrastructure -------------------------------------------------------------

    def check_cache_digest(self, ok: bool, name: str, context: str) -> None:
        """``cache.digest``: a cache payload matched its embedded digest."""
        if ok:
            self._pass("cache.digest")
        else:
            self.violation(
                "cache.digest",
                f"{context}: artifact {name!r} payload does not match its "
                "embedded digest",
                artifact=name,
            )

    def check_exec_parity(self, ok: bool, context: str) -> None:
        """``exec.item_parity``: parallel and serial item results agree."""
        if ok:
            self._pass("exec.item_parity")
        else:
            self.violation(
                "exec.item_parity",
                f"{context}: worker result differs from a serial re-run of "
                "the same item",
            )


class NullChecker:
    """The default checker: every check is a no-op, ``enabled`` is False.

    Hot paths guard checker work behind ``if checker.enabled:`` exactly as
    they guard observability behind ``obs.enabled`` — with the shared
    :data:`NULL_CHECKER` the cost of an armed-but-off call site is one
    attribute read.
    """

    enabled = False
    raise_on_violation = False

    def _pass(self, name: str, count: int = 1) -> None:
        return None

    def violation(self, name: str, detail: str, **fields: object) -> None:
        return None

    def summary(self) -> Dict[str, object]:
        return {"mode": "off", "passes": {}, "violations": []}

    def check_soi_bound(self, rtts_ms, true_distances_km, context: str) -> None:
        return None

    def check_trace_hops(
        self, hop_rtts_ms, context: str, tolerance_ms: Optional[float] = None
    ) -> None:
        return None

    def check_ledger(self, spent, per_kind_total, budget, context: str) -> None:
        return None

    def check_cbg_containment(
        self,
        vp_lats,
        vp_lons,
        rtt_matrix,
        target_true_lats,
        target_true_lons,
        soi_fraction,
        context: str,
    ) -> None:
        return None

    def check_cache_digest(self, ok: bool, name: str, context: str) -> None:
        return None

    def check_exec_parity(self, ok: bool, context: str) -> None:
        return None


#: The shared no-op checker every instrumented site defaults to.
NULL_CHECKER = NullChecker()


def checker_from_env(obs=NULL_OBSERVER, config=None):
    """The process-wide checker policy: a live checker iff ``REPRO_CHECK``.

    Args:
        obs: campaign observer for the live checker's emissions.
        config: optional :class:`~repro.world.config.WorldConfig`; when
            given, tolerances are derived from it (:meth:`for_config`).

    Returns:
        :data:`NULL_CHECKER` when checking is off; otherwise a fresh
        raise-mode :class:`InvariantChecker`.
    """
    if not check_enabled():
        return NULL_CHECKER
    if config is not None:
        return InvariantChecker.for_config(config, obs=obs)
    return InvariantChecker(obs=obs)
