"""A simulated RIPE Atlas: probes, anchors, credits, rate limits, and the
measurement API through which every geolocation algorithm observes the world.

The platform mirrors the operational properties the paper's scalability
findings hinge on (§5.1.3, §5.2.5): measurements cost credits, probes have
small probing-rate budgets, and the API takes minutes — not milliseconds —
to return results.
"""

from repro.atlas.clock import SimClock
from repro.atlas.credits import CreditLedger, CREDIT_COST_PER_PING_PACKET, CREDIT_COST_PER_TRACEROUTE
from repro.atlas.ratelimit import SlidingWindowRateLimiter
from repro.atlas.platform import AtlasPlatform, ProbeInfo
from repro.atlas.client import AtlasClient
from repro.atlas.resilient import ResilientClient, RetryPolicy, RetryStats

__all__ = [
    "SimClock",
    "CreditLedger",
    "CREDIT_COST_PER_PING_PACKET",
    "CREDIT_COST_PER_TRACEROUTE",
    "SlidingWindowRateLimiter",
    "AtlasPlatform",
    "ProbeInfo",
    "AtlasClient",
    "ResilientClient",
    "RetryPolicy",
    "RetryStats",
]
