"""A fault-tolerant client wrapper: retries, backoff, graceful degradation.

The real replication tooling (like HLOC's measure step) treats framework
failures as first-class: a timed-out RIPE Atlas call is retried with
backoff, and a probe that never answers becomes a missing value instead of
a crashed campaign. :class:`ResilientClient` brings that discipline to the
simulated platform:

* transient :class:`~repro.errors.AtlasApiError` failures are retried up
  to :attr:`RetryPolicy.max_attempts` times with exponential backoff and
  deterministic jitter — every attempt and every backoff charges the
  simulated clock (and failed attempts have already charged the ledger),
  so time/credit accounting under faults stays honest (Fig. 6c);
* a per-call timeout bounds how long one logical call may burn;
* when retries are exhausted, the call *degrades* instead of raising:
  pings yield ``None``/NaN, traceroutes yield ``None`` — the shape every
  algorithm in :mod:`repro.core` already accepts for unanswered probes;
* :class:`~repro.errors.CreditExhaustedError` always propagates — retrying
  cannot mint credits.

The wrapper exposes the same surface as
:class:`~repro.atlas.client.AtlasClient`, so it drops into any campaign
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from repro import rand
from repro.atlas.client import AtlasClient
from repro.atlas.clock import SimClock
from repro.atlas.platform import ProbeInfo
from repro.errors import ApiRateLimitError, AtlasApiError, ConfigurationError
from repro.latency.model import TraceObservation
from repro.obs import events as _ev

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before degrading.

    Attributes:
        max_attempts: total attempts per logical call (1 = no retries).
        base_backoff_s: backoff before the first retry.
        backoff_multiplier: exponential growth factor per retry.
        max_backoff_s: cap on a single backoff interval.
        jitter_fraction: each backoff is scaled by a deterministic factor
            drawn uniformly from ``[1 - jitter, 1 + jitter]`` (decorrelates
            retry storms without breaking reproducibility).
        call_timeout_s: give up on a logical call once it has burned this
            much simulated time, even with attempts left; ``None`` disables.
        seed: root of the jitter draw keys.
    """

    max_attempts: int = 4
    base_backoff_s: float = 5.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 300.0
    jitter_fraction: float = 0.25
    call_timeout_s: Optional[float] = 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff durations must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1: {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                f"jitter_fraction must be in [0, 1): {self.jitter_fraction}"
            )
        if self.call_timeout_s is not None and self.call_timeout_s <= 0:
            raise ConfigurationError(
                f"call_timeout_s must be positive: {self.call_timeout_s}"
            )

    def backoff_s(self, op: str, call_index: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based), with jitter."""
        backoff = min(
            self.base_backoff_s * self.backoff_multiplier**attempt, self.max_backoff_s
        )
        if self.jitter_fraction > 0.0:
            backoff *= rand.uniform(
                (self.seed, "retry-jitter", op, call_index, attempt),
                1.0 - self.jitter_fraction,
                1.0 + self.jitter_fraction,
            )
        return backoff


@dataclass
class RetryStats:
    """What resilience cost: the retry/degradation overhead of a session."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    degraded_calls: int = 0
    backoff_s: float = 0.0
    errors_by_type: Dict[str, int] = field(default_factory=dict)

    def record_error(self, error: AtlasApiError) -> None:
        name = type(error).__name__
        self.errors_by_type[name] = self.errors_by_type.get(name, 0) + 1


class ResilientClient:
    """An :class:`AtlasClient` drop-in that survives platform faults."""

    def __init__(
        self,
        client: AtlasClient,
        policy: Optional[RetryPolicy] = None,
        stats: Optional[RetryStats] = None,
    ) -> None:
        self.client = client
        self.policy = policy if policy is not None else RetryPolicy()
        self.stats = stats if stats is not None else RetryStats()
        #: campaign observer, inherited from the wrapped client's platform;
        #: the retry loop reports retries/backoffs/degradations through it.
        self.obs = client.obs

    # --- plumbing shared with AtlasClient -----------------------------------------

    @property
    def platform(self):
        """The underlying platform (same attribute as :class:`AtlasClient`)."""
        return self.client.platform

    @property
    def ledger(self):
        """The underlying credit ledger."""
        return self.client.ledger

    @property
    def clock(self) -> SimClock:
        """The underlying simulated clock (backoff is charged here)."""
        return self.client.clock

    def with_clock(self, clock: SimClock) -> "ResilientClient":
        """A sibling resilient client charging time to a different clock.

        Credits and retry statistics stay shared — the street level
        pipeline times each target independently but overhead is global.
        """
        return ResilientClient(
            self.client.with_clock(clock), policy=self.policy, stats=self.stats
        )

    @property
    def credits_spent(self) -> int:
        """Credits consumed through this client's ledger."""
        return self.client.credits_spent

    @property
    def measurements_run(self) -> int:
        """Total measurements issued through this client's ledger."""
        return self.client.measurements_run

    # --- metadata (no retry needed: metadata access is local) ----------------------

    def list_probes(self, anchors_only: bool = False) -> List[ProbeInfo]:
        """Vantage-point metadata (see :class:`AtlasClient.list_probes`)."""
        return self.client.list_probes(anchors_only=anchors_only)

    def probe(self, probe_id: int) -> ProbeInfo:
        """Metadata for one vantage point."""
        return self.client.probe(probe_id)

    def anchor_mesh(self):
        """The platform's anchor-mesh dataset (a download, not an API call)."""
        return self.client.anchor_mesh()

    # --- the retry loop -----------------------------------------------------------

    def _call(self, op: str, attempt_fn: Callable[[], T], degrade_fn: Callable[[], T]) -> T:
        """Run one logical call with retries; degrade when they run out.

        ``CreditExhaustedError`` (and any non-API error) propagates: it is
        not transient, and hiding it would falsify cost accounting.
        """
        call_index = self.stats.calls
        self.stats.calls += 1
        started_s = self.clock.now_s
        policy = self.policy
        for attempt in range(policy.max_attempts):
            self.stats.attempts += 1
            try:
                return attempt_fn()
            except AtlasApiError as error:
                self.stats.record_error(error)
                elapsed = self.clock.now_s - started_s
                timed_out = (
                    policy.call_timeout_s is not None and elapsed >= policy.call_timeout_s
                )
                if attempt + 1 >= policy.max_attempts or timed_out or not error.retryable:
                    break
                backoff = policy.backoff_s(op, call_index, attempt)
                if isinstance(error, ApiRateLimitError):
                    backoff = max(backoff, error.retry_after_s)
                if self.obs.enabled:
                    self.obs.event(
                        _ev.RETRY,
                        t_s=self.clock.now_s,
                        op=op,
                        call_index=call_index,
                        attempt=attempt,
                        error=type(error).__name__,
                    )
                    self.obs.count("resilient.retries")
                self.clock.advance(backoff, "retry-backoff")
                if self.obs.enabled:
                    self.obs.event(
                        _ev.BACKOFF,
                        t_s=self.clock.now_s,
                        op=op,
                        call_index=call_index,
                        backoff_s=backoff,
                    )
                    self.obs.count("resilient.backoff_s", backoff)
                    self.obs.observe("resilient.backoff_wait_s", backoff)
                self.stats.backoff_s += backoff
                self.stats.retries += 1
        self.stats.degraded_calls += 1
        if self.obs.enabled:
            self.obs.event(
                _ev.DEGRADATION, t_s=self.clock.now_s, op=op, call_index=call_index
            )
            self.obs.count("resilient.degraded_calls")
        return degrade_fn()

    # --- measurements -----------------------------------------------------------

    def ping_from(
        self,
        probe_ids: Sequence[int],
        target_ip: str,
        packets: int = 3,
        seq: int = 0,
    ) -> Dict[int, Optional[float]]:
        """Ping one target from several probes; degraded probes yield ``None``."""
        return self._call(
            "ping",
            lambda: self.client.ping_from(probe_ids, target_ip, packets=packets, seq=seq),
            lambda: {probe_id: None for probe_id in probe_ids},
        )

    def ping_matrix(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        packets: int = 3,
        seq: int = 0,
    ) -> np.ndarray:
        """Campaign ping matrix; a degraded call yields an all-NaN matrix."""
        return self._call(
            "ping-matrix",
            lambda: self.client.ping_matrix(probe_ids, target_ips, packets=packets, seq=seq),
            lambda: np.full((len(list(probe_ids)), len(target_ips)), np.nan),
        )

    def traceroute_from(
        self, probe_id: int, target_ip: str, seq: int = 0
    ) -> Optional[TraceObservation]:
        """One traceroute; ``None`` when the platform keeps failing."""
        return self._call(
            "traceroute",
            lambda: self.client.traceroute_from(probe_id, target_ip, seq=seq),
            lambda: None,
        )

    def traceroute_batch(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        seq: int = 0,
    ) -> Dict[str, Dict[int, Optional[TraceObservation]]]:
        """Batch traceroutes; degraded batches are all-``None`` per target."""
        return self._call(
            "traceroute-batch",
            lambda: self.client.traceroute_batch(probe_ids, target_ips, seq=seq),
            lambda: {
                target_ip: {probe_id: None for probe_id in probe_ids}
                for target_ip in target_ips
            },
        )
