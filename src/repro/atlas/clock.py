"""Simulated wall-clock time.

The replication's Figure 6c is a time-accounting result: the median time to
geolocate one target with the street level technique was 1,238 seconds.
Reproducing it offline requires charging every operation (API round trips,
measurement completion waits, rate-limited mapping queries, website checks)
to a clock. :class:`SimClock` is that clock; the street level pipeline
creates one per target, mirroring the paper's per-target parallel runs.
"""

from __future__ import annotations

from typing import Dict


class SimClock:
    """An advance-only simulated clock with per-category accounting."""

    def __init__(self) -> None:
        self._now_s = 0.0
        self._by_category: Dict[str, float] = {}

    @property
    def now_s(self) -> float:
        """Seconds elapsed since the clock was created."""
        return self._now_s

    def advance(self, seconds: float, category: str = "other") -> None:
        """Spend simulated time.

        Args:
            seconds: duration to add; must be non-negative.
            category: accounting bucket (e.g. ``"atlas-api"``,
                ``"mapping"``, ``"website-tests"``).

        Raises:
            ValueError: on negative durations.
        """
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds}s")
        self._now_s += seconds
        self._by_category[category] = self._by_category.get(category, 0.0) + seconds

    def spent_in(self, category: str) -> float:
        """Seconds charged to one category so far."""
        return self._by_category.get(category, 0.0)

    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-category accounting."""
        return dict(self._by_category)
