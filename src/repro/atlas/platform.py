"""The measurement platform: probe metadata and the measurement engine.

:class:`AtlasPlatform` is the boundary between algorithms and the simulated
world. Algorithms see:

* probe *metadata* (:class:`ProbeInfo`) — the recorded location, never the
  true one;
* measurement *results* — min RTTs and traceroute hops, produced by the
  latency model from true positions.

That separation mirrors the real study: geolocation techniques trust the
platform's metadata and whatever the network echoes back, nothing more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import rand
from repro.atlas.clock import SimClock
from repro.check.invariants import NULL_CHECKER
from repro.atlas.credits import (
    CREDIT_COST_PER_PING_PACKET,
    CREDIT_COST_PER_TRACEROUTE,
    CreditLedger,
)
from repro.errors import MeasurementError
from repro.faults import FaultInjector
from repro.geo.coords import GeoPoint
from repro.obs import events as _ev
from repro.obs.observer import NULL_OBSERVER
from repro.latency.model import LatencyModel, TraceObservation
from repro.topology.graph import Topology
from repro.world.hosts import Host, HostKind
from repro.world.world import World

#: Seconds of API overhead per measurement request batch.
API_OVERHEAD_S = 2.0
#: Measurement results become available after this long (min, max); the
#: paper notes "it generally takes a few minutes" (§5.2.5). CALIBRATED
#: against Figure 6c's median time to geolocate a target (1,238 s).
RESULT_LATENCY_RANGE_S = (180.0, 420.0)
#: How many measurement *specifications* (one target, many probes) the API
#: runs concurrently; larger batches complete in waves.
MAX_CONCURRENT_MEASUREMENTS = 100


@dataclass(frozen=True)
class ProbeInfo:
    """Public metadata of a vantage point, as the platform advertises it.

    Attributes:
        probe_id: platform id (equals the underlying host id).
        address: the probe's IPv4 address.
        location: the *registered* location — possibly wrong, which is why
            the paper sanitizes the platform first (§4.3).
        asn: the probe's AS.
        is_anchor: anchors are well-connected servers; probes are small
            devices in access networks.
        probing_rate_pps: the probe's packets-per-second budget (§5.1.3).
    """

    probe_id: int
    address: str
    location: GeoPoint
    asn: int
    is_anchor: bool
    probing_rate_pps: float


class AtlasPlatform:
    """Simulated RIPE Atlas measurement platform over a world.

    Args:
        world: the simulated world measurements observe.
        faults: optional :class:`~repro.faults.FaultInjector`. When absent
            (or carrying a zero :class:`~repro.faults.FaultPlan`) the
            platform is the fair-weather substrate it always was —
            byte-identical results. When present, measurements are subject
            to probe churn, packet loss, typed API errors, delivery delays
            and account-level credit exhaustion.
        obs: campaign observer (see :mod:`repro.obs`). Measurement batches
            emit ``measurement-scheduled`` / ``measurement-executed``
            events and ``atlas.*`` counters; a fault injector still
            carrying the default :data:`~repro.obs.observer.NULL_OBSERVER`
            adopts this observer so fault events land in the same stream.
            The default no-op observer costs nothing on the hot paths.
        checker: optional :class:`~repro.check.InvariantChecker`, threaded
            into the latency model (physics invariants on every produced
            measurement) and adopted by client-created ledgers (credit
            conservation). :data:`~repro.check.NULL_CHECKER` — free — by
            default.
    """

    def __init__(
        self,
        world: World,
        faults: Optional[FaultInjector] = None,
        obs=NULL_OBSERVER,
        checker=NULL_CHECKER,
    ) -> None:
        self.world = world
        self.faults = faults
        self.obs = obs
        self.checker = checker
        if faults is not None and obs.enabled and not faults.obs.enabled:
            faults.obs = obs
        self.topology = Topology(world)
        self.latency = LatencyModel(world, self.topology, checker=checker)
        self._infos: Dict[int, ProbeInfo] = {}
        for host in world.hosts:
            if host.kind in (HostKind.ANCHOR, HostKind.PROBE):
                self._infos[host.host_id] = self._info_for(host)
        self._mesh_cache: Optional[Tuple[List[int], np.ndarray]] = None

    def _info_for(self, host: Host) -> ProbeInfo:
        seed = self.world.config.seed
        if host.kind is HostKind.ANCHOR:
            pps = rand.uniform((seed, "pps", host.host_id), 200.0, 400.0)
        else:
            pps = rand.uniform((seed, "pps", host.host_id), 4.0, 12.0)
        return ProbeInfo(
            probe_id=host.host_id,
            address=host.ip,
            location=host.recorded_location,
            asn=host.asn,
            is_anchor=host.kind is HostKind.ANCHOR,
            probing_rate_pps=pps,
        )

    # --- metadata ---------------------------------------------------------------

    def probe_infos(self, anchors_only: bool = False) -> List[ProbeInfo]:
        """Metadata of every vantage point (anchors first, then probes)."""
        infos = sorted(self._infos.values(), key=lambda info: info.probe_id)
        if anchors_only:
            return [info for info in infos if info.is_anchor]
        return infos

    def probe_info(self, probe_id: int) -> ProbeInfo:
        """Metadata of one vantage point.

        Raises:
            MeasurementError: for unknown probe ids.
        """
        info = self._infos.get(probe_id)
        if info is None:
            raise MeasurementError(f"unknown probe id {probe_id}")
        return info

    # --- measurement execution -----------------------------------------------------

    def _charge_and_wait(
        self,
        measurement_count: int,
        credits_per_measurement: int,
        kind: str,
        ledger: Optional[CreditLedger],
        clock: Optional[SimClock],
        wait_key: rand.Key,
        specs: int = 1,
    ) -> None:
        """Account for a measurement batch: credits and completion time.

        ``measurement_count`` is the number of (probe, target) results (what
        credits are charged for); ``specs`` is the number of measurement
        specifications — one per target — which is what bounds concurrency:
        a single spec can fan out to a thousand probes at once.
        """
        if self.obs.enabled:
            self.obs.event(
                _ev.MEASUREMENT_SCHEDULED,
                t_s=clock.now_s if clock is not None else 0.0,
                op=kind,
                measurements=measurement_count,
                specs=specs,
                credits=credits_per_measurement * measurement_count,
            )
            self.obs.count(f"atlas.{kind}.measurements", measurement_count)
            self.obs.count("atlas.api_calls")
        if ledger is not None:
            ledger.charge(
                credits_per_measurement * measurement_count, kind, measurement_count
            )
        if clock is not None and measurement_count > 0:
            waves = -(-max(specs, 1) // MAX_CONCURRENT_MEASUREMENTS)
            low, high = RESULT_LATENCY_RANGE_S
            wait = API_OVERHEAD_S + waves * rand.uniform(wait_key, low, high)
            clock.advance(wait, "atlas-api")
            if self.obs.enabled:
                self.obs.observe("atlas.result_wait_s", wait)

    def _obs_executed(
        self, op: str, clock: Optional[SimClock], answered: int, total: int
    ) -> None:
        """Record one delivered measurement batch (answered/total results)."""
        self.obs.event(
            _ev.MEASUREMENT_EXECUTED,
            t_s=clock.now_s if clock is not None else 0.0,
            op=op,
            answered=answered,
            total=total,
        )
        self.obs.count(f"atlas.{op}.answered", answered)
        self.obs.count(f"atlas.{op}.silent", total - answered)

    # --- fault hooks -------------------------------------------------------------

    def _fault_window(self, clock: Optional[SimClock]) -> int:
        """Churn window at request time (0 without a clock or fault layer)."""
        if self.faults is None or clock is None:
            return 0
        return self.faults.window_at(clock.now_s)

    def _fault_admission(self, credits: int) -> Optional[int]:
        """Account-level admission: allocate a call index, check the budget.

        Raises:
            CreditExhaustedError: when the fault plan's account budget
                cannot honour the charge.
        """
        if self.faults is None:
            return None
        index = self.faults.next_call()
        self.faults.check_credits(credits)
        return index

    def _fault_outcome(self, op: str, index: Optional[int], clock: Optional[SimClock]) -> None:
        """Draw the call's API fate: typed failure, late delivery, or ok.

        Runs *after* :meth:`_charge_and_wait`, so a failed call has already
        charged the ledger and clock — retried attempts are not free, which
        keeps Fig. 6c-style time/credit accounting honest.
        """
        if self.faults is None or index is None:
            return
        error = self.faults.api_error(op, index)
        if error is not None:
            if clock is not None and error.cost_s > 0:
                clock.advance(error.cost_s, "atlas-faults")
            raise error
        if clock is not None:
            delay = self.faults.result_delay(op, index)
            if delay > 0:
                clock.advance(delay, "atlas-faults")

    def ping(
        self,
        probe_ids: Sequence[int],
        target_ip: str,
        packets: int = 3,
        seq: int = 0,
        ledger: Optional[CreditLedger] = None,
        clock: Optional[SimClock] = None,
    ) -> Dict[int, Optional[float]]:
        """Ping a target from several probes; returns min RTT per probe.

        Unknown or unresponsive targets yield ``None`` for every probe (the
        measurement still costs credits — timeouts are not free).

        Raises:
            AtlasApiError: when the fault layer fails the API call (the
                attempt has already been charged).
            CreditExhaustedError: when a ledger or account budget runs out.
        """
        window = self._fault_window(clock)
        index = self._fault_admission(CREDIT_COST_PER_PING_PACKET * packets * len(probe_ids))
        self._charge_and_wait(
            len(probe_ids),
            CREDIT_COST_PER_PING_PACKET * packets,
            "ping",
            ledger,
            clock,
            ("ping-wait", seq, target_ip),
        )
        self._fault_outcome("ping", index, clock)
        results = self.execute_ping(
            probe_ids, target_ip, packets=packets, seq=seq, window=window
        )
        if self.obs.enabled:
            answered = sum(1 for rtt in results.values() if rtt is not None)
            self._obs_executed("ping", clock, answered, len(results))
        return results

    def execute_ping(
        self,
        probe_ids: Sequence[int],
        target_ip: str,
        packets: int = 3,
        seq: int = 0,
        window: int = 0,
    ) -> Dict[int, Optional[float]]:
        """Measurement execution only: no accounting, no API-fault draws.

        The delivery path for already-scheduled measurements — the async
        :class:`~repro.atlas.api.MeasurementApi` counts and charges at
        schedule time, then fetches results through here, so a measurement
        can never be double-counted. Probe churn and packet loss *do*
        apply: they are properties of the measurement, not of the API call.
        """
        target = self.world.try_host(target_ip)
        results: Dict[int, Optional[float]] = {}
        for probe_id in probe_ids:
            if target is None:
                results[probe_id] = None
                continue
            self.probe_info(probe_id)  # validate
            if self._measurement_failed("ping", probe_id, target_ip, seq, window):
                results[probe_id] = None
                continue
            source = self.world.host_by_id(probe_id)
            if not source.responsive:
                results[probe_id] = None  # disconnected probe: session is down
                continue
            observation = self.latency.ping(source, target, packets=packets, seq=seq)
            results[probe_id] = observation.min_rtt_ms
        return results

    def _measurement_failed(
        self, kind: str, probe_id: int, target_ip: str, seq: int, window: int
    ) -> bool:
        """Whether churn or loss silences one (probe, target) measurement."""
        if self.faults is None:
            return False
        return self.faults.probe_disconnected(probe_id, window) or self.faults.measurement_lost(
            kind, target_ip, seq, probe_id
        )

    def ping_matrix(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        packets: int = 3,
        seq: int = 0,
        ledger: Optional[CreditLedger] = None,
        clock: Optional[SimClock] = None,
    ) -> np.ndarray:
        """Min-RTT matrix (probes x targets); NaN marks missing responses.

        The vectorised path of the engine — identical numbers to per-pair
        :meth:`ping` calls, at campaign scale.

        Raises:
            AtlasApiError: when the fault layer fails the API call (the
                attempt has already been charged).
            CreditExhaustedError: when a ledger or account budget runs out.
        """
        window = self._fault_window(clock)
        ids = np.asarray(list(probe_ids), dtype=np.int64)
        for probe_id in ids:
            self.probe_info(int(probe_id))  # validate
        index = self._fault_admission(
            CREDIT_COST_PER_PING_PACKET * packets * len(ids) * len(target_ips)
        )
        self._charge_and_wait(
            len(ids) * len(target_ips),
            CREDIT_COST_PER_PING_PACKET * packets,
            "ping",
            ledger,
            clock,
            ("matrix-wait", seq, len(target_ips)),
            specs=len(target_ips),
        )
        self._fault_outcome("ping", index, clock)
        matrix = self.execute_ping_matrix(
            ids, target_ips, packets=packets, seq=seq, window=window
        )
        if self.obs.enabled:
            self._obs_executed(
                "ping", clock, int((~np.isnan(matrix)).sum()), int(matrix.size)
            )
        return matrix

    def execute_ping_matrix(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        packets: int = 3,
        seq: int = 0,
        window: int = 0,
    ) -> np.ndarray:
        """Matrix execution only (see :meth:`execute_ping`): churn and loss
        apply per cell, accounting does not."""
        ids = np.asarray(list(probe_ids), dtype=np.int64)
        matrix = np.full((ids.shape[0], len(target_ips)), np.nan)
        for column, target_ip in enumerate(target_ips):
            target = self.world.try_host(target_ip)
            if target is None:
                continue
            matrix[:, column] = self.latency.bulk_min_rtt(
                ids, target, packets=packets, seq=seq
            )
            if self.faults is not None:
                lost = self.faults.loss_mask("ping", target_ip, seq, ids)
                if lost.any():
                    matrix[lost, column] = np.nan
        if self.faults is not None:
            down = self.faults.disconnected_mask(ids, window)
            if down.any():
                matrix[down, :] = np.nan
        offline = ~self.world.host_responsive[ids]
        if offline.any():
            matrix[offline, :] = np.nan  # disconnected probes answer nothing
        return matrix

    def traceroute(
        self,
        probe_id: int,
        target_ip: str,
        seq: int = 0,
        ledger: Optional[CreditLedger] = None,
        clock: Optional[SimClock] = None,
    ) -> Optional[TraceObservation]:
        """Run one traceroute; ``None`` for targets outside the routed space.

        Raises:
            AtlasApiError: when the fault layer fails the API call (the
                attempt has already been charged).
            CreditExhaustedError: when a ledger or account budget runs out.
        """
        window = self._fault_window(clock)
        index = self._fault_admission(CREDIT_COST_PER_TRACEROUTE)
        self._charge_and_wait(
            1,
            CREDIT_COST_PER_TRACEROUTE,
            "traceroute",
            ledger,
            clock,
            ("tr-wait", seq, probe_id, target_ip),
        )
        self._fault_outcome("traceroute", index, clock)
        observation = self._execute_traceroute(probe_id, target_ip, seq=seq, window=window)
        if self.obs.enabled:
            self._obs_executed("traceroute", clock, int(observation is not None), 1)
        return observation

    def _execute_traceroute(
        self, probe_id: int, target_ip: str, seq: int = 0, window: int = 0
    ) -> Optional[TraceObservation]:
        """One traceroute, execution only (churn/loss apply)."""
        target = self.world.try_host(target_ip)
        if target is None:
            return None
        self.probe_info(probe_id)  # validate
        if self._measurement_failed("traceroute", probe_id, target_ip, seq, window):
            return None
        source = self.world.host_by_id(probe_id)
        if not source.responsive:
            return None  # disconnected probe: session is down
        return self.latency.traceroute(source, target, seq=seq)

    def traceroute_batch(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        seq: int = 0,
        ledger: Optional[CreditLedger] = None,
        clock: Optional[SimClock] = None,
    ) -> Dict[str, Dict[int, Optional[TraceObservation]]]:
        """Traceroutes from every probe to every target, as one API batch.

        One measurement specification per target (all probes fan out in
        parallel), so a batch completes in ``ceil(targets / concurrency)``
        result waves rather than one wait per traceroute.

        Returns:
            ``{target_ip: {probe_id: observation-or-None}}``.

        Raises:
            AtlasApiError: when the fault layer fails the API call (the
                attempt has already been charged).
            CreditExhaustedError: when a ledger or account budget runs out.
        """
        window = self._fault_window(clock)
        index = self._fault_admission(
            CREDIT_COST_PER_TRACEROUTE * len(probe_ids) * len(target_ips)
        )
        self._charge_and_wait(
            len(probe_ids) * len(target_ips),
            CREDIT_COST_PER_TRACEROUTE,
            "traceroute",
            ledger,
            clock,
            ("trbatch-wait", seq, len(target_ips), len(probe_ids)),
            specs=len(target_ips),
        )
        self._fault_outcome("traceroute", index, clock)
        results = self.execute_traceroute_batch(probe_ids, target_ips, seq=seq, window=window)
        if self.obs.enabled:
            answered = sum(
                1
                for per_probe in results.values()
                for observation in per_probe.values()
                if observation is not None
            )
            self._obs_executed(
                "traceroute", clock, answered, len(probe_ids) * len(target_ips)
            )
        return results

    def execute_traceroute_batch(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        seq: int = 0,
        window: int = 0,
    ) -> Dict[str, Dict[int, Optional[TraceObservation]]]:
        """Batch traceroute execution only (see :meth:`execute_ping`)."""
        results: Dict[str, Dict[int, Optional[TraceObservation]]] = {}
        for target_ip in target_ips:
            target = self.world.try_host(target_ip)
            per_probe: Dict[int, Optional[TraceObservation]] = {}
            for probe_id in probe_ids:
                if target is None:
                    per_probe[probe_id] = None
                    continue
                self.probe_info(probe_id)  # validate
                if self._measurement_failed("traceroute", probe_id, target_ip, seq, window):
                    per_probe[probe_id] = None
                    continue
                source = self.world.host_by_id(probe_id)
                if not source.responsive:
                    per_probe[probe_id] = None  # disconnected probe
                    continue
                per_probe[probe_id] = self.latency.traceroute(source, target, seq=seq)
            results[target_ip] = per_probe
        return results

    # --- platform datasets -------------------------------------------------------

    def anchor_mesh(self) -> Tuple[List[int], np.ndarray]:
        """The anchor-to-anchor meshed ping measurements.

        RIPE Atlas continuously runs this mesh; it is a downloadable dataset
        rather than a user-paid measurement, so no ledger is involved. The
        matrix entry ``[i, j]`` is the min RTT from anchor i to anchor j
        (NaN on the diagonal).
        """
        if self._mesh_cache is None:
            anchors = [info for info in self.probe_infos() if info.is_anchor]
            ids = [info.probe_id for info in anchors]
            targets = [self.world.host_by_id(pid) for pid in ids]
            matrix = self.latency.min_rtt_matrix(ids, targets, seq=999)
            np.fill_diagonal(matrix, np.nan)
            self._mesh_cache = (ids, matrix)
        ids, matrix = self._mesh_cache
        return list(ids), matrix.copy()

    def seed_anchor_mesh(self, ids: Sequence[int], matrix: np.ndarray) -> None:
        """Install a precomputed anchor mesh (artifact-cache warm start).

        The mesh is a pure function of the world config, so replaying a
        cached copy is byte-identical to measuring it; subsequent
        :meth:`anchor_mesh` calls return the seeded data without touching
        the latency engine.
        """
        self._mesh_cache = (
            [int(anchor_id) for anchor_id in ids],
            np.array(matrix, dtype=float),
        )
