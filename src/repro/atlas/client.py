"""The client-side facade algorithms program against.

An :class:`AtlasClient` bundles the platform with a credit ledger and a
simulated clock, so that every geolocation technique implemented in
:mod:`repro.core` automatically accounts for what it would cost — in
credits and in wall-clock time — to run on the real RIPE Atlas.

Against a fault-injected platform (see :mod:`repro.faults`) this client is
*transparent*: typed :class:`~repro.errors.AtlasApiError` failures
propagate to the caller. Campaigns that should survive platform weather
wrap it in :class:`repro.atlas.resilient.ResilientClient`, which retries
with backoff and degrades failed calls to ``None``/NaN results.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.atlas.clock import SimClock
from repro.atlas.credits import CreditLedger
from repro.atlas.platform import AtlasPlatform, ProbeInfo
from repro.latency.model import TraceObservation


class AtlasClient:
    """A measurement session: platform access + cost accounting."""

    def __init__(
        self,
        platform: AtlasPlatform,
        ledger: Optional[CreditLedger] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.platform = platform
        # A fresh ledger reports through the platform's observer (credit
        # charges land in the same campaign stream as measurement events)
        # and inherits its invariant checker (conservation checks follow
        # the same arm switch as the physics checks).
        self.ledger = (
            ledger
            if ledger is not None
            else CreditLedger(observer=platform.obs, checker=platform.checker)
        )
        self.clock = clock if clock is not None else SimClock()

    @property
    def obs(self):
        """The campaign observer (the platform's; NullObserver by default)."""
        return self.platform.obs

    def with_clock(self, clock: SimClock) -> "AtlasClient":
        """A sibling client that charges time to a different clock.

        Credits keep accumulating on the shared ledger; the street level
        pipeline uses this to time each target independently while keeping
        one global credit total.
        """
        return AtlasClient(self.platform, ledger=self.ledger, clock=clock)

    # --- metadata ---------------------------------------------------------------

    def list_probes(self, anchors_only: bool = False) -> List[ProbeInfo]:
        """Vantage-point metadata (see :class:`ProbeInfo`)."""
        return self.platform.probe_infos(anchors_only=anchors_only)

    def probe(self, probe_id: int) -> ProbeInfo:
        """Metadata for one vantage point."""
        return self.platform.probe_info(probe_id)

    # --- measurements -----------------------------------------------------------

    def ping_from(
        self,
        probe_ids: Sequence[int],
        target_ip: str,
        packets: int = 3,
        seq: int = 0,
    ) -> Dict[int, Optional[float]]:
        """Ping one target from several probes (min RTT per probe)."""
        return self.platform.ping(
            probe_ids, target_ip, packets=packets, seq=seq, ledger=self.ledger, clock=self.clock
        )

    def ping_matrix(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        packets: int = 3,
        seq: int = 0,
    ) -> np.ndarray:
        """Campaign-scale ping matrix (probes x targets, NaN = no answer)."""
        return self.platform.ping_matrix(
            probe_ids, target_ips, packets=packets, seq=seq, ledger=self.ledger, clock=self.clock
        )

    def traceroute_from(
        self, probe_id: int, target_ip: str, seq: int = 0
    ) -> Optional[TraceObservation]:
        """One traceroute from a probe to a target."""
        return self.platform.traceroute(
            probe_id, target_ip, seq=seq, ledger=self.ledger, clock=self.clock
        )

    def traceroute_batch(
        self,
        probe_ids: Sequence[int],
        target_ips: Sequence[str],
        seq: int = 0,
    ):
        """Traceroutes from every probe to every target, in one API batch."""
        return self.platform.traceroute_batch(
            probe_ids, target_ips, seq=seq, ledger=self.ledger, clock=self.clock
        )

    def anchor_mesh(self):
        """The platform's anchor-mesh dataset (ids, min-RTT matrix)."""
        return self.platform.anchor_mesh()

    # --- accounting ---------------------------------------------------------------

    @property
    def credits_spent(self) -> int:
        """Credits consumed through this client's ledger."""
        return self.ledger.spent

    @property
    def measurements_run(self) -> int:
        """Total measurements issued through this client's ledger."""
        return self.ledger.measurement_count()
