"""RIPE Atlas credit accounting.

Running measurements on RIPE Atlas costs credits (one per ping packet,
a flat price per traceroute). The paper burned "hundreds of millions" of
credits and needed a specially upgraded account (§4.1.1); the ledger here
makes that cost visible and lets experiments enforce budgets, which is what
makes the §5.1.3 "cannot deploy the original VP selection algorithm"
analysis quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.check.invariants import NULL_CHECKER
from repro.errors import CreditExhaustedError
from repro.obs import events as _ev
from repro.obs.observer import NULL_OBSERVER

#: Credits charged per ping packet (RIPE Atlas pricing).
CREDIT_COST_PER_PING_PACKET = 1

#: Credits charged per traceroute measurement result.
CREDIT_COST_PER_TRACEROUTE = 30


@dataclass
class CreditLedger:
    """Tracks credits spent and measurement counts, with an optional budget.

    Attributes:
        budget: maximum credits that may be spent; ``None`` means unlimited
            (the paper's upgraded account behaves as effectively unlimited).
        observer: campaign observer notified of every accepted charge (a
            ``credit-charge`` event plus ``credits.*`` counters); the
            default :data:`~repro.obs.observer.NULL_OBSERVER` is free.
        checker: optional :class:`~repro.check.InvariantChecker`. When
            armed, the ledger keeps an independent shadow total per charge
            kind and verifies ``credits.conservation`` — total == sum of
            per-kind charges, inside the budget — after every accepted
            charge. The default :data:`~repro.check.NULL_CHECKER` is free.
    """

    budget: Optional[int] = None
    _spent: int = 0
    _counts: Dict[str, int] = field(default_factory=dict)
    observer: object = field(default=NULL_OBSERVER, repr=False, compare=False)
    checker: object = field(default=NULL_CHECKER, repr=False, compare=False)
    #: shadow per-kind credit totals, maintained only while a checker is
    #: armed — an independent accumulator the conservation check compares
    #: against ``_spent``.
    _kind_credits: Dict[str, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def spent(self) -> int:
        """Credits spent so far."""
        return self._spent

    @property
    def remaining(self) -> Optional[int]:
        """Credits left under the budget, or ``None`` when unlimited."""
        if self.budget is None:
            return None
        return self.budget - self._spent

    def can_afford(self, credits: int) -> bool:
        """Whether a charge of ``credits`` would fit the budget.

        Lets resilient callers stop retrying before a charge that is
        guaranteed to raise :class:`~repro.errors.CreditExhaustedError`.
        """
        if credits < 0:
            raise ValueError("credits must be non-negative")
        return self.budget is None or self._spent + credits <= self.budget

    def charge(self, credits: int, kind: str, count: int = 1) -> None:
        """Spend credits for ``count`` measurements of a kind.

        Raises:
            ValueError: on negative amounts.
            CreditExhaustedError: if the charge would exceed the budget
                (nothing is charged in that case).
        """
        if credits < 0 or count < 0:
            raise ValueError("credits and count must be non-negative")
        if self.budget is not None and self._spent + credits > self.budget:
            raise CreditExhaustedError(
                f"charge of {credits} credits exceeds budget "
                f"({self._spent}/{self.budget} spent)"
            )
        self._spent += credits
        self._counts[kind] = self._counts.get(kind, 0) + count
        if self.checker.enabled:
            self._kind_credits[kind] = self._kind_credits.get(kind, 0) + credits
            self.checker.check_ledger(
                self._spent,
                sum(self._kind_credits.values()),
                self.budget,
                f"ledger charge kind={kind}",
            )
        if self.observer.enabled:
            # No running total in the event: it is a prefix sum of the
            # ``credits`` fields (and would differ between a worker's
            # fork-local ledger and the serial campaign ledger, breaking
            # the byte-identity of merged parallel event streams).
            self.observer.event(
                _ev.CREDIT_CHARGE, kind=kind, credits=credits, count=count
            )
            self.observer.count("credits.spent", credits)
            self.observer.count(f"credits.{kind}", credits)

    def measurement_count(self, kind: Optional[str] = None) -> int:
        """Measurements recorded, for one kind or in total."""
        if kind is not None:
            return self._counts.get(kind, 0)
        return sum(self._counts.values())

    def counts(self) -> Dict[str, int]:
        """Copy of the per-kind measurement counts."""
        return dict(self._counts)
