"""Rate limiting against a simulated clock.

Two rate limits matter in the replication:

* the mapping service allowed roughly 8 concurrent/``per-second`` requests
  (§4.2.4), which dominates landmark discovery time;
* probes have probing-rate budgets of a few packets per second (§5.1.3),
  which is why the original million scale VP selection cannot be deployed.

:class:`SlidingWindowRateLimiter` charges waiting time to a
:class:`~repro.atlas.clock.SimClock` instead of sleeping, so experiments can
account for the time without actually spending it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.atlas.clock import SimClock
from repro.errors import ApiRateLimitError
from repro.obs import events as _ev
from repro.obs.observer import NULL_OBSERVER


class SlidingWindowRateLimiter:
    """At most ``max_requests`` per ``window_s`` seconds of simulated time."""

    def __init__(
        self,
        clock: SimClock,
        max_requests: int,
        window_s: float = 1.0,
        obs=NULL_OBSERVER,
    ) -> None:
        """Configure the limiter.

        Args:
            clock: the simulated clock charged for waits.
            max_requests: allowed requests per window; must be positive.
            window_s: window length in seconds; must be positive.
            obs: campaign observer; waits emit ``rate-limit-wait`` events
                and ``ratelimit.*`` counters.

        Raises:
            ValueError: on non-positive parameters.
        """
        if max_requests <= 0:
            raise ValueError(f"max_requests must be positive: {max_requests}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive: {window_s}")
        self._clock = clock
        self._max_requests = max_requests
        self._window_s = window_s
        self._recent: Deque[float] = deque()
        self.obs = obs

    def acquire(self, category: str = "rate-limit") -> float:
        """Take one request slot, advancing the clock if the window is full.

        Returns:
            Seconds waited (0 when a slot was free).
        """
        now = self._clock.now_s
        while self._recent and self._recent[0] <= now - self._window_s:
            self._recent.popleft()
        waited = 0.0
        if len(self._recent) >= self._max_requests:
            oldest = self._recent[0]
            waited = max(0.0, oldest + self._window_s - now)
            self._clock.advance(waited, category)
            now = self._clock.now_s
            while self._recent and self._recent[0] <= now - self._window_s:
                self._recent.popleft()
            if waited > 0.0 and self.obs.enabled:
                self.obs.event(
                    _ev.RATE_LIMIT_WAIT, t_s=now, category=category, waited_s=waited
                )
                self.obs.count("ratelimit.waits")
                self.obs.count("ratelimit.waited_s", waited)
        self._recent.append(now)
        return waited

    def would_wait(self) -> float:
        """Seconds :meth:`acquire` would block for right now (0 = free slot).

        Pure peek: neither the window bookkeeping nor the clock changes.
        """
        now = self._clock.now_s
        recent = [t for t in self._recent if t > now - self._window_s]
        if len(recent) < self._max_requests:
            return 0.0
        return max(0.0, recent[0] + self._window_s - now)

    def acquire_or_raise(self) -> None:
        """Take a slot only if one is free; otherwise fail like a 429.

        The non-blocking flavour used by resilient clients: instead of
        silently charging the clock, a full window raises
        :class:`~repro.errors.ApiRateLimitError` carrying the wait as
        ``retry_after_s``, so the caller's backoff policy decides what the
        wait costs.

        Raises:
            ApiRateLimitError: when the window is full.
        """
        wait = self.would_wait()
        if wait > 0.0:
            if self.obs.enabled:
                self.obs.event(
                    _ev.RATE_LIMIT_WAIT,
                    t_s=self._clock.now_s,
                    category="rate-limit-429",
                    waited_s=wait,
                )
                self.obs.count("ratelimit.rejections")
            raise ApiRateLimitError(
                f"rate limit window full; retry in {wait:.1f}s", retry_after_s=wait
            )
        self.acquire()
