"""A REST-like asynchronous measurement interface.

The real RIPE Atlas API is asynchronous: you POST a measurement
specification, receive a measurement id, and poll for results, which
arrive minutes later. The replication's §5.2.5 timing complaints are about
exactly this loop. :class:`MeasurementApi` reproduces that surface over
the synchronous platform:

* :meth:`create_ping` / :meth:`create_traceroute` return a measurement id
  immediately (charging only API overhead);
* :meth:`fetch_results` returns ``None`` until the simulated clock passes
  the measurement's completion time, then the results.

The higher-level :class:`~repro.atlas.client.AtlasClient` hides this loop;
use the API layer when modelling schedulers or reproducing the paper's
polling behaviour explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from repro import rand
from repro.atlas.clock import SimClock
from repro.atlas.credits import (
    CREDIT_COST_PER_PING_PACKET,
    CREDIT_COST_PER_TRACEROUTE,
    CreditLedger,
)
from repro.atlas.platform import API_OVERHEAD_S, RESULT_LATENCY_RANGE_S, AtlasPlatform
from repro.errors import MeasurementError
from repro.latency.model import TraceObservation
from repro.obs import events as _ev


class MeasurementStatus(enum.Enum):
    """Lifecycle of an asynchronous measurement."""

    SCHEDULED = "scheduled"
    DONE = "done"


@dataclass
class _PendingMeasurement:
    measurement_id: int
    kind: str
    probe_ids: List[int]
    target_ip: str
    packets: int
    seq: int
    ready_at_s: float
    #: churn window at schedule time — results reflect the probes that were
    #: online when the measurement actually ran, not when it was fetched.
    fault_window: int = 0
    results: Optional[object] = None


class MeasurementApi:
    """Asynchronous facade over the platform, driven by a simulated clock."""

    def __init__(
        self,
        platform: AtlasPlatform,
        clock: SimClock,
        ledger: Optional[CreditLedger] = None,
    ) -> None:
        self.platform = platform
        self.clock = clock
        self.obs = platform.obs
        self.ledger = (
            ledger if ledger is not None else CreditLedger(observer=platform.obs)
        )
        self._pending: Dict[int, _PendingMeasurement] = {}
        self._next_id = 1000000

    # --- creation ---------------------------------------------------------------

    def _schedule(
        self, kind: str, probe_ids: Sequence[int], target_ip: str, packets: int, seq: int
    ) -> int:
        """Validate, charge, and register a measurement.

        A measurement is counted against the ledger exactly once — here, at
        schedule time. :meth:`fetch_results` later delivers results through
        the platform's accounting-free ``execute_*`` path, so the sync
        (:class:`~repro.atlas.client.AtlasClient`) and async paths always
        report identical totals.

        Raises:
            AtlasApiError: when the fault layer fails the create call (the
                attempt has been charged — failed API calls are not free).
            CreditExhaustedError: when a ledger or account budget runs out.
        """
        for probe_id in probe_ids:
            self.platform.probe_info(probe_id)  # validate early, like the API
        faults = self.platform.faults
        window = 0
        index = None
        if faults is not None:
            window = faults.window_at(self.clock.now_s)
        if kind == "ping":
            credits = CREDIT_COST_PER_PING_PACKET * packets * len(probe_ids)
        else:
            credits = CREDIT_COST_PER_TRACEROUTE * len(probe_ids)
        if faults is not None:
            index = faults.next_call()
            faults.check_credits(credits)
        measurement_id = self._next_id
        self._next_id += 1
        if self.obs.enabled:
            self.obs.event(
                _ev.MEASUREMENT_SCHEDULED,
                t_s=self.clock.now_s,
                op=kind,
                measurements=len(probe_ids),
                specs=1,
                credits=credits,
                measurement_id=measurement_id,
            )
            self.obs.count(f"atlas.{kind}.measurements", len(probe_ids))
            self.obs.count("atlas.api_calls")
        self.ledger.charge(credits, kind, len(probe_ids))
        self.clock.advance(API_OVERHEAD_S, "atlas-api")
        if faults is not None:
            error = faults.api_error(f"create-{kind}", index)
            if error is not None:
                if error.cost_s > 0:
                    self.clock.advance(error.cost_s, "atlas-faults")
                raise error
        low, high = RESULT_LATENCY_RANGE_S
        latency = rand.uniform(("api-latency", measurement_id, target_ip), low, high)
        if faults is not None and index is not None:
            latency += faults.result_delay(f"create-{kind}", index)
        self._pending[measurement_id] = _PendingMeasurement(
            measurement_id=measurement_id,
            kind=kind,
            probe_ids=list(probe_ids),
            target_ip=target_ip,
            packets=packets,
            seq=seq,
            ready_at_s=self.clock.now_s + latency,
            fault_window=window,
        )
        return measurement_id

    def create_ping(
        self, probe_ids: Sequence[int], target_ip: str, packets: int = 3, seq: int = 0
    ) -> int:
        """Schedule a ping measurement; returns its measurement id."""
        return self._schedule("ping", probe_ids, target_ip, packets, seq)

    def create_traceroute(
        self, probe_ids: Sequence[int], target_ip: str, seq: int = 0
    ) -> int:
        """Schedule a traceroute measurement; returns its measurement id."""
        return self._schedule("traceroute", probe_ids, target_ip, 1, seq)

    # --- polling -----------------------------------------------------------------

    def status(self, measurement_id: int) -> MeasurementStatus:
        """Whether a measurement's results are available yet.

        Raises:
            MeasurementError: for unknown measurement ids.
        """
        pending = self._pending.get(measurement_id)
        if pending is None:
            raise MeasurementError(f"unknown measurement id {measurement_id}")
        if self.clock.now_s >= pending.ready_at_s:
            return MeasurementStatus.DONE
        return MeasurementStatus.SCHEDULED

    def fetch_results(
        self, measurement_id: int
    ) -> Optional[Union[Dict[int, Optional[float]], Dict[int, Optional[TraceObservation]]]]:
        """Results of a measurement, or ``None`` while still running.

        Ping measurements yield ``{probe_id: min_rtt_or_None}``; traceroute
        measurements yield ``{probe_id: observation_or_None}``.
        """
        pending = self._pending.get(measurement_id)
        if pending is None:
            raise MeasurementError(f"unknown measurement id {measurement_id}")
        if self.clock.now_s < pending.ready_at_s:
            return None
        if pending.results is None:
            # Delivery only: the measurement was counted and charged at
            # schedule time, so results come through the platform's
            # accounting-free execution path (no ledger, no API-fault
            # draws — churn and loss still apply, pinned to the window in
            # which the measurement ran).
            if pending.kind == "ping":
                pending.results = self.platform.execute_ping(
                    pending.probe_ids,
                    pending.target_ip,
                    packets=pending.packets,
                    seq=pending.seq,
                    window=pending.fault_window,
                )
            else:
                batch = self.platform.execute_traceroute_batch(
                    pending.probe_ids,
                    [pending.target_ip],
                    seq=pending.seq,
                    window=pending.fault_window,
                )
                pending.results = batch[pending.target_ip]
            if self.obs.enabled:
                answered = sum(
                    1 for value in pending.results.values() if value is not None
                )
                self.obs.event(
                    _ev.MEASUREMENT_EXECUTED,
                    t_s=self.clock.now_s,
                    op=pending.kind,
                    answered=answered,
                    total=len(pending.results),
                    measurement_id=measurement_id,
                )
                self.obs.count(f"atlas.{pending.kind}.answered", answered)
                self.obs.count(
                    f"atlas.{pending.kind}.silent", len(pending.results) - answered
                )
        return pending.results

    def wait(self, measurement_id: int) -> object:
        """Advance the clock to a measurement's completion and return results.

        The blocking-poll pattern the paper's tooling uses: "it generally
        takes a few minutes to get the results of a measurement".
        """
        pending = self._pending.get(measurement_id)
        if pending is None:
            raise MeasurementError(f"unknown measurement id {measurement_id}")
        remaining = pending.ready_at_s - self.clock.now_s
        if remaining > 0:
            self.clock.advance(remaining, "atlas-api")
        return self.fetch_results(measurement_id)

    def pending_count(self) -> int:
        """Measurements scheduled but not yet complete at the current time."""
        return sum(
            1
            for pending in self._pending.values()
            if self.clock.now_s < pending.ready_at_s
        )
