"""Deterministic, order-independent randomness.

The simulation must be reproducible regardless of the order in which
measurements are issued: pinging target B before target A must not change
either RTT. We therefore derive every random quantity from a *key* (a tuple
of strings/ints naming the quantity, e.g. ``("rtt-noise", probe_id,
target_ip, attempt)``) via a SplitMix64-style hash, instead of drawing from a
shared stateful generator.

Two interfaces are provided:

* scalar helpers (:func:`key_hash`, :func:`uniform`, :func:`normal`, ...)
  for one-off draws;
* :func:`bulk_uniform` / :func:`bulk_normal` for vectorised draws over numpy
  arrays of integer subkeys, used by the bulk ping engine.

The scalar and bulk paths use the same mixing function, so
``bulk_uniform(seed, ids)[i] == uniform((seed, int(ids[i])))`` — this
equivalence is property-tested.
"""

from __future__ import annotations

import math
from typing import Tuple, Union

import numpy as np

KeyPart = Union[int, str, bytes, float]
Key = Union[KeyPart, Tuple[KeyPart, ...]]

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """One round of the SplitMix64 finalizer over a 64-bit integer."""
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def _part_to_int(part) -> int:
    """Map a single key part to a 64-bit integer deterministically.

    Tuples are allowed as parts (keys nest freely): they hash via
    :func:`key_hash`.
    """
    if isinstance(part, tuple):
        return key_hash(part)
    if isinstance(part, bool):  # bool is an int subclass; keep it distinct
        return 0xB001 + int(part)
    if isinstance(part, int):
        return part & _MASK64
    if isinstance(part, float):
        return hash_bytes(repr(part).encode("ascii"))
    if isinstance(part, str):
        return hash_bytes(part.encode("utf-8"))
    if isinstance(part, bytes):
        return hash_bytes(part)
    raise TypeError(f"unsupported key part type: {type(part).__name__}")


def hash_bytes(data: bytes) -> int:
    """Hash a byte string to a 64-bit integer (FNV-1a then SplitMix64)."""
    h = 0xCBF29CE484222325
    for byte in data:
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return _splitmix64(h)


def key_hash(key: Key) -> int:
    """Hash an arbitrary key (scalar or tuple of parts) to 64 bits.

    Tuples are folded part by part, so ``("a", 1)`` and ``("a", 2)`` produce
    unrelated values, and nesting order matters.
    """
    if isinstance(key, tuple):
        h = 0x5EED0FAB12345678
        for part in key:
            h = _splitmix64(h ^ _part_to_int(part))
        return h
    return _splitmix64(0x5EED0FAB12345678 ^ _part_to_int(key))


def uniform(key: Key, low: float = 0.0, high: float = 1.0) -> float:
    """Deterministic uniform draw in ``[low, high)`` for the given key."""
    fraction = (key_hash(key) >> 11) * (1.0 / (1 << 53))
    return low + (high - low) * fraction


def normal(key: Key, mean: float = 0.0, std: float = 1.0) -> float:
    """Deterministic normal draw via Box-Muller on two derived uniforms."""
    u1 = uniform((key_hash(key), 0xA))
    u2 = uniform((key_hash(key), 0xB))
    u1 = max(u1, 1e-12)
    z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
    return mean + std * z


def exponential(key: Key, mean: float = 1.0) -> float:
    """Deterministic exponential draw with the given mean."""
    u = max(uniform(key), 1e-12)
    return -mean * math.log(u)


def lognormal(key: Key, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Deterministic log-normal draw: ``exp(N(mu, sigma))``."""
    return math.exp(normal(key, mu, sigma))


def randint(key: Key, low: int, high: int) -> int:
    """Deterministic integer draw in ``[low, high)``."""
    if high <= low:
        raise ValueError(f"empty range [{low}, {high})")
    return low + key_hash(key) % (high - low)


def chance(key: Key, probability: float) -> bool:
    """Deterministic Bernoulli draw: True with the given probability."""
    return uniform(key) < probability


def generator(key: Key) -> np.random.Generator:
    """A numpy Generator seeded from the key, for bulk sequential draws.

    Use this only when the *set* of draws is keyed (e.g. "all city positions
    of country X"), so order-independence is preserved at the key level.
    """
    return np.random.default_rng(key_hash(key))


# --- vectorised keyed draws -------------------------------------------------


def _bulk_splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorised SplitMix64 finalizer over a uint64 array."""
    with np.errstate(over="ignore"):
        x = (x + np.uint64(_GOLDEN)).astype(np.uint64)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(_MIX1)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(_MIX2)
        return x ^ (x >> np.uint64(31))


def bulk_hash(base_key: Key, subkeys: np.ndarray) -> np.ndarray:
    """Hash an integer array of subkeys under a base key, vectorised.

    Equivalent to ``[key_hash((*base, int(s))) for s in subkeys]`` when
    ``base_key`` is a tuple (or ``key_hash((base, int(s)))`` for scalars),
    but computed with numpy uint64 arithmetic.
    """
    if isinstance(base_key, tuple):
        h0 = 0x5EED0FAB12345678
        for part in base_key:
            h0 = _splitmix64(h0 ^ _part_to_int(part))
    else:
        # Match key_hash((base_key, s)) folding.
        h0 = _splitmix64(0x5EED0FAB12345678 ^ _part_to_int(base_key))
    sub = np.asarray(subkeys, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return _bulk_splitmix64(np.uint64(h0) ^ sub)


def bulk_uniform(
    base_key: Key, subkeys: np.ndarray, low: float = 0.0, high: float = 1.0
) -> np.ndarray:
    """Vectorised uniform draws in ``[low, high)``, one per subkey."""
    hashed = bulk_hash(base_key, subkeys)
    fraction = (hashed >> np.uint64(11)).astype(np.float64) * (1.0 / (1 << 53))
    return low + (high - low) * fraction


def bulk_normal(
    base_key: Key, subkeys: np.ndarray, mean: float = 0.0, std: float = 1.0
) -> np.ndarray:
    """Vectorised normal draws via Box-Muller, one per subkey."""
    hashed = bulk_hash(base_key, subkeys)
    u1 = np.maximum(bulk_uniform(0xA, hashed), 1e-12)
    u2 = bulk_uniform(0xB, hashed)
    z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
    return mean + std * z


def bulk_exponential(base_key: Key, subkeys: np.ndarray, mean: float = 1.0) -> np.ndarray:
    """Vectorised exponential draws with the given mean, one per subkey."""
    u = np.maximum(bulk_uniform(base_key, subkeys), 1e-12)
    return -mean * np.log(u)


def bulk_lognormal(
    base_key: Key, subkeys: np.ndarray, mu: float = 0.0, sigma: float = 1.0
) -> np.ndarray:
    """Vectorised log-normal draws, one per subkey."""
    return np.exp(bulk_normal(base_key, subkeys, mu, sigma))


def pair_key(a: int, b: int) -> int:
    """Fold two 64-bit integers into one subkey for per-pair draws."""
    return _splitmix64((a & _MASK64) ^ _splitmix64(b & _MASK64))


def bulk_pair_key(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorised :func:`pair_key` over aligned integer arrays."""
    a_arr = np.asarray(a, dtype=np.uint64)
    b_arr = np.asarray(b, dtype=np.uint64)
    with np.errstate(over="ignore"):
        return _bulk_splitmix64(a_arr ^ _bulk_splitmix64(b_arr))
