"""RTT and traceroute simulation.

Delay decomposition for one probe packet from host A to host B::

    rtt = 2 * path_km(A, B) * fiber(A, B) / SOI_KM_PER_MS   # propagation
        + last_mile(A) + last_mile(B)                        # access links
        + jitter                                             # queueing

* ``path_km`` is the routed (waypoint) distance from :class:`Topology`,
  always >= the direct great-circle distance;
* ``fiber`` is a per-pair factor in ``[fiber_min, fiber_max]`` modelling
  cable slack and slower segments (symmetric, stable across measurements);
* ``jitter`` is exponential per packet; a ping takes the minimum over its
  packets, as real measurement platforms report.

Traceroute hop timestamps add two extra noise terms observed in practice:
Gaussian interface noise, and occasional large "ICMP slow path" spikes on
intermediate routers (control-plane rate limiting). These spikes are what
makes the street level D1+D2 delay differences noisy and often negative
(paper §5.2.3, Figure 6a, and appendix B).

Scalar and bulk paths share keys and formulas: ``bulk_min_rtt`` returns
exactly what per-pair :meth:`LatencyModel.ping` calls would (property-
tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import rand
from repro.check.invariants import NULL_CHECKER
from repro.geo.coords import bulk_haversine_km
from repro.latency.speed import SOI_KM_PER_MS
from repro.topology.graph import HostNetParams, Topology
from repro.topology.routing import build_route
from repro.world.hosts import Host
from repro.world.world import World


@dataclass(frozen=True)
class PingObservation:
    """Result of one ping measurement (a burst of packets).

    Attributes:
        src_ip: pinger address.
        dst_ip: target address.
        rtts_ms: per-packet RTTs; ``None`` entries are lost packets.
        min_rtt_ms: minimum over received packets; ``None`` if none came
            back (lost or unresponsive target).
    """

    src_ip: str
    dst_ip: str
    rtts_ms: Tuple[Optional[float], ...]
    min_rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        """Whether at least one packet came back."""
        return self.min_rtt_ms is not None


@dataclass(frozen=True)
class TraceHop:
    """One traceroute hop: the responding address and its RTT."""

    ip: str
    rtt_ms: float


@dataclass(frozen=True)
class TraceObservation:
    """Result of one traceroute measurement."""

    src_ip: str
    dst_ip: str
    hops: Tuple[TraceHop, ...]
    reached: bool

    def rtt_to(self, hop_ip: str) -> Optional[float]:
        """RTT of the first hop with a given address, if present."""
        for hop in self.hops:
            if hop.ip == hop_ip:
                return hop.rtt_ms
        return None

    @property
    def destination_rtt_ms(self) -> Optional[float]:
        """RTT of the destination hop, if the destination answered."""
        if self.reached and self.hops:
            return self.hops[-1].rtt_ms
        return None


class LatencyModel:
    """Computes what measurements between world hosts observe.

    Args:
        world: the simulated world.
        topology: the routing topology over it.
        checker: optional :class:`~repro.check.InvariantChecker`. When
            armed, every produced measurement is verified against the
            physics invariants (``rtt.soi_bound`` on ping paths,
            ``trace.hop_delta`` plus the destination SOI bound on
            traceroutes). The default :data:`~repro.check.NULL_CHECKER`
            costs one attribute read per call.
    """

    def __init__(
        self, world: World, topology: Topology, checker=NULL_CHECKER
    ) -> None:
        self.world = world
        self.topology = topology
        self.checker = checker
        config = world.config
        self._fiber_min = config.fiber_factor_min
        self._fiber_span = config.fiber_factor_max - config.fiber_factor_min
        self._jitter_mean = config.jitter_mean_ms
        self._loss_rate = config.packet_loss_rate
        self._hop_noise_std = config.hop_noise_std_ms
        self._spike_probability = config.hop_spike_probability
        self._spike_mean = config.hop_spike_mean_ms
        self._seed = config.seed

    # --- shared delay components -------------------------------------------

    def fiber_factor(self, a_id: int, b_id: int) -> float:
        """Per-pair propagation slowdown factor (symmetric, stable)."""
        low, high = (a_id, b_id) if a_id <= b_id else (b_id, a_id)
        pk = rand.pair_key(low, high)
        return self._fiber_min + self._fiber_span * rand.uniform(("fiber", pk))

    def base_rtt_ms(self, src: HostNetParams, dst: HostNetParams) -> float:
        """Deterministic part of the RTT (no jitter, no loss)."""
        path = self.topology.path_km(src, dst)
        fiber = self.fiber_factor(src.host_id, dst.host_id)
        return (
            2.0 * path * fiber / SOI_KM_PER_MS + src.last_mile_ms + dst.last_mile_ms
        )

    # --- ping ------------------------------------------------------------------

    def ping(
        self, src: Host, dst: Host, packets: int = 3, seq: int = 0
    ) -> PingObservation:
        """Simulate a ping burst from ``src`` to ``dst``.

        Args:
            src: pinging host.
            dst: target host; if unresponsive, every packet times out.
            packets: burst size (RIPE Atlas default is 3).
            seq: measurement sequence number; distinct values give
                independent jitter (repeated measurements).
        """
        if packets < 1:
            raise ValueError(f"packets must be positive: {packets}")
        if not dst.responsive:
            return PingObservation(src.ip, dst.ip, (None,) * packets, None)
        base = self.base_rtt_ms(
            self.topology.params_for(src), self.topology.params_for(dst)
        )
        low, high = sorted((src.host_id, dst.host_id))
        pk = rand.pair_key(low, high)
        rtts: List[Optional[float]] = []
        for packet in range(packets):
            if rand.uniform(("loss", seq, packet, pk)) < self._loss_rate:
                rtts.append(None)
                continue
            jitter = -self._jitter_mean * math.log(
                max(rand.uniform(("jit", seq, packet, pk)), 1e-12)
            )
            rtts.append(base + jitter)
        received = [rtt for rtt in rtts if rtt is not None]
        if self.checker.enabled and received:
            self.checker.check_soi_bound(
                received,
                src.true_location.distance_km(dst.true_location),
                f"ping {src.ip}->{dst.ip} seq={seq}",
            )
        return PingObservation(
            src.ip, dst.ip, tuple(rtts), min(received) if received else None
        )

    def bulk_min_rtt(
        self,
        src_host_ids: np.ndarray,
        dst: Host,
        packets: int = 3,
        seq: int = 0,
    ) -> np.ndarray:
        """Vectorised ping: min RTT from many *static* hosts to one host.

        Returns NaN where the target did not answer (unresponsive target or
        all packets lost). Numerically identical to calling :meth:`ping`
        per source with the same ``packets`` and ``seq``.
        """
        src_ids = np.asarray(src_host_ids, dtype=np.int64)
        count = src_ids.shape[0]
        if not dst.responsive:
            return np.full(count, np.nan)

        topo = self.topology
        dst_params = topo.params_for(dst)
        path = topo.bulk_path_km(
            topo.host_tail_km[src_ids],
            topo.host_uplink_km[src_ids],
            topo.host_hub_index[src_ids],
            self.world.host_city_ids[src_ids],
            self.world.host_asns[src_ids],
            dst_params,
        )
        low = np.minimum(src_ids, dst.host_id).astype(np.uint64)
        high = np.maximum(src_ids, dst.host_id).astype(np.uint64)
        pk = rand.bulk_pair_key(low, high)
        fiber = self._fiber_min + self._fiber_span * rand.bulk_uniform("fiber", pk)
        base = (
            2.0 * path * fiber / SOI_KM_PER_MS
            + self.world.host_last_mile[src_ids]
            + dst_params.last_mile_ms
        )
        best = np.full(count, np.nan)
        for packet in range(packets):
            lost = rand.bulk_uniform(("loss", seq, packet), pk) < self._loss_rate
            jitter = -self._jitter_mean * np.log(
                np.maximum(rand.bulk_uniform(("jit", seq, packet), pk), 1e-12)
            )
            rtt = np.where(lost, np.nan, base + jitter)
            best = np.fmin(best, rtt)
        if self.checker.enabled:
            self.checker.check_soi_bound(
                best,
                bulk_haversine_km(
                    self.world.host_true_lats[src_ids],
                    self.world.host_true_lons[src_ids],
                    dst.true_location.lat,
                    dst.true_location.lon,
                ),
                f"bulk_min_rtt dst={dst.ip} seq={seq}",
            )
        return best

    # --- traceroute -----------------------------------------------------------

    def traceroute(self, src: Host, dst: Host, seq: int = 0) -> TraceObservation:
        """Simulate a traceroute from ``src`` to ``dst``.

        Intermediate hops answer with ICMP TTL-exceeded, whose timestamps
        carry Gaussian noise plus occasional slow-path spikes; the
        destination answers like a ping packet. An unresponsive destination
        yields ``reached=False`` with the router hops still present.
        """
        src_params = self.topology.params_for(src)
        dst_params = self.topology.params_for(dst)
        route = build_route(self.topology, src_params, dst_params, src.ip, dst.ip)
        fiber = self.fiber_factor(src.host_id, dst.host_id)
        low, high = sorted((src.host_id, dst.host_id))
        pk = rand.pair_key(low, high)

        hops: List[TraceHop] = []
        for index, hop in enumerate(route.hops):
            is_destination = index == len(route.hops) - 1
            propagation = 2.0 * hop.cumulative_km * fiber / SOI_KM_PER_MS
            if is_destination:
                if not dst.responsive:
                    self._check_trace(src, dst, seq, hops, destination_rtt=None)
                    return TraceObservation(src.ip, dst.ip, tuple(hops), reached=False)
                jitter = -self._jitter_mean * math.log(
                    max(rand.uniform(("jit", seq, 0, pk)), 1e-12)
                )
                rtt = propagation + src_params.last_mile_ms + dst_params.last_mile_ms + jitter
            else:
                noise = rand.normal(
                    ("hopnoise", seq, index, pk), 0.0, self._hop_noise_std
                )
                spike = 0.0
                if rand.uniform(("spike", seq, index, pk)) < self._spike_probability:
                    spike = -self._spike_mean * math.log(
                        max(rand.uniform(("spikemag", seq, index, pk)), 1e-12)
                    )
                rtt = max(
                    propagation + src_params.last_mile_ms + noise + spike, 0.01
                )
            hops.append(TraceHop(hop.ip, rtt))
        self._check_trace(
            src, dst, seq, hops, destination_rtt=hops[-1].rtt_ms if hops else None
        )
        return TraceObservation(src.ip, dst.ip, tuple(hops), reached=True)

    def _check_trace(
        self,
        src: Host,
        dst: Host,
        seq: int,
        hops: List[TraceHop],
        destination_rtt: Optional[float],
    ) -> None:
        """Armed-checker verification of one traceroute's hop sequence."""
        if not self.checker.enabled or not hops:
            return
        context = f"traceroute {src.ip}->{dst.ip} seq={seq}"
        self.checker.check_trace_hops([hop.rtt_ms for hop in hops], context)
        if destination_rtt is not None:
            # The destination hop is a full round trip and must respect
            # the same physics floor as a ping.
            self.checker.check_soi_bound(
                destination_rtt,
                src.true_location.distance_km(dst.true_location),
                context,
            )

    # --- convenience -----------------------------------------------------------

    def min_rtt_matrix(
        self,
        src_host_ids: Sequence[int],
        dst_hosts: Sequence[Host],
        packets: int = 3,
        seq: int = 0,
    ) -> np.ndarray:
        """Min-RTT matrix (sources x targets); NaN marks missing responses."""
        src_ids = np.asarray(list(src_host_ids), dtype=np.int64)
        matrix = np.empty((src_ids.shape[0], len(dst_hosts)))
        for column, dst in enumerate(dst_hosts):
            matrix[:, column] = self.bulk_min_rtt(src_ids, dst, packets=packets, seq=seq)
        return matrix
