"""Time/distance conversion helpers for the latency model."""

from __future__ import annotations

from repro.constants import SOI_FRACTION_CBG, SPEED_OF_LIGHT_KM_S


def km_per_ms(soi_fraction: float) -> float:
    """Kilometres covered in one millisecond at a light-speed fraction.

    Raises:
        ValueError: if the fraction is not in (0, 1].
    """
    if not 0.0 < soi_fraction <= 1.0:
        raise ValueError(f"speed fraction must be in (0, 1]: {soi_fraction}")
    return soi_fraction * SPEED_OF_LIGHT_KM_S / 1000.0


#: Propagation speed the simulator uses for signals in fibre (2/3 c), in
#: km/ms. Per-pair fibre factors >= 1 slow paths further, so converting RTTs
#: back to distance at 2/3 c always over-estimates — keeping CBG constraint
#: circles valid, as in the real Internet.
SOI_KM_PER_MS = km_per_ms(SOI_FRACTION_CBG)
