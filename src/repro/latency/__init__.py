"""The latency substrate: RTT and traceroute simulation.

See :mod:`repro.latency.model` for the delay decomposition and
:mod:`repro.latency.speed` for time/distance conversions.
"""

from repro.latency.model import LatencyModel, PingObservation, TraceHop, TraceObservation
from repro.latency.speed import SOI_KM_PER_MS, km_per_ms

__all__ = [
    "LatencyModel",
    "PingObservation",
    "TraceHop",
    "TraceObservation",
    "SOI_KM_PER_MS",
    "km_per_ms",
]
