"""Physical and protocol constants shared across the library.

The replicated papers convert round-trip times into great-circle distance
bounds using a fixed fraction of the speed of light in vacuum:

* the million scale paper (Hu et al., IMC 2012) and the sanitizing process of
  the replication use ``2/3 c``, the classic "speed of Internet" from CBG
  (Gueye et al.);
* the street level paper (Wang et al., NSDI 2011) uses the more aggressive
  ``4/9 c``, which the replication keeps for tiers 1-3 (with a ``2/3 c``
  fallback for the 5 targets whose ``4/9 c`` circles do not intersect).
"""

from __future__ import annotations

#: Speed of light in vacuum, in kilometres per second.
SPEED_OF_LIGHT_KM_S = 299_792.458

#: The classic CBG "speed of Internet": data travels at most at 2/3 c.
SOI_FRACTION_CBG = 2.0 / 3.0

#: The street level paper's more aggressive conversion factor (4/9 c).
SOI_FRACTION_STREET_LEVEL = 4.0 / 9.0

#: Mean Earth radius in kilometres (IUGG).
EARTH_RADIUS_KM = 6371.0088

#: Half the Earth's circumference (pi * mean radius): the largest possible
#: great-circle distance between two points.
MAX_GREAT_CIRCLE_KM = 20_015.115

#: The paper's city-level accuracy threshold (Section 5.1.1, citing [26]).
CITY_LEVEL_KM = 40.0

#: The paper's street-level accuracy threshold (Section 5.2.1).
STREET_LEVEL_KM = 1.0

#: Minimum answering vantage points for a *trustworthy* CBG region under
#: degraded conditions. One or two circles technically intersect, but the
#: centroid is then dominated by a single measurement; robustness-aware
#: campaigns refuse to emit an estimate below this floor.
MIN_USABLE_VPS = 3


def rtt_to_distance_km(rtt_ms: float, soi_fraction: float = SOI_FRACTION_CBG) -> float:
    """Convert a round-trip time to a maximum great-circle distance.

    The one-way delay is at most ``rtt / 2``; at a propagation speed of
    ``soi_fraction * c`` the target is at most
    ``(rtt / 2) * soi_fraction * c`` kilometres away from the vantage point.

    Args:
        rtt_ms: round-trip time in milliseconds. Must be non-negative.
        soi_fraction: fraction of the speed of light assumed for propagation.

    Returns:
        The maximum distance in kilometres, capped at half the Earth's
        circumference (a larger bound constrains nothing on a sphere).

    Raises:
        ValueError: if ``rtt_ms`` is negative.
    """
    if rtt_ms < 0:
        raise ValueError(f"RTT must be non-negative, got {rtt_ms}")
    distance = (rtt_ms / 1000.0 / 2.0) * soi_fraction * SPEED_OF_LIGHT_KM_S
    return min(distance, MAX_GREAT_CIRCLE_KM)


def distance_to_min_rtt_ms(
    distance_km: float, soi_fraction: float = SOI_FRACTION_CBG
) -> float:
    """Return the smallest physically possible RTT over a given distance.

    This is the inverse of :func:`rtt_to_distance_km`: light in fibre covers
    ``distance_km`` one way in ``distance / (soi_fraction * c)`` seconds, and
    the RTT is twice that.

    Args:
        distance_km: great-circle distance in kilometres. Must be non-negative.
        soi_fraction: fraction of the speed of light assumed for propagation.

    Returns:
        The minimum RTT in milliseconds.

    Raises:
        ValueError: if ``distance_km`` is negative.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    return 2.0 * distance_km / (soi_fraction * SPEED_OF_LIGHT_KM_S) * 1000.0
