"""Process-pool campaign executor with a byte-identical serial fallback.

Campaign experiments decompose into independent work items — Figure 2
trials, street-level targets — whose randomness is counter-keyed
(:mod:`repro.rand`), so each item's result depends only on its own
descriptor, never on execution order. That makes fan-out safe: a parallel
run must produce byte-identical results to the serial path, and the
determinism suite (``tests/test_exec.py``) pins it.

Workers come from the ``REPRO_WORKERS`` environment variable (unset, "",
"0" or "1" → serial; a positive integer → that many processes; ``auto`` →
CPU count; anything else, including negative integers, raises). The pool
uses the ``fork`` start method, so workers inherit the parent's scenario
arrays by memory sharing instead of pickling multi-megabyte matrices per
item; on platforms without ``fork`` the executor silently degrades to the
serial path, which computes the same bytes.

Observed campaigns fan out too: pass the campaign observer via ``obs=``
and each work item runs inside a worker-side
:class:`~repro.obs.snapshot.CaptureScope`, returning ``(result,
snapshot)`` over the pipe. The parent merges the snapshots
(:func:`~repro.obs.snapshot.merge_snapshots`, ordered by stable item
index) and folds them into its live observer — metrics, event stream, and
span tree come out byte-identical to a serial observed run (pinned by
``tests/test_obs_distributed.py``).

The *operational* telemetry plane fans out the same way: pass a
:class:`~repro.obs.live.LiveTelemetry` via ``live=`` and each item's
wall-clock runtime is captured worker-side as a
:class:`~repro.obs.live.LiveSnapshot` (an ``exec.item_s`` latency sketch
plus an ``exec.items`` counter), merged associatively in the parent
(:func:`~repro.obs.live.merge_live_snapshots`). Wall timings never touch
``obs`` — the deterministic streams stay byte-identical with the live
plane on or off (pinned by ``tests/test_serve_live.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def worker_count() -> int:
    """Worker processes requested via ``REPRO_WORKERS`` (default serial).

    Returns:
        1 when the variable is unset/empty/"0"/"1" (serial execution),
        the CPU count for ``auto``, otherwise the parsed integer.

    Raises:
        ValueError: when the variable is set to something unintelligible
            or to a negative integer — a silent fall-back to serial would
            hide a misconfigured campaign host.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if raw in ("", "0", "1"):
        return 1
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        count = int(raw)
    except ValueError:
        raise ValueError(f"unintelligible REPRO_WORKERS value: {raw!r}") from None
    if count < 0:
        raise ValueError(f"REPRO_WORKERS must be non-negative, got {count}")
    return max(1, count)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start-method context, or ``None`` when unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def chunked(items: Sequence[T], size: int) -> List[List[T]]:
    """Split ``items`` into order-preserving chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def default_chunksize(n_items: int, workers: int) -> int:
    """Work-descriptor chunk size balancing dispatch overhead vs skew.

    Four chunks per worker keeps the tail short while amortising IPC;
    identical results regardless of the value (items are independent).
    """
    return max(1, n_items // max(1, workers * 4))


#: Shared (fn, observer) for the observed-item wrapper; populated in the
#: parent immediately before the pool forks, so workers inherit it.
_OBSERVED_CTX: Dict[str, object] = {}

#: Arena token pinned by :func:`arena_context` in the parent immediately
#: before a pool forks; forked workers inherit the (tiny) token and attach
#: to the shared segment on first use instead of COW-inheriting the hot
#: world arrays through dirty pages.
_ARENA_TOKEN: Optional[object] = None

#: Worker-side attachment cache: one mapping per segment per process.
_ATTACHED_ARENAS: Dict[str, Tuple[object, object]] = {}


class arena_context:
    """Pin a shared-memory arena token for the next ``parallel_map``.

    Usage (parent side)::

        arrays = WorldArrays.from_topology(topology)
        with arrays.share() as arena, arena_context(arena.token):
            parallel_map(fn, items)

    Work functions call :func:`attached_world_arrays` to get the published
    :class:`~repro.world.arrays.WorldArrays` — in a forked worker that
    attaches the shared segment (no copies, reads never dirty a page); in
    the serial path it attaches the very same segment in-process, so both
    paths read identical bytes. Re-entrant tokens nest (the previous token
    is restored on exit).
    """

    def __init__(self, token) -> None:
        self._token = token
        self._previous: Optional[object] = None

    def __enter__(self) -> "arena_context":
        global _ARENA_TOKEN
        self._previous = _ARENA_TOKEN
        _ARENA_TOKEN = self._token
        return self

    def __exit__(self, *exc) -> None:
        global _ARENA_TOKEN
        _ARENA_TOKEN = self._previous


def attached_world_arrays():
    """The :class:`~repro.world.arrays.WorldArrays` behind the pinned token.

    Returns ``None`` when no token is pinned or the platform has no shared
    memory (callers fall back to their in-process arrays — the serial
    degrade computes the same bytes). Attachment is cached per process:
    the first call in a worker maps the segment, later calls are free.
    """
    if _ARENA_TOKEN is None:
        return None
    cached = _ATTACHED_ARENAS.get(_ARENA_TOKEN.segment)
    if cached is None:
        from repro.world.arrays import WorldArrays, arena_supported

        if not arena_supported():  # pragma: no cover - POSIX containers
            return None
        try:
            arrays, arena = WorldArrays.attach(_ARENA_TOKEN)
        except FileNotFoundError:
            return None
        cached = (arrays, arena)
        _ATTACHED_ARENAS[_ARENA_TOKEN.segment] = cached
    return cached[0]


def _observed_item(pair: Tuple[int, T]):
    """Run one work item under worker-side capture.

    Returns ``(result, snapshot)``; the snapshot carries everything the
    item recorded on the campaign observer, tagged with the item's stable
    index so the parent-side merge reproduces serial emission order.
    """
    from repro.obs.snapshot import CaptureScope

    index, item = pair
    with CaptureScope(_OBSERVED_CTX["obs"], index) as scope:
        result = _OBSERVED_CTX["fn"](item)
    return result, scope.snapshot


#: Shared inner callable for the live-item wrapper; populated next to
#: :data:`_OBSERVED_CTX` before the pool forks.
_LIVE_CTX: Dict[str, object] = {}


def _live_item(pair: Tuple[int, T]):
    """Run one work item under worker-side wall-clock capture.

    Wraps either the plain work function or :func:`_observed_item`
    (``_LIVE_CTX["observed"]`` picks the calling convention) and returns
    ``(inner_result, live_snapshot)``: a one-item
    :class:`~repro.obs.live.LiveSnapshot` carrying the item's runtime.
    Snapshot merge is associative, so the parent's totals match a serial
    run's regardless of chunking or completion order.
    """
    from repro.obs.live import LatencySketch, LiveSnapshot

    inner = _LIVE_CTX["inner"]
    started = time.perf_counter()
    result = inner(pair) if _LIVE_CTX["observed"] else inner(pair[1])
    elapsed = time.perf_counter() - started
    sketch = LatencySketch()
    sketch.add(elapsed)
    return result, LiveSnapshot(
        counters=(("exec.items", 1),), sketches=(("exec.item_s", sketch),)
    )


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    obs=None,
    checker=None,
    live=None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    Args:
        fn: a module-level callable (picklable by reference). Any large
            shared state must already live in module globals before the
            call, so forked workers inherit it.
        items: work descriptors; materialised to a list.
        workers: process count; defaults to :func:`worker_count`.
        chunksize: descriptors per dispatch; defaults to
            :func:`default_chunksize`.
        obs: optional campaign :class:`~repro.obs.Observer`. When enabled
            and the run is parallel, each item is captured worker-side and
            the merged snapshot is absorbed into this observer after the
            map — the serial path records on it live, as always. A
            :class:`~repro.obs.NullObserver` (or ``None``) costs nothing.
        checker: optional :class:`~repro.check.InvariantChecker`. When
            armed and the run actually forked, the first item is re-run
            serially in the parent afterwards and compared against the
            worker's result (``exec.item_parity``) — a spot check that the
            fork inherited identical campaign state. The re-run's
            observability is captured and discarded so the live streams
            stay byte-identical to an unchecked run.
        live: optional :class:`~repro.obs.live.LiveTelemetry`. When
            enabled, every item's wall-clock runtime lands in the plane's
            ``exec.item_s`` sketch (captured worker-side and merged for
            parallel runs, timed inline for serial ones). Never touches
            ``obs``.

    Returns:
        ``[fn(item) for item in items]`` — by construction in the serial
        path, and byte-identically in the parallel one (pinned by the
        determinism tests). With ``obs=``, the observer's final state is
        byte-identical between the two paths as well.
    """
    work = list(items)
    if workers is None:
        workers = worker_count()
    workers = min(workers, len(work))
    context = _fork_context()
    live_on = live is not None and getattr(live, "enabled", False)
    if workers <= 1 or context is None:
        if not live_on:
            return [fn(item) for item in work]
        results = []
        for item in work:
            started = time.perf_counter()
            results.append(fn(item))
            live.observe("exec.item_s", time.perf_counter() - started)
        live.count("exec.items", len(work))
        return results

    if chunksize is None:
        chunksize = default_chunksize(len(work), workers)
    observed = obs is not None and getattr(obs, "enabled", False)
    if not observed and not live_on:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            results = list(pool.map(fn, work, chunksize=chunksize))
        _check_item_parity(fn, work, results, obs, checker)
        return results

    if observed:
        _OBSERVED_CTX["fn"] = fn
        _OBSERVED_CTX["obs"] = obs
        mapped = _observed_item
    else:
        mapped = fn
    if live_on:
        _LIVE_CTX["inner"] = mapped
        _LIVE_CTX["observed"] = observed
        mapped = _live_item
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            pairs = list(
                pool.map(mapped, list(enumerate(work)), chunksize=chunksize)
            )
    finally:
        _OBSERVED_CTX.clear()
        _LIVE_CTX.clear()
    if live_on:
        from repro.obs.live import merge_live_snapshots

        live.absorb(
            merge_live_snapshots(*(live_snap for _inner, live_snap in pairs))
        )
        pairs = [inner for inner, _live_snap in pairs]
    if observed:
        from repro.obs.snapshot import merge_snapshots

        obs.absorb(merge_snapshots(*(snapshot for _result, snapshot in pairs)))
        results = [result for result, _snapshot in pairs]
    else:
        results = list(pairs)
    _check_item_parity(fn, work, results, obs, checker)
    return results


def _results_agree(a, b) -> bool:
    """Structural equality that treats NaNs as equal (numpy-aware).

    Work items legitimately return NaN for "no estimate" — a plain ``==``
    on those would flag byte-identical results as divergent.
    """
    import dataclasses

    import numpy as np

    if (
        dataclasses.is_dataclass(a)
        and not isinstance(a, type)
        and dataclasses.is_dataclass(b)
        and not isinstance(b, type)
    ):
        return type(a) is type(b) and all(
            _results_agree(getattr(a, f.name), getattr(b, f.name))
            for f in dataclasses.fields(a)
        )
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a_arr, b_arr = np.asarray(a), np.asarray(b)
        return a_arr.shape == b_arr.shape and bool(
            np.array_equal(a_arr, b_arr, equal_nan=True)
        )
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return type(a) is type(b) and len(a) == len(b) and all(
            _results_agree(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(
            _results_agree(a[key], b[key]) for key in a
        )
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    return a == b


def _check_item_parity(fn, work, results, obs, checker) -> None:
    """``exec.item_parity``: re-run item 0 in the parent, compare bytes.

    Only meaningful after an actual fork (the serial path *is* the
    reference). When the campaign is observed, the re-run happens inside a
    throwaway :class:`~repro.obs.snapshot.CaptureScope` whose snapshot is
    discarded, so the live metrics/event/span streams are untouched.
    """
    if checker is None or not checker.enabled or not work:
        return
    if obs is not None and getattr(obs, "enabled", False):
        from repro.obs.snapshot import CaptureScope

        with CaptureScope(obs, 0):
            replay = fn(work[0])
    else:
        replay = fn(work[0])
    label = getattr(fn, "__name__", repr(fn))
    checker.check_exec_parity(
        _results_agree(replay, results[0]),
        f"parallel_map({label}) item 0 of {len(work)}",
    )
