"""Process-pool campaign executor with a byte-identical serial fallback.

Campaign experiments decompose into independent work items — Figure 2
trials, street-level targets — whose randomness is counter-keyed
(:mod:`repro.rand`), so each item's result depends only on its own
descriptor, never on execution order. That makes fan-out safe: a parallel
run must produce byte-identical results to the serial path, and the
determinism suite (``tests/test_exec.py``) pins it.

Workers come from the ``REPRO_WORKERS`` environment variable (unset, "",
"0" or "1" → serial; a positive integer → that many processes; ``auto`` →
CPU count; anything else, including negative integers, raises). The pool
uses the ``fork`` start method, so workers inherit the parent's scenario
arrays by memory sharing instead of pickling multi-megabyte matrices per
item; on platforms without ``fork`` the executor silently degrades to the
serial path, which computes the same bytes.

Observed campaigns fan out too: pass the campaign observer via ``obs=``
and each work item runs inside a worker-side
:class:`~repro.obs.snapshot.CaptureScope`, returning ``(result,
snapshot)`` over the pipe. The parent merges the snapshots
(:func:`~repro.obs.snapshot.merge_snapshots`, ordered by stable item
index) and folds them into its live observer — metrics, event stream, and
span tree come out byte-identical to a serial observed run (pinned by
``tests/test_obs_distributed.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def worker_count() -> int:
    """Worker processes requested via ``REPRO_WORKERS`` (default serial).

    Returns:
        1 when the variable is unset/empty/"0"/"1" (serial execution),
        the CPU count for ``auto``, otherwise the parsed integer.

    Raises:
        ValueError: when the variable is set to something unintelligible
            or to a negative integer — a silent fall-back to serial would
            hide a misconfigured campaign host.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if raw in ("", "0", "1"):
        return 1
    if raw == "auto":
        return os.cpu_count() or 1
    try:
        count = int(raw)
    except ValueError:
        raise ValueError(f"unintelligible REPRO_WORKERS value: {raw!r}") from None
    if count < 0:
        raise ValueError(f"REPRO_WORKERS must be non-negative, got {count}")
    return max(1, count)


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start-method context, or ``None`` when unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def chunked(items: Sequence[T], size: int) -> List[List[T]]:
    """Split ``items`` into order-preserving chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def default_chunksize(n_items: int, workers: int) -> int:
    """Work-descriptor chunk size balancing dispatch overhead vs skew.

    Four chunks per worker keeps the tail short while amortising IPC;
    identical results regardless of the value (items are independent).
    """
    return max(1, n_items // max(1, workers * 4))


#: Shared (fn, observer) for the observed-item wrapper; populated in the
#: parent immediately before the pool forks, so workers inherit it.
_OBSERVED_CTX: Dict[str, object] = {}


def _observed_item(pair: Tuple[int, T]):
    """Run one work item under worker-side capture.

    Returns ``(result, snapshot)``; the snapshot carries everything the
    item recorded on the campaign observer, tagged with the item's stable
    index so the parent-side merge reproduces serial emission order.
    """
    from repro.obs.snapshot import CaptureScope

    index, item = pair
    with CaptureScope(_OBSERVED_CTX["obs"], index) as scope:
        result = _OBSERVED_CTX["fn"](item)
    return result, scope.snapshot


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    obs=None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    Args:
        fn: a module-level callable (picklable by reference). Any large
            shared state must already live in module globals before the
            call, so forked workers inherit it.
        items: work descriptors; materialised to a list.
        workers: process count; defaults to :func:`worker_count`.
        chunksize: descriptors per dispatch; defaults to
            :func:`default_chunksize`.
        obs: optional campaign :class:`~repro.obs.Observer`. When enabled
            and the run is parallel, each item is captured worker-side and
            the merged snapshot is absorbed into this observer after the
            map — the serial path records on it live, as always. A
            :class:`~repro.obs.NullObserver` (or ``None``) costs nothing.

    Returns:
        ``[fn(item) for item in items]`` — by construction in the serial
        path, and byte-identically in the parallel one (pinned by the
        determinism tests). With ``obs=``, the observer's final state is
        byte-identical between the two paths as well.
    """
    work = list(items)
    if workers is None:
        workers = worker_count()
    workers = min(workers, len(work))
    context = _fork_context()
    if workers <= 1 or context is None:
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = default_chunksize(len(work), workers)
    if obs is None or not getattr(obs, "enabled", False):
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            return list(pool.map(fn, work, chunksize=chunksize))

    from repro.obs.snapshot import merge_snapshots

    _OBSERVED_CTX["fn"] = fn
    _OBSERVED_CTX["obs"] = obs
    try:
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            pairs = list(
                pool.map(_observed_item, list(enumerate(work)), chunksize=chunksize)
            )
    finally:
        _OBSERVED_CTX.clear()
    obs.absorb(merge_snapshots(*(snapshot for _result, snapshot in pairs)))
    return [result for result, _snapshot in pairs]
