"""Process-pool campaign executor with a byte-identical serial fallback.

Campaign experiments decompose into independent work items — Figure 2
trials, street-level targets — whose randomness is counter-keyed
(:mod:`repro.rand`), so each item's result depends only on its own
descriptor, never on execution order. That makes fan-out safe: a parallel
run must produce byte-identical results to the serial path, and the
determinism suite (``tests/test_exec.py``) pins it.

Workers come from the ``REPRO_WORKERS`` environment variable (unset, "",
"0" or "1" → serial; an integer → that many processes; ``auto`` → CPU
count). The pool uses the ``fork`` start method, so workers inherit the
parent's scenario arrays by memory sharing instead of pickling
multi-megabyte matrices per item; on platforms without ``fork`` the
executor silently degrades to the serial path, which computes the same
bytes.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def worker_count() -> int:
    """Worker processes requested via ``REPRO_WORKERS`` (default serial).

    Returns:
        1 when the variable is unset/empty/"0"/"1" (serial execution),
        the CPU count for ``auto``, otherwise the parsed integer.

    Raises:
        ValueError: when the variable is set to something unintelligible —
            a silent fall-back to serial would hide a misconfigured
            campaign host.
    """
    raw = os.environ.get("REPRO_WORKERS", "").strip().lower()
    if raw in ("", "0", "1"):
        return 1
    if raw == "auto":
        return os.cpu_count() or 1
    return max(1, int(raw))


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The fork start-method context, or ``None`` when unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def chunked(items: Sequence[T], size: int) -> List[List[T]]:
    """Split ``items`` into order-preserving chunks of at most ``size``."""
    if size < 1:
        raise ValueError(f"chunk size must be >= 1, got {size}")
    return [list(items[i : i + size]) for i in range(0, len(items), size)]


def default_chunksize(n_items: int, workers: int) -> int:
    """Work-descriptor chunk size balancing dispatch overhead vs skew.

    Four chunks per worker keeps the tail short while amortising IPC;
    identical results regardless of the value (items are independent).
    """
    return max(1, n_items // max(1, workers * 4))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items``, preserving order.

    Args:
        fn: a module-level callable (picklable by reference). Any large
            shared state must already live in module globals before the
            call, so forked workers inherit it.
        items: work descriptors; materialised to a list.
        workers: process count; defaults to :func:`worker_count`.
        chunksize: descriptors per dispatch; defaults to
            :func:`default_chunksize`.

    Returns:
        ``[fn(item) for item in items]`` — by construction in the serial
        path, and byte-identically in the parallel one (pinned by the
        determinism tests).
    """
    work = list(items)
    if workers is None:
        workers = worker_count()
    workers = min(workers, len(work))
    context = _fork_context()
    if workers <= 1 or context is None:
        return [fn(item) for item in work]
    if chunksize is None:
        chunksize = default_chunksize(len(work), workers)
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        return list(pool.map(fn, work, chunksize=chunksize))
