"""Campaign execution: process-pool fan-out with a serial fallback.

See :mod:`repro.exec.pool` for the executor and the determinism
guarantees; ``REPRO_WORKERS`` selects the worker count (default serial).
"""

from repro.exec.pool import (
    arena_context,
    attached_world_arrays,
    chunked,
    default_chunksize,
    parallel_map,
    worker_count,
)

__all__ = [
    "arena_context",
    "attached_world_arrays",
    "chunked",
    "default_chunksize",
    "parallel_map",
    "worker_count",
]
