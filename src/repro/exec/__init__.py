"""Campaign execution: process-pool fan-out with a serial fallback.

See :mod:`repro.exec.pool` for the executor and the determinism
guarantees; ``REPRO_WORKERS`` selects the worker count (default serial).
"""

from repro.exec.pool import (
    chunked,
    default_chunksize,
    parallel_map,
    worker_count,
)

__all__ = [
    "chunked",
    "default_chunksize",
    "parallel_map",
    "worker_count",
]
