"""Router identities and their synthetic addresses.

Router addresses live in dedicated ranges so they can never collide with
host addresses (the world allocator starts handing out host space at
11.0.0.0). The address encodes the router's role and index, which keeps
"same router" checks — the heart of the street level last-common-hop logic
— trivially consistent across traceroutes.
"""

from __future__ import annotations

import enum
from typing import Tuple

from repro.errors import ConfigurationError


class RouterRole(enum.Enum):
    """What layer of the topology a router belongs to."""

    GATEWAY = "gateway"  # a host's first-hop router
    METRO = "metro"  # city aggregation router
    HUB = "hub"  # backbone/core router

    @property
    def first_octet(self) -> int:
        """The address range marker for this role."""
        return _ROLE_OCTETS[self]


_ROLE_OCTETS = {
    RouterRole.GATEWAY: 7,
    RouterRole.METRO: 8,
    RouterRole.HUB: 9,
}
_OCTET_ROLES = {octet: role for role, octet in _ROLE_OCTETS.items()}


def router_ip(role: RouterRole, index: int) -> str:
    """The address of router ``index`` of a given role.

    Gateways are indexed by host id, metros by city id, hubs by hub index.

    Raises:
        ConfigurationError: if the index exceeds the 24-bit router space.
    """
    if not 0 <= index < (1 << 24):
        raise ConfigurationError(f"router index out of range: {index}")
    return (
        f"{role.first_octet}.{(index >> 16) & 0xFF}.{(index >> 8) & 0xFF}.{index & 0xFF}"
    )


def parse_router_ip(ip: str) -> Tuple[RouterRole, int]:
    """Invert :func:`router_ip`.

    Raises:
        ValueError: if the address is not a router address.
    """
    octets = ip.split(".")
    if len(octets) != 4:
        raise ValueError(f"not an IPv4 address: {ip!r}")
    first = int(octets[0])
    role = _OCTET_ROLES.get(first)
    if role is None:
        raise ValueError(f"not a router address: {ip!r}")
    index = (int(octets[1]) << 16) | (int(octets[2]) << 8) | int(octets[3])
    return role, index


def is_router_ip(ip: str) -> bool:
    """Whether an address belongs to the router ranges."""
    try:
        parse_router_ip(ip)
    except ValueError:
        return False
    return True
