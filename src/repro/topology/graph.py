"""The Topology: per-city uplinks, the hub backbone, and per-host parameters.

Everything the latency model needs about a host is condensed into a
:class:`HostNetParams`: how far the host is from its metro router
(``tail_km``), which hub its city homes to, and how long the city-to-hub
uplink is. Static hosts get their parameters precomputed into numpy arrays
(for the bulk ping engine); lazily created web servers get theirs computed
on demand from the same formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro import rand
from repro.geo.coords import GeoPoint
from repro.world.hosts import Host
from repro.world.world import World


@dataclass(frozen=True)
class HostNetParams:
    """Network-position parameters of one host.

    Attributes:
        host_id: the host's dense id.
        city_id: the host's physical city.
        asn: the host's AS (drives same-city peering decisions).
        tail_km: great-circle distance from the host to its metro router.
        hub_index: index (into the topology's hub list) of the city's hub.
        uplink_km: distance from the metro router to the hub router.
        last_mile_ms: round-trip last-mile delay of the host.
    """

    host_id: int
    city_id: int
    asn: int
    tail_km: float
    hub_index: int
    uplink_km: float
    last_mile_ms: float


class Topology:
    """Routing geometry derived from a world.

    The hub backbone is the set of hub cities chosen by the world builder;
    every city homes to its nearest hub (a small preference for same-
    continent hubs keeps routing realistic at continental borders).
    """

    def __init__(self, world: World) -> None:
        self.world = world
        self.hub_city_ids: List[int] = list(world.hub_city_ids)
        self._hub_index_by_city: Dict[int, int] = {
            city_id: index for index, city_id in enumerate(self.hub_city_ids)
        }

        hub_lats = np.array([world.city(cid).location.lat for cid in self.hub_city_ids])
        hub_lons = np.array([world.city(cid).location.lon for cid in self.hub_city_ids])
        self._hub_lats = hub_lats
        self._hub_lons = hub_lons

        # Hub-to-hub great-circle distance matrix (the backbone mesh).
        count = len(self.hub_city_ids)
        self.hub_distance_km = np.zeros((count, count))
        for i in range(count):
            from repro.geo.coords import bulk_haversine_km

            self.hub_distance_km[i, :] = bulk_haversine_km(
                hub_lats, hub_lons, float(hub_lats[i]), float(hub_lons[i])
            )

        # Per-city uplink: nearest hub, same-continent hubs preferred.
        self.city_hub_index = np.zeros(len(world.cities), dtype=np.int64)
        self.city_uplink_km = np.zeros(len(world.cities))
        hub_continents = [world.city(cid).continent for cid in self.hub_city_ids]
        for city in world.cities:
            distances = _distances_to_hubs(city.location, hub_lats, hub_lons)
            # Penalise cross-continent homing: border cities may still cross.
            penalised = distances + np.array(
                [0.0 if cont == city.continent else 1500.0 for cont in hub_continents]
            )
            hub_index = int(np.argmin(penalised))
            self.city_hub_index[city.city_id] = hub_index
            self.city_uplink_km[city.city_id] = float(distances[hub_index])

        # Static-host parameter arrays (aligned with world host arrays).
        static = world.static_host_count
        city_ids = world.host_city_ids
        metro_lats = np.array([world.city(int(cid)).location.lat for cid in city_ids])
        metro_lons = np.array([world.city(int(cid)).location.lon for cid in city_ids])
        from repro.geo.coords import pairwise_haversine_km

        self.host_tail_km = pairwise_haversine_km(
            world.host_true_lats, world.host_true_lons, metro_lats, metro_lons
        )
        self.host_hub_index = self.city_hub_index[city_ids]
        self.host_uplink_km = self.city_uplink_km[city_ids]
        self._lazy_params: Dict[int, HostNetParams] = {}
        self._static_count = static
        # Keep a handle for docstring-visible sizes.
        self.hub_count = count

    def hub_index_of_city(self, city_id: int) -> int:
        """The backbone hub a city homes to."""
        return int(self.city_hub_index[city_id])

    def params_for(self, host: Host) -> HostNetParams:
        """Network parameters of any host (static or lazily created)."""
        if host.host_id < self._static_count:
            return HostNetParams(
                host_id=host.host_id,
                city_id=host.city_id,
                asn=host.asn,
                tail_km=float(self.host_tail_km[host.host_id]),
                hub_index=int(self.host_hub_index[host.host_id]),
                uplink_km=float(self.host_uplink_km[host.host_id]),
                last_mile_ms=host.last_mile_ms,
            )
        cached = self._lazy_params.get(host.host_id)
        if cached is None:
            city = self.world.city(host.city_id)
            tail = host.true_location.distance_km(city.location)
            cached = HostNetParams(
                host_id=host.host_id,
                city_id=host.city_id,
                asn=host.asn,
                tail_km=tail,
                hub_index=self.hub_index_of_city(host.city_id),
                uplink_km=float(self.city_uplink_km[host.city_id]),
                last_mile_ms=host.last_mile_ms,
            )
            self._lazy_params[host.host_id] = cached
        return cached

    def locally_peered(self, city_id: int, asn_a: int, asn_b: int) -> bool:
        """Whether two ASes exchange same-city traffic at the metro.

        Same-AS traffic always stays local. Distinct ASes peer locally with
        the configured probability (stable per city/AS-pair); unpeered
        pairs trombone through the regional hub — the classic cause of
        multi-millisecond RTTs between neighbours.
        """
        if asn_a == asn_b:
            return True
        low, high = (asn_a, asn_b) if asn_a <= asn_b else (asn_b, asn_a)
        pk = rand.pair_key(low, high)
        draw = rand.uniform(("peer", self.world.config.seed, city_id, pk))
        return draw < self.world.config.local_peering_probability

    def path_km(self, src: HostNetParams, dst: HostNetParams) -> float:
        """One-way routed path length between two hosts, in kilometres.

        Same city, locally peered: through the metro router only. Same
        city, unpeered: trombone up to the hub and back. Different cities
        under one hub: metro -> hub -> metro. Otherwise the full hub
        backbone hop is included. The result is always >= the direct
        great-circle distance between the metro routers involved.
        """
        if src.city_id == dst.city_id:
            if self.locally_peered(src.city_id, src.asn, dst.asn):
                return src.tail_km + dst.tail_km
            return src.tail_km + 2.0 * src.uplink_km + dst.tail_km
        if src.hub_index == dst.hub_index:
            return src.tail_km + src.uplink_km + dst.uplink_km + dst.tail_km
        backbone = float(self.hub_distance_km[src.hub_index, dst.hub_index])
        return src.tail_km + src.uplink_km + backbone + dst.uplink_km + dst.tail_km

    def bulk_path_km(
        self,
        src_tail: np.ndarray,
        src_uplink: np.ndarray,
        src_hub: np.ndarray,
        src_city: np.ndarray,
        src_asn: np.ndarray,
        dst: HostNetParams,
    ) -> np.ndarray:
        """Vectorised :meth:`path_km` from many static hosts to one host."""
        backbone = self.hub_distance_km[src_hub, dst.hub_index]
        path = src_tail + src_uplink + backbone + dst.uplink_km + dst.tail_km
        same_hub = src_hub == dst.hub_index
        if same_hub.any():
            path = np.where(
                same_hub, src_tail + src_uplink + dst.uplink_km + dst.tail_km, path
            )
        same_city = src_city == dst.city_id
        if same_city.any():
            low = np.minimum(src_asn, dst.asn).astype(np.uint64)
            high = np.maximum(src_asn, dst.asn).astype(np.uint64)
            pk = rand.bulk_pair_key(low, high)
            draws = rand.bulk_uniform(
                ("peer", self.world.config.seed, dst.city_id), pk
            )
            peered = (src_asn == dst.asn) | (
                draws < self.world.config.local_peering_probability
            )
            local = src_tail + dst.tail_km
            trombone = src_tail + 2.0 * src_uplink + dst.tail_km
            path = np.where(same_city, np.where(peered, local, trombone), path)
        return path


def _distances_to_hubs(
    point: GeoPoint, hub_lats: np.ndarray, hub_lons: np.ndarray
) -> np.ndarray:
    from repro.geo.coords import bulk_haversine_km

    return bulk_haversine_km(hub_lats, hub_lons, point.lat, point.lon)
