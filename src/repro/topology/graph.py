"""The Topology: per-city uplinks, the hub backbone, and per-host parameters.

Everything the latency model needs about a host is condensed into a
:class:`HostNetParams`: how far the host is from its metro router
(``tail_km``), which hub its city homes to, and how long the city-to-hub
uplink is. Static hosts get their parameters precomputed into numpy arrays
(for the bulk ping engine); lazily created web servers get theirs computed
on demand from the same formulas.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro import rand
from repro.geo.coords import GeoPoint
from repro.world.hosts import Host
from repro.world.world import World

#: Largest number of lazily created web-server parameter entries kept per
#: :class:`Topology`. Under the resident serving engine a long-lived
#: process can touch an unbounded stream of lazily materialised web
#: servers; an unbounded per-host dict would then grow (and, worse, be
#: duplicated per fork worker). The entries are pure functions of the
#: shared city arrays plus two cheap haversines, so evicting and
#: recomputing is safe — the bound only caps resident memory.
LAZY_PARAMS_CAPACITY = 4096


@dataclass(frozen=True)
class HostNetParams:
    """Network-position parameters of one host.

    Attributes:
        host_id: the host's dense id.
        city_id: the host's physical city.
        asn: the host's AS (drives same-city peering decisions).
        tail_km: great-circle distance from the host to its metro router.
        hub_index: index (into the topology's hub list) of the city's hub.
        uplink_km: distance from the metro router to the hub router.
        last_mile_ms: round-trip last-mile delay of the host.
    """

    host_id: int
    city_id: int
    asn: int
    tail_km: float
    hub_index: int
    uplink_km: float
    last_mile_ms: float


class Topology:
    """Routing geometry derived from a world.

    The hub backbone is the set of hub cities chosen by the world builder;
    every city homes to its nearest hub (a small preference for same-
    continent hubs keeps routing realistic at continental borders).
    """

    def __init__(self, world: World) -> None:
        self.world = world
        self.hub_city_ids: List[int] = list(world.hub_city_ids)
        self._hub_index_by_city: Dict[int, int] = {
            city_id: index for index, city_id in enumerate(self.hub_city_ids)
        }

        from repro.geo.coords import matrix_haversine_km, pairwise_haversine_km

        city_lats = np.array([city.location.lat for city in world.cities])
        city_lons = np.array([city.location.lon for city in world.cities])
        hub_cids = np.asarray(self.hub_city_ids, dtype=np.int64)
        hub_lats = city_lats[hub_cids]
        hub_lons = city_lons[hub_cids]
        self._hub_lats = hub_lats
        self._hub_lons = hub_lons

        # Hub-to-hub great-circle distance matrix (the backbone mesh), one
        # broadcasted call; row i is bitwise what the per-row
        # ``bulk_haversine_km(..., float(hub_lats[i]), ...)`` loop computed.
        count = len(self.hub_city_ids)
        self.hub_distance_km = matrix_haversine_km(hub_lats, hub_lons, hub_lats, hub_lons)

        # Per-city uplink: nearest hub, same-continent hubs preferred.
        # One cities x hubs distance matrix plus a continent-mismatch
        # penalty matrix replaces the per-city argmin loop (penalising
        # cross-continent homing; border cities may still cross).
        city_continents = np.array([city.continent for city in world.cities])
        hub_continents = city_continents[hub_cids]
        city_hub_km = matrix_haversine_km(hub_lats, hub_lons, city_lats, city_lons)
        penalised = city_hub_km + np.where(
            city_continents[:, None] == hub_continents[None, :], 0.0, 1500.0
        )
        self.city_hub_index = np.argmin(penalised, axis=1)
        self.city_uplink_km = city_hub_km[
            np.arange(len(world.cities)), self.city_hub_index
        ]

        # Static-host parameter arrays (aligned with world host arrays).
        static = world.static_host_count
        city_ids = world.host_city_ids
        metro_lats = city_lats[city_ids]
        metro_lons = city_lons[city_ids]
        self.host_tail_km = pairwise_haversine_km(
            world.host_true_lats, world.host_true_lons, metro_lats, metro_lons
        )
        self.host_hub_index = self.city_hub_index[city_ids]
        self.host_uplink_km = self.city_uplink_km[city_ids]
        self._lazy_params: "OrderedDict[int, HostNetParams]" = OrderedDict()
        self._static_count = static
        self._csr: Optional[object] = None
        # Keep a handle for docstring-visible sizes.
        self.hub_count = count

    def hub_index_of_city(self, city_id: int) -> int:
        """The backbone hub a city homes to."""
        return int(self.city_hub_index[city_id])

    def params_for(self, host: Host) -> HostNetParams:
        """Network parameters of any host (static or lazily created)."""
        if host.host_id < self._static_count:
            return HostNetParams(
                host_id=host.host_id,
                city_id=host.city_id,
                asn=host.asn,
                tail_km=float(self.host_tail_km[host.host_id]),
                hub_index=int(self.host_hub_index[host.host_id]),
                uplink_km=float(self.host_uplink_km[host.host_id]),
                last_mile_ms=host.last_mile_ms,
            )
        cached = self._lazy_params.get(host.host_id)
        if cached is None:
            city = self.world.city(host.city_id)
            tail = host.true_location.distance_km(city.location)
            cached = HostNetParams(
                host_id=host.host_id,
                city_id=host.city_id,
                asn=host.asn,
                tail_km=tail,
                hub_index=self.hub_index_of_city(host.city_id),
                uplink_km=float(self.city_uplink_km[host.city_id]),
                last_mile_ms=host.last_mile_ms,
            )
            self._lazy_params[host.host_id] = cached
            if len(self._lazy_params) > LAZY_PARAMS_CAPACITY:
                self._lazy_params.popitem(last=False)
        else:
            self._lazy_params.move_to_end(host.host_id)
        return cached

    def csr(self) -> "object":
        """The flat-array CSR router graph over this topology (memoised).

        The returned :class:`~repro.topology.csr.CsrRouterGraph` is the
        single routing truth re-expressed as dense integer nodes with
        ``indptr``/``indices``/``weight_km`` arrays; its bucketed kernel
        resolves whole target columns at once, bitwise-equal to
        :meth:`path_km` (pinned by the ``topology: csr vs scalar``
        selfcheck leg).
        """
        if self._csr is None:
            from repro.topology.csr import CsrRouterGraph

            self._csr = CsrRouterGraph.from_topology(self)
        return self._csr

    def locally_peered(self, city_id: int, asn_a: int, asn_b: int) -> bool:
        """Whether two ASes exchange same-city traffic at the metro.

        Same-AS traffic always stays local. Distinct ASes peer locally with
        the configured probability (stable per city/AS-pair); unpeered
        pairs trombone through the regional hub — the classic cause of
        multi-millisecond RTTs between neighbours.
        """
        if asn_a == asn_b:
            return True
        low, high = (asn_a, asn_b) if asn_a <= asn_b else (asn_b, asn_a)
        pk = rand.pair_key(low, high)
        draw = rand.uniform(("peer", self.world.config.seed, city_id, pk))
        return draw < self.world.config.local_peering_probability

    def path_km(self, src: HostNetParams, dst: HostNetParams) -> float:
        """One-way routed path length between two hosts, in kilometres.

        Same city, locally peered: through the metro router only. Same
        city, unpeered: trombone up to the hub and back. Different cities
        under one hub: metro -> hub -> metro. Otherwise the full hub
        backbone hop is included. The result is always >= the direct
        great-circle distance between the metro routers involved.
        """
        if src.city_id == dst.city_id:
            if self.locally_peered(src.city_id, src.asn, dst.asn):
                return src.tail_km + dst.tail_km
            return src.tail_km + 2.0 * src.uplink_km + dst.tail_km
        if src.hub_index == dst.hub_index:
            return src.tail_km + src.uplink_km + dst.uplink_km + dst.tail_km
        backbone = float(self.hub_distance_km[src.hub_index, dst.hub_index])
        return src.tail_km + src.uplink_km + backbone + dst.uplink_km + dst.tail_km

    def bulk_path_km(
        self,
        src_tail: np.ndarray,
        src_uplink: np.ndarray,
        src_hub: np.ndarray,
        src_city: np.ndarray,
        src_asn: np.ndarray,
        dst: HostNetParams,
    ) -> np.ndarray:
        """Vectorised :meth:`path_km` from many static hosts to one host."""
        backbone = self.hub_distance_km[src_hub, dst.hub_index]
        path = src_tail + src_uplink + backbone + dst.uplink_km + dst.tail_km
        same_hub = src_hub == dst.hub_index
        if same_hub.any():
            path = np.where(
                same_hub, src_tail + src_uplink + dst.uplink_km + dst.tail_km, path
            )
        same_city = src_city == dst.city_id
        if same_city.any():
            low = np.minimum(src_asn, dst.asn).astype(np.uint64)
            high = np.maximum(src_asn, dst.asn).astype(np.uint64)
            pk = rand.bulk_pair_key(low, high)
            draws = rand.bulk_uniform(
                ("peer", self.world.config.seed, dst.city_id), pk
            )
            peered = (src_asn == dst.asn) | (
                draws < self.world.config.local_peering_probability
            )
            local = src_tail + dst.tail_km
            trombone = src_tail + 2.0 * src_uplink + dst.tail_km
            path = np.where(same_city, np.where(peered, local, trombone), path)
        return path


def _distances_to_hubs(
    point: GeoPoint, hub_lats: np.ndarray, hub_lons: np.ndarray
) -> np.ndarray:
    from repro.geo.coords import bulk_haversine_km

    return bulk_haversine_km(hub_lats, hub_lons, point.lat, point.lon)
